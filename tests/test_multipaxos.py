"""Unit and cluster tests for the Multi-Paxos baseline."""

import pytest

from repro.errors import ConfigError, NotLeaderError
from repro.baselines.multipaxos import (
    NOOP,
    MPRole,
    MultiPaxosConfig,
    MultiPaxosReplica,
    P1a,
    P1b,
    P2a,
    P2b,
    Ping,
    Pong,
)
from repro.omni.entry import Command
from repro.sim.cluster import SimCluster
from repro.sim.events import EventQueue
from repro.sim.network import NetworkParams, SimNetwork

T = 100.0


def cmd(i: int) -> Command:
    return Command(data=b"x", client_id=1, seq=i)


def build_mp_cluster(n=3, initial_leader=None, seed=3):
    pids = tuple(range(1, n + 1))
    queue = EventQueue()
    net = SimNetwork(queue, NetworkParams(one_way_ms=0.1))
    replicas = {
        pid: MultiPaxosReplica(MultiPaxosConfig(
            pid=pid,
            peers=tuple(p for p in pids if p != pid),
            election_timeout_ms=T,
            seed=seed,
            initial_leader=initial_leader,
        ))
        for pid in pids
    }
    sim = SimCluster(replicas, net, queue, tick_ms=5.0)
    sim.start()
    return sim, replicas


def wait_leader(sim, max_ms=10_000.0):
    elapsed = 0.0
    while elapsed < max_ms:
        sim.run_for(50.0)
        elapsed += 50.0
        leaders = sim.leaders()
        if leaders:
            return leaders[0]
    raise AssertionError("no multipaxos leader")


class TestConfig:
    def test_rejects_self_peer(self):
        with pytest.raises(ConfigError):
            MultiPaxosConfig(pid=1, peers=(1, 2))

    def test_majority(self):
        assert MultiPaxosConfig(pid=1, peers=(2, 3)).majority == 2
        assert MultiPaxosConfig(pid=1, peers=(2, 3, 4, 5)).majority == 3

    def test_ping_period_default(self):
        cfg = MultiPaxosConfig(pid=1, peers=(2,), election_timeout_ms=500)
        assert cfg.ping_period == 100.0


class TestLeadership:
    def test_elects_after_timeout(self):
        sim, reps = build_mp_cluster(3)
        leader = wait_leader(sim)
        assert reps[leader].is_leader

    def test_seeded_leader(self):
        sim, reps = build_mp_cluster(3, initial_leader=2)
        sim.run_for(50)
        assert sim.leaders() == [2]

    def test_crashed_leader_replaced(self):
        sim, reps = build_mp_cluster(3, initial_leader=2)
        sim.run_for(300)
        sim.crash(2)
        leader = wait_leader(sim)
        assert leader != 2

    def test_ballot_uniqueness_by_pid(self):
        sim, reps = build_mp_cluster(3)
        wait_leader(sim)
        ballots = {r.ballot for r in reps.values() if r.ballot[0] > 0}
        assert len({b for b in ballots}) == len(ballots)

    def test_ping_answered_regardless_of_role(self):
        replica = MultiPaxosReplica(MultiPaxosConfig(
            pid=1, peers=(2, 3), election_timeout_ms=T))
        replica.start(0.0)
        replica.take_outbox()
        replica.on_message(2, Ping(), 1.0)
        ((dst, reply),) = replica.take_outbox()
        assert dst == 2 and isinstance(reply, Pong)

    def test_preempted_leader_becomes_follower(self):
        sim, reps = build_mp_cluster(3, initial_leader=1)
        sim.run_for(300)
        # Cut 1 off from 3 only; 3 suspects and takes over via 2.
        sim.set_link(1, 3, False)
        sim.run_for(1500)
        assert reps[3].is_leader or reps[1].is_leader
        leaders = sim.leaders()
        # At most one side holds a *working* majority at a time; no leader
        # here ever claims without phase-1 majority.
        assert len(leaders) >= 1


class TestReplication:
    def test_commands_decide_everywhere(self):
        sim, reps = build_mp_cluster(3, initial_leader=1)
        sim.run_for(200)
        for i in range(10):
            sim.propose(1, cmd(i))
        sim.run_for(300)
        assert all(r.decided_upto == 10 for r in reps.values())

    def test_non_leader_raises(self):
        sim, reps = build_mp_cluster(3, initial_leader=1)
        sim.run_for(200)
        with pytest.raises(NotLeaderError):
            sim.propose(2, cmd(0))

    def test_batch_proposals(self):
        sim, reps = build_mp_cluster(3, initial_leader=1)
        sim.run_for(200)
        sim.propose_batch(1, [cmd(i) for i in range(100)])
        sim.run_for(300)
        assert reps[2].decided_upto == 100

    def test_decided_skips_noops(self):
        replica = MultiPaxosReplica(MultiPaxosConfig(
            pid=1, peers=(2, 3), election_timeout_ms=T))
        replica.start(0.0)
        replica._accepted[0] = ((1, 1), NOOP)
        replica._accepted[1] = ((1, 1), cmd(7))
        replica._recompute_accepted_upto()
        replica._advance_decided(2)
        decided = replica.take_decided()
        assert [e.seq for _i, e in decided] == [7]

    def test_leader_change_preserves_decided(self):
        """Phase-1 recovery: a new leader must re-adopt every decided slot."""
        sim, reps = build_mp_cluster(3, initial_leader=1)
        sim.run_for(200)
        for i in range(5):
            sim.propose(1, cmd(i))
        sim.run_for(200)
        before = [reps[2]._accepted[i][1].seq for i in range(5)]
        sim.crash(1)
        new_leader = wait_leader(sim)
        sim.propose(new_leader, cmd(100))
        sim.run_for(500)
        after = [reps[2]._accepted[i][1].seq for i in range(5)]
        assert before == after
        assert reps[2].decided_upto >= 6

    def test_follower_gap_streamed(self):
        sim, reps = build_mp_cluster(3, initial_leader=1)
        sim.run_for(200)
        sim.set_link(1, 3, False)
        sim.set_link(2, 3, False)  # fully isolate 3 (it cannot take over)
        for i in range(10):
            sim.propose(1, cmd(i))
        sim.run_for(200)
        assert reps[3].decided_upto == 0
        sim.set_link(1, 3, True)
        sim.set_link(2, 3, True)
        sim.run_for(1500)
        assert reps[3].decided_upto == 10


class TestAcceptorLogic:
    def test_promise_only_higher_ballots(self):
        replica = MultiPaxosReplica(MultiPaxosConfig(
            pid=1, peers=(2, 3), election_timeout_ms=T))
        replica.start(0.0)
        replica.on_message(2, P1a((5, 2), 0), 1.0)
        replica.take_outbox()
        replica.on_message(3, P1a((3, 3), 0), 2.0)
        ((_d, reply),) = replica.take_outbox()
        assert reply.promised == (5, 2)  # cites the higher promise

    def test_p2a_rejected_cites_promise(self):
        """The reject-with-higher-ballot reply: the chained-livelock gossip."""
        replica = MultiPaxosReplica(MultiPaxosConfig(
            pid=1, peers=(2, 3), election_timeout_ms=T))
        replica.start(0.0)
        replica.on_message(2, P1a((5, 2), 0), 1.0)
        replica.take_outbox()
        replica.on_message(3, P2a((3, 3), 0, (cmd(0),), 0), 2.0)
        ((_d, reply),) = replica.take_outbox()
        assert isinstance(reply, P2b)
        assert reply.promised == (5, 2)

    def test_p2a_adopts_sender_as_leader(self):
        replica = MultiPaxosReplica(MultiPaxosConfig(
            pid=1, peers=(2, 3), election_timeout_ms=T))
        replica.start(0.0)
        replica.on_message(2, P2a((5, 2), 0, (cmd(0),), 0), 1.0)
        assert replica.leader_pid == 2

    def test_p1b_carries_accepted_slots(self):
        replica = MultiPaxosReplica(MultiPaxosConfig(
            pid=1, peers=(2, 3), election_timeout_ms=T))
        replica.start(0.0)
        replica.on_message(2, P2a((1, 2), 0, (cmd(0), cmd(1)), 0), 1.0)
        replica.take_outbox()
        replica.on_message(3, P1a((5, 3), 0), 2.0)
        replies = [m for _d, m in replica.take_outbox() if isinstance(m, P1b)]
        assert len(replies) == 1
        assert len(replies[0].accepted) == 2
