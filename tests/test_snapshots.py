"""Tests for snapshot-based log compaction.

With a configured snapshotter, a leader may trim up to its *own* decided
index — beyond what stragglers have decided — because any server that later
needs the compacted prefix receives the snapshot instead (in AcceptSync or
even in a Promise when the leadership flips the other way).
"""

import pytest

from repro.errors import StorageError
from repro.omni.entry import Command, SnapshotInstalled
from repro.omni.messages import AcceptSync, Promise
from repro.omni.sequence_paxos import SequencePaxos, SequencePaxosConfig
from repro.omni.storage import FileStorage, InMemoryStorage
from repro.kv.store import (
    KVCommand,
    KVStateMachine,
    encode_command,
    kv_snapshotter,
)

from tests.test_sequence_paxos import Shuttle, cmd


def counting_snapshotter(entries, prev_state):
    """Toy deterministic fold: count entries and remember the last seq."""
    base = prev_state or {"count": 0, "last": None}
    count = base["count"] + len(entries)
    last = entries[-1].seq if entries else base["last"]
    return {"count": count, "last": last}


def make_snap_sp(pid, n=3, storage=None):
    peers = tuple(p for p in range(1, n + 1) if p != pid)
    return SequencePaxos(
        SequencePaxosConfig(pid=pid, peers=peers,
                            snapshotter=counting_snapshotter),
        storage if storage is not None else InMemoryStorage(),
    )


def snap_trio():
    nodes = {pid: make_snap_sp(pid) for pid in (1, 2, 3)}
    return nodes, Shuttle(nodes)


class TestStorageSnapshots:
    @pytest.fixture(params=["memory", "file"])
    def storage(self, request, tmp_path):
        if request.param == "memory":
            yield InMemoryStorage()
        else:
            backend = FileStorage(str(tmp_path / "s.wal"))
            yield backend
            backend.close()

    def test_set_get_snapshot(self, storage):
        storage.set_snapshot({"x": 1}, 5)
        assert storage.get_snapshot() == ({"x": 1}, 5)

    def test_install_beyond_log_resets(self, storage):
        storage.append_entries(list("ab"))
        storage.install_snapshot({"s": True}, 10)
        assert storage.log_len() == 10
        assert storage.compacted_idx() == 10
        assert storage.get_decided_idx() == 10
        assert storage.get_snapshot() == ({"s": True}, 10)

    def test_install_mid_log_keeps_tail(self, storage):
        storage.append_entries(list("abcde"))
        storage.install_snapshot({"s": True}, 3)
        assert storage.log_len() == 5
        assert storage.compacted_idx() == 3
        assert storage.get_entries(3, 5) == ("d", "e")

    def test_install_below_compaction_noop(self, storage):
        storage.append_entries(list("abcd"))
        storage.set_decided_idx(4)
        storage.compact_prefix(4)
        storage.install_snapshot({"old": True}, 2)
        assert storage.compacted_idx() == 4
        assert storage.get_snapshot() == ({"old": True}, 2)

    def test_file_snapshot_survives_reopen(self, tmp_path):
        path = str(tmp_path / "snap.wal")
        first = FileStorage(path)
        first.append_entries(list("ab"))
        first.install_snapshot({"k": "v"}, 7)
        first.append_entry("c")
        first.close()
        second = FileStorage(path)
        assert second.get_snapshot() == ({"k": "v"}, 7)
        assert second.log_len() == 8
        assert second.get_entry(7) == "c"
        second.close()


class TestSnapshotTrim:
    def replicated(self, count=6):
        nodes, net = snap_trio()
        net.elect(1)
        for i in range(count):
            nodes[1].propose(cmd(i))
        net.deliver_all()
        return nodes, net

    def test_trim_folds_into_snapshot(self):
        nodes, net = self.replicated()
        nodes[1].trim()
        net.deliver_all()
        for node in nodes.values():
            state, covers = node.storage.get_snapshot()
            assert covers == 6
            assert state["count"] == 6
            assert state["last"] == 5

    def test_trim_beyond_straggler_allowed_with_snapshotter(self):
        """The headline: trim past a partitioned follower's decided index."""
        nodes, net = snap_trio()
        net.cut(1, 3)
        net.elect(1)
        for i in range(4):
            nodes[1].propose(cmd(i))
        net.deliver_all()
        assert nodes[3].decided_idx == 0
        trimmed = nodes[1].trim()  # would raise without a snapshotter
        assert trimmed == 4
        assert nodes[1].compacted_idx == 4

    def test_straggler_syncs_via_snapshot(self):
        nodes, net = snap_trio()
        net.cut(1, 3)
        net.elect(1)
        for i in range(4):
            nodes[1].propose(cmd(i))
        net.deliver_all()
        nodes[1].trim()
        net.deliver_all()
        # Heal: the straggler re-promises; the leader ships the snapshot.
        net.down.clear()
        nodes[3].reconnected(1)
        net.deliver_all()
        assert nodes[3].decided_idx == 4
        state, covers = nodes[3].storage.get_snapshot()
        assert covers == 4 and state["count"] == 4
        decided = nodes[3].take_decided()
        assert decided and isinstance(decided[0][1], SnapshotInstalled)
        assert decided[0][0] == 4  # marker covers [0, 4)

    def test_progress_continues_after_snapshot_sync(self):
        nodes, net = snap_trio()
        net.cut(1, 3)
        net.elect(1)
        for i in range(4):
            nodes[1].propose(cmd(i))
        net.deliver_all()
        nodes[1].trim()
        net.down.clear()
        nodes[3].reconnected(1)
        net.deliver_all()
        nodes[1].propose(cmd(99))
        net.deliver_all()
        assert nodes[3].decided_idx == 5
        assert nodes[3].storage.get_entry(4).seq == 99

    def test_new_leader_adopts_snapshot_from_promise(self):
        """Leadership flips to a server that is *behind the compaction
        point*: the Promise carries the snapshot the other way."""
        nodes, net = snap_trio()
        net.cut(1, 3)
        net.elect(1)
        for i in range(4):
            nodes[1].propose(cmd(i))
        net.deliver_all()
        nodes[1].trim()
        net.deliver_all()
        # 3 (empty, decided 0) becomes leader of a higher round with full
        # connectivity: it must adopt 1's snapshot + suffix in Prepare.
        net.down.clear()
        net.cut(2, 3)  # force the majority to be {1, 3}
        net.elect(3, n=2)
        net.deliver_all()
        assert nodes[3].decided_idx >= 4
        state, covers = nodes[3].storage.get_snapshot()
        assert covers == 4 and state["count"] == 4
        decided = nodes[3].take_decided()
        assert any(isinstance(e, SnapshotInstalled) for _i, e in decided)

    def test_take_decided_mixed_marker_and_entries(self):
        nodes, net = snap_trio()
        net.cut(1, 3)
        net.elect(1)
        for i in range(4):
            nodes[1].propose(cmd(i))
        net.deliver_all()
        nodes[1].trim()
        net.down.clear()
        nodes[3].reconnected(1)
        net.deliver_all()
        nodes[1].propose(cmd(50))
        net.deliver_all()
        out = nodes[3].take_decided()
        assert isinstance(out[0][1], SnapshotInstalled)
        assert out[-1][1].seq == 50


class TestKVSnapshotter:
    def test_fold_matches_replay(self):
        cmds = [
            encode_command(KVCommand("put", "a", "1"), 1, 0),
            encode_command(KVCommand("put", "b", "2"), 1, 1),
            encode_command(KVCommand("delete", "a"), 1, 2),
        ]
        state = kv_snapshotter(cmds, None)
        machine = KVStateMachine()
        for i, entry in enumerate(cmds):
            machine.apply(entry, i)
        assert state["data"] == machine.snapshot()

    def test_incremental_fold(self):
        first = [encode_command(KVCommand("put", "a", "1"), 1, 0)]
        second = [encode_command(KVCommand("put", "a", "2"), 1, 1)]
        state1 = kv_snapshotter(first, None)
        state2 = kv_snapshotter(second, state1)
        assert state2["data"] == {"a": "2"}

    def test_restore_roundtrip(self):
        machine = KVStateMachine()
        machine.apply(encode_command(KVCommand("put", "k", "v"), 1, 0), 0)
        clone = KVStateMachine()
        clone.restore(machine.to_snapshot())
        assert clone.snapshot() == machine.snapshot()
        # Session table restored too: the duplicate is still deduped.
        assert clone.apply(
            encode_command(KVCommand("put", "k", "x"), 1, 0), 1) is None

    def test_sessions_preserved_across_fold(self):
        cmds = [encode_command(KVCommand("put", "a", "1"), 7, 3)]
        state = kv_snapshotter(cmds, None)
        machine = KVStateMachine()
        machine.restore(state)
        dup = machine.apply(encode_command(KVCommand("put", "a", "9"), 7, 3), 0)
        assert dup is None
        assert machine.lookup("a") == "1"
