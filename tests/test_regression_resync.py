"""Regression: racing Prepare/Promise cycles must not desynchronize the
AcceptDecide session counters.

Found by the hypothesis chaos suite: a link flap made a follower send a
PrepareReq *and* the leader re-Prepare on session-restore. The follower
promised twice; the leader answered the second (stale) promise with a late
AcceptSync — resetting its per-follower sequence counter — but the follower,
already back in the Accept phase, dropped that AcceptSync. From then on
every AcceptDecide looked like a duplicate at the follower and it silently
stopped replicating until the next leader change.

The fix: followers apply same-round AcceptSyncs in the Accept phase too,
clipping any part below their decided prefix.
"""

from repro.omni.ballot import Ballot
from repro.omni.messages import AcceptSync, Prepare, PrepareReq

from tests.test_sequence_paxos import Shuttle, cmd, make_sp


def test_double_prepare_cycle_keeps_replicating():
    """Deterministic replay of the falsifying schedule."""
    nodes = {pid: make_sp(pid) for pid in (1, 2, 3)}
    net = Shuttle(nodes)
    net.elect(1)
    leader, follower = nodes[1], nodes[2]
    # Simulate the race: the follower asks for a Prepare while the leader
    # independently re-Prepares it (session restore) — two full cycles.
    follower.reconnected(1)           # -> PrepareReq
    leader.reconnected(2)             # -> Prepare
    net.deliver_all()                 # both cycles complete, in order
    leader.reconnected(2)             # a third Prepare for good measure
    net.deliver_all()
    # The follower must still accept new entries afterwards.
    leader.propose(cmd(0))
    leader.propose(cmd(1))
    net.deliver_all()
    assert follower.log_len == 2
    assert follower.decided_idx == 2


def test_accept_phase_sync_clips_below_decided():
    """A stale AcceptSync whose sync point is below the follower's decided
    prefix is applied from the decided index on, never truncating decided
    entries."""
    nodes = {pid: make_sp(pid) for pid in (1, 2, 3)}
    net = Shuttle(nodes)
    net.elect(1)
    for i in range(3):
        nodes[1].propose(cmd(i))
    net.deliver_all()
    follower = nodes[2]
    assert follower.decided_idx == 3
    round_n = follower.current_round
    # A stale same-round AcceptSync from index 0 (as if answering an old
    # promise): the overlap with the decided prefix must be skipped.
    full_log = nodes[1].storage.get_entries(0, 3)
    follower.on_message(1, AcceptSync(
        n=round_n, suffix=full_log, sync_idx=0, decided_idx=3))
    assert follower.log_len == 3
    assert follower.decided_idx == 3
    assert [e.seq for e in follower.storage.get_entries(0, 3)] == [0, 1, 2]


def test_flap_storm_converges():
    """Many rapid flaps (the chaos pattern) never wedge replication."""
    nodes = {pid: make_sp(pid) for pid in (1, 2, 3)}
    net = Shuttle(nodes)
    net.elect(1)
    for round_no in range(6):
        nodes[2].reconnected(1)
        nodes[1].reconnected(2)
        net.deliver_all()
        nodes[1].propose(cmd(round_no))
        net.deliver_all()
    assert nodes[2].log_len == 6
    assert nodes[2].decided_idx == 6
    assert nodes[3].decided_idx == 6
