"""Half-duplex partial connectivity (paper section 8).

"The Quorum-connected Leader Election properties can be extended to support
half-duplex links where communication can only be made in one direction. To
provide liveness, the leader must still be quorum-connected with full-duplex
links, which is what BLE elects by default using the heartbeat request and
response."

These tests verify exactly that: because quorum-connectivity is measured by
request/response round trips, a server whose links are only half-duplex
cannot (stay) elected, and the cluster fails over to a server with a
full-duplex quorum.
"""

import pytest

from repro.omni.entry import Command

from tests.conftest import build_omni_cluster, decided_logs_agree, run_until_leader


def cmd(i: int) -> Command:
    return Command(data=b"x", client_id=1, seq=i)


class TestDirectedNetwork:
    def test_directed_cut_is_one_way(self):
        sim, _servers = build_omni_cluster(3)
        net = sim.network
        net.set_link_directed(1, 2, False)
        assert not net.is_up(1, 2)
        assert net.is_up(2, 1)
        assert not net.is_full_duplex(1, 2)

    def test_symmetric_cut_covers_both(self):
        sim, _servers = build_omni_cluster(3)
        net = sim.network
        net.set_link(1, 2, False)
        assert not net.is_up(1, 2)
        assert not net.is_up(2, 1)

    def test_session_restored_only_when_bidirectional(self):
        sim, _servers = build_omni_cluster(3)
        net = sim.network
        restored = []
        net.on_session_restored(lambda a, b: restored.append((a, b)))
        net.set_link_directed(1, 2, False)
        net.set_link_directed(2, 1, False)
        net.set_link_directed(1, 2, True)
        assert restored == []  # one direction still dead: no session yet
        net.set_link_directed(2, 1, True)
        assert restored == [(2, 1)]

    def test_heal_all_covers_directed_cuts(self):
        sim, _servers = build_omni_cluster(3)
        net = sim.network
        net.set_link_directed(1, 2, False)
        net.heal_all()
        assert net.is_full_duplex(1, 2)
        assert net.down_links() == ()


class TestHalfDuplexElections:
    def test_leader_with_half_duplex_quorum_abdicates(self):
        """The leader can still *send* everywhere but receives nothing: its
        heartbeat replies never arrive, it observes itself non-QC, and its
        outgoing qc=false heartbeats hand leadership over."""
        sim, servers = build_omni_cluster(5, hb_period_ms=50.0,
                                          initial_leader=3)
        sim.run_for(500)
        assert sim.leaders() == [3]
        # Cut every inbound direction at server 3 (it can send, not hear).
        for other in (1, 2, 4, 5):
            sim.network.set_link_directed(other, 3, False)
        sim.run_for(1_000)
        leaders = sim.leaders()
        # The deaf server may keep a stale claim (it cannot hear about the
        # higher ballot) — what matters is that a NEW leader exists.
        fresh = [p for p in leaders if p != 3]
        assert fresh
        # Progress continues under the new leader.
        new_leader = fresh[0]
        sim.propose(new_leader, cmd(0))
        sim.run_for(100)
        survivors = {p: s for p, s in servers.items() if p != 3}
        assert all(s.global_log_len == 1 for s in survivors.values())

    def test_half_duplex_server_never_elected(self):
        """A server that can only *receive* from its peers never collects
        heartbeat replies, so it never considers itself quorum-connected."""
        sim, servers = build_omni_cluster(5, hb_period_ms=50.0)
        # Server 5 would win pid tie-breaks; make its outbound links dead.
        for other in (1, 2, 3, 4):
            sim.network.set_link_directed(5, other, False)
        leader = run_until_leader(sim)
        assert leader != 5
        sim.run_for(1_000)
        assert 5 not in sim.leaders()

    def test_mixed_half_duplex_converges_after_heal(self):
        sim, servers = build_omni_cluster(5, hb_period_ms=50.0,
                                          initial_leader=3)
        sim.run_for(300)
        sim.network.set_link_directed(1, 3, False)
        sim.network.set_link_directed(3, 2, False)
        sim.network.set_link_directed(4, 5, False)
        leaders = None
        for _ in range(40):
            sim.run_for(100)
            leaders = sim.leaders()
            if leaders:
                break
        assert leaders  # someone with a full-duplex quorum leads
        sim.heal_all_links()
        sim.run_for(1_000)
        leader = sim.leaders()[0]
        sim.propose(leader, cmd(0))
        sim.run_for(200)
        assert decided_logs_agree(servers)
