"""Unit tests for the measurement instruments."""

import pytest

from repro.errors import ConfigError
from repro.omni.messages import Envelope
from repro.sim.metrics import (
    _ENVELOPE_HEADER_BYTES,
    _FALLBACK_PAYLOAD_BYTES,
    DecidedTracker,
    IOTracker,
    wire_size,
)


class TestDecidedTracker:
    def test_counts(self):
        t = DecidedTracker()
        for ms in (10, 20, 30):
            t.record(ms)
        assert t.count == 3
        assert t.count_between(15, 35) == 2
        assert t.count_between(0, 10) == 0  # half-open interval

    def test_throughput(self):
        t = DecidedTracker()
        for ms in range(0, 1000, 10):
            t.record(float(ms))
        assert t.throughput(0, 1000) == pytest.approx(100.0)

    def test_throughput_empty_interval(self):
        t = DecidedTracker()
        assert t.throughput(10, 10) == 0.0

    def test_windowed_counts(self):
        t = DecidedTracker()
        for ms in (100, 200, 5600, 5700, 5800):
            t.record(float(ms))
        windows = t.windowed_counts(0, 10_000, 5_000)
        assert windows == [(0, 2), (5_000, 3)]

    def test_downtime_empty_is_whole_interval(self):
        t = DecidedTracker()
        assert t.downtime(0, 1000) == 1000

    def test_downtime_is_longest_gap(self):
        t = DecidedTracker()
        for ms in (100, 200, 900):
            t.record(float(ms))
        assert t.downtime(0, 1000) == 700  # the 200 -> 900 gap

    def test_downtime_counts_leading_and_trailing(self):
        t = DecidedTracker()
        t.record(400)
        assert t.downtime(0, 1000) == 600  # trailing gap dominates

    def test_recovery_time(self):
        t = DecidedTracker()
        t.record(100)
        t.record(550)
        assert t.recovery_time(200, 1000) == pytest.approx(350)

    def test_recovery_none_when_dead(self):
        t = DecidedTracker()
        t.record(100)
        assert t.recovery_time(200, 1000) is None

    def test_downtime_record_at_interval_boundaries(self):
        # A decide exactly at start_ms counts (closed below); one exactly
        # at end_ms does not (open above) — the half-open convention every
        # other query uses.
        t = DecidedTracker()
        t.record(0)
        t.record(1000)
        assert t.downtime(0, 1000) == 1000  # the 1000 ms record is outside
        t2 = DecidedTracker()
        t2.record(0)
        t2.record(999)
        assert t2.downtime(0, 1000) == 999

    def test_downtime_single_boundary_record(self):
        t = DecidedTracker()
        t.record(500)
        # Gaps clip to the observation interval on both sides.
        assert t.downtime(500, 1000) == 500
        assert t.downtime(0, 500) == 500  # record at end is excluded

    def test_recovery_none_when_first_decide_past_end(self):
        # The cluster did recover eventually — but not within the observed
        # interval, so for this observation it counts as never recovered.
        t = DecidedTracker()
        t.record(100)
        t.record(1500)
        assert t.recovery_time(200, 1000) is None
        assert t.recovery_time(200, 1500) == pytest.approx(1300)

    def test_recovery_decide_exactly_at_partition(self):
        # A decide at exactly partition_at_ms belongs to "before": recovery
        # is the first decide strictly after the partition instant.
        t = DecidedTracker()
        t.record(200)
        t.record(700)
        assert t.recovery_time(200, 1000) == pytest.approx(500)

    def test_windowed_counts_partial_final_window(self):
        t = DecidedTracker()
        for ms in (100, 5100, 11_900):
            t.record(float(ms))
        windows = t.windowed_counts(0, 12_000, 5_000)
        # The final window is clipped to [10_000, 12_000).
        assert windows == [(0, 1), (5_000, 1), (10_000, 1)]
        assert t.windowed_counts(0, 4_000, 5_000) == [(0, 1)]

    def test_windowed_counts_empty_interval(self):
        t = DecidedTracker()
        t.record(10)
        assert t.windowed_counts(50, 50, 5_000) == []

    def test_windowed_counts_nonpositive_window_rejected(self):
        # window_ms <= 0 would never advance the cursor: infinite loop.
        t = DecidedTracker()
        t.record(10)
        with pytest.raises(ConfigError):
            t.windowed_counts(0, 100, 0)
        with pytest.raises(ConfigError):
            t.windowed_counts(0, 100, -5)


class TestIOTracker:
    def test_totals(self):
        t = IOTracker()
        t.record(1, 100, 0)
        t.record(1, 50, 10)
        t.record(2, 10, 0)
        assert t.total_bytes(1) == 150
        assert t.total_bytes(2) == 10
        assert t.total_all() == 160
        assert t.total_bytes(99) == 0

    def test_peak_window(self):
        t = IOTracker(window_ms=1000)
        t.record(1, 100, 100)    # window 0
        t.record(1, 500, 1500)   # window 1
        t.record(1, 200, 1999)   # window 1
        assert t.peak_window_bytes(1) == 700
        assert t.peak_window_bytes(9) == 0

    def test_window_series_sorted(self):
        t = IOTracker(window_ms=1000)
        t.record(1, 1, 2500)
        t.record(1, 1, 500)
        series = t.window_series(1)
        assert [w for w, _b in series] == [0, 2000]


class TestWireSize:
    def test_uses_method_when_present(self):
        class Sized:
            def wire_size(self):
                return 77

        assert wire_size(Sized()) == 77

    def test_fallback(self):
        assert wire_size(object()) == 24

    def test_envelope_wraps_payload_size(self):
        class Sized:
            def wire_size(self):
                return 100

        env = Envelope(config_id=0, component="sp", payload=Sized())
        assert wire_size(env) == _ENVELOPE_HEADER_BYTES + 100

    def test_envelope_around_unsized_payload(self):
        # Previously flattened to the bare 24-byte fallback, undercounting
        # the envelope's own framing.
        env = Envelope(config_id=0, component="sp", payload=object())
        assert wire_size(env) == \
            _ENVELOPE_HEADER_BYTES + _FALLBACK_PAYLOAD_BYTES
        assert wire_size(env) > wire_size(object())
