"""Unit tests for the measurement instruments."""

import pytest

from repro.sim.metrics import DecidedTracker, IOTracker, wire_size


class TestDecidedTracker:
    def test_counts(self):
        t = DecidedTracker()
        for ms in (10, 20, 30):
            t.record(ms)
        assert t.count == 3
        assert t.count_between(15, 35) == 2
        assert t.count_between(0, 10) == 0  # half-open interval

    def test_throughput(self):
        t = DecidedTracker()
        for ms in range(0, 1000, 10):
            t.record(float(ms))
        assert t.throughput(0, 1000) == pytest.approx(100.0)

    def test_throughput_empty_interval(self):
        t = DecidedTracker()
        assert t.throughput(10, 10) == 0.0

    def test_windowed_counts(self):
        t = DecidedTracker()
        for ms in (100, 200, 5600, 5700, 5800):
            t.record(float(ms))
        windows = t.windowed_counts(0, 10_000, 5_000)
        assert windows == [(0, 2), (5_000, 3)]

    def test_downtime_empty_is_whole_interval(self):
        t = DecidedTracker()
        assert t.downtime(0, 1000) == 1000

    def test_downtime_is_longest_gap(self):
        t = DecidedTracker()
        for ms in (100, 200, 900):
            t.record(float(ms))
        assert t.downtime(0, 1000) == 700  # the 200 -> 900 gap

    def test_downtime_counts_leading_and_trailing(self):
        t = DecidedTracker()
        t.record(400)
        assert t.downtime(0, 1000) == 600  # trailing gap dominates

    def test_recovery_time(self):
        t = DecidedTracker()
        t.record(100)
        t.record(550)
        assert t.recovery_time(200, 1000) == pytest.approx(350)

    def test_recovery_none_when_dead(self):
        t = DecidedTracker()
        t.record(100)
        assert t.recovery_time(200, 1000) is None


class TestIOTracker:
    def test_totals(self):
        t = IOTracker()
        t.record(1, 100, 0)
        t.record(1, 50, 10)
        t.record(2, 10, 0)
        assert t.total_bytes(1) == 150
        assert t.total_bytes(2) == 10
        assert t.total_all() == 160
        assert t.total_bytes(99) == 0

    def test_peak_window(self):
        t = IOTracker(window_ms=1000)
        t.record(1, 100, 100)    # window 0
        t.record(1, 500, 1500)   # window 1
        t.record(1, 200, 1999)   # window 1
        assert t.peak_window_bytes(1) == 700
        assert t.peak_window_bytes(9) == 0

    def test_window_series_sorted(self):
        t = IOTracker(window_ms=1000)
        t.record(1, 1, 2500)
        t.record(1, 1, 500)
        series = t.window_series(1)
        assert [w for w, _b in series] == [0, 2000]


class TestWireSize:
    def test_uses_method_when_present(self):
        class Sized:
            def wire_size(self):
                return 77

        assert wire_size(Sized()) == 77

    def test_fallback(self):
        assert wire_size(object()) == 24
