"""Acceptance tests for the chaos engine's bug-finding power.

A deliberately injected safety bug (the promise check of ``_on_prepare``
is bypassed, so a stale lower-ballot Prepare rolls the promise back) must
be caught within a bounded seed sweep, and the shrinker must reduce the
failing schedule to a minimal reproducer of at most 10 fault ops.
"""

import pytest

from repro.chaos.engine import run_schedule
from repro.chaos.generator import generate_schedule
from repro.chaos.shrink import shrink_schedule
from repro.omni.sequence_paxos import SequencePaxos

#: Bounded sweep: the bug must surface within these seeds.
SWEEP_SEEDS = range(1, 6)


def _sweep_schedule(seed):
    return generate_schedule(seed, "omni", num_servers=3,
                             duration_ms=4_000.0, num_ops=12)


def _reproduces(schedule):
    # A short cooldown keeps shrinking fast; safety sweeps still run the
    # whole scheduled window.
    return not run_schedule(schedule, cooldown_ms=1_000.0).ok


@pytest.fixture
def promise_check_disabled(monkeypatch):
    """Break safety on purpose: a Prepare carrying a *lower* ballot than
    the current promise overwrites it, as if the check were missing."""
    original = SequencePaxos._on_prepare

    def patched(self, src, msg):
        if msg.n < self._storage.get_promise():
            self._storage.set_promise(msg.n)
        return original(self, src, msg)

    monkeypatch.setattr(SequencePaxos, "_on_prepare", patched)


def _first_failing_schedule():
    for seed in SWEEP_SEEDS:
        schedule = _sweep_schedule(seed)
        if _reproduces(schedule):
            return schedule
    return None


class TestInjectedBugDetection:
    def test_bounded_seed_sweep_catches_bug(self, promise_check_disabled):
        assert _first_failing_schedule() is not None, \
            "injected promise-check bug escaped the seed sweep"

    def test_shrinker_minimizes_reproducer(self, promise_check_disabled):
        failing = _first_failing_schedule()
        assert failing is not None
        shrunk, runs = shrink_schedule(failing, reproduces=_reproduces)
        assert len(shrunk.ops) <= 10
        assert len(shrunk.ops) < len(failing.ops)
        assert all(op in failing.ops for op in shrunk.ops)
        assert runs <= 200
        assert _reproduces(shrunk)  # the minimized schedule still fails

    def test_unpatched_engine_passes_same_schedules(self):
        for seed in SWEEP_SEEDS:
            result = run_schedule(_sweep_schedule(seed), cooldown_ms=1_000.0)
            assert result.ok, (seed, result.violation)


class TestShrinkerLogic:
    def test_non_reproducing_input_returned_unchanged(self):
        schedule = generate_schedule(7, "omni", 3, duration_ms=3_000.0,
                                     num_ops=6)
        shrunk, _runs = shrink_schedule(schedule, reproduces=lambda s: False)
        assert shrunk == schedule

    def test_single_guilty_op_isolated(self):
        schedule = generate_schedule(9, "omni", 3, duration_ms=10_000.0,
                                     num_ops=12)
        guilty = schedule.ops[7]

        def reproduces(candidate):
            return guilty in candidate.ops

        shrunk, runs = shrink_schedule(schedule, reproduces=reproduces)
        assert shrunk.ops == (guilty,)
        assert runs < 200
