"""Reconfiguration integration tests (paper section 7.3, Figure 9).

These run the scaled-down Figure-9 experiments and assert the paper's
qualitative findings: parallel migration beats leader-only migration, and
Omni-Paxos beats Raft on disruption duration and leader IO.
"""

import pytest

from repro.errors import ConfigError
from repro.sim.reconfig_experiment import run_reconfiguration_experiment

COMMON = dict(
    concurrent_proposals=32,
    preload_entries=150_000,
    egress_bytes_per_ms=2_000.0,
    election_timeout_ms=100.0,
    warmup_ms=3_000.0,
    run_ms=25_000.0,
    window_ms=2_000.0,
)


@pytest.fixture(scope="module")
def results():
    out = {}
    for protocol in ("omni", "raft"):
        for replace in ("one", "majority"):
            out[(protocol, replace)] = run_reconfiguration_experiment(
                protocol, replace, **COMMON)
    out[("omni-leader", "one")] = run_reconfiguration_experiment(
        "omni", "one", migration_strategy="leader", **COMMON)
    return out


class TestCompletion:
    def test_omni_completes_replace_one(self, results):
        assert results[("omni", "one")].completed_at_ms is not None

    def test_omni_completes_replace_majority(self, results):
        assert results[("omni", "majority")].completed_at_ms is not None

    def test_raft_completes_replace_one(self, results):
        assert results[("raft", "one")].completed_at_ms is not None

    def test_raft_completes_replace_majority(self, results):
        assert results[("raft", "majority")].completed_at_ms is not None

    def test_leader_only_migration_completes(self, results):
        assert results[("omni-leader", "one")].completed_at_ms is not None


class TestPaperClaims:
    def test_omni_shorter_degradation_replace_one(self, results):
        """C3: Omni's throughput dip is much shorter than Raft's."""
        omni = results[("omni", "one")]
        raft = results[("raft", "one")]
        assert omni.degraded_ms < raft.degraded_ms

    def test_omni_no_full_downtime_replace_one(self, results):
        """Replacing one server never stops an Omni cluster: a majority of
        old servers continues while the joiner migrates."""
        omni = results[("omni", "one")]
        assert omni.downtime_ms < 3_000.0

    def test_raft_majority_replace_causes_downtime(self, results):
        """With a majority of fresh servers, Raft cannot commit anything
        until one of them holds the whole log (streamed by the leader)."""
        raft = results[("raft", "majority")]
        omni = results[("omni", "majority")]
        assert raft.downtime_ms > 2 * omni.downtime_ms

    def test_omni_lower_leader_peak_io(self, results):
        """The leader is not the sole migration source in Omni-Paxos."""
        for replace in ("one", "majority"):
            omni = results[("omni", replace)]
            raft = results[("raft", replace)]
            assert omni.leader_peak_window_bytes < raft.leader_peak_window_bytes

    def test_parallel_beats_leader_only_migration(self, results):
        """The Figure-6 ablation: same protocol, only the migration scheme
        differs — parallel completes faster."""
        parallel = results[("omni", "one")]
        leader_only = results[("omni-leader", "one")]
        assert parallel.completed_at_ms < leader_only.completed_at_ms

    def test_majority_hurts_more_than_one(self, results):
        for protocol in ("omni", "raft"):
            one = results[(protocol, "one")]
            majority = results[(protocol, "majority")]
            assert majority.downtime_ms >= one.downtime_ms


class TestValidation:
    def test_rejects_unknown_protocol(self):
        with pytest.raises(ConfigError):
            run_reconfiguration_experiment("vr", "one")

    def test_rejects_unknown_replace(self):
        with pytest.raises(ConfigError):
            run_reconfiguration_experiment("omni", "two")
