"""Geo-replication scenario library: maps, region helpers, composability."""

import pytest

from repro.chaos.engine import run_schedule
from repro.chaos.generator import generate_schedule
from repro.chaos.schedule import ChaosSchedule
from repro.errors import ConfigError
from repro.sim.geo import (
    GEO_MAPS,
    REGIONS3,
    REGIONS5,
    GeoMap,
    geo_latency_map,
    inter_region_degradation_op,
    inter_region_links,
    region_assignment,
    region_members,
    region_outage_links,
    region_outage_op,
    resolve_geo,
)

FIVE = (1, 2, 3, 4, 5)


class TestGeoMaps:
    def test_builtin_maps_registered(self):
        assert GEO_MAPS["regions3"] is REGIONS3
        assert GEO_MAPS["regions5"] is REGIONS5

    def test_resolve_by_name_and_passthrough(self):
        assert resolve_geo("regions3") is REGIONS3
        assert resolve_geo(REGIONS5) is REGIONS5

    def test_resolve_unknown_rejected(self):
        with pytest.raises(ConfigError):
            resolve_geo("regions99")

    def test_map_must_cover_every_pair(self):
        with pytest.raises(ConfigError):
            GeoMap(name="broken", regions=("a", "b", "c"),
                   inter_one_way_ms={(0, 1): 10.0})

    def test_map_needs_two_regions(self):
        with pytest.raises(ConfigError):
            GeoMap(name="lonely", regions=("a",), inter_one_way_ms={})

    def test_one_way_is_symmetric_and_intra_is_fast(self):
        assert REGIONS3.one_way_ms(0, 2) == REGIONS3.one_way_ms(2, 0)
        assert REGIONS3.one_way_ms(1, 1) == REGIONS3.intra_one_way_ms
        # The shape that matters: intra-region ~100x faster than WAN.
        slowest = max(REGIONS3.inter_one_way_ms.values())
        assert slowest / REGIONS3.intra_one_way_ms > 100


class TestRegionHelpers:
    def test_assignment_is_round_robin_and_deterministic(self):
        assignment = region_assignment(FIVE, "regions3")
        assert assignment == {1: 0, 2: 1, 3: 2, 4: 0, 5: 1}
        assert region_assignment(FIVE, "regions3") == assignment

    def test_members_by_index_and_name(self):
        assert region_members(FIVE, "regions3", 0) == (1, 4)
        assert region_members(FIVE, "regions3", "us-east") == (1, 4)
        assert region_members(FIVE, "regions3", "ap-northeast") == (3,)

    def test_unknown_region_name_rejected(self):
        with pytest.raises(ConfigError):
            region_members(FIVE, "regions3", "the-moon")

    def test_latency_map_covers_all_pairs(self):
        lat = geo_latency_map(FIVE, "regions3")
        assert set(lat) == {(a, b) for a in FIVE for b in FIVE if a < b}
        # 1 and 4 share us-east; 1 and 3 cross an ocean.
        assert lat[(1, 4)] == REGIONS3.intra_one_way_ms
        assert lat[(1, 3)] == REGIONS3.inter_one_way_ms[(0, 2)]

    def test_outage_links_cut_exactly_the_region_boundary(self):
        links = region_outage_links(FIVE, "regions3", "us-east")
        inside = {1, 4}
        assert links, "a populated region must have boundary links"
        for a, b in links:
            assert (a in inside) != (b in inside)
        # The intra-region link 1-4 stays up.
        assert [1, 4] not in links

    def test_outage_of_empty_region_rejected(self):
        # regions5 with a 3-server cluster leaves regions 3 and 4 empty.
        with pytest.raises(ConfigError):
            region_outage_links((1, 2, 3), "regions5", "ap-south")

    def test_inter_region_links_cross_only_those_regions(self):
        links = inter_region_links(FIVE, "regions3", "us-east", "eu-west")
        assert sorted(map(tuple, links)) == [(1, 2), (1, 5), (2, 4), (4, 5)]

    def test_inter_region_same_region_rejected(self):
        with pytest.raises(ConfigError):
            inter_region_links(FIVE, "regions3", 0, 0)


class TestGeoOps:
    def test_region_outage_op_is_a_valid_partition(self):
        op = region_outage_op(500.0, FIVE, "regions3", "eu-west",
                              heal_ms=400.0)
        assert op.kind == "partition"
        assert op.params["pattern"] == "region_outage"
        assert op.params["links"] == region_outage_links(
            FIVE, "regions3", "eu-west")

    def test_degradation_op_is_a_valid_delay_spike(self):
        op = inter_region_degradation_op(
            500.0, FIVE, "regions3", "us-east", "ap-northeast",
            extra_ms=80.0, duration_ms=600.0)
        assert op.kind == "delay_spike"
        assert op.params["links"] == inter_region_links(
            FIVE, "regions3", "us-east", "ap-northeast")


class TestGeoSchedules:
    def test_geo_omitted_when_unset_keeps_old_digests(self):
        schedule = ChaosSchedule(seed=1, protocol="omni", num_servers=3,
                                 duration_ms=1000.0)
        assert "geo" not in schedule.to_dict()

    def test_geo_round_trips_and_changes_digest(self):
        plain = generate_schedule(9, "omni", 3, duration_ms=3_000.0,
                                  num_ops=4)
        geo = generate_schedule(9, "omni", 3, duration_ms=3_000.0,
                                num_ops=4, geo="regions3")
        assert geo.geo == "regions3"
        assert geo.digest() != plain.digest()
        again = ChaosSchedule.from_json(geo.to_json())
        assert again == geo

    def test_geo_schedule_runs_safe_and_deterministic(self):
        ops = (region_outage_op(800.0, (1, 2, 3), "regions3", "eu-west",
                                heal_ms=600.0),)
        schedule = ChaosSchedule(seed=5, protocol="omni", num_servers=3,
                                 duration_ms=4_000.0, ops=ops,
                                 geo="regions3")
        a = run_schedule(schedule)
        b = run_schedule(schedule)
        assert a.ok, a.violation
        assert a.to_dict() == b.to_dict()

    def test_geo_environment_changes_the_run(self):
        base = ChaosSchedule(seed=5, protocol="omni", num_servers=3,
                             duration_ms=3_000.0)
        wan = ChaosSchedule(seed=5, protocol="omni", num_servers=3,
                            duration_ms=3_000.0, geo="regions3")
        fast = run_schedule(base)
        slow = run_schedule(wan)
        assert fast.ok and slow.ok
        # Tens of ms per hop instead of 0.1 must cost decided throughput.
        assert slow.decided_len < fast.decided_len
