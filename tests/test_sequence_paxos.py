"""Unit tests for Sequence Paxos (paper section 4, Figure 3).

A tiny shuttle delivers messages between hand-built replicas with full
control over ordering and connectivity, so every protocol path — prepare,
promise, accept-sync, pipelined accepts, stragglers, recovery — is testable
in isolation.
"""

from typing import Dict, Set

import pytest

from repro.errors import ConfigError, StoppedError
from repro.omni.ballot import BOTTOM, Ballot
from repro.omni.entry import Command, StopSign
from repro.omni.messages import (
    Accepted,
    AcceptDecide,
    AcceptSync,
    Decide,
    Prepare,
    PrepareReq,
    Promise,
    ProposalForward,
)
from repro.omni.sequence_paxos import (
    Phase,
    Role,
    SequencePaxos,
    SequencePaxosConfig,
)
from repro.omni.storage import InMemoryStorage


def make_sp(pid: int, n: int = 3, storage=None) -> SequencePaxos:
    peers = tuple(p for p in range(1, n + 1) if p != pid)
    return SequencePaxos(
        SequencePaxosConfig(pid=pid, peers=peers),
        storage if storage is not None else InMemoryStorage(),
    )


class Shuttle:
    """Deliver Sequence Paxos messages between replicas, FIFO per pair."""

    def __init__(self, nodes: Dict[int, SequencePaxos]):
        self.nodes = nodes
        self.down: Set[frozenset] = set()

    def cut(self, a: int, b: int) -> None:
        self.down.add(frozenset((a, b)))

    def deliver_all(self, max_rounds: int = 20) -> None:
        for _ in range(max_rounds):
            moved = False
            for pid, node in self.nodes.items():
                for dst, msg in node.take_outbox():
                    if frozenset((pid, dst)) in self.down:
                        continue
                    if dst in self.nodes:
                        self.nodes[dst].on_message(pid, msg)
                        moved = True
            if not moved:
                return

    def elect(self, pid: int, n: int = 1) -> Ballot:
        ballot = Ballot(n=n, priority=0, pid=pid)
        for node in self.nodes.values():
            node.handle_leader(ballot)
        self.deliver_all()
        return ballot


def cmd(i: int) -> Command:
    return Command(data=str(i).encode(), client_id=1, seq=i)


@pytest.fixture
def trio():
    nodes = {pid: make_sp(pid) for pid in (1, 2, 3)}
    return nodes, Shuttle(nodes)


class TestConfig:
    def test_rejects_self_in_peers(self):
        with pytest.raises(ConfigError):
            SequencePaxosConfig(pid=1, peers=(1, 2))

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigError):
            SequencePaxosConfig(pid=1, peers=(2, 2))

    def test_majority(self):
        assert SequencePaxosConfig(pid=1, peers=(2, 3)).majority == 2
        assert SequencePaxosConfig(pid=1, peers=()).majority == 1


class TestLeaderTransition:
    def test_leader_event_starts_prepare(self, trio):
        nodes, net = trio
        nodes[1].handle_leader(Ballot(1, 0, 1))
        assert nodes[1].is_leader
        out = nodes[1].take_outbox()
        assert {dst for dst, _ in out} == {2, 3}
        assert all(isinstance(m, Prepare) for _, m in out)

    def test_foreign_leader_event_sets_hint(self, trio):
        nodes, _ = trio
        nodes[2].handle_leader(Ballot(1, 0, 1))
        assert not nodes[2].is_leader
        assert nodes[2].leader_pid == 1

    def test_lower_ballot_cannot_take_over(self, trio):
        nodes, net = trio
        net.elect(3, n=5)
        nodes[1].handle_leader(Ballot(2, 0, 1))
        assert not nodes[1].is_leader  # 2 < promised 5

    def test_leader_steps_down_on_higher_round(self, trio):
        nodes, net = trio
        net.elect(1, n=1)
        net.elect(2, n=2)
        assert not nodes[1].is_leader
        assert nodes[2].is_leader

    def test_single_server_config_leads_instantly(self):
        solo = make_sp(1, n=1)
        solo.handle_leader(Ballot(1, 0, 1))
        assert solo.is_leader
        assert solo.phase is Phase.ACCEPT
        solo.propose(cmd(0))
        assert solo.decided_idx == 1


class TestReplication:
    def test_propose_decides_everywhere(self, trio):
        nodes, net = trio
        net.elect(1)
        for i in range(5):
            nodes[1].propose(cmd(i))
        net.deliver_all()
        for node in nodes.values():
            assert node.decided_idx == 5
            assert [e.seq for _i, e in node.take_decided()] == list(range(5))

    def test_batched_propose_single_message(self, trio):
        nodes, net = trio
        net.elect(1)
        nodes[1].propose_batch([cmd(0), cmd(1), cmd(2)])
        out = nodes[1].take_outbox()
        accept_msgs = [m for _d, m in out if isinstance(m, AcceptDecide)]
        assert len(accept_msgs) == 2  # one per follower
        assert len(accept_msgs[0].entries) == 3

    def test_follower_forwards_proposals(self, trio):
        nodes, net = trio
        net.elect(1)
        nodes[2].propose(cmd(9))
        net.deliver_all()
        assert nodes[1].decided_idx == 1

    def test_proposals_buffered_until_leader_known(self, trio):
        nodes, net = trio
        nodes[2].propose(cmd(9))  # no leader yet: buffered
        assert nodes[2].take_outbox() == []
        net.elect(1)
        net.deliver_all()
        assert nodes[1].decided_idx == 1

    def test_decide_is_monotone(self, trio):
        nodes, net = trio
        net.elect(1)
        for i in range(3):
            nodes[1].propose(cmd(i))
        net.deliver_all()
        first = nodes[2].decided_idx
        nodes[2].on_message(1, Decide(n=nodes[2].current_round, decided_idx=1))
        assert nodes[2].decided_idx == first  # lower Decide ignored

    def test_minority_cannot_decide(self, trio):
        nodes, net = trio
        net.elect(1)
        net.cut(1, 2)
        net.cut(1, 3)
        nodes[1].propose(cmd(0))
        net.deliver_all()
        assert nodes[1].decided_idx == 0


class TestPrepareSynchronization:
    def prepare_divergence(self):
        """Build: leader 1 decided [0,1] everywhere; then 1 extends only
        itself with [2, 3] (unchosen); 3 is behind."""
        nodes = {pid: make_sp(pid) for pid in (1, 2, 3)}
        net = Shuttle(nodes)
        net.elect(1)
        nodes[1].propose(cmd(0))
        nodes[1].propose(cmd(1))
        net.deliver_all()
        net.cut(1, 2)
        net.cut(1, 3)
        nodes[1].propose(cmd(2))
        nodes[1].propose(cmd(3))
        net.deliver_all()
        return nodes, net

    def test_trailing_leader_catches_up_in_prepare(self):
        """The constrained-election essence: a stale server takes over and
        adopts the most updated log before proposing."""
        nodes, net = self.prepare_divergence()
        assert nodes[1].log_len == 4
        # Now 3 (log length 2) becomes leader of a higher round with full
        # connectivity restored.
        net.down.clear()
        net.elect(3, n=2)
        assert nodes[3].is_leader
        # 3 must have adopted 1's longer accepted log (same acc round).
        assert nodes[3].log_len == 4
        nodes[3].propose(cmd(4))
        net.deliver_all()
        assert all(node.decided_idx == 5 for node in nodes.values())

    def test_unchosen_entries_survive_via_max_promise(self):
        """Entries accepted only at the old leader are not lost if that
        leader's log is the max among the new majority."""
        nodes, net = self.prepare_divergence()
        net.down.clear()
        net.cut(2, 3)  # force the promise majority to be {1, 2}
        net.elect(2, n=2)
        net.deliver_all()
        assert nodes[2].log_len == 4  # adopted 1's suffix [2, 3]

    def test_unchosen_entries_overwritten_when_leader_unreachable(self):
        """If the max log is unreachable, its unchosen tail may be replaced
        — allowed by Sequence Consensus (only *chosen* entries persist)."""
        nodes, net = self.prepare_divergence()
        # 1 remains cut off; 3 leads with {2, 3}.
        net.elect(3, n=2)
        assert nodes[3].is_leader
        assert nodes[3].log_len == 2
        nodes[3].propose(cmd(10))
        net.deliver_all()
        assert nodes[2].decided_idx == 3
        # Now 1 rejoins and promises the new leader: its conflicting
        # suffix [2, 3] must be overwritten via AcceptSync.
        net.down.clear()
        nodes[1].on_message(3, Prepare(
            n=Ballot(2, 0, 3),
            acc_rnd=nodes[3].storage.get_accepted_round(),
            log_idx=nodes[3].log_len,
            decided_idx=nodes[3].decided_idx,
        ))
        net.deliver_all()
        log = nodes[1].storage.get_entries(0, 10)
        assert [e.seq for e in log] == [0, 1, 10]

    def test_late_promise_gets_accept_sync(self, trio):
        nodes, net = trio
        net.cut(1, 3)
        net.elect(1)  # 3 unreachable: majority is {1, 2}
        nodes[1].propose(cmd(0))
        net.deliver_all()
        assert nodes[3].decided_idx == 0
        # Link heals: 3 asks for a Prepare and catches up (session drop).
        net.down.clear()
        nodes[3].reconnected(1)
        net.deliver_all()
        assert nodes[3].decided_idx == 1

    def test_promise_carries_leader_missing_suffix(self):
        follower = make_sp(2)
        follower.storage.append_entries([cmd(0), cmd(1), cmd(2)])
        follower.storage.set_accepted_round(Ballot(1, 0, 1))
        follower.storage.set_promise(Ballot(1, 0, 1))
        follower.on_message(3, Prepare(
            n=Ballot(2, 0, 3), acc_rnd=BOTTOM, log_idx=0, decided_idx=0,
        ))
        out = follower.take_outbox()
        ((dst, promise),) = out
        assert dst == 3
        assert isinstance(promise, Promise)
        assert len(promise.suffix) == 3  # everything the leader lacks

    def test_equal_acc_round_sends_tail_only(self):
        follower = make_sp(2)
        follower.storage.append_entries([cmd(0), cmd(1), cmd(2)])
        follower.storage.set_accepted_round(Ballot(1, 0, 1))
        follower.on_message(1, Prepare(
            n=Ballot(2, 0, 1), acc_rnd=Ballot(1, 0, 1),
            log_idx=1, decided_idx=1,
        ))
        ((_dst, promise),) = follower.take_outbox()
        assert [e.seq for e in promise.suffix] == [1, 2]

    def test_behind_follower_sends_empty_suffix(self):
        follower = make_sp(2)
        follower.on_message(1, Prepare(
            n=Ballot(2, 0, 1), acc_rnd=Ballot(1, 0, 1),
            log_idx=5, decided_idx=3,
        ))
        ((_dst, promise),) = follower.take_outbox()
        assert promise.suffix == ()


class TestObsoleteMessages:
    def test_stale_prepare_ignored_silently(self, trio):
        nodes, net = trio
        net.elect(2, n=5)
        nodes[1].on_message(3, Prepare(n=Ballot(1, 0, 3), acc_rnd=BOTTOM,
                                       log_idx=0, decided_idx=0))
        # No NACK: silence avoids the gossip that livelocks other protocols.
        assert nodes[1].take_outbox() == []

    def test_stale_accept_decide_ignored(self, trio):
        nodes, net = trio
        net.elect(2, n=5)
        before = nodes[1].log_len
        nodes[1].on_message(3, AcceptDecide(n=Ballot(1, 0, 3),
                                            entries=(cmd(0),), decided_idx=0))
        assert nodes[1].log_len == before

    def test_stale_accepted_ignored_by_leader(self, trio):
        nodes, net = trio
        net.elect(1, n=2)
        nodes[1].on_message(2, Accepted(n=Ballot(1, 0, 1), log_idx=99))
        assert nodes[1].decided_idx == 0

    def test_duplicate_promises_harmless(self, trio):
        nodes, net = trio
        net.elect(1)
        round_n = nodes[1].current_round
        promise = Promise(n=round_n, acc_rnd=BOTTOM, suffix=(),
                          log_idx=0, decided_idx=0)
        nodes[1].on_message(2, promise)
        nodes[1].on_message(2, promise)
        nodes[1].propose(cmd(0))
        net.deliver_all()
        assert nodes[1].decided_idx == 1


class TestRecovery:
    def test_prepare_req_answered_by_leader(self, trio):
        nodes, net = trio
        net.elect(1)
        nodes[1].on_message(3, PrepareReq())
        out = nodes[1].take_outbox()
        assert any(isinstance(m, Prepare) and d == 3 for d, m in out)

    def test_prepare_req_ignored_by_follower(self, trio):
        nodes, net = trio
        net.elect(1)
        nodes[2].on_message(3, PrepareReq())
        assert nodes[2].take_outbox() == []

    def test_fail_recover_rejoins_and_catches_up(self, trio):
        nodes, net = trio
        net.elect(1)
        nodes[1].propose(cmd(0))
        net.deliver_all()
        storage = nodes[2].storage
        nodes[2] = make_sp(2, storage=storage)  # crash: rebuild volatile
        nodes[2].fail_recover()
        assert nodes[2].phase is Phase.RECOVER
        net.deliver_all()
        nodes[1].propose(cmd(1))
        net.deliver_all()
        assert nodes[2].decided_idx == 2

    def test_recovering_replica_ignores_non_prepare(self):
        replica = make_sp(2)
        replica.fail_recover()
        replica.take_outbox()
        replica.on_message(1, AcceptDecide(n=Ballot(1, 0, 1),
                                           entries=(cmd(0),), decided_idx=0))
        assert replica.log_len == 0

    def test_leader_reconnect_sends_prepare(self, trio):
        nodes, net = trio
        net.elect(1)
        nodes[1].reconnected(3)
        out = nodes[1].take_outbox()
        assert any(isinstance(m, Prepare) and d == 3 for d, m in out)


class TestStopSign:
    def test_reconfiguration_appends_stopsign(self, trio):
        nodes, net = trio
        net.elect(1)
        nodes[1].propose_reconfiguration((2, 3, 4))
        net.deliver_all()
        ss = nodes[1].stopsign_decided()
        assert ss is not None
        assert ss.servers == (2, 3, 4)
        assert ss.config_id == 1

    def test_stopped_rejects_proposals(self, trio):
        nodes, net = trio
        net.elect(1)
        nodes[1].propose_reconfiguration((2, 3, 4))
        with pytest.raises(StoppedError):
            nodes[1].propose(cmd(0))

    def test_stopsign_replicates_to_followers(self, trio):
        nodes, net = trio
        net.elect(1)
        nodes[1].propose_reconfiguration((1, 2))
        net.deliver_all()
        for node in nodes.values():
            assert node.stopped()
            assert node.stopsign_decided() is not None

    def test_invalid_new_config_rejected(self, trio):
        nodes, net = trio
        net.elect(1)
        with pytest.raises(ConfigError):
            nodes[1].propose_reconfiguration(())
        with pytest.raises(ConfigError):
            nodes[1].propose_reconfiguration((2, 2))

    def test_forwarded_proposals_dropped_when_stopped(self, trio):
        nodes, net = trio
        net.elect(1)
        nodes[1].propose_reconfiguration((1, 2))
        net.deliver_all()
        rejected_before = nodes[1].stats.proposals_rejected
        nodes[1].on_message(2, ProposalForward(entries=(cmd(5),)))
        assert nodes[1].stats.proposals_rejected == rejected_before + 1

    def test_read_decided_serves_prefix(self, trio):
        nodes, net = trio
        net.elect(1)
        for i in range(4):
            nodes[1].propose(cmd(i))
        net.deliver_all()
        assert [e.seq for e in nodes[2].read_decided(1)] == [1, 2, 3]
