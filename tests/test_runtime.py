"""Tests for the asyncio runtime: framing codec and live TCP clusters."""

import asyncio

import pytest

from repro.errors import TransportError
from repro.omni.ballot import Ballot
from repro.omni.entry import Command
from repro.omni.messages import Accepted, Envelope, COMPONENT_SP
from repro.omni.server import ClusterConfig, OmniPaxosConfig, OmniPaxosServer
from repro.runtime.codec import FrameDecoder, encode_frame
from repro.runtime.node import RuntimeNode
from repro.runtime.transport import PeerAddress, TcpMesh

BASE_PORT = 42600


class TestCodec:
    def test_roundtrip(self):
        frame = encode_frame(1, {"hello": "world"})
        decoder = FrameDecoder()
        assert decoder.feed(frame) == [(1, {"hello": "world"})]

    def test_roundtrip_protocol_message(self):
        msg = Envelope(0, COMPONENT_SP, Accepted(Ballot(1, 0, 2), 7))
        decoder = FrameDecoder()
        ((src, decoded),) = decoder.feed(encode_frame(3, msg))
        assert src == 3
        assert decoded == msg

    def test_partial_feeds(self):
        frame = encode_frame(1, "x" * 1000)
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(frame), 7):
            out.extend(decoder.feed(frame[i:i + 7]))
        assert out == [(1, "x" * 1000)]

    def test_multiple_frames_one_feed(self):
        data = encode_frame(1, "a") + encode_frame(2, "b")
        decoder = FrameDecoder()
        assert decoder.feed(data) == [(1, "a"), (2, "b")]

    def test_empty_feed(self):
        assert FrameDecoder().feed(b"") == []

    def test_oversized_length_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(TransportError):
            decoder.feed(b"\xff\xff\xff\xff")

    def test_oversized_length_resets_decoder(self):
        """A corrupt length header must not poison the decoder: the buffer
        is discarded along with the error, so the same decoder object can
        resume on a fresh stream (e.g. after a reconnect) instead of
        re-raising on the stale prefix forever."""
        decoder = FrameDecoder()
        with pytest.raises(TransportError):
            decoder.feed(b"\xff\xff\xff\xff" + b"trailing garbage")
        assert decoder.feed(encode_frame(1, "ok")) == [(1, "ok")]

    def test_oversized_header_torn_across_reads(self):
        """The corrupt header may itself arrive split across reads: no
        error until it is complete, then the error fires once and the
        decoder is clean again."""
        decoder = FrameDecoder()
        assert decoder.feed(b"\xff\xff") == []
        with pytest.raises(TransportError):
            decoder.feed(b"\xff\xff")
        assert decoder.feed(encode_frame(2, "after")) == [(2, "after")]


def _addr(pid, offset=0):
    return PeerAddress(pid, "127.0.0.1", BASE_PORT + offset + pid)


class TestTransport:
    def test_listen_pid_must_match(self):
        with pytest.raises(TransportError):
            TcpMesh(pid=1, listen=_addr(2), peers={}, on_message=lambda s, m: None)

    def test_two_node_exchange(self):
        async def scenario():
            inbox = []
            a = TcpMesh(1, _addr(1, 10), {2: _addr(2, 10)},
                        on_message=lambda s, m: inbox.append((s, m)))
            b = TcpMesh(2, _addr(2, 10), {1: _addr(1, 10)},
                        on_message=lambda s, m: inbox.append((s, m)))
            await a.start()
            await b.start()
            await asyncio.sleep(0.3)
            a.send(2, "ping")
            b.send(1, "pong")
            await asyncio.sleep(0.3)
            await a.close()
            await b.close()
            return inbox

        inbox = asyncio.run(scenario())
        assert (1, "ping") in inbox
        assert (2, "pong") in inbox

    def test_send_to_unconnected_peer_dropped(self):
        async def scenario():
            a = TcpMesh(1, _addr(1, 20), {2: _addr(2, 20)},
                        on_message=lambda s, m: None)
            await a.start()
            a.send(2, "lost")  # peer never started: silent drop
            await a.close()

        asyncio.run(scenario())  # must not raise


class TestRuntimeCluster:
    def _build(self, offset):
        cc = ClusterConfig(0, (1, 2, 3))
        addrs = {p: _addr(p, offset) for p in cc.servers}
        nodes = {}
        for p in cc.servers:
            server = OmniPaxosServer(OmniPaxosConfig(
                pid=p, cluster=cc, hb_period_ms=40.0))
            nodes[p] = RuntimeNode(
                server, addrs[p],
                {q: a for q, a in addrs.items() if q != p},
                tick_ms=8.0,
            )
        return nodes

    def test_live_cluster_replicates(self):
        async def scenario():
            nodes = self._build(30)
            for node in nodes.values():
                await node.start()
            try:
                leader = None
                for _ in range(100):
                    await asyncio.sleep(0.05)
                    leaders = [p for p, n in nodes.items() if n.is_leader]
                    if leaders:
                        leader = leaders[0]
                        break
                assert leader is not None, "no leader over TCP"
                for i in range(10):
                    nodes[leader].propose(Command(b"x", client_id=1, seq=i))
                for _ in range(100):
                    await asyncio.sleep(0.05)
                    lens = [n.replica.global_log_len for n in nodes.values()]
                    if all(l == 10 for l in lens):
                        break
                assert all(n.replica.global_log_len == 10
                           for n in nodes.values())
            finally:
                for node in nodes.values():
                    await node.stop()

        asyncio.run(scenario())

    def test_decided_callback(self):
        async def scenario():
            cc = ClusterConfig(0, (1, 2, 3))
            addrs = {p: _addr(p, 40) for p in cc.servers}
            decided = []
            nodes = {}
            for p in cc.servers:
                server = OmniPaxosServer(OmniPaxosConfig(
                    pid=p, cluster=cc, hb_period_ms=40.0))
                handler = (lambda i, e: decided.append((i, e))) if p == 1 else None
                nodes[p] = RuntimeNode(
                    server, addrs[p],
                    {q: a for q, a in addrs.items() if q != p},
                    tick_ms=8.0, on_decided=handler,
                )
            for node in nodes.values():
                await node.start()
            try:
                leader = None
                for _ in range(100):
                    await asyncio.sleep(0.05)
                    leaders = [p for p, n in nodes.items() if n.is_leader]
                    if leaders:
                        leader = leaders[0]
                        break
                assert leader is not None
                nodes[leader].propose(Command(b"y", client_id=1, seq=0))
                for _ in range(60):
                    await asyncio.sleep(0.05)
                    if decided:
                        break
                assert decided and decided[0][0] == 0
            finally:
                for node in nodes.values():
                    await node.stop()

        asyncio.run(scenario())
