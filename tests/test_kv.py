"""Tests for the replicated key-value store substrate."""

import pytest

from repro.kv.store import (
    KVCommand,
    KVError,
    KVStateMachine,
    ReplicatedKVStore,
    decode_command,
    encode_command,
)
from repro.omni.entry import Command

from tests.conftest import build_omni_cluster, run_until_leader


class TestCommandValidation:
    def test_unknown_op(self):
        with pytest.raises(KVError):
            KVCommand("frobnicate", "k")

    def test_put_needs_value(self):
        with pytest.raises(KVError):
            KVCommand("put", "k")

    def test_cas_needs_value(self):
        with pytest.raises(KVError):
            KVCommand("cas", "k", expected="old")


class TestCodec:
    def test_roundtrip_put(self):
        cmd = KVCommand("put", "color", "blue")
        assert decode_command(encode_command(cmd)) == cmd

    def test_roundtrip_cas(self):
        cmd = KVCommand("cas", "k", value="new", expected="old")
        assert decode_command(encode_command(cmd)) == cmd

    def test_session_fields_preserved(self):
        entry = encode_command(KVCommand("get", "k"), client_id=7, seq=3)
        assert (entry.client_id, entry.seq) == (7, 3)

    def test_malformed_payload_raises(self):
        with pytest.raises(KVError):
            decode_command(Command(data=b"not json"))

    def test_missing_field_raises(self):
        with pytest.raises(KVError):
            decode_command(Command(data=b'{"op": "put"}'))


class TestStateMachine:
    def apply(self, machine, cmd, idx=0, client=0, seq=0):
        return machine.apply(encode_command(cmd, client, seq), idx)

    def test_put_get(self):
        m = KVStateMachine()
        self.apply(m, KVCommand("put", "a", "1"))
        result = self.apply(m, KVCommand("get", "a"), idx=1)
        assert result.value == "1"
        assert result.ok

    def test_get_missing(self):
        m = KVStateMachine()
        result = self.apply(m, KVCommand("get", "nope"))
        assert result.value is None
        assert not result.ok

    def test_delete(self):
        m = KVStateMachine()
        self.apply(m, KVCommand("put", "a", "1"))
        result = self.apply(m, KVCommand("delete", "a"), idx=1)
        assert result.ok
        assert m.lookup("a") is None

    def test_delete_missing_not_ok(self):
        m = KVStateMachine()
        result = self.apply(m, KVCommand("delete", "ghost"))
        assert not result.ok

    def test_cas_success(self):
        m = KVStateMachine()
        self.apply(m, KVCommand("put", "a", "1"))
        result = self.apply(m, KVCommand("cas", "a", value="2", expected="1"),
                            idx=1)
        assert result.ok
        assert m.lookup("a") == "2"

    def test_cas_failure_returns_current(self):
        m = KVStateMachine()
        self.apply(m, KVCommand("put", "a", "1"))
        result = self.apply(m, KVCommand("cas", "a", value="9", expected="7"),
                            idx=1)
        assert not result.ok
        assert result.value == "1"
        assert m.lookup("a") == "1"

    def test_cas_on_missing_key(self):
        m = KVStateMachine()
        result = self.apply(m, KVCommand("cas", "a", value="1", expected=None))
        assert result.ok  # expected None matches absent key
        assert m.lookup("a") == "1"

    def test_session_dedup(self):
        m = KVStateMachine()
        self.apply(m, KVCommand("put", "a", "1"), client=1, seq=0)
        dup = self.apply(m, KVCommand("put", "a", "2"), client=1, seq=0)
        assert dup is None
        assert m.lookup("a") == "1"

    def test_sessions_independent(self):
        m = KVStateMachine()
        self.apply(m, KVCommand("put", "a", "1"), client=1, seq=0)
        result = self.apply(m, KVCommand("put", "a", "2"), client=2, seq=0)
        assert result is not None
        assert m.lookup("a") == "2"

    def test_client_zero_never_deduped(self):
        m = KVStateMachine()
        self.apply(m, KVCommand("put", "a", "1"), client=0, seq=0)
        result = self.apply(m, KVCommand("put", "a", "2"), client=0, seq=0)
        assert result is not None

    def test_snapshot_is_copy(self):
        m = KVStateMachine()
        self.apply(m, KVCommand("put", "a", "1"))
        snap = m.snapshot()
        snap["a"] = "tampered"
        assert m.lookup("a") == "1"

    def test_determinism_across_replicas(self):
        ops = [
            KVCommand("put", "x", "1"),
            KVCommand("cas", "x", value="2", expected="1"),
            KVCommand("put", "y", "5"),
            KVCommand("delete", "x"),
        ]
        machines = [KVStateMachine() for _ in range(3)]
        for m in machines:
            for i, op in enumerate(ops):
                m.apply(encode_command(op, 1, i), i)
        snaps = [m.snapshot() for m in machines]
        assert snaps[0] == snaps[1] == snaps[2]


class TestReplicatedStore:
    def _wire(self, sim, servers):
        """Attach one store per server, fed by the cluster's observer."""
        stores = {p: ReplicatedKVStore(servers[p], client_id=p)
                  for p in servers}
        sim.on_decided(lambda pid, idx, e, now: stores[pid].ingest(idx, e))
        return stores

    def test_submit_and_result_through_cluster(self):
        sim, servers = build_omni_cluster(3)
        leader = run_until_leader(sim)
        stores = self._wire(sim, servers)
        seq = stores[leader].submit(KVCommand("put", "k", "v"), sim.now)
        sim.run_for(100)
        assert stores[leader].result(seq).ok
        assert all(store.lookup("k") == "v" for store in stores.values())

    def test_all_replicas_apply_same_state(self):
        sim, servers = build_omni_cluster(3)
        leader = run_until_leader(sim)
        stores = self._wire(sim, servers)
        for i in range(10):
            stores[leader].submit(KVCommand("put", f"k{i}", str(i)), sim.now)
            sim.run_for(20)
        sim.run_for(200)
        snaps = [store.machine.snapshot() for store in stores.values()]
        assert snaps[0] == snaps[1] == snaps[2]
        assert len(snaps[0]) == 10

    def test_stopsign_skipped_by_store(self):
        sim, servers = build_omni_cluster(3, joiners=(4,))
        leader = run_until_leader(sim)
        stores = self._wire(sim, servers)
        stores[leader].submit(KVCommand("put", "k", "v"), sim.now)
        sim.run_for(100)
        sim.reconfigure(leader, (1, 2, 3, 4))
        sim.run_for(2000)  # must not crash on the StopSign entry
        assert stores[leader].lookup("k") == "v"
