"""Gray-aware graceful handover: the fail-slow acceptance suite.

The tentpole claims under test (ROADMAP item 5, reaction half):

- a 100×-slowed leader **abdicates within a few heartbeat rounds** when
  ``gray_aware`` is on — and *never* under default heartbeat-based
  election, which is exactly the gray-failure blind spot the fail-slow
  literature documents,
- gray-aware mode recovers throughput measurably faster than default
  under the same fail-slow leader,
- the reaction is strictly config-gated: default builds carry no monitor
  and behave bit-identically to before,
- the client's proposal timeout is a *live* quantity that stretches when
  a ``slow_link`` fault inflates latencies mid-run (WAN regression).
"""

import json

import pytest

from repro.errors import ConfigError
from repro.obs.events import PeerDegraded, PeerRecovered
from repro.obs.exporters import MemorySink
from repro.obs.health import SelfDegradationMonitor
from repro.obs.registry import MetricsRegistry
from repro.sim.failslow import (
    COMPARISON_CELLS,
    FailSlowResult,
    run_failslow_scenario,
)
from repro.sim.harness import ExperimentConfig, build_experiment
from repro.tools import failslow as failslow_cli

ET = 100.0


def _cell(protocol, gray_aware, **kw):
    kw.setdefault("election_timeout_ms", ET)
    kw.setdefault("slow_duration_ms", 2_000.0)
    kw.setdefault("warmup_ms", 1_000.0)
    kw.setdefault("cooldown_ms", 500.0)
    kw.setdefault("seed", 1)
    return run_failslow_scenario(protocol, gray_aware=gray_aware, **kw)


class TestSelfDegradationMonitor:
    def _bound(self, **kw):
        monitor = SelfDegradationMonitor(pid=1, **kw)
        registry = MetricsRegistry()
        registry.enable_tracing()
        sink = MemorySink()
        registry.add_sink(sink)
        monitor.bind(registry)
        return monitor, sink

    def test_nominal_cadence_stays_healthy(self):
        monitor, sink = self._bound(expected_interval_ms=50.0)
        for _ in range(20):
            monitor.observe_interval(50.0)
        assert not monitor.degraded
        assert monitor.score == pytest.approx(1.0)
        assert not sink.records

    def test_slow_cadence_trips_and_recovers_with_events(self):
        monitor, sink = self._bound(expected_interval_ms=50.0)
        for _ in range(10):
            monitor.observe_interval(5_000.0)  # 100x late
        assert monitor.degraded
        assert monitor.score > 3.0
        for _ in range(30):
            monitor.observe_interval(50.0)
        assert not monitor.degraded
        degraded = [r.event for r in sink.records
                    if isinstance(r.event, PeerDegraded)]
        recovered = [r.event for r in sink.records
                     if isinstance(r.event, PeerRecovered)]
        assert len(degraded) == 1 and len(recovered) == 1
        # Self-verdicts are self-loops in the health graph.
        assert degraded[0].peer == degraded[0].pid == 1
        assert degraded[0].reason == "self_interval"

    def test_self_baseline_mode_learns_then_trips(self):
        monitor, _ = self._bound(expected_interval_ms=None)
        for _ in range(10):
            monitor.observe_interval(40.0)
        assert monitor.baseline == pytest.approx(40.0)
        assert not monitor.degraded
        for _ in range(10):
            monitor.observe_interval(4_000.0)
        assert monitor.degraded
        # The healthy baseline survives the slow spell (min-EWMA).
        assert monitor.baseline == pytest.approx(40.0)

    def test_observe_fire_measures_gaps(self):
        monitor, _ = self._bound(expected_interval_ms=50.0)
        now = 0.0
        for _ in range(10):
            monitor.observe_fire(now)
            now += 50.0
        assert monitor.interval_ewma == pytest.approx(50.0)
        snap = monitor.snapshot()
        assert snap["degraded"] is False
        assert snap["interval_ewma_ms"] == pytest.approx(50.0)


class TestGrayAwareGating:
    def test_default_builds_carry_no_monitor(self):
        exp = build_experiment(ExperimentConfig(num_servers=3))
        assert exp.cluster.replica(1).status()["self_health"] is None

    def test_gray_aware_omni_exposes_self_health(self):
        exp = build_experiment(
            ExperimentConfig(num_servers=3, gray_aware=True))
        health = exp.cluster.replica(1).status()["self_health"]
        assert health is not None
        assert health["degraded"] is False

    def test_gray_aware_raft_exposes_self_health(self):
        exp = build_experiment(
            ExperimentConfig(protocol="raft_pvcq", num_servers=3,
                             gray_aware=True))
        assert exp.cluster.replica(1).status()["self_health"] is not None

    def test_rejects_silly_slow_factor(self):
        with pytest.raises(ConfigError):
            run_failslow_scenario("omni", slow_factor=0.5)


class TestGracefulHandover:
    """The acceptance criterion: abdicate within K rounds, or never."""

    @pytest.mark.parametrize("protocol", ["omni", "raft_pvcq"])
    def test_default_never_displaces_a_slow_leader(self, protocol):
        result = _cell(protocol, gray_aware=False)
        assert result.handover_ms is None
        assert not result.abdicated

    @pytest.mark.parametrize("protocol", ["omni", "raft_pvcq"])
    def test_gray_aware_abdicates_within_k_rounds(self, protocol):
        result = _cell(protocol, gray_aware=True)
        assert result.abdicated
        assert result.handover_ms is not None
        # Onset detection needs a few slowed firings (each stretched to
        # ~factor x the period), so K is in the tens of rounds — the
        # point is it is bounded, vs never for the default.
        assert result.handover_ms <= 20.0 * ET

    def test_gray_aware_recovers_throughput_faster(self):
        slow = _cell("omni", gray_aware=False)
        aware = _cell("omni", gray_aware=True)
        assert aware.decided_during_slow > slow.decided_during_slow
        assert aware.throughput_dip < slow.throughput_dip

    def test_scenario_is_deterministic(self):
        assert _cell("omni", gray_aware=True).to_dict() == \
            _cell("omni", gray_aware=True).to_dict()

    def test_runs_inside_a_geo_environment(self):
        result = _cell("omni", gray_aware=True, geo="regions3",
                       election_timeout_ms=800.0,
                       slow_duration_ms=16_000.0, warmup_ms=8_000.0,
                       cooldown_ms=2_000.0)
        assert result.abdicated

    def test_result_dict_is_json_serializable(self):
        result = _cell("raft_pvcq", gray_aware=True)
        assert isinstance(result, FailSlowResult)
        json.dumps(result.to_dict())


class TestLiveClientTimeout:
    """Satellite: the proposal timeout stretches with mid-run slowness."""

    def test_timeout_tracks_inflated_latency(self):
        exp = build_experiment(ExperimentConfig(num_servers=3))
        client = exp.make_client(concurrent_proposals=2)
        before = client.current_timeout_ms
        # A slow_link-style directed inflation lands mid-run.
        exp.network.set_latency_directed(1, 2, 500.0)
        after = client.current_timeout_ms
        assert after > before
        assert after >= 8.0 * 500.0
        # And relaxes again once the fault reverts.
        exp.network.clear_latency_directed(1, 2)
        assert client.current_timeout_ms == before

    def test_explicit_timeout_stays_fixed(self):
        exp = build_experiment(ExperimentConfig(num_servers=3))
        client = exp.make_client(concurrent_proposals=2,
                                 proposal_timeout_ms=1234.0)
        exp.network.set_latency_directed(1, 2, 500.0)
        assert client.current_timeout_ms == 1234.0


class TestFailslowCli:
    def test_single_cell_json(self, capsys):
        rc = failslow_cli.main([
            "--protocol", "omni", "--gray-aware", "--seeds", "1",
            "--duration-ms", "2000", "--json",
        ])
        assert rc == 0
        lines = [json.loads(line) for line in
                 capsys.readouterr().out.strip().splitlines()]
        assert len(lines) == 1
        assert lines[0]["protocol"] == "omni"
        assert lines[0]["gray_aware"] is True
        assert lines[0]["abdicated"] is True

    def test_comparison_grid_verdict(self, capsys):
        rc = failslow_cli.main(["--seeds", "1", "--duration-ms", "2000"])
        out = capsys.readouterr().out
        assert rc == 0
        for protocol, gray in COMPARISON_CELLS:
            assert failslow_cli._cell_label(protocol, gray) in out
        assert "never" in out        # the default cells held on
        assert "verdict" in out
