"""Tests for the experiment harness: config validation, protocol factory,
WAN latency map, batch derivation."""

import pytest

from repro.errors import ConfigError
from repro.baselines.multipaxos import MultiPaxosReplica
from repro.baselines.raft import RaftReplica
from repro.baselines.vr import VRReplica
from repro.omni.server import OmniPaxosServer
from repro.sim.harness import (
    PROTOCOLS,
    ExperimentConfig,
    build_experiment,
    derive_max_batch,
    make_replica,
    wan_latency_map,
)


class TestConfig:
    def test_rejects_unknown_protocol(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(protocol="zab")

    def test_rejects_empty_cluster(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(num_servers=0)

    def test_servers_enumerated(self):
        assert ExperimentConfig(num_servers=3).servers == (1, 2, 3)

    def test_tick_derived_from_timeout(self):
        assert ExperimentConfig(election_timeout_ms=100).effective_tick_ms == 10
        assert ExperimentConfig(election_timeout_ms=5).effective_tick_ms == 1
        assert ExperimentConfig(election_timeout_ms=50_000).effective_tick_ms == 50


class TestBatchDerivation:
    def test_infinite_egress_defaults(self):
        assert derive_max_batch(None, 100) == 4096

    def test_scales_with_egress_and_timeout(self):
        small = derive_max_batch(100.0, 100.0)
        large = derive_max_batch(1000.0, 100.0)
        assert large > small

    def test_bounded(self):
        assert derive_max_batch(1e9, 1e9) == 4096
        assert derive_max_batch(0.001, 1.0) == 16

    def test_sized_from_sample_entry_wire_size(self):
        """The bytes-per-entry divisor comes from the codec's sizing of a
        sample entry, not a hard-coded constant: a payload 10x the no-op's
        shrinks the derived batch accordingly."""
        from repro.omni.entry import Command

        noop = Command(data=bytes(8))        # 24 wire bytes
        big = Command(data=bytes(8 * 30))    # 256 wire bytes
        assert derive_max_batch(100.0, 100.0, noop) == \
            derive_max_batch(100.0, 100.0)
        small = derive_max_batch(100.0, 100.0, big)
        assert small < derive_max_batch(100.0, 100.0, noop)
        assert small >= 16

    def test_sample_entry_flows_through_config(self):
        from repro.omni.entry import Command

        base = ExperimentConfig(egress_bytes_per_ms=100.0,
                                election_timeout_ms=100.0)
        big = ExperimentConfig(egress_bytes_per_ms=100.0,
                               election_timeout_ms=100.0,
                               batch_sample_entry=Command(data=bytes(1000)))
        assert big.effective_max_batch < base.effective_max_batch


class TestFactory:
    @pytest.mark.parametrize("protocol,cls", [
        ("omni", OmniPaxosServer),
        ("raft", RaftReplica),
        ("raft_pvcq", RaftReplica),
        ("multipaxos", MultiPaxosReplica),
        ("vr", VRReplica),
    ])
    def test_builds_right_type(self, protocol, cls):
        cfg = ExperimentConfig(protocol=protocol, num_servers=3)
        replica = make_replica(cfg, 1)
        assert isinstance(replica, cls)
        assert replica.pid == 1

    def test_pvcq_flags_set(self):
        cfg = ExperimentConfig(protocol="raft_pvcq", num_servers=3)
        replica = make_replica(cfg, 1)
        assert replica._config.prevote
        assert replica._config.check_quorum

    def test_plain_raft_flags_clear(self):
        cfg = ExperimentConfig(protocol="raft", num_servers=3)
        replica = make_replica(cfg, 1)
        assert not replica._config.prevote

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_experiment_elects_and_replicates(self, protocol):
        cfg = ExperimentConfig(protocol=protocol, num_servers=3,
                               election_timeout_ms=100, initial_leader=1,
                               seed=3)
        exp = build_experiment(cfg)
        client = exp.make_client(concurrent_proposals=4)
        exp.cluster.run_for(3_000)
        assert client.decided_count > 0, protocol


class TestWanLatency:
    def test_leader_links_match_paper_rtts(self):
        servers = (1, 2, 3)
        latency = wan_latency_map(servers, leader=3)
        # RTT 105 ms and 145 ms from the leader (one-way 52.5 / 72.5).
        leader_latencies = sorted(
            ms for (a, b), ms in latency.items() if 3 in (a, b)
        )
        assert leader_latencies == [52.5, 72.5]

    def test_same_zone_followers_fast(self):
        servers = (1, 2, 3, 4, 5)
        latency = wan_latency_map(servers, leader=5)
        # Followers 1 and 3 share a zone (alternating assignment).
        assert latency[(1, 3)] == 0.1

    def test_all_pairs_covered(self):
        servers = (1, 2, 3, 4, 5)
        latency = wan_latency_map(servers, leader=3)
        assert len(latency) == 10
