"""Tests for the scenario runner itself (partition builders + measurement)."""

import pytest

from repro.errors import ConfigError
from repro.sim import partitions
from repro.sim.scenarios import (
    SCENARIOS,
    apply_scenario,
    run_partition_scenario,
)
from repro.sim.harness import ExperimentConfig, build_experiment

from tests.conftest import build_omni_cluster


class TestPartitionBuilders:
    def test_quorum_loss_topology(self):
        sim, _ = build_omni_cluster(5)
        partitions.quorum_loss(sim, pivot=2)
        net = sim.network
        for other in (1, 3, 4, 5):
            assert net.is_up(2, other)
        assert not net.is_up(1, 3)
        assert not net.is_up(4, 5)

    def test_quorum_loss_needs_member_pivot(self):
        sim, _ = build_omni_cluster(3)
        with pytest.raises(ConfigError):
            partitions.quorum_loss(sim, pivot=9)

    def test_constrained_isolates_leader(self):
        sim, _ = build_omni_cluster(5)
        partitions.constrained_election(sim, pivot=1, leader=3)
        net = sim.network
        for other in (1, 2, 4, 5):
            assert not net.is_up(3, other)
        for other in (2, 4, 5):
            assert net.is_up(1, other)
        assert not net.is_up(2, 4)

    def test_constrained_rejects_same_pivot_leader(self):
        sim, _ = build_omni_cluster(5)
        with pytest.raises(ConfigError):
            partitions.constrained_election(sim, pivot=1, leader=1)

    def test_chained_topology(self):
        sim, _ = build_omni_cluster(3)
        partitions.chained(sim, order=(2, 1, 3))
        net = sim.network
        assert net.is_up(2, 1)
        assert net.is_up(1, 3)
        assert not net.is_up(2, 3)

    def test_chained_requires_permutation(self):
        sim, _ = build_omni_cluster(3)
        with pytest.raises(ConfigError):
            partitions.chained(sim, order=(1, 2))

    def test_chained_five_servers(self):
        sim, _ = build_omni_cluster(5)
        partitions.chained(sim, order=(1, 2, 3, 4, 5))
        net = sim.network
        assert net.is_up(1, 2) and net.is_up(4, 5)
        assert not net.is_up(1, 5)
        assert not net.is_up(2, 4)

    def test_full_partition(self):
        sim, _ = build_omni_cluster(5)
        partitions.full_partition(sim, side_a=(1, 2))
        net = sim.network
        assert net.is_up(1, 2)
        assert net.is_up(3, 4)
        assert not net.is_up(1, 3)

    def test_heal(self):
        sim, _ = build_omni_cluster(3)
        partitions.chained(sim, order=(1, 2, 3))
        partitions.heal(sim)
        assert sim.network.down_links() == ()


class TestRunner:
    def test_rejects_unknown_scenario(self):
        with pytest.raises(ConfigError):
            run_partition_scenario("omni", "weird")

    def test_apply_scenario_rejects_unknown(self):
        cfg = ExperimentConfig(protocol="omni", num_servers=5,
                               initial_leader=3)
        exp = build_experiment(cfg)
        with pytest.raises(ConfigError):
            apply_scenario(exp, "weird")

    def test_result_fields_consistent(self):
        result = run_partition_scenario(
            "omni", "quorum_loss", election_timeout_ms=100,
            partition_duration_ms=2_000, seed=1)
        assert result.protocol == "omni"
        assert result.scenario == "quorum_loss"
        assert result.partition_end_ms > result.partition_at_ms
        assert result.downtime_ms <= 2_000 + 1
        assert result.downtime_in_timeouts == pytest.approx(
            result.downtime_ms / 100.0)

    def test_default_sizes(self):
        chained = run_partition_scenario(
            "omni", "chained", election_timeout_ms=100,
            partition_duration_ms=1_000, seed=1)
        five = run_partition_scenario(
            "omni", "quorum_loss", election_timeout_ms=100,
            partition_duration_ms=1_000, seed=1)
        assert chained is not None and five is not None

    def test_deterministic_given_seed(self):
        a = run_partition_scenario("omni", "chained",
                                   election_timeout_ms=100,
                                   partition_duration_ms=2_000, seed=5)
        b = run_partition_scenario("omni", "chained",
                                   election_timeout_ms=100,
                                   partition_duration_ms=2_000, seed=5)
        assert a.decided_during_partition == b.decided_during_partition
        assert a.downtime_ms == b.downtime_ms
