"""Windowed series engine: aggregation edge cases, diff verdicts, export.

Satellite coverage for the PR 7 tentpole: empty windows are emitted (a
stall must be visible, not elided), out-of-order timestamps bucket by
their own clock, boundary entries follow half-open ``[start, end)``
semantics, clock-skewed reporters don't corrupt the grid, and the whole
pipeline — live collector, post-hoc builder, JSONL round-trip, diff —
is deterministic per seed.
"""

import pytest

from repro.errors import ConfigError
from repro.obs.events import (
    ClientProposalSent,
    ClientReplyDecided,
    EventRecord,
    HeartbeatViewReported,
    QueueDepthSampled,
)
from repro.obs.exporters import JsonLinesSink, MemorySink, read_jsonl
from repro.obs.registry import MetricsRegistry
from repro.obs.series import (
    SeriesCollector,
    SeriesWindow,
    diff_series,
    read_series,
    render_diff,
    series_from_events,
    series_lanes,
    series_to_jsonl,
    sparkline,
)
from repro.sim.harness import ExperimentConfig, build_experiment


def _decided(at_ms, client_id=1, seq=0):
    return EventRecord(at_ms=at_ms,
                       event=ClientReplyDecided(client_id=client_id, seq=seq))


def _window(index, values, width=100.0, dominant=""):
    return SeriesWindow(index=index, start_ms=index * width,
                        end_ms=(index + 1) * width, values=values,
                        dominant_phase=dominant)


class TestWindowing:
    def test_empty_windows_emitted_not_elided(self):
        """A 3-window stall between two bursts must produce three explicit
        zero-rate windows — end-of-run aggregates can't see stalls."""
        events = [_decided(10.0), _decided(20.0), _decided(450.0)]
        windows = series_from_events(events, window_ms=100.0)
        assert [w.index for w in windows] == [0, 1, 2, 3, 4]
        assert [w.values["decided_per_s"] for w in windows] == \
            [20.0, 0.0, 0.0, 0.0, 10.0]
        # Percentile families are absent in empty windows, not zero.
        assert "commit_ms:p50" not in windows[1].values

    def test_out_of_order_timestamps_bucket_by_own_clock(self):
        shuffled = [_decided(250.0), _decided(10.0), _decided(260.0),
                    _decided(110.0)]
        ordered = sorted(shuffled, key=lambda r: r.at_ms)
        assert series_from_events(shuffled, window_ms=100.0) == \
            series_from_events(ordered, window_ms=100.0)

    def test_boundary_entry_belongs_to_next_window(self):
        """Half-open [start, end): a record at exactly 100.0 ms is the
        first record of window 1, not the last of window 0."""
        windows = series_from_events([_decided(100.0)], window_ms=100.0)
        assert windows[0].values["decided_per_s"] == 0.0
        assert windows[1].values["decided_per_s"] == 10.0

    def test_events_before_start_ignored(self):
        windows = series_from_events(
            [_decided(10.0), _decided(250.0)], window_ms=100.0,
            start_ms=200.0)
        assert [w.index for w in windows] == [0]
        assert windows[0].start_ms == 200.0
        assert windows[0].values["decided_per_s"] == 10.0

    def test_end_ms_extends_and_clips(self):
        windows = series_from_events([_decided(50.0)], window_ms=100.0,
                                     end_ms=400.0)
        assert len(windows) == 4  # empty tail windows up to end_ms
        clipped = series_from_events([_decided(50.0), _decided(350.0)],
                                     window_ms=100.0, end_ms=200.0)
        assert len(clipped) == 2  # the 350 ms record is outside the span
        assert clipped[1].values["decided_per_s"] == 0.0

    def test_family_presence_is_gated(self):
        """proposal/jitter families only appear when their event kinds
        occurred — a family that never existed isn't a flat zero."""
        plain = series_from_events([_decided(10.0)], window_ms=100.0)
        assert "proposal_per_s" not in plain[0].values
        assert "ble_jitter_ms:mean" not in plain[0].values
        rich = series_from_events([
            _decided(10.0),
            EventRecord(at_ms=20.0, event=ClientProposalSent(
                client_id=1, first_seq=0, count=4)),
            EventRecord(at_ms=30.0, event=HeartbeatViewReported(
                pid=1, round=1, ballot=1, leader=1, quorum_connected=True,
                connectivity=3, peers_heard=(2, 3), phase="follower",
                jitter_ms=-2.5)),
        ], window_ms=100.0)
        assert rich[0].values["proposal_per_s"] == 40.0
        assert rich[0].values["ble_jitter_ms:mean"] == 2.5  # abs()

    def test_queue_depth_window_max(self):
        events = [
            EventRecord(at_ms=10.0, event=QueueDepthSampled(
                queue="sp_outbox", depth=2, pid=1)),
            EventRecord(at_ms=60.0, event=QueueDepthSampled(
                queue="sp_outbox", depth=7, pid=2)),
            EventRecord(at_ms=90.0, event=QueueDepthSampled(
                queue="sp_outbox", depth=1, pid=1)),
        ]
        windows = series_from_events(events, window_ms=100.0)
        assert windows[0].values["queue:sp_outbox:max"] == 7.0

    def test_bad_window_width_rejected(self):
        with pytest.raises(ConfigError):
            series_from_events([], window_ms=0.0)
        with pytest.raises(ConfigError):
            SeriesCollector(MetricsRegistry(), window_ms=-1.0)

    def test_no_events_no_windows(self):
        assert series_from_events([], window_ms=100.0) == []


class TestClockSkew:
    def test_skewed_reporter_stays_on_shared_grid(self):
        """Per-pid tick scaling (the fail-slow nemesis) slows a server's
        *activity*, but every event is stamped with the shared sim clock —
        the window grid must stay aligned and deterministic."""
        def run():
            reg = MetricsRegistry()
            sink = MemorySink()
            reg.add_sink(sink)
            exp = build_experiment(
                ExperimentConfig(protocol="omni", num_servers=3,
                                 election_timeout_ms=100.0, one_way_ms=0.5,
                                 seed=11, initial_leader=1),
                obs=reg)
            collector = exp.attach_series(window_ms=250.0)
            exp.make_client(4)
            exp.cluster.run_for(1_000.0)
            laggard = [p for p in exp.cluster.pids if p != 1][0]
            exp.cluster.set_tick_scale(laggard, 10.0)
            exp.cluster.run_for(1_000.0)
            return collector.finish(exp.queue.now)

        first, second = run(), run()
        assert first == second
        # The grid itself is unskewed: contiguous fixed-width windows.
        for i, w in enumerate(first):
            assert w.index == i
            assert w.width_ms == pytest.approx(250.0)
        assert first[-1].end_ms == pytest.approx(250.0 * len(first))


class TestDeterminism:
    def _run(self, seed):
        reg = MetricsRegistry()
        reg.enable_tracing()
        exp = build_experiment(
            ExperimentConfig(protocol="omni", num_servers=3,
                             election_timeout_ms=100.0, one_way_ms=0.5,
                             seed=seed, initial_leader=1),
            obs=reg)
        collector = exp.attach_series(window_ms=250.0)
        exp.make_client(4)
        exp.cluster.run_for(2_000.0)
        return collector.finish(exp.queue.now)

    def test_same_seed_identical_windows(self):
        assert self._run(7) == self._run(7)

    def test_same_seed_diff_reports_unchanged_everywhere(self):
        diff = diff_series(self._run(7), self._run(7))
        assert diff.verdict == "unchanged"
        assert all(fd.verdict == "unchanged" for fd in diff.families)

    def test_live_collector_agrees_with_posthoc_builder(self):
        """The collector's event-derived families must equal a post-hoc
        series over the same exported events — a boundary-straddling
        commit span lands identically in both."""
        reg = MetricsRegistry()
        reg.enable_tracing()
        sink = MemorySink()
        reg.add_sink(sink)
        exp = build_experiment(
            ExperimentConfig(protocol="omni", num_servers=3,
                             election_timeout_ms=100.0, one_way_ms=0.5,
                             seed=7, initial_leader=1),
            obs=reg)
        collector = exp.attach_series(window_ms=250.0)
        exp.make_client(4)
        exp.cluster.run_for(2_000.0)
        live = collector.finish(exp.queue.now)
        posthoc = series_from_events(
            sink.records, window_ms=250.0,
            end_ms=live[-1].end_ms)
        assert len(live) == len(posthoc)
        for lw, pw in zip(live, posthoc):
            assert lw.dominant_phase == pw.dominant_phase
            for family, value in pw.values.items():
                assert lw.values[family] == pytest.approx(value), family


class TestExportRoundTrip:
    def test_jsonl_round_trip(self, tmp_path):
        windows = [
            _window(0, {"decided_per_s": 40.0, "commit_ms:p95": 2.25},
                    dominant="replicate"),
            _window(1, {"decided_per_s": 0.0}),
        ]
        path = tmp_path / "series.jsonl"
        reg = MetricsRegistry()
        sink = JsonLinesSink(str(path))
        reg.add_sink(sink)
        sink.write_series(windows)
        sink.close(reg)
        with open(path) as handle:
            back = read_series(handle)
        assert back == windows
        # The series lines coexist with event/metric records: the event
        # reader skips them rather than choking.
        events, _metrics = read_jsonl(str(path))
        assert events == []

    def test_read_series_rejects_garbage(self):
        with pytest.raises(ConfigError):
            read_series(["{not json"])
        with pytest.raises(ConfigError):
            read_series(['{"t": "series", "index": "x"}'])

    def test_read_series_sorts_by_index(self):
        lines = series_to_jsonl([_window(1, {}), _window(0, {})])
        assert [w.index for w in read_series(reversed(lines))] == [0, 1]


class TestSparklines:
    def test_sparkline_shape(self):
        line = sparkline([0.0, 5.0, 10.0, None])
        assert len(line) == 4
        assert line[0] == " "  # zero renders at the ramp floor
        assert line[3] == " "  # gap for missing data
        assert line[2] == "@"  # peak renders at the ramp top

    def test_lanes_include_phase_legend(self):
        windows = [
            _window(0, {"decided_per_s": 40.0, "commit_ms:p95": 2.0},
                    dominant="replicate"),
            _window(1, {"decided_per_s": 10.0, "commit_ms:p95": 9.0},
                    dominant="apply"),
        ]
        lines = series_lanes(windows)
        assert any(line.startswith("decided_per_s") for line in lines)
        assert any(line.startswith("commit_ms:p95") for line in lines)
        phase_lane = [line for line in lines
                      if line.startswith("dominant phase")]
        assert len(phase_lane) == 1
        assert "|ra|" in phase_lane[0]

    def test_empty_series_lanes(self):
        assert series_lanes([]) == ["(no windows)"]


class TestDiffVerdicts:
    def test_latency_regression_localized(self):
        before = [_window(i, {"commit_ms:p95": 2.0}) for i in range(8)]
        after = [_window(i, {"commit_ms:p95": 2.0 if i < 4 or i > 5
                             else 20.0}) for i in range(8)]
        diff = diff_series(before, after)
        (fd,) = diff.regressed
        assert fd.family == "commit_ms:p95"
        assert fd.window_range == (4, 5)
        assert fd.range_ms == (400.0, 600.0)
        assert diff.verdict == "regressed"

    def test_rate_families_regress_downward(self):
        before = [_window(0, {"decided_per_s": 100.0})]
        worse = [_window(0, {"decided_per_s": 50.0})]
        better = [_window(0, {"decided_per_s": 200.0})]
        assert diff_series(before, worse).verdict == "regressed"
        assert diff_series(before, better).verdict == "improved"

    def test_threshold_gates_verdict(self):
        before = [_window(0, {"commit_ms:p95": 100.0})]
        after = [_window(0, {"commit_ms:p95": 105.0})]
        assert diff_series(before, after, threshold=0.10).verdict == \
            "unchanged"
        assert diff_series(before, after, threshold=0.01).verdict == \
            "regressed"

    def test_one_sided_family_added_or_removed(self):
        before = [_window(0, {"decided_per_s": 10.0})]
        after = [_window(0, {"decided_per_s": 10.0,
                             "queue:sp_outbox:max": 4.0})]
        verdicts = {fd.family: fd.verdict
                    for fd in diff_series(before, after).families}
        assert verdicts["queue:sp_outbox:max"] == "added"
        verdicts = {fd.family: fd.verdict
                    for fd in diff_series(after, before).families}
        assert verdicts["queue:sp_outbox:max"] == "removed"
        # Neither direction is a regression by itself.
        assert diff_series(before, after).verdict == "unchanged"

    def test_zero_baseline_does_not_divide_by_zero(self):
        before = [_window(0, {"queue:sp_outbox:max": 0.0})]
        after = [_window(0, {"queue:sp_outbox:max": 0.0})]
        assert diff_series(before, after).verdict == "unchanged"

    def test_window_width_mismatch_rejected(self):
        before = [_window(0, {}, width=100.0)]
        after = [SeriesWindow(index=0, start_ms=0.0, end_ms=250.0,
                              values={})]
        with pytest.raises(ConfigError):
            diff_series(before, after)

    def test_regressed_phases_cited(self):
        before = [_window(0, {"phase_ms:replicate:mean": 1.0,
                              "phase_ms:apply:mean": 1.0})]
        after = [_window(0, {"phase_ms:replicate:mean": 5.0,
                             "phase_ms:apply:mean": 1.0})]
        diff = diff_series(before, after)
        assert diff.regressed_phases == ("replicate",)
        summary = render_diff(diff)[-1]
        assert "dominant regressed phase: replicate" in summary

    def test_render_diff_caps_huge_changes(self):
        before = [_window(0, {"queue:sp_outbox:max": 0.0}),
                  _window(1, {"queue:sp_outbox:max": 1e-6})]
        after = [_window(0, {"queue:sp_outbox:max": 50.0}),
                 _window(1, {"queue:sp_outbox:max": 50.0})]
        out = "\n".join(render_diff(diff_series(before, after)))
        assert "+>999%" in out
