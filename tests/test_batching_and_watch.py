"""Tests for server-side flush batching and KV watches."""

import pytest

from repro.kv.store import KVCommand, ReplicatedKVStore
from repro.omni.entry import Command
from repro.omni.server import ClusterConfig, OmniPaxosConfig, OmniPaxosServer
from repro.sim.cluster import SimCluster
from repro.sim.events import EventQueue
from repro.sim.network import NetworkParams, SimNetwork

from tests.conftest import build_omni_cluster, run_until_leader


def cmd(i: int) -> Command:
    return Command(data=b"x", client_id=1, seq=i)


def build_batching_cluster(flush_ms=20.0):
    cc = ClusterConfig(0, (1, 2, 3))
    queue = EventQueue()
    net = SimNetwork(queue, NetworkParams(one_way_ms=0.1))
    servers = {
        pid: OmniPaxosServer(OmniPaxosConfig(
            pid=pid, cluster=cc, hb_period_ms=50.0,
            initial_leader=1, flush_interval_ms=flush_ms))
        for pid in cc.servers
    }
    sim = SimCluster(servers, net, queue, tick_ms=5.0)
    sim.start()
    sim.run_for(100)
    return sim, servers


class TestFlushBatching:
    def test_proposals_coalesce_into_one_message(self):
        sim, servers = build_batching_cluster(flush_ms=20.0)
        before = sim.network.messages_sent
        for i in range(50):
            sim.propose(1, cmd(i))
        # Nothing sent yet: the batch waits for the flush tick.
        mid = sim.network.messages_sent
        sim.run_for(100)
        assert all(s.global_log_len == 50 for s in servers.values())
        # 50 proposals cost far fewer messages than unbatched (which would
        # send 2 AcceptDecide per proposal = 100).
        accept_traffic = sim.network.messages_sent - mid
        assert accept_traffic < 60

    def test_batching_adds_bounded_latency(self):
        sim, servers = build_batching_cluster(flush_ms=20.0)
        sim.propose(1, cmd(0))
        sim.run_for(10)
        assert servers[2].global_log_len == 0  # still buffered
        sim.run_for(50)
        assert servers[2].global_log_len == 1  # flushed within interval

    def test_unbatched_by_default(self):
        sim, servers = build_omni_cluster(3, initial_leader=1)
        sim.run_for(100)
        sim.propose(1, cmd(0))
        sim.run_for(5)
        assert servers[1].global_log_len in (0, 1)
        sim.run_for(20)
        assert servers[1].global_log_len == 1

    def test_flush_during_reconfig_rebuffers(self):
        cc = ClusterConfig(0, (1, 2, 3))
        queue = EventQueue()
        net = SimNetwork(queue, NetworkParams(one_way_ms=0.1))
        servers = {
            pid: OmniPaxosServer(OmniPaxosConfig(
                pid=pid, cluster=cc, hb_period_ms=50.0,
                initial_leader=1, flush_interval_ms=20.0))
            for pid in (1, 2, 3)
        }
        servers[4] = OmniPaxosServer(OmniPaxosConfig(
            pid=4, cluster=cc, hb_period_ms=50.0))
        sim = SimCluster(servers, net, queue, tick_ms=5.0)
        sim.start()
        sim.run_for(100)
        sim.reconfigure(1, (1, 2, 3, 4))
        for i in range(5):
            sim.propose(1, cmd(i))
        sim.run_for(3_000)
        leaders = sim.leaders()
        assert leaders
        # stop-sign + the 5 buffered-and-reflushed commands
        assert servers[leaders[0]].global_log_len == 6


class TestKVWatch:
    def wire(self, sim, servers):
        stores = {p: ReplicatedKVStore(servers[p], client_id=p)
                  for p in servers}
        sim.on_decided(lambda pid, idx, e, now: stores[pid].ingest(idx, e))
        return stores

    def test_watch_fires_on_put(self):
        sim, servers = build_omni_cluster(3)
        leader = run_until_leader(sim)
        stores = self.wire(sim, servers)
        seen = []
        stores[leader].watch("color", lambda k, v, i: seen.append((k, v)))
        stores[leader].submit(KVCommand("put", "color", "red"), sim.now)
        sim.run_for(100)
        assert seen == [("color", "red")]

    def test_watch_fires_on_delete_and_cas(self):
        sim, servers = build_omni_cluster(3)
        leader = run_until_leader(sim)
        stores = self.wire(sim, servers)
        seen = []
        stores[leader].watch("k", lambda key, v, i: seen.append(v))
        stores[leader].submit(KVCommand("put", "k", "1"), sim.now)
        sim.run_for(50)
        stores[leader].submit(
            KVCommand("cas", "k", value="2", expected="1"), sim.now)
        sim.run_for(50)
        stores[leader].submit(KVCommand("delete", "k"), sim.now)
        sim.run_for(50)
        assert seen == ["1", "2", None]

    def test_failed_cas_does_not_fire(self):
        sim, servers = build_omni_cluster(3)
        leader = run_until_leader(sim)
        stores = self.wire(sim, servers)
        seen = []
        stores[leader].submit(KVCommand("put", "k", "1"), sim.now)
        sim.run_for(50)
        stores[leader].watch("k", lambda key, v, i: seen.append(v))
        stores[leader].submit(
            KVCommand("cas", "k", value="9", expected="wrong"), sim.now)
        sim.run_for(50)
        assert seen == []

    def test_watch_on_every_replica(self):
        sim, servers = build_omni_cluster(3)
        leader = run_until_leader(sim)
        stores = self.wire(sim, servers)
        fired = {p: 0 for p in servers}
        for p, store in stores.items():
            store.watch("k", lambda key, v, i, p=p: fired.__setitem__(
                p, fired[p] + 1))
        stores[leader].submit(KVCommand("put", "k", "v"), sim.now)
        sim.run_for(100)
        assert all(count == 1 for count in fired.values())

    def test_unwatch(self):
        sim, servers = build_omni_cluster(3)
        leader = run_until_leader(sim)
        stores = self.wire(sim, servers)
        seen = []
        stores[leader].watch("k", lambda key, v, i: seen.append(v))
        stores[leader].unwatch("k")
        stores[leader].submit(KVCommand("put", "k", "v"), sim.now)
        sim.run_for(100)
        assert seen == []
