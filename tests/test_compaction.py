"""Tests for log compaction (trim), storage- and protocol-level."""

import pytest

from repro.errors import CompactionError, NotLeaderError, StorageError
from repro.omni.ballot import Ballot
from repro.omni.entry import Command
from repro.omni.messages import Trim
from repro.omni.storage import FileStorage, InMemoryStorage

from tests.conftest import build_omni_cluster, run_until_leader
from tests.test_sequence_paxos import Shuttle, cmd, make_sp


@pytest.fixture(params=["memory", "file"])
def storage(request, tmp_path):
    if request.param == "memory":
        yield InMemoryStorage()
    else:
        backend = FileStorage(str(tmp_path / "wal.bin"))
        yield backend
        backend.close()


class TestStorageCompaction:
    def test_compact_keeps_logical_indices(self, storage):
        storage.append_entries(list("abcdef"))
        storage.set_decided_idx(4)
        storage.compact_prefix(3)
        assert storage.compacted_idx() == 3
        assert storage.log_len() == 6
        assert storage.get_entries(3, 6) == ("d", "e", "f")
        assert storage.get_entry(4) == "e"

    def test_reading_compacted_range_raises(self, storage):
        storage.append_entries(list("abcd"))
        storage.set_decided_idx(3)
        storage.compact_prefix(2)
        with pytest.raises(StorageError):
            storage.get_entries(0, 4)

    def test_empty_read_at_boundary_ok(self, storage):
        storage.append_entries(list("abcd"))
        storage.set_decided_idx(3)
        storage.compact_prefix(2)
        assert storage.get_entries(1, 1) == ()

    def test_cannot_compact_undecided(self, storage):
        storage.append_entries(list("abc"))
        storage.set_decided_idx(1)
        with pytest.raises(StorageError):
            storage.compact_prefix(2)

    def test_compact_idempotent(self, storage):
        storage.append_entries(list("abc"))
        storage.set_decided_idx(3)
        storage.compact_prefix(2)
        storage.compact_prefix(1)  # lower: no-op
        storage.compact_prefix(2)  # same: no-op
        assert storage.compacted_idx() == 2

    def test_append_after_compact(self, storage):
        storage.append_entries(list("ab"))
        storage.set_decided_idx(2)
        storage.compact_prefix(2)
        assert storage.append_entry("c") == 3
        assert storage.get_entry(2) == "c"

    def test_truncate_after_compact(self, storage):
        storage.append_entries(list("abcde"))
        storage.set_decided_idx(2)
        storage.compact_prefix(2)
        storage.truncate_suffix(3)
        assert storage.log_len() == 3
        assert storage.get_entries(2, 3) == ("c",)

    def test_file_compaction_survives_reopen(self, tmp_path):
        path = str(tmp_path / "c.wal")
        first = FileStorage(path)
        first.append_entries(list("abcdef"))
        first.set_decided_idx(5)
        first.compact_prefix(4)
        first.close()
        second = FileStorage(path)
        assert second.compacted_idx() == 4
        assert second.log_len() == 6
        assert second.get_entries(4, 6) == ("e", "f")
        second.close()


class TestSequencePaxosTrim:
    def replicated_trio(self, count=6):
        nodes = {pid: make_sp(pid) for pid in (1, 2, 3)}
        net = Shuttle(nodes)
        net.elect(1)
        for i in range(count):
            nodes[1].propose(cmd(i))
        net.deliver_all()
        return nodes, net

    def test_leader_trims_cluster_wide(self):
        nodes, net = self.replicated_trio()
        trimmed = nodes[1].trim()
        net.deliver_all()
        assert trimmed == 6
        for node in nodes.values():
            assert node.compacted_idx == 6
            assert node.log_len == 6

    def test_partial_trim(self):
        nodes, net = self.replicated_trio()
        assert nodes[1].trim(3) == 3
        net.deliver_all()
        assert all(n.compacted_idx == 3 for n in nodes.values())

    def test_trim_beyond_safe_rejected(self):
        nodes, net = self.replicated_trio()
        with pytest.raises(CompactionError):
            nodes[1].trim(99)

    def test_follower_cannot_trim(self):
        nodes, net = self.replicated_trio()
        with pytest.raises(NotLeaderError):
            nodes[2].trim()

    def test_trim_blocked_by_silent_follower(self):
        """A follower that never reported its decided index blocks the trim
        (its prefix might still be needed)."""
        nodes = {pid: make_sp(pid) for pid in (1, 2, 3)}
        net = Shuttle(nodes)
        net.cut(1, 3)
        net.elect(1)
        nodes[1].propose(cmd(0))
        net.deliver_all()
        assert nodes[1].decided_idx == 1  # via {1, 2}
        with pytest.raises(CompactionError):
            nodes[1].trim(1)

    def test_replication_continues_after_trim(self):
        nodes, net = self.replicated_trio()
        nodes[1].trim()
        net.deliver_all()
        nodes[1].propose(cmd(100))
        net.deliver_all()
        for node in nodes.values():
            assert node.log_len == 7
            assert node.decided_idx == 7

    def test_leader_change_after_trim(self):
        """A new leader's Prepare-phase sync still works with compacted
        prefixes everywhere (indices stay logical)."""
        nodes, net = self.replicated_trio()
        nodes[1].trim()
        net.deliver_all()
        net.elect(2, n=2)
        net.deliver_all()
        nodes[2].propose(cmd(200))
        net.deliver_all()
        assert all(n.decided_idx == 7 for n in nodes.values())

    def test_stale_trim_message_ignored(self):
        nodes, net = self.replicated_trio()
        nodes[2].on_message(1, Trim(n=Ballot(0, 0, 9), trimmed_idx=6))
        assert nodes[2].compacted_idx == 0

    def test_trim_clamped_to_local_decided(self):
        """A follower whose Decide was lost only trims what it knows is
        decided (defensive clamp)."""
        follower = make_sp(2)
        follower.storage.append_entries([cmd(0), cmd(1)])
        follower.storage.set_promise(Ballot(1, 0, 1))
        follower.storage.set_decided_idx(1)
        follower.on_message(1, Trim(n=Ballot(1, 0, 1), trimmed_idx=2))
        assert follower.compacted_idx == 1


class TestServerTrim:
    def test_server_trim_global_coordinates(self):
        sim, servers = build_omni_cluster(3)
        leader = run_until_leader(sim)
        for i in range(10):
            sim.propose(leader, Command(b"x", client_id=1, seq=i))
        sim.run_for(100)
        trimmed = servers[leader].trim()
        sim.run_for(100)
        assert trimmed == 10
        sp = servers[leader].sp_of_current()
        assert sp.compacted_idx == 10
        # The service layer keeps the full replicated log (migration source).
        assert servers[leader].global_log_len == 10
        assert len(servers[leader].read_log()) == 10

    def test_server_trim_non_leader_raises(self):
        sim, servers = build_omni_cluster(3)
        leader = run_until_leader(sim)
        follower = next(p for p in servers if p != leader)
        with pytest.raises(NotLeaderError):
            servers[follower].trim()

    def test_reconfig_still_works_after_trim(self):
        sim, servers = build_omni_cluster(3, joiners=(4,))
        leader = run_until_leader(sim)
        for i in range(10):
            sim.propose(leader, Command(b"x", client_id=1, seq=i))
        sim.run_for(100)
        servers[leader].trim()
        sim.run_for(100)
        sim.reconfigure(leader, (1, 2, 3, 4))
        sim.run_for(3000)
        # The joiner migrated the full log from the service layer even
        # though the replication layer was compacted.
        assert servers[4].global_log_len == 11


class TestTrimRecoveryRegression:
    """Regression: recovering a replica whose log was fully compacted used
    to crash in stop-sign detection (found by the chaos soak)."""

    def test_recover_after_full_trim(self):
        sim, servers = build_omni_cluster(3)
        leader = run_until_leader(sim)
        for i in range(5):
            sim.propose(leader, Command(b"x", client_id=1, seq=i))
        sim.run_for(100)
        servers[leader].trim()
        sim.run_for(100)
        follower = next(p for p in servers if p != leader)
        sim.crash(follower)
        sim.recover(follower)  # used to raise StorageError
        sim.run_for(500)
        sim.propose(leader, Command(b"x", client_id=1, seq=99))
        sim.run_for(200)
        assert servers[follower].sp_of_current().decided_idx == 6

    def test_trim_never_compacts_stopsign(self):
        from tests.test_sequence_paxos import Shuttle, cmd, make_sp
        nodes = {pid: make_sp(pid) for pid in (1, 2, 3)}
        net = Shuttle(nodes)
        net.elect(1)
        for i in range(4):
            nodes[1].propose(cmd(i))
        net.deliver_all()
        nodes[1].propose_reconfiguration((1, 2))
        net.deliver_all()
        trimmed = nodes[1].trim()
        net.deliver_all()
        assert trimmed == 4  # everything up to, but excluding, the SS
        assert nodes[1].stopsign_decided() is not None  # still readable
