"""Tests for the CLI experiment runners."""

import pytest

from repro.tools import reconfig, scenario, throughput


class TestScenarioCLI:
    def test_runs_and_reports(self, capsys):
        rc = scenario.main([
            "--protocol", "omni", "--scenario", "chained",
            "--duration-ms", "2000", "--seeds", "1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "recovered" in out
        assert "election timeouts" in out

    def test_deadlock_reported(self, capsys):
        rc = scenario.main([
            "--protocol", "vr", "--scenario", "quorum_loss",
            "--duration-ms", "2000", "--seeds", "1",
        ])
        out = capsys.readouterr().out
        assert rc == 0  # consistent verdict across seeds
        assert "UNAVAILABLE" in out

    def test_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            scenario.build_parser().parse_args(["--protocol", "zab"])

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            scenario.build_parser().parse_args(["--scenario", "meteor"])


class TestThroughputCLI:
    def test_lan_run(self, capsys):
        rc = throughput.main([
            "--protocol", "omni", "--cp", "16", "--duration-ms", "1000",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "throughput" in out

    def test_wan_flag(self, capsys):
        rc = throughput.main([
            "--protocol", "multipaxos", "--cp", "16", "--wan",
            "--duration-ms", "2000",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "net=wan" in out


class TestReconfigCLI:
    def test_quick_run(self, capsys):
        rc = reconfig.main([
            "--protocol", "omni", "--replace", "one",
            "--preload", "20000", "--run-ms", "8000",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "completed" in out
        assert "windows" in out

    def test_rejects_vr(self):
        with pytest.raises(SystemExit):
            reconfig.build_parser().parse_args(["--protocol", "vr"])
