"""Flight recorder, watch dashboard, admin endpoint, report error paths.

The acceptance chain under test: a failing chaos schedule leaves behind a
flight dump whose JSON-lines are a valid ``repro-obs timeline`` input;
the ``watch`` dashboard catches the belief/truth gap during a partition;
and a live node answers line-delimited JSON admin requests.
"""

import asyncio
import json
import os

import pytest

from repro.chaos.engine import run_schedule
from repro.chaos.generator import generate_schedule
from repro.errors import ConfigError
from repro.obs.events import ClientReplyDecided, EventRecord, \
    HeartbeatViewReported
from repro.obs.exporters import JsonLinesSink, read_jsonl
from repro.obs.flight import FlightRecorder
from repro.obs.registry import MetricsRegistry
from repro.omni.sequence_paxos import SequencePaxos
from repro.omni.server import ClusterConfig, OmniPaxosConfig, OmniPaxosServer
from repro.runtime.node import RuntimeNode
from repro.runtime.transport import PeerAddress
from repro.tools.obs_report import main as obs_main

BASE_PORT = 42900


def _view_record(pid, at_ms, peers=(2, 3)):
    return EventRecord(at_ms=at_ms, event=HeartbeatViewReported(
        pid=pid, round=1, ballot=1, leader=1, quorum_connected=True,
        connectivity=3, peers_heard=tuple(peers), phase="follower"))


class TestFlightRecorder:
    def test_capacity_bounds_each_lane(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record(_view_record(1, float(i)))
        assert rec.recorded == 10
        assert len(rec) == 4
        # The *last* four survive — it's a flight recorder, not a log.
        assert [r.at_ms for r in rec.lane(1)] == [6.0, 7.0, 8.0, 9.0]

    def test_lanes_split_by_pid_with_global_lane(self):
        rec = FlightRecorder(capacity=4)
        rec.record(_view_record(2, 1.0))
        rec.record(_view_record(1, 2.0))
        rec.record(EventRecord(at_ms=3.0,
                               event=ClientReplyDecided(client_id=9, seq=0)))
        assert rec.lanes() == [1, 2, None]
        assert len(rec.lane(None)) == 1
        # Lanes evict independently: a chatty server cannot push another
        # server's (or the client's) history out of the buffer.
        for i in range(20):
            rec.record(_view_record(2, 10.0 + i))
        assert len(rec.lane(2)) == 4
        assert len(rec.lane(1)) == 1
        assert len(rec.lane(None)) == 1

    def test_dump_merges_lanes_in_time_order(self):
        rec = FlightRecorder(capacity=8)
        rec.record(_view_record(1, 5.0))
        rec.record(_view_record(2, 1.0))
        rec.record(_view_record(1, 9.0))
        rec.record(EventRecord(at_ms=7.0,
                               event=ClientReplyDecided(client_id=1, seq=3)))
        assert [r.at_ms for r in rec.dump()] == [1.0, 5.0, 7.0, 9.0]

    def test_dump_jsonl_round_trips_through_read_jsonl(self, tmp_path):
        rec = FlightRecorder(capacity=8)
        rec.record(_view_record(1, 5.0))
        rec.record(_view_record(2, 6.5))
        path = str(tmp_path / "flight.jsonl")
        reg = MetricsRegistry()
        reg.counter("repro_test_total").inc()
        assert rec.dump_jsonl(path, reg) == 2
        events, metrics = read_jsonl(path)
        assert [r.at_ms for r in events] == [5.0, 6.5]
        assert events[0].event == rec.dump()[0].event
        assert any(m["name"] == "repro_test_total" for m in metrics)

    def test_as_dict_summary(self):
        rec = FlightRecorder(capacity=4)
        rec.record(_view_record(1, 1.0))
        rec.record(EventRecord(at_ms=2.0,
                               event=ClientReplyDecided(client_id=1)))
        assert rec.as_dict() == {
            "capacity": 4, "recorded": 2, "retained": 2,
            "lanes": {"1": 1, "global": 1},
        }
        json.dumps(rec.as_dict())

    def test_clear_and_bad_capacity(self):
        rec = FlightRecorder(capacity=2)
        rec.record(_view_record(1, 1.0))
        rec.clear()
        assert len(rec) == 0
        assert rec.recorded == 1  # lifetime counter survives a clear
        with pytest.raises(ConfigError):
            FlightRecorder(capacity=0)

    def test_depth_lane_separates_queue_samples(self):
        from repro.obs.events import QueueDepthSampled
        from repro.obs.flight import DEPTH_LANE
        rec = FlightRecorder(capacity=4)
        rec.record(_view_record(1, 1.0))
        rec.record(EventRecord(at_ms=2.0, event=QueueDepthSampled(
            queue="sp_outbox", depth=5, pid=1)))
        rec.record(EventRecord(at_ms=3.0, event=QueueDepthSampled(
            queue="sim_events", depth=2, pid=None)))
        # Depth samples ride their own lane — they never evict a server's
        # protocol history, even though one carries pid=1 (and the global
        # lane stays empty: pid=None depth samples go to the depth lane).
        assert rec.lanes() == [1, DEPTH_LANE]
        assert len(rec.lane(1)) == 1
        assert [r.event.queue for r in rec.lane(DEPTH_LANE)] == \
            ["sp_outbox", "sim_events"]
        # dump() interleaves depth samples into the time-ordered stream.
        assert [r.at_ms for r in rec.dump()] == [1.0, 2.0, 3.0]
        # And the lane evicts independently at its own capacity.
        for i in range(10):
            rec.record(EventRecord(at_ms=10.0 + i, event=QueueDepthSampled(
                queue="sp_outbox", depth=i, pid=1)))
        assert len(rec.lane(DEPTH_LANE)) == 4
        assert len(rec.lane(1)) == 1
        assert rec.as_dict()["lanes"][DEPTH_LANE] == 4
        rec.clear()
        assert len(rec) == 0 and rec.lanes() == []

    def test_timeline_renders_backlog_lane(self):
        from repro.obs.events import QueueDepthSampled
        from repro.obs.timeline import render_timeline
        events = [_view_record(1, float(t)) for t in (0, 500, 1000)]
        for at, depth in ((100.0, 1), (600.0, 12), (900.0, 3)):
            events.append(EventRecord(at_ms=at, event=QueueDepthSampled(
                queue="sp_outbox", depth=depth, pid=1)))
        events.sort(key=lambda r: r.at_ms)
        out = render_timeline(events, width=30)
        assert "backlog" in out
        assert "peak backlog: 12 (sp_outbox s1 @ 600.0 ms)" in out
        # No depth samples -> no backlog lane, rest of the render intact.
        plain = render_timeline(
            [_view_record(1, float(t)) for t in (0, 500, 1000)], width=30)
        assert "backlog" not in plain

    def test_registry_sink_integration(self):
        reg = MetricsRegistry()
        rec = FlightRecorder(capacity=4)
        reg.add_sink(rec)
        reg.emit(ClientReplyDecided(client_id=1, seq=0))
        assert rec.recorded == 1


@pytest.fixture
def promise_check_disabled(monkeypatch):
    """The injected safety bug of test_chaos_shrink: a lower-ballot
    Prepare rolls the promise back, so the chaos sweep finds violations."""
    original = SequencePaxos._on_prepare

    def patched(self, src, msg):
        if msg.n < self._storage.get_promise():
            self._storage.set_promise(msg.n)
        return original(self, src, msg)

    monkeypatch.setattr(SequencePaxos, "_on_prepare", patched)


class TestChaosFlightDump:
    """Acceptance: a failing chaos schedule dumps a flight file that
    reconstructs a valid ``repro-obs timeline``."""

    def _sweep(self):
        for seed in range(1, 6):
            schedule = generate_schedule(seed, "omni", num_servers=3,
                                         duration_ms=4_000.0, num_ops=12)
            if not run_schedule(schedule, cooldown_ms=1_000.0).ok:
                return schedule
        return None

    def test_failing_schedule_dumps_renderable_flight(
            self, promise_check_disabled, tmp_path, capsys):
        failing = self._sweep()
        assert failing is not None, "injected bug escaped the seed sweep"
        path = str(tmp_path / "crash.flight.jsonl")
        result = run_schedule(failing, cooldown_ms=1_000.0,
                              flight_path=path)
        assert not result.ok
        assert os.path.exists(path)
        events, _metrics = read_jsonl(path)
        assert events, "flight dump carried no events"
        assert all(e.at_ms >= events[0].at_ms for e in events)
        assert obs_main(["timeline", path]) == 0
        out = capsys.readouterr().out
        assert "timeline" in out or "|" in out

    def test_passing_schedule_leaves_no_dump(self, tmp_path):
        schedule = generate_schedule(1, "omni", num_servers=3,
                                     duration_ms=2_000.0, num_ops=6)
        path = str(tmp_path / "ok.flight.jsonl")
        result = run_schedule(schedule, cooldown_ms=1_000.0,
                              flight_path=path)
        assert result.ok
        assert not os.path.exists(path)


class TestWatchCli:
    def test_demo_catches_partition_disagreement(self, capsys):
        rc = obs_main(["watch", "--demo", "quorum-loss", "--servers", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        marker = [l for l in out.splitlines()
                  if l.startswith("partition-disagreements=")]
        assert marker, out
        assert int(marker[0].split("=")[1]) > 0
        # The dashboard frames made it to stdout.
        assert "connectivity matrix" in out
        assert "quiesced" in out

    def test_watch_export_renders_matrix(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        reg = MetricsRegistry()
        sink = JsonLinesSink(path)
        reg.add_sink(sink)
        for pid, peers in ((1, (2, 3)), (2, (1, 3)), (3, (1,))):
            reg.emit(HeartbeatViewReported(
                pid=pid, round=3, ballot=2, leader=1, quorum_connected=True,
                connectivity=len(peers) + 1, peers_heard=peers,
                phase="leader" if pid == 1 else "follower"))
        sink.close(reg)
        assert obs_main(["watch", path]) == 0
        out = capsys.readouterr().out
        assert "connectivity matrix" in out
        assert "leader" in out

    def test_watch_export_without_health_events_fails(self, tmp_path,
                                                      capsys):
        path = str(tmp_path / "nohealth.jsonl")
        reg = MetricsRegistry()
        sink = JsonLinesSink(path)
        reg.add_sink(sink)
        reg.emit(ClientReplyDecided(client_id=1, seq=0))
        sink.close(reg)
        assert obs_main(["watch", path]) == 1
        err = capsys.readouterr().err
        assert "HeartbeatViewReported" in err or "health" in err

    def test_watch_without_path_or_demo_is_usage_error(self, capsys):
        assert obs_main(["watch"]) == 2


class TestReportErrorPaths:
    """Satellite: empty or truncated exports exit non-zero with a clear
    message instead of a stack trace (or a silent empty report)."""

    def test_empty_export_exits_nonzero(self, tmp_path, capsys):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        assert obs_main(["report", path]) == 1
        err = capsys.readouterr().err
        assert "empty" in err
        assert "enabled registry" in err

    def test_truncated_line_exits_nonzero(self, tmp_path, capsys):
        path = str(tmp_path / "truncated.jsonl")
        reg = MetricsRegistry()
        sink = JsonLinesSink(path)
        reg.add_sink(sink)
        reg.emit(ClientReplyDecided(client_id=1, seq=0))
        sink.close(reg)
        with open(path) as fh:
            data = fh.read()
        with open(path, "w") as fh:
            fh.write(data[:len(data) - 5])  # tear the last line mid-JSON
        assert obs_main(["report", path]) == 1
        err = capsys.readouterr().err
        assert "truncated or corrupt" in err
        assert "line" in err

    def test_non_object_line_exits_nonzero(self, tmp_path, capsys):
        path = str(tmp_path / "corrupt.jsonl")
        with open(path, "w") as fh:
            fh.write("[1, 2, 3]\n")
        assert obs_main(["report", path]) == 1
        assert "corrupt" in capsys.readouterr().err

    def test_missing_file_exits_nonzero(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path / "nope.jsonl")]) == 1
        assert "cannot read" in capsys.readouterr().err


def _addr(pid, offset):
    return PeerAddress(pid, "127.0.0.1", BASE_PORT + offset + pid)


async def _admin_request(host, port, request):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        line = request if isinstance(request, str) else json.dumps(request)
        writer.write((line + "\n").encode())
        await writer.drain()
        raw = await asyncio.wait_for(reader.readline(), timeout=5.0)
        return json.loads(raw)
    finally:
        writer.close()


class TestAdminEndpoint:
    def _build(self, offset, tmp_path):
        cc = ClusterConfig(0, (1, 2, 3))
        addrs = {p: _addr(p, offset) for p in cc.servers}
        reg = MetricsRegistry()
        nodes = {}
        for p in cc.servers:
            server = OmniPaxosServer(OmniPaxosConfig(
                pid=p, cluster=cc, hb_period_ms=40.0, initial_leader=1))
            nodes[p] = RuntimeNode(
                server, addrs[p],
                {q: a for q, a in addrs.items() if q != p},
                tick_ms=8.0,
                obs=reg if p == 1 else None,
                admin=("127.0.0.1", 0) if p == 1 else None,
                ping_interval_ms=40.0 if p == 1 else None,
            )
        return nodes

    def test_admin_status_metrics_flight(self, tmp_path):
        async def scenario():
            nodes = self._build(0, tmp_path)
            for node in nodes.values():
                await node.start()
            try:
                host, port = nodes[1].admin_address
                await asyncio.sleep(1.0)  # let heartbeats + pings flow

                status = await _admin_request(host, port, "status")
                assert status["ok"] is True
                assert status["status"]["pid"] == 1
                assert status["status"]["phase"] in ("leader", "follower")
                assert set(status["status"]["connected_peers"]) == {2, 3}
                assert "flight" in status["status"]

                metrics = await _admin_request(host, port,
                                               {"cmd": "metrics"})
                assert metrics["ok"] is True
                names = {m["name"] for m in metrics["metrics"]}
                assert "repro_link_rtt_ms" in names

                summary = await _admin_request(host, port, "flight")
                assert summary["ok"] is True
                assert summary["flight"]["recorded"] > 0

                dump_path = str(tmp_path / "admin.flight.jsonl")
                dumped = await _admin_request(
                    host, port, {"cmd": "flight", "path": dump_path})
                assert dumped["ok"] is True
                assert dumped["events_written"] > 0
                events, _m = read_jsonl(dump_path)
                assert len(events) == dumped["events_written"]

                unknown = await _admin_request(host, port, {"cmd": "bogus"})
                assert unknown["ok"] is False
                assert "unknown command" in unknown["error"]

                garbage = await _admin_request(host, port, "{not json")
                assert garbage["ok"] is False
                assert garbage["error"] == "invalid JSON request"
            finally:
                for node in nodes.values():
                    await node.stop()

        asyncio.run(scenario())

    def test_flight_verb_off_without_observability(self, tmp_path):
        async def scenario():
            cc = ClusterConfig(0, (1,))
            server = OmniPaxosServer(OmniPaxosConfig(
                pid=1, cluster=cc, hb_period_ms=40.0, initial_leader=1))
            node = RuntimeNode(server, _addr(1, 20), {},
                               tick_ms=8.0, admin=("127.0.0.1", 0))
            await node.start()
            try:
                host, port = node.admin_address
                resp = await _admin_request(host, port, "flight")
                assert resp["ok"] is False
                assert "observability" in resp["error"]
                status = await _admin_request(host, port, "status")
                assert status["ok"] is True
                assert "flight" not in status["status"]
            finally:
                await node.stop()

        asyncio.run(scenario())
