"""Chaos engine: schedule round-trips, bit-determinism, replay, knobs."""

import json

import pytest

from repro.chaos.engine import run_schedule
from repro.chaos.generator import generate_schedule
from repro.chaos.schedule import ChaosSchedule, FaultOp, describe_op
from repro.errors import ConfigError
from repro.obs.events import NemesisInjected
from repro.obs.exporters import MemorySink
from repro.obs.registry import MetricsRegistry
from repro.sim.harness import PROTOCOLS


def short_schedule(seed=7, protocol="omni", **kw):
    kw.setdefault("duration_ms", 3_000.0)
    kw.setdefault("num_ops", 6)
    return generate_schedule(seed, protocol, num_servers=3, **kw)


class TestScheduleData:
    def test_json_round_trip_is_lossless(self):
        schedule = short_schedule()
        again = ChaosSchedule.from_json(schedule.to_json())
        assert again == schedule
        assert again.digest() == schedule.digest()

    def test_digest_changes_with_ops(self):
        schedule = short_schedule()
        assert schedule.ops, "generator should emit ops"
        assert schedule.without_ops([0]).digest() != schedule.digest()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultOp(at_ms=0.0, kind="meteor_strike", params={})

    def test_missing_params_rejected(self):
        with pytest.raises(ConfigError):
            FaultOp(at_ms=0.0, kind="crash", params={"pid": 1})

    def test_ops_must_be_time_ordered(self):
        op = FaultOp(at_ms=100.0, kind="loss_burst",
                     params={"rate": 0.1, "duration_ms": 50.0})
        early = FaultOp(at_ms=0.0, kind="loss_burst",
                        params={"rate": 0.1, "duration_ms": 50.0})
        with pytest.raises(ConfigError):
            ChaosSchedule(seed=0, protocol="omni", num_servers=3,
                          duration_ms=1000.0, ops=(op, early))

    def test_describe_covers_every_kind(self):
        schedule = generate_schedule(3, "omni", 3, duration_ms=10_000.0,
                                     num_ops=40, allow_wipe=True)
        for op in schedule.ops:
            assert describe_op(op).startswith("t=")


class TestGeneratorDeterminism:
    def test_same_seed_same_schedule(self):
        assert short_schedule(seed=11).to_json() == \
            short_schedule(seed=11).to_json()

    def test_different_seeds_differ(self):
        assert short_schedule(seed=11).digest() != \
            short_schedule(seed=12).digest()

    def test_wipes_only_when_allowed(self):
        schedule = generate_schedule(5, "omni", 3, duration_ms=20_000.0,
                                     num_ops=60, allow_wipe=False)
        for op in schedule.ops:
            if op.kind == "crash":
                assert not op.params["wipe"]

    def test_storage_faults_only_for_omni(self):
        schedule = generate_schedule(5, "raft", 3, duration_ms=20_000.0,
                                     num_ops=60)
        assert all(op.kind != "storage_fault" for op in schedule.ops)


class TestEngineDeterminism:
    def test_same_schedule_bit_identical_results(self):
        schedule = short_schedule(seed=21)
        a = run_schedule(schedule).to_dict()
        b = run_schedule(schedule).to_dict()
        assert a == b

    def test_replay_from_json_reproduces_exactly(self):
        schedule = short_schedule(seed=22)
        direct = run_schedule(schedule).to_dict()
        replayed = run_schedule(
            ChaosSchedule.from_json(schedule.to_json())
        ).to_dict()
        assert direct == replayed

    def test_result_dict_is_json_serializable(self):
        result = run_schedule(short_schedule(seed=23))
        json.dumps(result.to_dict())


class TestEngineRuns:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_short_schedule_is_safe(self, protocol):
        result = run_schedule(short_schedule(seed=31, protocol=protocol))
        assert result.ok, result.violation
        assert result.decided_len > 0
        assert result.ops_applied == 6

    def test_wiped_restarts_run_clean_on_omni(self):
        schedule = generate_schedule(2, "omni", 3, duration_ms=4_000.0,
                                     num_ops=10, allow_wipe=True)
        result = run_schedule(schedule)
        assert result.ok, result.violation

    def test_storage_fault_crashes_and_recovers(self):
        ops = (
            FaultOp(at_ms=600.0, kind="storage_fault",
                    params={"pid": 1, "after_writes": 0, "mode": "fail",
                            "heal_ms": 400.0}),
        )
        schedule = ChaosSchedule(seed=41, protocol="omni", num_servers=3,
                                 duration_ms=3_000.0, ops=ops)
        result = run_schedule(schedule)
        assert result.ok, result.violation
        assert result.storage_crashes >= 1
        assert result.converged

    def test_nemesis_events_exported(self):
        registry = MetricsRegistry()
        sink = MemorySink()
        registry.add_sink(sink)
        schedule = short_schedule(seed=51)
        run_schedule(schedule, obs=registry)
        nemesis = [r for r in sink.records
                   if isinstance(r.event, NemesisInjected)]
        applies = [r for r in nemesis if r.event.phase == "apply"]
        # Every op applied shows up, plus the final heal_all marker.
        assert len(applies) >= len(schedule.ops)
        assert any(r.event.op == "heal_all" for r in nemesis)

    def test_dup_and_reorder_bursts_account(self):
        ops = (
            FaultOp(at_ms=500.0, kind="dup_burst",
                    params={"rate": 0.3, "duration_ms": 1_000.0}),
            FaultOp(at_ms=500.0, kind="reorder_burst",
                    params={"rate": 0.3, "window_ms": 50.0,
                            "duration_ms": 1_000.0}),
        )
        schedule = ChaosSchedule(seed=61, protocol="omni", num_servers=3,
                                 duration_ms=3_000.0, ops=ops)
        result = run_schedule(schedule)
        assert result.ok, result.violation
        assert result.messages["duplicated"] > 0
        assert result.messages["reordered"] > 0

    def test_clock_skew_applies(self):
        ops = (
            FaultOp(at_ms=300.0, kind="clock_skew",
                    params={"pid": 2, "factor": 3.0,
                            "duration_ms": 1_500.0}),
        )
        schedule = ChaosSchedule(seed=71, protocol="omni", num_servers=3,
                                 duration_ms=3_000.0, ops=ops)
        result = run_schedule(schedule)
        assert result.ok, result.violation
        assert result.converged


class TestTickScale:
    def test_rejects_unknown_pid(self):
        from repro.sim.harness import ExperimentConfig, build_experiment

        exp = build_experiment(ExperimentConfig(num_servers=3))
        with pytest.raises(ConfigError):
            exp.cluster.set_tick_scale(99, 2.0)
        with pytest.raises(ConfigError):
            exp.cluster.set_tick_scale(1, 0.0)

    def test_skewed_server_ticks_slower(self):
        from repro.sim.harness import ExperimentConfig, build_experiment

        exp = build_experiment(ExperimentConfig(num_servers=3, tick_ms=10.0))
        ticks = {1: 0, 2: 0}
        originals = {pid: exp.cluster.replica(pid) for pid in (1, 2)}
        for pid in (1, 2):
            orig = originals[pid].tick

            def counted(now_ms, pid=pid, orig=orig):
                ticks[pid] += 1
                return orig(now_ms)

            originals[pid].tick = counted
        exp.cluster.set_tick_scale(2, 4.0)
        exp.cluster.run_for(1_000.0)
        # Server 2 checks its timers ~4x less often than server 1.
        assert ticks[2] < ticks[1] / 2
