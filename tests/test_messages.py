"""Unit tests for wire messages and the multiplexing envelope."""

import pytest

from repro.omni.ballot import Ballot
from repro.omni.entry import Command, StopSign, entry_wire_size, is_stopsign
from repro.omni.messages import (
    Accepted,
    AcceptDecide,
    AcceptSync,
    COMPONENT_BLE,
    COMPONENT_SERVICE,
    COMPONENT_SP,
    Decide,
    Envelope,
    HeartbeatReply,
    HeartbeatRequest,
    JoinComplete,
    LogPullRequest,
    LogSegment,
    NewConfiguration,
    Prepare,
    PrepareReq,
    Promise,
    ProposalForward,
    entries_wire_size,
)

B = Ballot(3, 0, 2)


def all_messages():
    cmds = (Command(b"12345678"),)
    return [
        HeartbeatRequest(1),
        HeartbeatReply(1, B, True),
        Prepare(B, B, 10, 5),
        Promise(B, B, cmds, 10, 5),
        AcceptSync(B, cmds, 3, 2),
        AcceptDecide(B, cmds, 4),
        Accepted(B, 10),
        Decide(B, 9),
        PrepareReq(),
        ProposalForward(cmds),
        NewConfiguration(1, (1, 2, 3), 100, donors=(4, 5)),
        JoinComplete(1),
        LogPullRequest(1, 0, 100),
        LogSegment(1, 0, cmds, True),
    ]


class TestWireSizes:
    @pytest.mark.parametrize("msg", all_messages(),
                             ids=lambda m: type(m).__name__)
    def test_positive_size(self, msg):
        assert msg.wire_size() > 0

    def test_payload_dominates_large_batches(self):
        small = AcceptDecide(B, (Command(b"x" * 8),), 0)
        big = AcceptDecide(B, tuple(Command(b"x" * 8) for _ in range(1000)), 0)
        assert big.wire_size() > 900 * small.wire_size() / 10

    def test_entries_wire_size_sums(self):
        entries = (Command(b"abcd"), Command(b"efgh"))
        assert entries_wire_size(entries) == sum(
            e.wire_size() for e in entries
        )

    def test_envelope_adds_small_overhead(self):
        inner = Accepted(B, 1)
        env = Envelope(0, COMPONENT_SP, inner)
        assert inner.wire_size() < env.wire_size() < inner.wire_size() + 16

    def test_messages_are_immutable(self):
        msg = Decide(B, 1)
        with pytest.raises(AttributeError):
            msg.decided_idx = 2  # type: ignore[misc]


class TestEntries:
    def test_command_wire_size_tracks_payload(self):
        assert Command(b"x" * 100).wire_size() == 116

    def test_stopsign_wire_size_tracks_members(self):
        small = StopSign(1, (1,))
        large = StopSign(1, tuple(range(1, 11)))
        assert large.wire_size() > small.wire_size()

    def test_stopsign_metadata_counted(self):
        plain = StopSign(1, (1, 2))
        meta = StopSign(1, (1, 2), metadata=b"z" * 64)
        assert meta.wire_size() == plain.wire_size() + 64

    def test_is_stopsign(self):
        assert is_stopsign(StopSign(1, (1,)))
        assert not is_stopsign(Command(b""))
        assert not is_stopsign("random")

    def test_entry_wire_size_fallback(self):
        assert entry_wire_size(object()) == 16

    def test_command_identity_fields(self):
        c = Command(b"data", client_id=7, seq=9)
        assert (c.client_id, c.seq) == (7, 9)


class TestEnvelopeRouting:
    def test_components_are_distinct(self):
        assert len({COMPONENT_BLE, COMPONENT_SP, COMPONENT_SERVICE}) == 3

    def test_envelope_carries_config_id(self):
        env = Envelope(5, COMPONENT_BLE, HeartbeatRequest(1))
        assert env.config_id == 5
        assert env.component == COMPONENT_BLE
