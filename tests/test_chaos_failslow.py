"""Fail-slow chaos: first-class gray-failure injection (ROADMAP item 5).

The tentpole claims under test:

- ``slow_cpu`` / ``slow_disk`` / ``slow_link`` are full citizens of the
  fault vocabulary: they serialize, replay bit-identically, describe
  themselves, shrink, and run safely on every protocol,
- fail-slow faults *stack and revert cleanly* — a ``clock_skew`` and a
  ``slow_cpu`` overlapping on one pid compose multiplicatively and each
  revert removes exactly its own layer regardless of order (the
  regression that motivated layered tick scaling),
- the slow-disk stall path rides ``FaultyStorage`` without breaking its
  fail/torn machinery.
"""

import pytest

from repro.chaos.engine import run_schedule
from repro.chaos.generator import generate_schedule
from repro.chaos.schedule import (
    KINDS,
    OP_PARAMS,
    ChaosSchedule,
    FaultOp,
    describe_op,
)
from repro.chaos.shrink import shrink_schedule
from repro.errors import ConfigError, StorageError
from repro.omni.faults import FaultyStorage
from repro.omni.storage import InMemoryStorage
from repro.sim.harness import PROTOCOLS, ExperimentConfig, build_experiment

#: One valid op per registered kind. Kept exhaustive on purpose: adding a
#: fault kind without extending this table fails the coverage test below.
SAMPLE_OPS = {
    "crash": {"pid": 1, "down_ms": 300.0, "wipe": False},
    "partition": {"pattern": "random", "links": [[1, 2]], "heal_ms": 400.0},
    "delay_spike": {"links": [[1, 3]], "extra_ms": 50.0,
                    "duration_ms": 400.0},
    "loss_burst": {"rate": 0.2, "duration_ms": 400.0},
    "dup_burst": {"rate": 0.2, "duration_ms": 400.0},
    "reorder_burst": {"rate": 0.2, "window_ms": 50.0, "duration_ms": 400.0},
    "storage_fault": {"pid": 1, "after_writes": 3, "mode": "fail",
                      "heal_ms": 400.0},
    "clock_skew": {"pid": 1, "factor": 2.0, "duration_ms": 400.0},
    "slow_cpu": {"pid": 1, "factor": 50.0, "per_msg_ms": 0.5,
                 "duration_ms": 400.0},
    "slow_disk": {"pid": 1, "per_write_ms": 1.0, "duration_ms": 400.0},
    "slow_link": {"src": 1, "dst": 2, "inflate_ms": 80.0,
                  "duration_ms": 400.0},
}


def _op(kind, at_ms=500.0):
    return FaultOp(at_ms=at_ms, kind=kind, params=dict(SAMPLE_OPS[kind]))


class TestVocabularyExhaustive:
    """Satellite: describe/serialize coverage locked to OP_PARAMS."""

    def test_sample_table_covers_every_kind(self):
        assert set(SAMPLE_OPS) == set(OP_PARAMS) == set(KINDS)

    @pytest.mark.parametrize("kind", sorted(OP_PARAMS))
    def test_round_trip_and_describe(self, kind):
        op = _op(kind)
        schedule = ChaosSchedule(seed=1, protocol="omni", num_servers=3,
                                 duration_ms=2_000.0, ops=(op,))
        again = ChaosSchedule.from_json(schedule.to_json())
        assert again == schedule
        assert again.digest() == schedule.digest()
        line = describe_op(op)
        assert line.startswith("t=500 ")
        assert kind.split("_")[0] in line or kind in line

    def test_describe_mentions_the_fail_slow_knobs(self):
        assert "x50" in describe_op(_op("slow_cpu"))
        assert "+0.50ms/msg" in describe_op(_op("slow_cpu"))
        assert "+1.00ms/write" in describe_op(_op("slow_disk"))
        assert "1->2" in describe_op(_op("slow_link"))

    def test_fail_slow_params_are_required(self):
        with pytest.raises(ConfigError):
            FaultOp(at_ms=0.0, kind="slow_cpu", params={"pid": 1})
        with pytest.raises(ConfigError):
            FaultOp(at_ms=0.0, kind="slow_link",
                    params={"src": 1, "dst": 2})


class TestGeneratorIncludesFailSlow:
    def test_fail_slow_kinds_are_drawn(self):
        schedule = generate_schedule(3, "omni", 3, duration_ms=30_000.0,
                                     num_ops=80)
        kinds = {op.kind for op in schedule.ops}
        assert "slow_cpu" in kinds
        assert "slow_link" in kinds
        assert "slow_disk" in kinds

    def test_slow_disk_only_for_omni(self):
        for protocol in ("raft", "raft_pvcq", "multipaxos", "vr"):
            schedule = generate_schedule(3, protocol, 3,
                                         duration_ms=30_000.0, num_ops=80)
            assert all(op.kind != "slow_disk" for op in schedule.ops)


FAIL_SLOW_OPS = (
    FaultOp(at_ms=500.0, kind="slow_cpu",
            params={"pid": 2, "factor": 100.0, "per_msg_ms": 0.5,
                    "duration_ms": 800.0}),
    FaultOp(at_ms=700.0, kind="slow_link",
            params={"src": 1, "dst": 3, "inflate_ms": 60.0,
                    "duration_ms": 600.0}),
)


class TestEngineFailSlow:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_fail_slow_schedule_safe_on_every_protocol(self, protocol):
        ops = FAIL_SLOW_OPS
        if protocol == "omni":
            ops = ops + (FaultOp(
                at_ms=900.0, kind="slow_disk",
                params={"pid": 1, "per_write_ms": 0.5,
                        "duration_ms": 600.0}),)
        schedule = ChaosSchedule(seed=17, protocol=protocol, num_servers=3,
                                 duration_ms=4_000.0, ops=ops)
        result = run_schedule(schedule)
        assert result.ok, result.violation
        assert result.decided_len > 0

    def test_fail_slow_schedule_bit_deterministic(self):
        schedule = ChaosSchedule(seed=17, protocol="omni", num_servers=3,
                                 duration_ms=4_000.0, ops=FAIL_SLOW_OPS)
        assert run_schedule(schedule).to_dict() == \
            run_schedule(schedule).to_dict()

    def test_slow_disk_noop_on_baselines(self):
        op = FaultOp(at_ms=500.0, kind="slow_disk",
                     params={"pid": 1, "per_write_ms": 1.0,
                             "duration_ms": 500.0})
        schedule = ChaosSchedule(seed=3, protocol="raft", num_servers=3,
                                 duration_ms=3_000.0, ops=(op,))
        result = run_schedule(schedule)
        assert result.ok, result.violation

    def test_slow_cpu_actually_slows_decisions(self):
        # Slowing the leader (BLE elects the highest pid, 3) for most of
        # the run must cost decided throughput vs the fault-free twin.
        op = FaultOp(at_ms=500.0, kind="slow_cpu",
                     params={"pid": 3, "factor": 100.0, "per_msg_ms": 5.0,
                             "duration_ms": 2_000.0})
        base = ChaosSchedule(seed=23, protocol="omni", num_servers=3,
                             duration_ms=3_000.0)
        slow = ChaosSchedule(seed=23, protocol="omni", num_servers=3,
                             duration_ms=3_000.0, ops=(op,))
        fast_run = run_schedule(base)
        slow_run = run_schedule(slow)
        assert fast_run.ok and slow_run.ok
        assert slow_run.decided_len < fast_run.decided_len

    def test_fail_slow_ops_shrink(self):
        ops = tuple(sorted(
            (_op("crash", 400.0), _op("delay_spike", 600.0),
             _op("slow_cpu", 800.0), _op("slow_link", 1000.0),
             _op("clock_skew", 1200.0)),
            key=lambda o: o.at_ms,
        ))
        schedule = ChaosSchedule(seed=7, protocol="omni", num_servers=3,
                                 duration_ms=3_000.0, ops=ops)
        shrunk, runs = shrink_schedule(
            schedule,
            reproduces=lambda s: any(op.kind == "slow_cpu" for op in s.ops),
        )
        assert [op.kind for op in shrunk.ops] == ["slow_cpu"]
        assert runs > 0


class TestStackingReverts:
    """Satellite: layered tick scaling composes and reverts cleanly."""

    def test_push_pop_either_order_restores_nominal(self):
        exp = build_experiment(ExperimentConfig(num_servers=3))
        cluster = exp.cluster
        skew = cluster.push_tick_scale(2, 3.0)
        slow = cluster.push_tick_scale(2, 100.0)
        assert cluster.tick_scale_of(2) == pytest.approx(300.0)
        cluster.pop_tick_scale(2, skew)  # reverse of push order
        assert cluster.tick_scale_of(2) == pytest.approx(100.0)
        cluster.pop_tick_scale(2, slow)
        assert cluster.tick_scale_of(2) == pytest.approx(1.0)

    def test_set_tick_scale_heals_wholesale(self):
        exp = build_experiment(ExperimentConfig(num_servers=3))
        cluster = exp.cluster
        cluster.push_tick_scale(2, 3.0)
        cluster.push_tick_scale(2, 100.0)
        cluster.set_tick_scale(2, 1.0)  # heal_everything's reset
        assert cluster.tick_scale_of(2) == pytest.approx(1.0)

    def test_overlapping_skew_and_slow_cpu_run_clean(self):
        ops = (
            FaultOp(at_ms=400.0, kind="clock_skew",
                    params={"pid": 2, "factor": 2.0,
                            "duration_ms": 1_200.0}),
            FaultOp(at_ms=600.0, kind="slow_cpu",
                    params={"pid": 2, "factor": 10.0, "per_msg_ms": 0.2,
                            "duration_ms": 600.0}),
        )
        schedule = ChaosSchedule(seed=29, protocol="omni", num_servers=3,
                                 duration_ms=4_000.0, ops=ops)
        a = run_schedule(schedule)
        b = run_schedule(schedule)
        assert a.ok, a.violation
        assert a.converged
        assert a.to_dict() == b.to_dict()


class TestFaultyStorageSlowWrites:
    def _fs(self):
        fs = FaultyStorage(InMemoryStorage())
        stalls = []
        fs.on_write_stall = stalls.append
        return fs, stalls

    def test_slow_writes_stall_every_write(self):
        fs, stalls = self._fs()
        fs.slow_writes(1.5)
        fs.append_entry("a")
        fs.append_entries(["b", "c"])
        assert fs.writes_slowed == 2
        assert stalls == [1.5, 1.5]
        assert fs.log_len() == 3  # slow, not broken

    def test_heal_clears_slowness(self):
        fs, stalls = self._fs()
        fs.slow_writes(2.0)
        fs.append_entry("a")
        fs.heal()
        assert fs.slow_ms == 0.0
        fs.append_entry("b")
        assert stalls == [2.0]

    def test_negative_rate_rejected(self):
        fs, _ = self._fs()
        with pytest.raises(ValueError):
            fs.slow_writes(-1.0)

    def test_slow_writes_compose_with_fail_after(self):
        # A disk can be slow *and* about to die: the failing write still
        # charges its stall (the fsync blocked, then errored).
        fs, stalls = self._fs()
        fs.slow_writes(1.0)
        fs.fail_after(1, mode="fail")
        fs.append_entry("a")  # succeeds, stalls
        with pytest.raises(StorageError):
            fs.append_entry("b")
        assert stalls == [1.0, 1.0]
