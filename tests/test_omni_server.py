"""Integration-style tests for OmniPaxosServer through the simulator."""

import pytest

from repro.errors import ConfigError, NotLeaderError
from repro.omni.entry import Command, StopSign, is_stopsign
from repro.omni.server import ClusterConfig, OmniPaxosConfig, OmniPaxosServer
from repro.omni.storage import InMemoryStorage

from tests.conftest import build_omni_cluster, decided_logs_agree, run_until_leader


def cmd(i: int) -> Command:
    return Command(data=b"x", client_id=1, seq=i)


class TestConfigValidation:
    def test_cluster_config_rejects_empty(self):
        with pytest.raises(ConfigError):
            ClusterConfig(0, ())

    def test_cluster_config_rejects_duplicates(self):
        with pytest.raises(ConfigError):
            ClusterConfig(0, (1, 1, 2))

    def test_cluster_config_rejects_nonpositive_pids(self):
        with pytest.raises(ConfigError):
            ClusterConfig(0, (0, 1))

    def test_majority(self):
        assert ClusterConfig(0, (1, 2, 3)).majority == 2
        assert ClusterConfig(0, (1, 2, 3, 4, 5)).majority == 3

    def test_peers_of(self):
        assert ClusterConfig(0, (1, 2, 3)).peers_of(2) == (1, 3)

    def test_joiner_flag(self):
        cfg = OmniPaxosConfig(pid=9, cluster=ClusterConfig(0, (1, 2, 3)))
        assert cfg.is_joiner
        cfg = OmniPaxosConfig(pid=1, cluster=ClusterConfig(0, (1, 2, 3)))
        assert not cfg.is_joiner

    def test_initial_leader_must_be_member(self):
        cfg = OmniPaxosConfig(pid=1, cluster=ClusterConfig(0, (1, 2, 3)),
                              initial_leader=9)
        server = OmniPaxosServer(cfg)
        with pytest.raises(ConfigError):
            server.start(0.0)


class TestElectionAndReplication:
    def test_exactly_one_leader(self, omni3):
        sim, servers, leader = omni3
        assert sim.leaders() == [leader]

    def test_replication_reaches_all(self, omni3):
        sim, servers, leader = omni3
        for i in range(10):
            sim.propose(leader, cmd(i))
        sim.run_for(50)
        for server in servers.values():
            assert server.global_log_len == 10
        assert decided_logs_agree(servers)

    def test_follower_forwards_to_leader(self, omni3):
        sim, servers, leader = omni3
        follower = next(p for p in servers if p != leader)
        sim.propose(follower, cmd(0))
        sim.run_for(50)
        assert servers[leader].global_log_len == 1

    def test_seeded_leader_skips_election(self):
        sim, servers = build_omni_cluster(3, initial_leader=2)
        sim.run_for(20)
        assert sim.leaders() == [2]

    def test_leader_pid_agrees_everywhere(self, omni3):
        sim, servers, leader = omni3
        assert {srv.leader_pid for srv in servers.values()} == {leader}

    def test_read_log_slices(self, omni3):
        sim, servers, leader = omni3
        for i in range(5):
            sim.propose(leader, cmd(i))
        sim.run_for(50)
        log = servers[leader].read_log(1, 3)
        assert [e.seq for e in log] == [1, 2]

    def test_propose_on_unstarted_joiner_raises(self):
        server = OmniPaxosServer(OmniPaxosConfig(
            pid=9, cluster=ClusterConfig(0, (1, 2, 3))
        ))
        server.start(0.0)
        with pytest.raises(NotLeaderError):
            server.propose(cmd(0), 0.0)

    def test_propose_batch_is_single_accept(self, omni3):
        sim, servers, leader = omni3
        sim.run_for(100)  # let the leader finish its Prepare phase
        before = sim.network.messages_sent
        sim.propose_batch(leader, [cmd(i) for i in range(100)])
        after = sim.network.messages_sent
        # One AcceptDecide per follower, not per entry.
        assert after - before == 2


class TestCrashRecovery:
    def test_follower_crash_recover_catches_up(self, omni3):
        sim, servers, leader = omni3
        follower = next(p for p in servers if p != leader)
        sim.crash(follower)
        for i in range(5):
            sim.propose(leader, cmd(i))
        sim.run_for(100)
        assert servers[follower].global_log_len == 0  # crashed: silent
        sim.recover(follower)
        sim.run_for(300)
        assert servers[follower].global_log_len == 5

    def test_leader_crash_fails_over(self, omni3):
        sim, servers, leader = omni3
        sim.propose(leader, cmd(0))
        sim.run_for(50)
        sim.crash(leader)
        new_leader = run_until_leader(sim)
        assert new_leader != leader
        sim.propose(new_leader, cmd(1))
        sim.run_for(50)
        survivors = {p: s for p, s in servers.items() if p != leader}
        assert all(s.global_log_len == 2 for s in survivors.values())

    def test_recovered_leader_rejoins_as_follower(self, omni3):
        sim, servers, leader = omni3
        sim.propose(leader, cmd(0))
        sim.run_for(50)
        sim.crash(leader)
        new_leader = run_until_leader(sim)
        sim.propose(new_leader, cmd(1))
        sim.run_for(50)
        sim.recover(leader)
        sim.run_for(500)
        assert servers[leader].global_log_len == 2
        assert not servers[leader].is_leader

    def test_majority_crash_blocks_then_recovers(self, omni3):
        sim, servers, leader = omni3
        followers = [p for p in servers if p != leader]
        sim.crash(followers[0])
        sim.crash(followers[1])
        sim.propose(leader, cmd(0))
        sim.run_for(300)
        assert servers[leader].global_log_len == 0
        sim.recover(followers[0])
        sim.run_for(500)
        assert servers[leader].global_log_len == 1


class TestSessionDrops:
    def test_link_flap_resyncs_follower(self, omni3):
        sim, servers, leader = omni3
        follower = next(p for p in servers if p != leader)
        sim.set_link(leader, follower, False)
        for i in range(5):
            sim.propose(leader, cmd(i))
        sim.run_for(100)
        assert servers[follower].global_log_len < 5
        sim.set_link(leader, follower, True)
        sim.run_for(300)
        assert servers[follower].global_log_len == 5


class TestReconfiguration:
    def test_replace_one_server(self):
        sim, servers = build_omni_cluster(3, joiners=(4,))
        leader = run_until_leader(sim)
        for i in range(20):
            sim.propose(leader, cmd(i))
        sim.run_for(100)
        new_config = tuple(sorted({1, 2, 3, 4} - {next(
            p for p in (1, 2, 3) if p != leader)}))
        sim.reconfigure(leader, new_config)
        sim.run_for(3000)
        joiner = servers[4]
        assert tuple(sorted(joiner.members)) == new_config
        # 20 commands + 1 stop-sign.
        assert joiner.global_log_len == 21
        assert is_stopsign(joiner.read_log()[20])

    def test_replicas_converge_after_reconfig(self):
        sim, servers = build_omni_cluster(3, joiners=(4,))
        leader = run_until_leader(sim)
        for i in range(10):
            sim.propose(leader, cmd(i))
        sim.run_for(100)
        sim.reconfigure(leader, (1, 2, 3, 4))
        sim.run_for(3000)
        new_leader = run_until_leader(sim)
        sim.propose(new_leader, cmd(100))
        sim.run_for(200)
        lengths = {p: servers[p].global_log_len for p in (1, 2, 3, 4)}
        assert set(lengths.values()) == {12}  # 10 + stop-sign + 1 new
        assert decided_logs_agree(servers)

    def test_removed_server_retires(self):
        sim, servers = build_omni_cluster(3, joiners=(4,))
        leader = run_until_leader(sim)
        removed = next(p for p in (1, 2, 3) if p != leader)
        new_config = tuple(sorted({1, 2, 3, 4} - {removed}))
        sim.reconfigure(leader, new_config)
        sim.run_for(3000)
        with pytest.raises(NotLeaderError):
            servers[removed].propose(cmd(0), sim.now)

    def test_proposals_during_transition_are_buffered(self):
        sim, servers = build_omni_cluster(3, joiners=(4,))
        leader = run_until_leader(sim)
        sim.reconfigure(leader, (1, 2, 3, 4))
        # Immediately propose: configuration is stopped but not switched.
        for i in range(5):
            try:
                sim.propose(leader, cmd(i))
            except NotLeaderError:
                pytest.fail("leader must buffer, not reject, during transition")
        sim.run_for(3000)
        new_leader = run_until_leader(sim)
        sim.run_for(500)
        # All five buffered commands eventually decide in the new config.
        total = servers[new_leader].global_log_len
        assert total == 6  # 5 commands + stop-sign

    def test_stopsign_visible_in_decided_stream(self):
        sim, servers = build_omni_cluster(3)
        leader = run_until_leader(sim)
        seen = []
        sim.on_decided(lambda pid, idx, entry, now: seen.append((pid, entry)))
        sim.reconfigure(leader, (1, 2))
        sim.run_for(1000)
        assert any(is_stopsign(entry) for _pid, entry in seen)

    def test_leader_only_migration_also_completes(self):
        sim, servers = build_omni_cluster(
            3, joiners=(4,), migration_strategy="leader"
        )
        leader = run_until_leader(sim)
        for i in range(10):
            sim.propose(leader, cmd(i))
        sim.run_for(100)
        sim.reconfigure(leader, (1, 2, 3, 4))
        sim.run_for(3000)
        assert servers[4].global_log_len == 11


class TestPreload:
    def test_preloaded_storage_seeds_global_log(self):
        entries = tuple(cmd(i) for i in range(50))

        def factory(config_id):
            storage = InMemoryStorage()
            if config_id == 0:
                storage.append_entries(entries)
                storage.set_decided_idx(len(entries))
            return storage

        sim, servers = build_omni_cluster(3, storage_factory=factory)
        leader = run_until_leader(sim)
        assert all(s.global_log_len == 50 for s in servers.values())
        sim.propose(leader, cmd(100))
        sim.run_for(100)
        assert all(s.global_log_len == 51 for s in servers.values())

    def test_preloaded_entries_not_reemitted(self):
        entries = tuple(cmd(i) for i in range(10))

        def factory(config_id):
            storage = InMemoryStorage()
            if config_id == 0:
                storage.append_entries(entries)
                storage.set_decided_idx(len(entries))
            return storage

        sim, servers = build_omni_cluster(3, storage_factory=factory)
        seen = []
        sim.on_decided(lambda pid, idx, entry, now: seen.append(idx))
        run_until_leader(sim)
        sim.run_for(200)
        assert seen == []  # history is not news
