"""Every example script must stay runnable — they are the documentation."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"


def test_all_examples_present():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 6
