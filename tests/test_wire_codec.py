"""Binary wire codec: per-type round-trips, fuzzed corruption, legacy
pickle-frame compatibility, and the fan-out encode cache."""

import pickle
import random
import struct

import pytest

from repro.baselines import multipaxos as mp
from repro.baselines import raft
from repro.baselines import vr
from repro.errors import TransportError
from repro.obs.spans import TraceContext
from repro.omni import messages as om
from repro.omni.ballot import Ballot, QCBallot
from repro.omni.entry import Command, SnapshotInstalled, StopSign
from repro.runtime import codec
from repro.runtime.codec import FrameDecoder, FrameEncoder, encode_frame
from repro.runtime.transport import TransportPing, TransportPong

B1 = Ballot(n=3, priority=1, pid=2)
B2 = Ballot(n=4, priority=0, pid=5)
CMDS = tuple(Command(data=bytes([i]) * 8, client_id=i % 3, seq=i + 190)
             for i in range(5))

#: One representative instance per registered message type. The
#: exhaustiveness test below fails if a registered type has no sample
#: here, so new messages must add one.
SAMPLES = [
    B1,
    QCBallot(ballot=B1, quorum_connected=True),
    Command(data=b"payload", client_id=7, seq=123456),
    Command(data=b"", client_id=-3, seq=-70000),
    StopSign(config_id=2, servers=(1, 2, 3, 4), metadata=b"\x00\xff"),
    StopSign(config_id=2, servers=(), metadata=None),
    SnapshotInstalled(state={"kv": {"a": 1}, "applied": 9}),
    TraceContext(trace_id="c1-42", span_id="0003", parent_id="0002"),
    om.Envelope(config_id=1, component=om.COMPONENT_SP,
                payload=om.PrepareReq(), trace=None),
    om.Envelope(config_id=0, component=om.COMPONENT_BLE,
                payload=om.HeartbeatRequest(round=8),
                trace=TraceContext("t", "s", "p")),
    om.HeartbeatRequest(round=17),
    om.HeartbeatReply(round=17, ballot=B2, quorum_connected=False),
    om.Prepare(n=B1, acc_rnd=B2, log_idx=10, decided_idx=8),
    om.Promise(n=B1, acc_rnd=B2, suffix=CMDS, log_idx=10, decided_idx=8,
               snapshot=None),
    om.Promise(n=B1, acc_rnd=B2, suffix=(), log_idx=0, decided_idx=0,
               snapshot=({"compacted": True}, 64)),
    om.AcceptSync(n=B1, suffix=CMDS, sync_idx=4, decided_idx=2,
                  snapshot=None, session=3),
    om.AcceptDecide(n=B1, entries=CMDS, decided_idx=120, seq=7, session=1),
    om.AcceptDecide(n=B1, entries=(), decided_idx=0, seq=0, session=0),
    om.Accepted(n=B1, log_idx=11, decided_idx=9),
    om.Trim(n=B1, trimmed_idx=64),
    om.Decide(n=B1, decided_idx=12),
    om.PrepareReq(),
    om.ProposalForward(entries=CMDS),
    om.NewConfiguration(config_id=3, servers=(2, 3, 4), log_len=100,
                        donors=(2, 3), metadata=None),
    om.JoinComplete(config_id=3),
    om.LogPullRequest(config_id=3, from_idx=0, to_idx=50),
    om.LogSegment(config_id=3, from_idx=0, entries=CMDS, complete=True),
    TransportPing(sent_ms=12345.678),
    TransportPong(sent_ms=12345.678),
    raft.RequestVote(term=5, candidate=2, last_log_idx=9, last_log_term=4,
                     prevote=True),
    raft.RequestVoteReply(term=5, granted=False, prevote=True),
    raft.AppendEntries(term=5, leader=1, prev_idx=8, prev_term=4,
                       entries=tuple(raft.RaftSlot(term=5, entry=c)
                                     for c in CMDS),
                       leader_commit=7, seq=11),
    raft.AppendEntriesReply(term=5, success=True, match_idx=13, seq=11),
    raft.RaftSlot(term=5, entry=CMDS[0]),
    raft.TimeoutNow(term=6),
    raft.RaftConfigChange(servers=(1, 2, 3)),
    raft.InstallSnapshot(term=6, leader=2, last_idx=99, last_term=5,
                         state={"kv": {}}, leader_commit=99),
    mp.P1a(ballot=(2, 1), from_slot=4),
    mp.P1b(ballot=(2, 1), promised=(2, 1),
           accepted=((4, (1, 1), CMDS[0]),), decided_upto=3),
    mp.P2a(ballot=(2, 1), first_slot=4, values=CMDS, decided_upto=3),
    mp.P2b(ballot=(2, 1), promised=(2, 1), accepted_upto=8),
    mp.Ping(),
    mp.Pong(),
    vr.StartViewChange(view=3),
    vr.DoViewChange(view=3),
    vr.StartView(view=3),
    vr.VRPing(view=3),
]


def roundtrip(payload, wire="binary", src=1):
    frames = FrameDecoder().feed(encode_frame(src, payload, wire=wire))
    assert len(frames) == 1
    got_src, got = frames[0]
    assert got_src == src
    return got


class TestRegisteredRoundTrips:
    @pytest.mark.parametrize("payload", SAMPLES,
                             ids=lambda s: type(s).__name__)
    def test_binary_roundtrip(self, payload):
        got = roundtrip(payload, wire="binary")
        assert got == payload
        assert type(got) is type(payload)

    @pytest.mark.parametrize("payload", SAMPLES,
                             ids=lambda s: type(s).__name__)
    def test_pickle_roundtrip(self, payload):
        assert roundtrip(payload, wire="pickle") == payload

    def test_every_protocol_message_is_registered(self):
        registered = set(codec.REGISTERED_MESSAGES.values())
        for module in (om, raft, mp, vr):
            for cls in module.WIRE_MESSAGES:
                assert cls in registered, (
                    f"{module.__name__}.{cls.__name__} is on the wire but "
                    "has no binary tag in repro.runtime.codec")

    def test_every_registered_type_has_a_sample(self):
        sampled = {type(s) for s in SAMPLES}
        missing = [cls.__name__
                   for cls in codec.REGISTERED_MESSAGES.values()
                   if cls not in sampled]
        assert not missing, f"no round-trip sample for: {missing}"

    def test_tags_are_stable(self):
        # Tags are wire format: they may be appended, never renumbered.
        assert codec.REGISTERED_MESSAGES[0x10] is Ballot
        assert codec.REGISTERED_MESSAGES[0x12] is Command
        assert codec.REGISTERED_MESSAGES[0x16] is om.Envelope
        assert codec.REGISTERED_MESSAGES[0x1C] is om.AcceptDecide
        assert codec.REGISTERED_MESSAGES[0x2E] is TransportPing
        assert codec.REGISTERED_MESSAGES[0x32] is raft.AppendEntries
        assert codec.REGISTERED_MESSAGES[0x42] is mp.P2a
        assert codec.REGISTERED_MESSAGES[0x52] is vr.StartView

    def test_duplicate_tag_rejected(self):
        with pytest.raises(ValueError):
            codec.register_message(0x10, TransportPing)

    def test_binary_is_smaller_on_the_hot_message(self):
        env = om.Envelope(config_id=0, component=om.COMPONENT_SP,
                          payload=om.AcceptDecide(
                              n=B1, entries=CMDS, decided_idx=3,
                              seq=1, session=1))
        binary = encode_frame(1, env, wire="binary")
        legacy = encode_frame(1, env, wire="pickle")
        assert len(binary) < len(legacy)


class TestPickleFallback:
    def test_unregistered_payloads_fall_back_to_pickle(self):
        for payload in ({"hello": "world"}, [1, (2, 3)], {4, 5},
                        frozenset({6}), 3 + 4j, b"raw", "text", None,
                        True, -1.5):
            assert roundtrip(payload, wire="binary") == payload

    def test_unregistered_field_values_inside_registered_types(self):
        # Chaos/reconfig payloads carry arbitrary state in Any fields.
        payload = SnapshotInstalled(state={"set": frozenset({1, 2})})
        assert roundtrip(payload) == payload

    def test_pre_pr9_pickle_frame_decodes(self):
        # A frame produced by the old runtime: 4-byte length + raw
        # pickle.dumps((src, payload)). Today's decoder must still read it.
        payload = om.Envelope(config_id=0, component=om.COMPONENT_SP,
                              payload=om.PrepareReq(), trace=None)
        body = pickle.dumps((4, payload), protocol=pickle.HIGHEST_PROTOCOL)
        frame = struct.pack(">I", len(body)) + body
        assert FrameDecoder().feed(frame) == [(4, payload)]

    def test_mixed_wire_stream(self):
        # One TCP stream may interleave both formats (e.g. across a
        # rolling upgrade); the decoder dispatches per frame.
        stream = (encode_frame(1, SAMPLES[0], wire="binary")
                  + encode_frame(1, SAMPLES[0], wire="pickle")
                  + encode_frame(1, {"fallback": True}, wire="binary"))
        got = FrameDecoder().feed(stream)
        assert [p for _, p in got] == [SAMPLES[0], SAMPLES[0],
                                       {"fallback": True}]


class TestFuzzedFrames:
    def test_truncated_frames_wait_for_more_bytes(self):
        frame = encode_frame(1, om.AcceptDecide(
            n=B1, entries=CMDS, decided_idx=3, seq=1, session=1))
        for cut in range(1, len(frame)):
            decoder = FrameDecoder()
            assert decoder.feed(frame[:cut]) == []
            out = decoder.feed(frame[cut:])
            assert len(out) == 1

    def test_interleaved_coalesced_frames_chunked_arbitrarily(self):
        rng = random.Random(42)
        payloads = [rng.choice(SAMPLES) for _ in range(60)]
        stream = b"".join(
            encode_frame(i % 5, p,
                         wire=rng.choice(("binary", "pickle")))
            for i, p in enumerate(payloads))
        decoder = FrameDecoder()
        got = []
        pos = 0
        while pos < len(stream):
            step = rng.randint(1, 97)
            got.extend(decoder.feed(stream[pos:pos + step]))
            pos += step
        assert [p for _, p in got] == payloads
        assert [s for s, _ in got] == [i % 5 for i in range(60)]

    def test_corrupt_binary_body_raises_transport_error(self):
        frame = bytearray(encode_frame(1, om.AcceptDecide(
            n=B1, entries=CMDS, decided_idx=3, seq=1, session=1)))
        rng = random.Random(7)
        hits = 0
        for _ in range(200):
            mutated = bytearray(frame)
            pos = rng.randrange(4, len(mutated))
            mutated[pos] ^= 1 << rng.randrange(8)
            try:
                out = FrameDecoder().feed(bytes(mutated))
            except TransportError:
                hits += 1
            else:
                # Some flips decode to a *different* valid value; none may
                # crash with anything but TransportError.
                assert len(out) <= 1
        assert hits > 0

    def test_unknown_value_tag_is_transport_error(self):
        # Body layout: WIRE_BINARY magic, varint src (1), then a value
        # tag no encoder ever emits.
        body = bytes([codec.WIRE_BINARY, 0x01, 0xFF])
        frame = struct.pack(">I", len(body)) + body
        with pytest.raises(TransportError):
            FrameDecoder().feed(frame)

    def test_trailing_garbage_is_transport_error(self):
        good = encode_frame(1, om.PrepareReq())
        body = good[4:] + b"\x00"
        frame = struct.pack(">I", len(body)) + body
        with pytest.raises(TransportError):
            FrameDecoder().feed(frame)

    def test_decoder_buffer_survives_a_corrupt_frame(self):
        decoder = FrameDecoder()
        body = bytes([codec.WIRE_BINARY, 0x01, 0xFF])
        bad = struct.pack(">I", len(body)) + body
        with pytest.raises(TransportError):
            decoder.feed(bad)
        # Buffer was reset: a fresh good frame decodes.
        assert decoder.feed(encode_frame(2, om.PrepareReq())) == \
            [(2, om.PrepareReq())]


class TestVarints:
    @pytest.mark.parametrize("value", [
        0, 1, -1, 63, 64, -64, -65, 127, 128, 16383, 16384,
        2**31 - 1, -2**31, 2**63, -2**63, 10**30, -10**30,
    ])
    def test_int_edge_values(self, value):
        assert roundtrip(Command(data=b"", client_id=value,
                                 seq=value)).client_id == value

    def test_primitive_values(self):
        for value in (0.0, -2.5, float("inf"), 1e300, "", "héllo ✓",
                      b"", b"\x00" * 300, (), (1, (2, "x")), [1, [2]]):
            got = roundtrip(om.ProposalForward(entries=(value,)))
            assert got.entries[0] == value


class TestFanOutCache:
    def test_same_inner_payload_encodes_identically(self):
        encoder = FrameEncoder()
        inner = om.AcceptDecide(n=B1, entries=CMDS, decided_idx=3,
                                seq=1, session=1)
        frames = [
            encoder.encode(1, om.Envelope(
                config_id=0, component=om.COMPONENT_SP, payload=inner))
            for _ in range(3)
        ]
        assert frames[0] == frames[1] == frames[2]
        # Cached bytes decode exactly like the uncached first encode.
        for frame in frames:
            (_, got), = FrameDecoder().feed(frame)
            assert got.payload == inner

    def test_cache_invalidates_on_new_payload(self):
        encoder = FrameEncoder()
        first = om.HeartbeatRequest(round=1)
        second = om.HeartbeatRequest(round=2)
        env = lambda p: om.Envelope(config_id=0,
                                    component=om.COMPONENT_BLE, payload=p)
        encoder.encode(1, env(first))
        frame = encoder.encode(1, env(second))
        (_, got), = FrameDecoder().feed(frame)
        assert got.payload == second

    def test_oversized_frame_rejected(self):
        decoder = FrameDecoder()
        huge = struct.pack(">I", codec.MAX_FRAME_BYTES + 1)
        with pytest.raises(TransportError):
            decoder.feed(huge)
        # And the buffer reset, as before PR 9.
        assert decoder.feed(encode_frame(1, om.PrepareReq())) == \
            [(1, om.PrepareReq())]
