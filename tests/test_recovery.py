"""Failure-injection tests: crash-recovery with durable storage, message
loss, and link flapping (paper sections 3 and 4.1.3)."""

import pytest

from repro.omni.entry import Command
from repro.omni.server import ClusterConfig, OmniPaxosConfig, OmniPaxosServer
from repro.omni.storage import FileStorage
from repro.sim.cluster import SimCluster
from repro.sim.events import EventQueue
from repro.sim.network import NetworkParams, SimNetwork
from repro.util.rng import make_rng

from tests.conftest import build_omni_cluster, decided_logs_agree, run_until_leader


def cmd(i: int) -> Command:
    return Command(data=b"x", client_id=1, seq=i)


class TestDurableRecovery:
    def build_durable_cluster(self, tmp_path):
        cc = ClusterConfig(0, (1, 2, 3))
        queue = EventQueue()
        net = SimNetwork(queue, NetworkParams(one_way_ms=0.1))

        def factory_for(pid):
            def factory(config_id):
                return FileStorage(str(tmp_path / f"s{pid}-c{config_id}.wal"))
            return factory

        servers = {
            pid: OmniPaxosServer(OmniPaxosConfig(
                pid=pid, cluster=cc, hb_period_ms=50.0,
                storage_factory=factory_for(pid),
            ))
            for pid in cc.servers
        }
        sim = SimCluster(servers, net, queue, tick_ms=5.0)
        sim.start()
        return sim, servers

    def test_file_backed_cluster_replicates(self, tmp_path):
        sim, servers = self.build_durable_cluster(tmp_path)
        leader = run_until_leader(sim)
        for i in range(10):
            sim.propose(leader, cmd(i))
        sim.run_for(100)
        assert all(s.global_log_len == 10 for s in servers.values())

    def test_state_survives_crash_on_disk(self, tmp_path):
        sim, servers = self.build_durable_cluster(tmp_path)
        leader = run_until_leader(sim)
        for i in range(5):
            sim.propose(leader, cmd(i))
        sim.run_for(100)
        follower = next(p for p in servers if p != leader)
        sim.crash(follower)
        sim.recover(follower)
        sim.run_for(500)
        assert servers[follower].global_log_len == 5
        # And it continues participating afterwards.
        for i in range(5, 8):
            sim.propose(leader, cmd(i))
        sim.run_for(200)
        assert servers[follower].global_log_len == 8

    def test_fresh_process_reopens_wal(self, tmp_path):
        """A brand-new FileStorage over the same path sees the log — the
        actual durability property, not just the simulated crash."""
        path = str(tmp_path / "solo.wal")
        storage = FileStorage(path)
        storage.append_entries([cmd(0), cmd(1)])
        storage.set_decided_idx(2)
        storage.close()
        reopened = FileStorage(path)
        assert reopened.log_len() == 2
        assert reopened.get_decided_idx() == 2
        reopened.close()


class TestMessageLoss:
    def test_progress_despite_random_loss(self):
        """Dropped messages delay but never break the protocol (retries via
        heartbeats, Accepted re-sends and session machinery)."""
        cc = ClusterConfig(0, (1, 2, 3))
        queue = EventQueue()
        net = SimNetwork(
            queue,
            NetworkParams(one_way_ms=0.1, loss_rate=0.05),
            rng=make_rng(11),
        )
        servers = {
            pid: OmniPaxosServer(OmniPaxosConfig(
                pid=pid, cluster=cc, hb_period_ms=50.0))
            for pid in cc.servers
        }
        sim = SimCluster(servers, net, queue, tick_ms=5.0)
        sim.start()
        leader = run_until_leader(sim)
        decided = 0
        for i in range(30):
            try:
                sim.propose(leader, cmd(i))
            except Exception:
                leaders = sim.leaders()
                if leaders:
                    leader = leaders[0]
            sim.run_for(50)
        sim.run_for(2000)
        assert decided_logs_agree(servers)
        assert max(s.global_log_len for s in servers.values()) > 0


class TestLinkFlapping:
    def test_repeated_flaps_converge(self):
        """Proposals fired into a flapping network may be lost (clients
        retry in practice), but the replicas always converge to one log and
        resume progress after healing."""
        sim, servers = build_omni_cluster(3, initial_leader=1)
        sim.run_for(200)
        for i in range(10):
            sim.propose(1, cmd(i))
            # Flap the 1<->2 link around the traffic.
            sim.set_link(1, 2, i % 2 == 0)
            sim.run_for(120)
        sim.heal_all_links()
        sim.run_for(1000)
        assert decided_logs_agree(servers)
        lengths = {s.global_log_len for s in servers.values()}
        assert len(lengths) == 1  # converged
        before = lengths.pop()
        # Progress resumes after the flapping ends.
        leader = sim.leaders()[0]
        sim.propose(leader, cmd(100))
        sim.run_for(200)
        assert all(s.global_log_len == before + 1 for s in servers.values())

    def test_session_drop_both_directions(self):
        """Whichever side hosts the leader, the PrepareReq path resyncs."""
        sim, servers = build_omni_cluster(3, initial_leader=1)
        sim.run_for(200)
        # Leader side loses follower 3.
        sim.set_link(1, 3, False)
        for i in range(3):
            sim.propose(1, cmd(i))
        sim.run_for(200)
        sim.set_link(1, 3, True)
        sim.run_for(300)
        assert servers[3].global_log_len == 3


class TestMultiCrash:
    def test_rolling_restarts(self):
        sim, servers = build_omni_cluster(5, initial_leader=3)
        sim.run_for(200)
        total = 0
        for round_no in range(3):
            for i in range(5):
                leaders = sim.leaders()
                if leaders:
                    try:
                        sim.propose(leaders[0], cmd(total))
                        total += 1
                    except Exception:
                        pass
                sim.run_for(30)
            victim = (round_no % 5) + 1
            sim.crash(victim)
            sim.run_for(400)
            sim.recover(victim)
            sim.run_for(600)
        sim.run_for(2000)
        assert decided_logs_agree(servers)
