"""Tests for the connectivity-aware ballot optimization (paper section 8).

When a leader change is *really required*, candidates stamp how many peers
they heard from into the ballot's priority field, so the better-connected
quorum-connected server wins the tie — without ever displacing a stable
leader.
"""

import pytest

from repro.omni.ballot import Ballot
from repro.omni.ble import BallotLeaderElection, BLEConfig

from tests.test_ble import HB, Net


def make_ble_cp(pid: int, n: int = 5, initial_leader=None):
    peers = tuple(p for p in range(1, n + 1) if p != pid)
    return BallotLeaderElection(
        BLEConfig(pid=pid, peers=peers, hb_period_ms=HB,
                  connectivity_priority=True),
        initial_leader=initial_leader,
    )


class TestConnectivityPriority:
    def build(self, initial_leader=None):
        seed = Ballot(1, 0, initial_leader) if initial_leader else None
        return Net({pid: make_ble_cp(pid, 5, initial_leader=seed)
                    for pid in (1, 2, 3, 4, 5)})

    def test_better_connected_candidate_wins(self):
        """Leader 5 dies and the 1<->4 link is down too. Servers 2 and 3
        reach four servers each; 1 and 4 only three. Without the extension
        the pid tie-break elects 4 (poorly connected); with it the
        best-connected candidate (3, highest pid among them) wins."""
        net = self.build(initial_leader=5)
        for _ in range(3):
            net.advance_round()
        for other in (1, 2, 3, 4):
            net.cut(5, other)
        net.cut(4, 1)
        for _ in range(8):
            net.advance_round()
        assert net.nodes[2].leader.pid == 3
        assert net.nodes[2].leader.priority == 4  # its connectivity count

    def test_plain_tiebreak_elects_worse_connected(self):
        """Contrast: the same topology without connectivity priority elects
        the highest pid (4) even though it sees fewer servers."""
        from tests.test_ble import make_ble
        seed = Ballot(1, 0, 5)
        net = Net({pid: make_ble(pid, 5, initial_leader=seed)
                   for pid in (1, 2, 3, 4, 5)})
        for _ in range(3):
            net.advance_round()
        for other in (1, 2, 3, 4):
            net.cut(5, other)
        net.cut(4, 1)
        for _ in range(8):
            net.advance_round()
        assert net.nodes[2].leader.pid == 4

    def test_stable_cluster_never_churns(self):
        """Connectivity fluctuating between healthy rounds never triggers a
        leader change: the priority is only stamped at takeover attempts
        (the section-8 stability argument)."""
        net = self.build(initial_leader=2)
        for _ in range(10):
            net.advance_round()
        for node in net.nodes.values():
            assert node.leader.pid == 2
            assert node.stats.ballots_bumped == 0

    def test_liveness_unaffected(self):
        """The extension never blocks an election (it only breaks ties)."""
        net = self.build()
        for _ in range(5):
            net.advance_round()
        leaders = {node.leader.pid for node in net.nodes.values()
                   if node.leader is not None}
        assert len(leaders) == 1

    def test_priority_monotone_across_bumps(self):
        """Repeated takeover attempts keep ballots strictly increasing even
        as measured connectivity fluctuates (LE3 is preserved because the
        round number dominates the order)."""
        node = make_ble_cp(1, 3)
        node.start(0.0)
        seen = []
        for round_no in range(1, 6):
            # Simulate a sequence of failed leaders with rising ballots and
            # fluctuating own connectivity.
            node._leader = Ballot(n=round_no * 2, priority=0, pid=3)
            node._last_connectivity = (round_no % 3) + 1
            before = node.current_ballot
            node._check_leader()  # empty candidate set -> bump past leader
            assert node.current_ballot.n > before.n
            seen.append(node.current_ballot)
        assert seen == sorted(seen)
