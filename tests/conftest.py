"""Shared test fixtures and helpers.

Most tests drive protocol objects directly (sans-io) or through small
simulated clusters; these helpers remove the boilerplate.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import pytest

from repro.omni.server import ClusterConfig, OmniPaxosConfig, OmniPaxosServer
from repro.sim.cluster import SimCluster
from repro.sim.events import EventQueue
from repro.sim.metrics import IOTracker
from repro.sim.network import NetworkParams, SimNetwork


def build_omni_cluster(
    n: int = 3,
    hb_period_ms: float = 50.0,
    initial_leader: Optional[int] = None,
    one_way_ms: float = 0.1,
    tick_ms: float = 5.0,
    storage_factory=None,
    migration_strategy: str = "parallel",
    joiners: Tuple[int, ...] = (),
    egress_bytes_per_ms: Optional[float] = None,
):
    """A ready-started simulated Omni-Paxos cluster.

    Returns ``(cluster, servers_dict)``; ``joiners`` are extra pids
    registered on the network but not part of the initial configuration.
    """
    cluster_cfg = ClusterConfig(config_id=0, servers=tuple(range(1, n + 1)))
    queue = EventQueue()
    network = SimNetwork(
        queue,
        NetworkParams(one_way_ms=one_way_ms,
                      egress_bytes_per_ms=egress_bytes_per_ms),
        io_tracker=IOTracker(),
    )
    servers: Dict[int, OmniPaxosServer] = {}
    for pid in cluster_cfg.servers + tuple(joiners):
        kwargs = {}
        if storage_factory is not None:
            kwargs["storage_factory"] = storage_factory
        servers[pid] = OmniPaxosServer(OmniPaxosConfig(
            pid=pid,
            cluster=cluster_cfg,
            hb_period_ms=hb_period_ms,
            initial_leader=initial_leader,
            migration_strategy=migration_strategy,
            migration_retry_ms=4 * hb_period_ms,
            announce_period_ms=hb_period_ms,
            **kwargs,
        ))
    sim = SimCluster(servers, network, queue, tick_ms=tick_ms)
    sim.start()
    return sim, servers


def run_until_leader(sim: SimCluster, max_ms: float = 5_000.0,
                     step_ms: float = 50.0) -> int:
    """Advance the cluster until exactly one leader exists; return its pid."""
    elapsed = 0.0
    while elapsed < max_ms:
        sim.run_for(step_ms)
        elapsed += step_ms
        leaders = sim.leaders()
        if leaders:
            return leaders[0]
    raise AssertionError("no leader elected in time")


def decided_logs_agree(servers) -> bool:
    """SC2 check: all servers' decided logs are prefix-ordered."""
    logs = sorted((srv.read_log() for srv in servers.values()), key=len)
    for shorter, longer in zip(logs, logs[1:]):
        if longer[:len(shorter)] != shorter:
            return False
    return True


@pytest.fixture
def omni3():
    """A 3-server Omni-Paxos cluster with an established leader."""
    sim, servers = build_omni_cluster(3)
    leader = run_until_leader(sim)
    return sim, servers, leader


@pytest.fixture
def omni5():
    """A 5-server Omni-Paxos cluster with an established leader."""
    sim, servers = build_omni_cluster(5)
    leader = run_until_leader(sim)
    return sim, servers, leader
