"""Unit tests for the simulated network: latency, FIFO, partitions, egress."""

import random

import pytest

from repro.errors import ConfigError
from repro.omni.messages import PrepareReq
from repro.sim.events import EventQueue
from repro.sim.metrics import IOTracker
from repro.sim.network import NetworkParams, SimNetwork


class Msg:
    """Message with an explicit wire size."""

    def __init__(self, tag, size=100):
        self.tag = tag
        self._size = size

    def wire_size(self):
        return self._size


def build(params=NetworkParams(one_way_ms=1.0), rng=None, io=None):
    q = EventQueue()
    net = SimNetwork(q, params, rng=rng, io_tracker=io)
    inbox = []
    net.on_deliver(lambda s, d, m: inbox.append((q.now, s, d, m)))
    return q, net, inbox


class TestParams:
    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            NetworkParams(one_way_ms=-1)

    def test_rejects_bad_loss(self):
        with pytest.raises(ConfigError):
            NetworkParams(loss_rate=1.0)

    def test_rejects_bad_egress(self):
        with pytest.raises(ConfigError):
            NetworkParams(egress_bytes_per_ms=0)


class TestDelivery:
    def test_latency_applied(self):
        q, net, inbox = build()
        net.send(1, 2, Msg("a"))
        q.run_until(10.0)
        assert inbox[0][0] == 1.0

    def test_per_link_latency_override(self):
        q, net, inbox = build()
        net.set_latency(1, 2, 50.0)
        net.send(1, 2, Msg("a"))
        net.send(1, 3, Msg("b"))
        q.run_until(100.0)
        times = {m.tag: t for t, _s, _d, m in inbox}
        assert times["a"] == 50.0
        assert times["b"] == 1.0

    def test_fifo_preserved_under_jitter(self):
        rng = random.Random(1)
        q, net, inbox = build(NetworkParams(one_way_ms=1.0, jitter_ms=5.0), rng)
        for i in range(50):
            net.send(1, 2, Msg(i))
        q.run_until(100.0)
        tags = [m.tag for _t, _s, _d, m in inbox]
        assert tags == list(range(50))

    def test_loss_rate_drops_messages(self):
        rng = random.Random(1)
        q, net, inbox = build(NetworkParams(one_way_ms=1.0, loss_rate=0.5), rng)
        for i in range(200):
            net.send(1, 2, Msg(i))
        q.run_until(100.0)
        assert 40 < len(inbox) < 160
        assert net.messages_dropped > 0


class TestPartitions:
    def test_down_link_drops(self):
        q, net, inbox = build()
        net.set_link(1, 2, False)
        net.send(1, 2, Msg("a"))
        q.run_until(10.0)
        assert inbox == []
        assert not net.is_up(1, 2)
        assert net.is_up(2, 1) is False  # symmetric

    def test_in_flight_messages_lost_when_cut(self):
        q, net, inbox = build()
        net.send(1, 2, Msg("a"))
        net.set_link(1, 2, False)
        q.run_until(10.0)
        assert inbox == []

    def test_restore_triggers_session_callback(self):
        q, net, _ = build()
        restored = []
        net.on_session_restored(lambda a, b: restored.append((a, b)))
        net.set_link(1, 2, False)
        net.set_link(1, 2, True)
        assert restored == [(1, 2)]

    def test_restore_idempotent(self):
        q, net, _ = build()
        restored = []
        net.on_session_restored(lambda a, b: restored.append((a, b)))
        net.set_link(1, 2, True)  # was never down
        assert restored == []

    def test_heal_all(self):
        q, net, _ = build()
        net.set_link(1, 2, False)
        net.set_link(3, 4, False)
        net.heal_all()
        assert net.down_links() == ()


class TestEgress:
    def test_serializes_large_sends(self):
        q, net, inbox = build(NetworkParams(one_way_ms=0.0,
                                            egress_bytes_per_ms=100.0))
        net.send(1, 2, Msg("a", size=1000))   # 10 ms transmit
        net.send(1, 3, Msg("b", size=1000))   # queued behind a
        q.run_until(100.0)
        times = {m.tag: t for t, _s, _d, m in inbox}
        assert times["a"] == pytest.approx(10.0)
        assert times["b"] == pytest.approx(20.0)

    def test_independent_senders_not_serialized(self):
        q, net, inbox = build(NetworkParams(one_way_ms=0.0,
                                            egress_bytes_per_ms=100.0))
        net.send(1, 2, Msg("a", size=1000))
        net.send(3, 2, Msg("b", size=1000))
        q.run_until(100.0)
        times = {m.tag: t for t, _s, _d, m in inbox}
        assert times["a"] == pytest.approx(10.0)
        assert times["b"] == pytest.approx(10.0)

    def test_infinite_egress_by_default(self):
        q, net, inbox = build(NetworkParams(one_way_ms=1.0))
        net.send(1, 2, Msg("a", size=10 ** 9))
        q.run_until(10.0)
        assert len(inbox) == 1


class TestIOAccounting:
    def test_bytes_recorded_at_sender(self):
        io = IOTracker()
        q, net, _ = build(io=io)
        net.send(1, 2, Msg("a", size=500))
        assert io.total_bytes(1) == 500
        assert io.total_bytes(2) == 0

    def test_dropped_messages_still_cost_sender(self):
        io = IOTracker()
        q, net, _ = build(io=io)
        net.set_link(1, 2, False)
        net.send(1, 2, Msg("a", size=500))
        assert io.total_bytes(1) == 500

    def test_default_wire_size_for_plain_objects(self):
        io = IOTracker()
        q, net, inbox = build(io=io)
        net.send(1, 2, PrepareReq())
        assert io.total_bytes(1) == PrepareReq().wire_size()


class TestDuplication:
    def test_duplicates_delivered_twice(self):
        rng = random.Random(3)
        q, net, inbox = build(
            NetworkParams(one_way_ms=1.0, duplicate_rate=0.5), rng
        )
        for i in range(100):
            net.send(1, 2, Msg(i))
        q.run_until(200.0)
        assert len(inbox) > 100
        assert net.messages_duplicated == len(inbox) - 100

    def test_duplication_counter_matches_accounting(self):
        from repro.obs.registry import MetricsRegistry

        rng = random.Random(3)
        q, net, inbox = build(
            NetworkParams(one_way_ms=1.0, duplicate_rate=0.5), rng
        )
        reg = MetricsRegistry(clock=lambda: q.now)
        net.set_observability(reg)
        for i in range(100):
            net.send(1, 2, Msg(i))
        q.run_until(200.0)
        assert reg.counter_value(
            "repro_messages_duplicated_total", src=1
        ) == net.messages_duplicated > 0

    def test_runtime_toggle(self):
        rng = random.Random(3)
        q, net, inbox = build(NetworkParams(one_way_ms=1.0), rng)
        net.set_duplication(0.9)
        net.set_duplication(0.0)
        for i in range(50):
            net.send(1, 2, Msg(i))
        q.run_until(100.0)
        assert len(inbox) == 50

    def test_requires_rng(self):
        q, net, _ = build()
        with pytest.raises(ConfigError):
            net.set_duplication(0.5)

    def test_rejects_bad_rate(self):
        rng = random.Random(3)
        q, net, _ = build(rng=rng)
        with pytest.raises(ConfigError):
            net.set_duplication(1.0)


class TestReordering:
    def test_reordering_breaks_fifo_boundedly(self):
        rng = random.Random(7)
        q, net, inbox = build(
            NetworkParams(one_way_ms=1.0, reorder_rate=0.3,
                          reorder_window_ms=20.0), rng
        )
        for i in range(200):
            net.send(1, 2, Msg(i))
            q.run_for(0.5)
        q.run_until(500.0)
        tags = [m.tag for _t, _s, _d, m in inbox]
        assert len(tags) == 200, "reordering must never lose messages"
        assert sorted(tags) == list(range(200))
        assert tags != list(range(200)), "some messages must be reordered"
        assert net.messages_reordered > 0
        # Bounded: a reordered message is late by at most the window, so its
        # displacement in time is bounded even if its rank moves further.
        times = {m.tag: t for t, _s, _d, m in inbox}
        for i in range(200):
            assert times[i] <= 0.5 * i + 1.0 + 20.0 + 1e-9

    def test_reorder_counter_matches_accounting(self):
        from repro.obs.registry import MetricsRegistry

        rng = random.Random(7)
        q, net, inbox = build(NetworkParams(one_way_ms=1.0), rng)
        reg = MetricsRegistry(clock=lambda: q.now)
        net.set_observability(reg)
        net.set_reordering(0.5, 10.0)
        for i in range(100):
            net.send(1, 2, Msg(i))
        q.run_until(200.0)
        assert reg.counter_value(
            "repro_messages_reordered_total", src=1
        ) == net.messages_reordered > 0

    def test_requires_rng(self):
        q, net, _ = build()
        with pytest.raises(ConfigError):
            net.set_reordering(0.5, 10.0)

    def test_rejects_negative_window(self):
        rng = random.Random(7)
        q, net, _ = build(rng=rng)
        with pytest.raises(ConfigError):
            net.set_reordering(0.5, -1.0)


class TestRuntimeLoss:
    def test_set_loss_toggles_mid_run(self):
        rng = random.Random(5)
        q, net, inbox = build(NetworkParams(one_way_ms=1.0), rng)
        net.set_loss(0.9)
        for i in range(100):
            net.send(1, 2, Msg(i))
        net.set_loss(0.0)
        for i in range(100, 150):
            net.send(1, 2, Msg(i))
        q.run_until(200.0)
        tags = {m.tag for _t, _s, _d, m in inbox}
        assert set(range(100, 150)) <= tags
        assert len(tags) < 150
