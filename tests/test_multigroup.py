"""Tests for multi-group replication and the sharded KV store."""

import pytest

from repro.errors import ConfigError, NotLeaderError
from repro.multigroup import MultiGroupCluster, ShardedKVStore, shard_of


@pytest.fixture
def mg():
    cluster = MultiGroupCluster(num_machines=3, num_groups=4)
    cluster.wait_for_leaders()
    return cluster


class TestShardOf:
    def test_stable(self):
        assert shard_of("alpha", 8) == shard_of("alpha", 8)

    def test_in_range(self):
        for key in ("a", "b", "c", "somewhat-longer-key"):
            assert 0 <= shard_of(key, 4) < 4

    def test_spreads_keys(self):
        groups = {shard_of(f"key-{i}", 4) for i in range(100)}
        assert groups == {0, 1, 2, 3}


class TestClusterComposition:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigError):
            MultiGroupCluster(num_machines=0)
        with pytest.raises(ConfigError):
            MultiGroupCluster(num_groups=0)

    def test_pid_addressing_roundtrip(self):
        assert MultiGroupCluster.pid_of(2, 3) == 2003
        assert MultiGroupCluster.machine_of(2003) == 3

    def test_every_group_elects(self, mg):
        leaders = mg.leaders()
        assert len(leaders) == 4
        assert all(m in (1, 2, 3) for m in leaders.values())

    def test_groups_are_isolated_clusters(self, mg):
        for group in range(4):
            members = mg.group_servers(group)
            assert len(members) == 3
            for machine, server in members.items():
                assert server.pid == mg.pid_of(group, machine)


class TestShardedKV:
    def test_put_routes_to_key_group(self, mg):
        kv = ShardedKVStore(mg)
        group, seq = kv.put("color", "blue")
        assert group == kv.group_for("color")
        mg.run_for(100)
        leader = mg.leaders()[group]
        assert kv.result(group, leader, seq).ok

    def test_reads_on_every_machine(self, mg):
        kv = ShardedKVStore(mg)
        kv.put("color", "blue")
        mg.run_for(100)
        for machine in (1, 2, 3):
            assert kv.get_local("color", machine) == "blue"

    def test_keys_spread_across_groups(self, mg):
        kv = ShardedKVStore(mg)
        for i in range(40):
            kv.put(f"key-{i}", str(i))
            mg.run_for(10)
        mg.run_for(200)
        sizes = kv.shard_sizes()
        populated = [g for g, n in sizes.items() if n > 0]
        assert len(populated) >= 3  # CRC spreads 40 keys over >= 3 of 4
        assert sum(sizes.values()) == 40

    def test_missing_key_none(self, mg):
        kv = ShardedKVStore(mg)
        assert kv.get_local("ghost", 1) is None


class TestMachineFailures:
    def test_machine_crash_hits_all_groups(self, mg):
        victim = 1
        mg.crash_machine(victim)
        for group in range(4):
            assert mg.sim.is_crashed(mg.pid_of(group, victim))
        # Every group re-elects among survivors.
        leaders = mg.wait_for_leaders()
        assert all(machine != victim for machine in leaders.values())

    def test_recovery_rejoins_all_groups(self, mg):
        kv = ShardedKVStore(mg)
        mg.crash_machine(2)
        mg.wait_for_leaders()
        for i in range(8):
            kv.put(f"k{i}", str(i))
            mg.run_for(20)
        mg.recover_machine(2)
        mg.run_for(2_000)
        for i in range(8):
            assert kv.get_local(f"k{i}", 2) == str(i)

    def test_machine_link_cut_affects_every_group(self, mg):
        mg.set_machine_link(1, 2, False)
        for group in range(4):
            assert not mg.sim.network.is_up(mg.pid_of(group, 1),
                                            mg.pid_of(group, 2))
        mg.set_machine_link(1, 2, True)
        for group in range(4):
            assert mg.sim.network.is_up(mg.pid_of(group, 1),
                                        mg.pid_of(group, 2))

    def test_chained_machines_keep_all_groups_alive(self, mg):
        """Omni-Paxos' partial-connectivity resilience compounds across
        groups: a chained machine topology leaves every shard available."""
        kv = ShardedKVStore(mg)
        # Chain: 1 - 2 - 3 (machines 1 and 3 cut).
        mg.set_machine_link(1, 3, False)
        mg.run_for(1_000)
        leaders = mg.wait_for_leaders()
        written = []
        for i in range(12):
            try:
                written.append(kv.put(f"c{i}", str(i)))
            except NotLeaderError:
                pass
            mg.run_for(30)
        mg.run_for(300)
        assert written  # progress on every reachable shard
        # Machine 2 (the middle) still replicates everything it hosts.
        applied = sum(kv.shard_sizes().values())
        assert applied > 0

    def test_io_accounting_per_machine(self, mg):
        kv = ShardedKVStore(mg)
        for i in range(10):
            kv.put(f"io{i}", "x")
            mg.run_for(10)
        assert mg.machine_io_bytes(1) > 0
