"""Unit tests for the observability registry and instruments."""

import pytest

from repro.errors import ConfigError
from repro.obs.events import (
    BallotElected,
    EVENT_TYPES,
    EventRecord,
    QCFlagChanged,
    event_from_dict,
    event_to_dict,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Instrumented,
    MetricsRegistry,
)
from repro.obs.exporters import MemorySink


class TestCounter:
    def test_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", pid=1)
        c.inc()
        c.inc(4)
        assert reg.counter_value("x_total", pid=1) == 5.0

    def test_negative_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.counter("x_total").inc(-1)

    def test_label_sets_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("x_total", pid=1).inc()
        reg.counter("x_total", pid=2).inc(2)
        assert reg.counter_value("x_total", pid=1) == 1.0
        assert reg.counter_value("x_total", pid=2) == 2.0
        assert reg.sum_counter("x_total") == 3.0

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        reg.counter("x_total", a=1, b=2).inc()
        assert reg.counter_value("x_total", b=2, a=1) == 1.0

    def test_untouched_counter_reads_zero(self):
        reg = MetricsRegistry()
        assert reg.counter_value("nope_total", pid=9) == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("qc", pid=1)
        g.set(1.0)
        g.inc()
        g.dec(0.5)
        assert g.value == pytest.approx(1.5)


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        h = Histogram("lat", ())
        for v in (1.0, 2.0, 4.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(7.0)
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.mean == pytest.approx(7.0 / 3.0)

    def test_quantile_bounds_error(self):
        h = Histogram("lat", ())
        for v in range(1, 101):
            h.observe(float(v))
        # HDR buckets guarantee ~12% relative error.
        assert h.quantile(0.5) == pytest.approx(50.0, rel=0.15)
        assert h.quantile(0.99) == pytest.approx(99.0, rel=0.15)
        assert h.quantile(0.0) <= h.quantile(1.0)

    def test_quantile_empty(self):
        h = Histogram("lat", ())
        assert h.quantile(0.5) == 0.0

    def test_quantile_out_of_range(self):
        h = Histogram("lat", ())
        with pytest.raises(ConfigError):
            h.quantile(1.5)

    def test_overflow_bucket(self):
        h = Histogram("lat", ())
        h.observe(1e9)  # beyond the top bound (~16.7 M)
        assert h.nonempty_buckets() == [(float("inf"), 1)]

    def test_nonempty_buckets_sorted(self):
        h = Histogram("lat", ())
        for v in (0.5, 100.0, 3.0):
            h.observe(v)
        bounds = [b for b, _ in h.nonempty_buckets()]
        assert bounds == sorted(bounds)


class TestRegistryEvents:
    def test_emit_stamps_clock(self):
        t = [0.0]
        reg = MetricsRegistry(clock=lambda: t[0])
        sink = MemorySink()
        reg.add_sink(sink)
        t[0] = 42.0
        reg.emit(BallotElected(pid=1, leader=2, ballot=3))
        assert len(sink) == 1
        assert sink.records[0].at_ms == 42.0
        assert sink.records[0].event.leader == 2

    def test_set_clock_rewires(self):
        reg = MetricsRegistry()
        reg.set_clock(lambda: 7.0)
        assert reg.now_ms() == 7.0

    def test_fan_out_to_multiple_sinks(self):
        reg = MetricsRegistry(clock=lambda: 0.0)
        a, b = MemorySink(), MemorySink()
        reg.add_sink(a)
        reg.add_sink(b)
        reg.emit(QCFlagChanged(pid=1, quorum_connected=False))
        assert len(a) == 1 and len(b) == 1

    def test_remove_sink(self):
        reg = MetricsRegistry(clock=lambda: 0.0)
        sink = MemorySink()
        reg.add_sink(sink)
        reg.remove_sink(sink)
        reg.emit(QCFlagChanged(pid=1, quorum_connected=False))
        assert len(sink) == 0

    def test_add_sink_deduplicates(self):
        reg = MetricsRegistry(clock=lambda: 0.0)
        sink = MemorySink()
        reg.add_sink(sink)
        reg.add_sink(sink)
        reg.emit(QCFlagChanged(pid=1, quorum_connected=True))
        assert len(sink) == 1


class TestNullRegistry:
    def test_disabled(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry().enabled is True

    def test_mutations_are_noops(self):
        sink = MemorySink()
        NULL_REGISTRY.add_sink(sink)
        NULL_REGISTRY.emit(BallotElected(pid=1, leader=1, ballot=1))
        assert len(sink) == 0
        assert NULL_REGISTRY.sinks == ()

    def test_instruments_do_not_accumulate(self):
        NULL_REGISTRY.counter("leak_total", pid=1).inc(100)
        assert NULL_REGISTRY.counter_value("leak_total", pid=1) == 0.0
        assert list(NULL_REGISTRY.metrics()) == []

    def test_set_clock_noop(self):
        NULL_REGISTRY.set_clock(lambda: 123.0)
        assert NULL_REGISTRY.now_ms() == 0.0


class TestInstrumented:
    def test_default_is_null(self):
        class Thing(Instrumented):
            pass

        assert Thing().obs is NULL_REGISTRY
        assert not Thing()._obs.enabled

    def test_set_observability_propagates(self):
        class Child(Instrumented):
            pass

        class Parent(Instrumented):
            def __init__(self):
                self.child = Child()

            def _on_observability(self, registry):
                self.child.set_observability(registry)

        parent = Parent()
        reg = MetricsRegistry()
        parent.set_observability(reg)
        assert parent.obs is reg
        assert parent.child.obs is reg


class TestEventSerialization:
    def test_round_trip_every_kind(self):
        for kind, cls in EVENT_TYPES.items():
            record = EventRecord(at_ms=12.5, event=cls())
            data = event_to_dict(record)
            back = event_from_dict(data)
            assert back.at_ms == 12.5
            assert back.event == record.event
            assert back.event.kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            event_from_dict({"at_ms": 0.0, "kind": "NotAThing"})

    def test_tuples_become_lists_and_back(self):
        from repro.obs.events import StopSignDecided

        record = EventRecord(0.0, StopSignDecided(
            pid=1, config_id=0, next_config_id=1, servers=(1, 2, 3)))
        data = event_to_dict(record)
        assert data["servers"] == [1, 2, 3]
        back = event_from_dict(data)
        assert back.event.servers == (1, 2, 3)
