"""Property-based chaos tests for the baseline protocols.

The baselines must uphold the same core safety property as Omni-Paxos —
decided/committed logs across servers are prefix-ordered and never retract —
under randomized link cuts, heals, crashes and proposals. (Their *liveness*
differs under partial connectivity, which is the paper's point; safety must
not.)
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.omni.entry import Command
from repro.sim.harness import ExperimentConfig, build_experiment

actions = st.lists(
    st.one_of(
        st.tuples(st.just("propose"), st.integers(1, 5)),
        st.tuples(st.just("cut"),
                  st.tuples(st.integers(1, 5), st.integers(1, 5))),
        st.tuples(st.just("heal"), st.just(0)),
        st.tuples(st.just("crash"), st.integers(1, 5)),
        st.tuples(st.just("recover"), st.integers(1, 5)),
        st.tuples(st.just("advance"), st.integers(1, 8)),
    ),
    min_size=5,
    max_size=30,
)


class PrefixChecker:
    """Asserts per-index agreement and no retraction across servers.

    A restarted Raft server legitimately *re-emits* its committed prefix
    (the commit index is volatile in the spec; applied state is rebuilt by
    replay), so the property checked is the one that must never break:
    the same log index always carries the same command — at one server over
    time, and across any two servers.
    """

    def __init__(self, cluster):
        self.maps = {pid: {} for pid in cluster.pids}
        cluster.on_decided(self._observe)

    def _observe(self, pid, idx, entry, now):
        if isinstance(entry, Command):
            key = (entry.client_id, entry.seq)
        else:
            key = ("special", repr(entry))
        seen = self.maps[pid].get(idx)
        assert seen is None or seen == key, \
            f"server {pid} retracted index {idx}: {seen} -> {key}"
        self.maps[pid][idx] = key

    def check_prefixes(self):
        pids = sorted(self.maps)
        for i, a in enumerate(pids):
            for b in pids[i + 1:]:
                common = self.maps[a].keys() & self.maps[b].keys()
                for idx in common:
                    assert self.maps[a][idx] == self.maps[b][idx], \
                        f"servers {a} and {b} disagree at index {idx}"


def run_chaos(protocol, action_list, seed):
    cfg = ExperimentConfig(protocol=protocol, num_servers=5,
                           election_timeout_ms=50.0, seed=seed,
                           initial_leader=3)
    exp = build_experiment(cfg)
    checker = PrefixChecker(exp.cluster)
    seq = itertools.count()
    crashed = set()
    for action, arg in action_list:
        if action == "propose" and arg not in crashed:
            try:
                exp.cluster.propose(
                    arg, Command(b"c", client_id=7, seq=next(seq)))
            except Exception:
                pass
        elif action == "cut":
            a, b = arg
            if a != b:
                exp.cluster.set_link(a, b, False)
        elif action == "heal":
            exp.cluster.heal_all_links()
        elif action == "crash" and arg not in crashed and len(crashed) < 2:
            exp.cluster.crash(arg)
            crashed.add(arg)
        elif action == "recover" and arg in crashed:
            exp.cluster.recover(arg)
            crashed.discard(arg)
        elif action == "advance":
            exp.cluster.run_for(arg * 25.0)
        checker.check_prefixes()
    exp.cluster.heal_all_links()
    for pid in list(crashed):
        exp.cluster.recover(pid)
    exp.cluster.run_for(2_000)
    checker.check_prefixes()
    return checker


class TestRaftSafetyUnderChaos:
    @given(action_list=actions, seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_prefix_order(self, action_list, seed):
        run_chaos("raft", action_list, seed)


class TestMultiPaxosSafetyUnderChaos:
    @given(action_list=actions, seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_prefix_order(self, action_list, seed):
        run_chaos("multipaxos", action_list, seed)


class TestVRSafetyUnderChaos:
    @given(action_list=actions, seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_prefix_order(self, action_list, seed):
        run_chaos("vr", action_list, seed)
