"""Documentation consistency: referenced modules and files must exist."""

import importlib
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent
DOCS = [ROOT / "README.md", ROOT / "DESIGN.md", ROOT / "EXPERIMENTS.md",
        *sorted((ROOT / "docs").glob("*.md"))]

MODULE_RE = re.compile(r"`(repro(?:\.[a-z_]+)+)`")
PATH_RE = re.compile(
    r"`((?:src|tests|benchmarks|examples|docs)/[A-Za-z0-9_./-]+\.(?:py|md))`"
)


def _referenced(pattern):
    out = set()
    for doc in DOCS:
        for match in pattern.findall(doc.read_text()):
            out.add(match)
    return sorted(out)


class TestDocReferences:
    def test_docs_exist(self):
        assert len(DOCS) >= 5

    @pytest.mark.parametrize("module", _referenced(MODULE_RE))
    def test_module_references_import(self, module):
        # A dotted reference may be module.attribute: try module first,
        # then its parent with the final component as an attribute.
        try:
            importlib.import_module(module)
            return
        except ImportError:
            pass
        parent, _, attr = module.rpartition(".")
        mod = importlib.import_module(parent)
        assert hasattr(mod, attr), f"{module} does not resolve"

    @pytest.mark.parametrize("path", _referenced(PATH_RE))
    def test_path_references_exist(self, path):
        assert (ROOT / path).exists(), f"{path} referenced but missing"

    def test_experiments_covers_every_artifact(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for artifact in ("Table 1", "Figure 7", "Figure 8a", "Figure 8b",
                         "Figure 8c", "Figure 9"):
            assert artifact in text, f"{artifact} missing from EXPERIMENTS.md"

    def test_design_inventories_benchmarks(self):
        text = (ROOT / "DESIGN.md").read_text()
        for bench in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            # Every bench module is accounted for in the design doc except
            # the ablations (inventoried as a section).
            if bench.stem != "bench_ablations":
                assert bench.name in text, f"{bench.name} not in DESIGN.md"
