"""Tests for the causal-tracing span model and its assemblers."""

import pytest

from repro.obs.events import (
    BallotBumped,
    BallotElected,
    ClientProposalSent,
    ClientReplyDecided,
    EntryApplied,
    EventRecord,
    MigrationCompleted,
    MigrationDonorPicked,
    MigrationSegmentReceived,
    ProposalAppended,
    QCFlagChanged,
    QuorumAccepted,
    RecoveryCompleted,
    RecoveryStarted,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import (
    SPAN_COMMIT,
    Span,
    TraceContext,
    assemble_spans,
    client_spans,
    commit_spans,
    election_spans,
    entry_trace_id,
    migration_spans,
    observe_span_histograms,
    recovery_spans,
    span_quantile,
)
from repro.omni.entry import Command


def rec(at_ms, event):
    return EventRecord(at_ms=at_ms, event=event)


class TestTraceContext:
    def test_child_keeps_trace_links_parent(self):
        root = TraceContext("c1-0", span_id="1.0")
        child = root.child("2.5")
        assert child.trace_id == "c1-0"
        assert child.span_id == "2.5"
        assert child.parent_id == "1.0"

    def test_dict_round_trip(self):
        ctx = TraceContext("c1-7", span_id="3.1", parent_id="1.0")
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_from_dict_tolerates_missing_fields(self):
        assert TraceContext.from_dict({"trace_id": "t"}) == TraceContext("t")

    def test_entry_trace_id(self):
        assert entry_trace_id(Command(b"x", client_id=2, seq=9)) == "c2-9"
        assert entry_trace_id(object()) == ""


class TestSpanModel:
    def test_phase_durations_consecutive_milestones(self):
        span = Span(kind="commit", trace_id="t", start_ms=10.0, end_ms=16.0,
                    phases=(("replicate", 10.0), ("apply", 14.0)))
        assert span.phase_durations() == [("replicate", 4.0), ("apply", 2.0)]
        assert span.duration_ms == 6.0

    def test_attr_lookup(self):
        span = Span(kind="commit", trace_id="t", start_ms=0, end_ms=1,
                    attrs=(("protocol", "sp"),))
        assert span.attr("protocol") == "sp"
        assert span.attr("missing", 42) == 42


class TestCommitSpans:
    def test_propose_quorum_apply(self):
        events = [
            rec(10.0, ProposalAppended(pid=1, from_idx=0, to_idx=2,
                                       trace_id="c1-0")),
            rec(11.0, QuorumAccepted(pid=1, log_idx=2)),
            rec(11.5, EntryApplied(pid=1, log_idx=2, count=2)),
        ]
        (span,) = commit_spans(events)
        assert span.kind == SPAN_COMMIT
        assert span.trace_id == "c1-0"
        assert span.start_ms == 10.0 and span.end_ms == 11.5
        assert span.phase_durations() == [("replicate", 1.0), ("apply", 0.5)]
        assert span.attr("entries") == 2

    def test_quorum_must_cover_batch(self):
        events = [
            rec(10.0, ProposalAppended(pid=1, from_idx=0, to_idx=4)),
            rec(11.0, QuorumAccepted(pid=1, log_idx=2)),  # partial
            rec(12.0, QuorumAccepted(pid=1, log_idx=4)),
        ]
        (span,) = commit_spans(events)
        assert span.end_ms == 12.0

    def test_uncommitted_batch_skipped(self):
        events = [rec(10.0, ProposalAppended(pid=1, from_idx=0, to_idx=1))]
        assert commit_spans(events) == []

    def test_per_pid_isolation(self):
        events = [
            rec(10.0, ProposalAppended(pid=1, from_idx=0, to_idx=1)),
            rec(11.0, QuorumAccepted(pid=2, log_idx=5)),  # other leader
        ]
        assert commit_spans(events) == []

    def test_same_timestamp_quorum_counts(self):
        # Sim time can stamp the whole chain at one instant.
        events = [
            rec(10.0, ProposalAppended(pid=1, from_idx=0, to_idx=1)),
            rec(10.0, QuorumAccepted(pid=1, log_idx=1)),
        ]
        (span,) = commit_spans(events)
        assert span.duration_ms == 0.0


class TestClientSpans:
    def test_batch_expands_to_per_seq_spans(self):
        events = [
            rec(5.0, ClientProposalSent(client_id=1, first_seq=0, count=2)),
            rec(7.0, ClientReplyDecided(client_id=1, seq=0)),
            rec(9.0, ClientReplyDecided(client_id=1, seq=1)),
        ]
        spans = client_spans(events)
        assert [s.trace_id for s in spans] == ["c1-0", "c1-1"]
        assert [s.duration_ms for s in spans] == [2.0, 4.0]

    def test_reply_without_send_ignored(self):
        events = [rec(7.0, ClientReplyDecided(client_id=1, seq=0))]
        assert client_spans(events) == []


class TestElectionSpans:
    def test_converged_election(self):
        events = [
            rec(100.0, BallotBumped(pid=2, ballot=5)),
            rec(120.0, BallotElected(pid=2, leader=2, ballot=5)),
            rec(130.0, BallotElected(pid=1, leader=2, ballot=5)),
        ]
        (span,) = election_spans(events)
        assert span.start_ms == 100.0 and span.end_ms == 130.0
        assert span.attr("leader") == 2
        assert span.attr("converged") is True

    def test_quiet_gap_splits_episodes(self):
        events = [
            rec(100.0, BallotElected(pid=1, leader=1, ballot=1)),
            rec(5000.0, BallotElected(pid=1, leader=2, ballot=2)),
        ]
        spans = election_spans(events, settle_ms=500.0)
        assert len(spans) == 2

    def test_no_elected_is_unconverged(self):
        # The quorum-loss window: QC flags drop, ballots churn, nobody wins.
        events = [
            rec(100.0, QCFlagChanged(pid=2, quorum_connected=False)),
            rec(150.0, BallotBumped(pid=2, ballot=7)),
        ]
        (span,) = election_spans(events)
        assert span.attr("converged") is False
        assert span.attr("leader") is None

    def test_qc_regain_not_a_trigger(self):
        events = [rec(100.0, QCFlagChanged(pid=2, quorum_connected=True))]
        assert election_spans(events) == []


class TestRecoverySpans:
    def test_pairing_and_reason(self):
        events = [
            rec(100.0, RecoveryStarted(pid=3, reason="session")),
            rec(140.0, RecoveryCompleted(pid=3, log_idx=17)),
        ]
        (span,) = recovery_spans(events)
        assert span.pid == 3 and span.duration_ms == 40.0
        assert span.attr("reason") == "session"
        assert span.attr("log_idx") == 17

    def test_unmatched_start_dropped(self):
        events = [rec(100.0, RecoveryStarted(pid=3))]
        assert recovery_spans(events) == []

    def test_duplicate_start_keeps_earliest(self):
        events = [
            rec(100.0, RecoveryStarted(pid=3)),
            rec(110.0, RecoveryStarted(pid=3)),
            rec(140.0, RecoveryCompleted(pid=3, log_idx=1)),
        ]
        (span,) = recovery_spans(events)
        assert span.start_ms == 100.0


class TestMigrationSpans:
    def test_whole_and_per_donor_segments(self):
        events = [
            rec(10.0, MigrationDonorPicked(pid=4, config_id=1, donor=1,
                                           from_idx=0, to_idx=50)),
            rec(10.0, MigrationDonorPicked(pid=4, config_id=1, donor=2,
                                           from_idx=50, to_idx=100)),
            rec(20.0, MigrationSegmentReceived(pid=4, config_id=1, donor=1,
                                               from_idx=0, entries=50)),
            rec(30.0, MigrationSegmentReceived(pid=4, config_id=1, donor=2,
                                               from_idx=50, entries=50)),
            rec(31.0, MigrationCompleted(pid=4, config_id=1, entries=100,
                                         duration_ms=21.0)),
        ]
        spans = migration_spans(events)
        whole = [s for s in spans if s.kind == "migration"]
        segments = [s for s in spans if s.kind == "migration_segment"]
        assert len(whole) == 1 and whole[0].duration_ms == 21.0
        assert {s.attr("donor") for s in segments} == {1, 2}
        assert all(s.attr("entries") == 50 for s in segments)


class TestAssembleAndHistograms:
    def test_assemble_sorted_by_start(self):
        events = [
            rec(50.0, ProposalAppended(pid=1, from_idx=0, to_idx=1)),
            rec(51.0, QuorumAccepted(pid=1, log_idx=1)),
            rec(10.0, BallotElected(pid=1, leader=1, ballot=1)),
        ]
        spans = assemble_spans(events)
        assert [s.start_ms for s in spans] == sorted(s.start_ms for s in spans)
        assert {s.kind for s in spans} == {"election", "commit"}

    def test_observe_span_histograms(self):
        spans = [
            Span(kind="commit", trace_id="t", start_ms=0.0, end_ms=2.0,
                 phases=(("replicate", 0.0), ("apply", 1.5))),
            Span(kind="election", trace_id="e", start_ms=0.0, end_ms=30.0),
        ]
        reg = MetricsRegistry()
        observe_span_histograms(spans, reg)
        assert reg.histogram("repro_span_duration_ms", kind="commit").count == 1
        assert reg.histogram("repro_span_duration_ms", kind="election").count == 1
        assert reg.histogram("repro_commit_phase_ms", phase="replicate").count == 1
        assert reg.histogram("repro_commit_phase_ms", phase="apply").count == 1

    def test_span_quantile(self):
        spans = [Span(kind="c", trace_id=str(i), start_ms=0.0, end_ms=float(i))
                 for i in range(1, 101)]
        assert span_quantile(spans, 0.5).duration_ms == 50.0
        assert span_quantile(spans, 0.99).duration_ms == 99.0
        assert span_quantile([], 0.5) is None
