"""Critical-path profiler: phase attribution, queue sampling, digest safety.

The PR 7 acceptance criteria under test:

- on a fig7-style normal-operation run, each commit's phase durations sum
  to within 5% of the span's end-to-end duration (they sum *exactly* by
  construction — consecutive milestone differences — so the 5% criterion
  is a tripwire against a future phase being double-counted or dropped),
- attaching the series engine + profiler changes no decided-log digest:
  the instrumentation only reads protocol state.
"""

import pytest

from repro.bench.runner import LogDigest
from repro.obs.events import QueueDepthSampled
from repro.obs.exporters import MemorySink
from repro.obs.prof import (
    PHASES,
    PathAttribution,
    attribute_commit_paths,
    attributions_by_window,
    describe_dominant,
    dominant_phase,
    dominant_phase_by_window,
    phase_totals,
    sample_queue_depths,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import commit_spans
from repro.sim.harness import ExperimentConfig, build_experiment


def _traced_run(duration_ms=3_000.0, seed=7, cp=8):
    """A fig7-style normal-operation run (3-server LAN omni, closed-loop
    client, stable pre-seeded leader) with full tracing."""
    reg = MetricsRegistry()
    reg.enable_tracing()
    sink = MemorySink()
    reg.add_sink(sink)
    exp = build_experiment(
        ExperimentConfig(protocol="omni", num_servers=3,
                         election_timeout_ms=100.0, one_way_ms=0.5,
                         seed=seed, initial_leader=1),
        obs=reg)
    exp.make_client(cp)
    exp.cluster.run_for(duration_ms)
    return exp, sink


class TestAttributionAccuracy:
    def test_phases_sum_within_5pct_of_span_duration(self):
        """Acceptance: per-commit phase attribution accounts for the whole
        span — no latency leaks between phases."""
        _, sink = _traced_run()
        attributions = attribute_commit_paths(sink.records)
        assert len(attributions) > 50, "fig7 run must commit steadily"
        for attribution in attributions:
            attributed = sum(d for _, d in attribution.phases)
            assert attributed == pytest.approx(attribution.total_ms,
                                               rel=0.05), \
                f"trace {attribution.trace_id}: {attribution.phases}"

    def test_attribution_extends_back_to_client_send(self):
        _, sink = _traced_run()
        attributions = attribute_commit_paths(sink.records)
        spans = {s.trace_id: s for s in commit_spans(sink.records)}
        with_client = [a for a in attributions
                       if a.phases and a.phases[0][0] == "client_to_leader"]
        assert with_client, "closed-loop client spans must join by trace id"
        for attribution in with_client:
            span = spans[attribution.trace_id]
            # The attribution starts at the client send, strictly no later
            # than the leader append that starts the bare commit span.
            assert attribution.start_ms <= span.start_ms
            assert attribution.end_ms == span.end_ms

    def test_phase_names_stay_in_vocabulary(self):
        _, sink = _traced_run(duration_ms=1_500.0)
        for attribution in attribute_commit_paths(sink.records):
            for name, duration in attribution.phases:
                assert name in PHASES
                assert duration >= 0.0

    def test_untraced_events_attribute_nothing(self):
        assert attribute_commit_paths([]) == []

    def test_lan_run_is_replicate_bound(self):
        """On a LAN the round trips dominate: replication must be the
        aggregate dominant phase, and the one-liner says so."""
        _, sink = _traced_run()
        attributions = attribute_commit_paths(sink.records)
        assert dominant_phase(attributions) == "replicate"
        assert describe_dominant(attributions).startswith("replicate-bound")
        totals = phase_totals(attributions)
        assert set(totals) <= set(PHASES)

    def test_windowed_attribution_buckets_by_completion(self):
        a = PathAttribution(trace_id="t1", pid=1, start_ms=90.0,
                            end_ms=110.0, phases=(("replicate", 20.0),))
        b = PathAttribution(trace_id="t2", pid=1, start_ms=120.0,
                            end_ms=130.0, phases=(("apply", 10.0),))
        buckets = attributions_by_window([a, b], window_ms=100.0)
        # The boundary-straddling commit lands in the window its apply
        # completes in, and each window judges its own dominant phase.
        assert [x.trace_id for x in buckets[1]] == ["t1", "t2"]
        assert dominant_phase_by_window([a, b], 100.0) == {1: "replicate"}
        assert dominant_phase_by_window([a], 100.0, start_ms=100.0) == \
            {0: "replicate"}

    def test_describe_empty(self):
        assert describe_dominant([]) == "no attributed commits"


class TestQueueSampling:
    def test_gauges_and_events_per_queue(self):
        reg = MetricsRegistry()
        sink = MemorySink()
        reg.add_sink(sink)
        sample_queue_depths(reg, {"sp_outbox": 3, "sp_pending": 0}, pid=2)
        sample_queue_depths(reg, {"sim_events": 11})
        assert reg.gauge("repro_queue_depth", pid=2,
                         queue="sp_outbox").value == 3
        assert reg.gauge("repro_queue_depth", queue="sim_events").value == 11
        sampled = [r.event for r in sink.by_kind("QueueDepthSampled")]
        assert {(e.queue, e.depth, e.pid) for e in sampled} == \
            {("sp_outbox", 3, 2), ("sp_pending", 0, 2), ("sim_events", 11, None)}

    def test_delta_compression_skips_unchanged_depths(self):
        """With a caller-held memo, a steady depth emits once — the flight
        recorder's depth lane records transitions, not a constant hum."""
        reg = MetricsRegistry()
        sink = MemorySink()
        reg.add_sink(sink)
        memo = {}
        for depth in (5, 5, 5, 7, 7, 0):
            sample_queue_depths(reg, {"sp_outbox": depth}, pid=1, last=memo)
        emitted = [r.event.depth for r in sink.by_kind("QueueDepthSampled")]
        assert emitted == [5, 7, 0]
        # The gauge always reflects the latest sampled value.
        assert reg.gauge("repro_queue_depth", pid=1,
                         queue="sp_outbox").value == 0

    def test_disabled_registry_costs_nothing(self):
        """The null registry swallows the whole round — the zero-overhead
        guard the instrumentation sites rely on."""
        from repro.obs.registry import NULL_REGISTRY
        sample_queue_depths(NULL_REGISTRY, {"sp_outbox": 3}, pid=1)


class TestDigestSafety:
    def _drive(self, with_series):
        reg = None
        if with_series:
            reg = MetricsRegistry()
            reg.enable_tracing()
        exp = build_experiment(
            ExperimentConfig(protocol="omni", num_servers=3,
                             election_timeout_ms=100.0, one_way_ms=0.5,
                             seed=7, initial_leader=1),
            obs=reg)
        if with_series:
            exp.attach_series(window_ms=100.0)
        digest = LogDigest()
        exp.cluster.on_decided(
            lambda pid, idx, entry, now: digest.record(pid, idx, entry))
        exp.make_client(4)
        exp.cluster.run_for(2_500.0)
        return digest.hexdigest()

    def test_series_and_profiling_leave_digests_identical(self):
        """Acceptance: the full series + profiling stack reads state but
        never steers it — per-server decided logs are byte-identical."""
        assert self._drive(with_series=False) == self._drive(with_series=True)


class TestQueueDepthInstrumentation:
    def test_sim_staging_points_report_depths(self):
        """Every sim-side staging point shows up in the sampled stream:
        the event heap, the network's in-flight count, and each server's
        outbox/pending accessors."""
        reg = MetricsRegistry()
        sink = MemorySink()
        reg.add_sink(sink)
        exp = build_experiment(
            ExperimentConfig(protocol="omni", num_servers=3,
                             election_timeout_ms=100.0, one_way_ms=0.5,
                             seed=3, initial_leader=1),
            obs=reg)
        exp.attach_series(window_ms=100.0)
        exp.make_client(8)
        exp.cluster.run_for(1_500.0)
        queues = {r.event.queue for r in sink.by_kind("QueueDepthSampled")}
        assert {"sim_events", "net_in_flight", "server_outbox",
                "sp_outbox", "sp_pending"} <= queues
        # In-flight accounting is exact: it returns to zero when quiesced.
        exp.cluster.run_for(500.0)
        assert exp.network.in_flight >= 0

    def test_event_queue_exposes_pressure_counters(self):
        from repro.sim.events import _BULK_DRAIN_MIN, EventQueue
        queue = EventQueue()
        for i in range(4):
            queue.schedule(float(i), lambda: None)
        assert len(queue) == 4
        queue.run_until(10.0)
        # Small backlogs take the heap path: no bulk drain recorded.
        assert queue.bulk_drains == 0
        for i in range(_BULK_DRAIN_MIN):
            queue.schedule(20.0 + i * 1e-3, lambda: None)
        queue.run_until(30.0)
        assert queue.bulk_drains == 1
        assert queue.limit_hits == 0

    def test_event_queue_counts_limit_hits(self):
        import pytest as _pytest

        from repro.sim.events import EventQueue, SimulationLimitError
        queue = EventQueue(max_events=2)
        for i in range(5):
            queue.schedule(float(i), lambda: None)
        with _pytest.raises(SimulationLimitError):
            queue.run_until(10.0)
        assert queue.limit_hits == 1
