"""Unit and cluster tests for the VR baseline (view changes + EQC)."""

import pytest

from repro.errors import ConfigError
from repro.baselines.vr import (
    DoViewChange,
    StartView,
    StartViewChange,
    VRConfig,
    VRPing,
    VRReplica,
    VRStatus,
)
from repro.omni.entry import Command
from repro.sim.cluster import SimCluster
from repro.sim.events import EventQueue
from repro.sim.network import NetworkParams, SimNetwork

T = 100.0


def cmd(i: int) -> Command:
    return Command(data=b"x", client_id=1, seq=i)


def build_vr_cluster(n=3, initial_leader=None):
    pids = tuple(range(1, n + 1))
    queue = EventQueue()
    net = SimNetwork(queue, NetworkParams(one_way_ms=0.1))
    replicas = {
        pid: VRReplica(VRConfig(
            pid=pid, servers=pids, election_timeout_ms=T,
            initial_leader=initial_leader,
        ))
        for pid in pids
    }
    sim = SimCluster(replicas, net, queue, tick_ms=5.0)
    sim.start()
    return sim, replicas


def wait_leader(sim, max_ms=10_000.0):
    elapsed = 0.0
    while elapsed < max_ms:
        sim.run_for(50.0)
        elapsed += 50.0
        leaders = sim.leaders()
        if leaders:
            return leaders[0]
    raise AssertionError("no VR leader")


class TestConfig:
    def test_pid_must_be_member(self):
        with pytest.raises(ConfigError):
            VRConfig(pid=9, servers=(1, 2, 3))

    def test_round_robin_primary(self):
        cfg = VRConfig(pid=1, servers=(1, 2, 3))
        assert [cfg.leader_of(v) for v in (0, 1, 2, 3)] == [1, 2, 3, 1]

    def test_majority(self):
        assert VRConfig(pid=1, servers=(1, 2, 3)).majority == 2


class TestViewChanges:
    def test_initial_election_via_view_change(self):
        sim, reps = build_vr_cluster(3)
        leader = wait_leader(sim)
        assert reps[leader].is_leader

    def test_seeded_leader(self):
        sim, reps = build_vr_cluster(3, initial_leader=2)
        sim.run_for(100)
        assert sim.leaders() == [2]

    def test_crashed_primary_replaced_round_robin(self):
        sim, reps = build_vr_cluster(3, initial_leader=2)
        sim.run_for(300)
        sim.crash(2)
        leader = wait_leader(sim)
        assert leader != 2
        # Views advance; the new primary matches the round-robin schedule.
        view = reps[leader].view
        assert reps[leader]._config.leader_of(view) == leader

    def test_svc_gossip_joins_higher_view(self):
        replica = VRReplica(VRConfig(pid=1, servers=(1, 2, 3),
                                     election_timeout_ms=T))
        replica.start(0.0)
        replica.on_message(3, StartViewChange(7), 1.0)
        assert replica.view == 7
        assert replica.status is VRStatus.VIEW_CHANGE
        out = replica.take_outbox()
        assert sum(isinstance(m, StartViewChange) for _d, m in out) == 2

    def test_lower_view_svc_ignored(self):
        replica = VRReplica(VRConfig(pid=1, servers=(1, 2, 3),
                                     election_timeout_ms=T))
        replica.start(0.0)
        replica.on_message(3, StartViewChange(7), 1.0)
        replica.take_outbox()
        replica.on_message(2, StartViewChange(3), 2.0)
        assert replica.view == 7

    def test_eqc_gate_blocks_minority(self):
        """A replica that saw only its own SVC must NOT send DoViewChange —
        the EQC requirement that deadlocks VR under partial connectivity."""
        replica = VRReplica(VRConfig(pid=1, servers=(1, 2, 3, 4, 5),
                                     election_timeout_ms=T))
        replica.start(0.0)
        replica.tick(2 * T + 1)  # suspect, initiate view change
        out = replica.take_outbox()
        assert not any(isinstance(m, DoViewChange) for _d, m in out)

    def test_dvc_after_majority_svc(self):
        replica = VRReplica(VRConfig(pid=1, servers=(1, 2, 3, 4, 5),
                                     election_timeout_ms=T))
        replica.start(0.0)
        replica.tick(2 * T + 1)
        replica.take_outbox()
        replica.on_message(2, StartViewChange(replica.view), 1.0)
        replica.on_message(3, StartViewChange(replica.view), 2.0)
        out = replica.take_outbox()
        dvc = [(d, m) for d, m in out if isinstance(m, DoViewChange)]
        assert len(dvc) == 1
        primary = replica._config.leader_of(replica.view)
        assert dvc[0][0] == primary

    def test_primary_needs_majority_dvc(self):
        pids = (1, 2, 3, 4, 5)
        primary = VRReplica(VRConfig(pid=2, servers=pids,
                                     election_timeout_ms=T))
        primary.start(0.0)
        view = 6  # leader_of(6) = sorted[6 % 5] = 2
        assert primary._config.leader_of(view) == 2
        primary.on_message(3, DoViewChange(view), 1.0)
        assert primary.status is VRStatus.VIEW_CHANGE
        primary.on_message(4, DoViewChange(view), 2.0)
        primary.on_message(5, DoViewChange(view), 3.0)
        assert primary.status is VRStatus.NORMAL
        assert primary.leader_pid == 2

    def test_start_view_adopts(self):
        replica = VRReplica(VRConfig(pid=1, servers=(1, 2, 3),
                                     election_timeout_ms=T))
        replica.start(0.0)
        replica.on_message(3, StartView(5), 1.0)
        assert replica.view == 5
        assert replica.status is VRStatus.NORMAL
        assert replica.leader_pid == 3

    def test_stalled_view_change_advances(self):
        replica = VRReplica(VRConfig(pid=1, servers=(1, 2, 3),
                                     election_timeout_ms=T))
        replica.start(0.0)
        replica.tick(2 * T + 1)
        v1 = replica.view
        replica.tick(4 * T + 2)
        assert replica.view == v1 + 1  # moved on to the next view

    def test_ping_resets_timer(self):
        replica = VRReplica(VRConfig(pid=1, servers=(1, 2, 3),
                                     election_timeout_ms=T,
                                     initial_leader=2))
        replica.start(0.0)
        replica.on_message(2, VRPing(replica.view), T * 0.9)
        replica.tick(T * 1.5)
        assert replica.status is VRStatus.NORMAL  # no suspicion


class TestReplication:
    def test_commands_decide_everywhere(self):
        sim, reps = build_vr_cluster(3, initial_leader=1)
        sim.run_for(300)
        for i in range(10):
            sim.propose(1, cmd(i))
        sim.run_for(300)
        for rep in reps.values():
            assert rep.sequence_paxos.decided_idx == 10

    def test_new_primary_syncs_log(self):
        sim, reps = build_vr_cluster(3, initial_leader=1)
        sim.run_for(300)
        for i in range(5):
            sim.propose(1, cmd(i))
        sim.run_for(200)
        sim.crash(1)
        leader = wait_leader(sim)
        sim.propose(leader, cmd(100))
        sim.run_for(500)
        survivors = [r for p, r in reps.items() if p != 1]
        assert all(r.sequence_paxos.decided_idx == 6 for r in survivors)

    def test_crash_recover_rejoins(self):
        sim, reps = build_vr_cluster(3, initial_leader=1)
        sim.run_for(300)
        for i in range(5):
            sim.propose(1, cmd(i))
        sim.run_for(200)
        sim.crash(3)
        sim.propose(1, cmd(5))
        sim.run_for(200)
        sim.recover(3)
        sim.run_for(1000)
        assert reps[3].sequence_paxos.decided_idx == 6
