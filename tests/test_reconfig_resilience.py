"""Resilience of reconfiguration under partial connectivity (paper §6.1).

"In Omni-Paxos, an added server can receive the log from any other server
such as an existing follower or even a newly added server that has completed
the migration. [...] if some server is disconnected from the leader, it
cannot complete the reconfiguration [in leader-based schemes]."

These tests exercise exactly those claims: joiners cut off from the leader,
crashed donors, stragglers, and announcement retransmission over flaky
links.
"""

import pytest

from repro.omni.entry import Command

from tests.conftest import build_omni_cluster, run_until_leader


def cmd(i: int) -> Command:
    return Command(data=b"x", client_id=1, seq=i)


def preload(sim, leader, count):
    for i in range(count):
        sim.propose(leader, cmd(i))
    sim.run_for(100)


class TestJoinerCutFromLeader:
    def test_parallel_migration_completes_without_leader(self):
        """The joiner cannot reach the leader at all, yet completes the
        join by pulling segments from the other continuing servers."""
        sim, servers = build_omni_cluster(3, joiners=(4,))
        leader = run_until_leader(sim)
        preload(sim, leader, 30)
        sim.set_link(leader, 4, False)
        sim.reconfigure(leader, (1, 2, 3, 4))
        sim.run_for(5_000)
        assert servers[4].global_log_len == 31
        assert tuple(sorted(servers[4].members)) == (1, 2, 3, 4)

    def test_leader_only_migration_stalls_without_leader(self):
        """Contrast (Figure 6a): when migration is restricted to a single
        designated donor and the joiner cannot reach it, the join waits
        until the link heals. A finite egress makes the migration slow
        enough to observe mid-flight."""
        sim, servers = build_omni_cluster(
            3, joiners=(4,), migration_strategy="leader",
            egress_bytes_per_ms=200.0)
        leader = run_until_leader(sim)
        for lo in range(0, 2_000, 100):
            sim.propose_batch(leader, [cmd(i) for i in range(lo, lo + 100)])
            sim.run_for(100)
        sim.run_for(2_000)
        assert servers[leader].global_log_len == 2_000
        sim.reconfigure(leader, (1, 2, 3, 4))
        sim.run_for(60)  # the announcement fixes the designated donor
        migration = servers[4]._migration
        assert migration is not None, "migration should be mid-flight"
        designated = migration.donors[0]
        sim.set_link(designated, 4, False)
        sim.run_for(5_000)
        assert servers[4].global_log_len < 2_001  # stalled
        sim.set_link(designated, 4, True)
        sim.run_for(20_000)
        assert servers[4].global_log_len == 2_001

    def test_joiner_fed_by_other_joiner(self):
        """A joiner that finished becomes a donor for its peers (the paper:
        'or even a newly added server that has completed the migration')."""
        sim, servers = build_omni_cluster(3, joiners=(4, 5))
        leader = run_until_leader(sim)
        preload(sim, leader, 30)
        # Joiner 5 can only reach joiner 4 and one old follower.
        follower = next(p for p in (1, 2, 3) if p != leader)
        for old in (1, 2, 3):
            if old != follower:
                sim.set_link(old, 5, False)
        sim.reconfigure(leader, (1, 2, 3, 4, 5))
        sim.run_for(8_000)
        assert servers[5].global_log_len == 31
        assert tuple(sorted(servers[5].members)) == (1, 2, 3, 4, 5)


class TestDonorFailures:
    def test_crashed_donor_rotated_away(self):
        sim, servers = build_omni_cluster(3, joiners=(4,))
        leader = run_until_leader(sim)
        preload(sim, leader, 30)
        victim = next(p for p in (1, 2, 3) if p != leader)
        sim.reconfigure(leader, (1, 2, 3, 4))
        sim.crash(victim)
        sim.run_for(6_000)
        assert servers[4].global_log_len == 31

    def test_migration_survives_joiner_blip(self):
        """The joiner drops off the network mid-migration; announcement
        retransmission and chunk retries finish the job after it returns."""
        sim, servers = build_omni_cluster(3, joiners=(4,))
        leader = run_until_leader(sim)
        preload(sim, leader, 30)
        sim.reconfigure(leader, (1, 2, 3, 4))
        sim.run_for(50)
        for old in (1, 2, 3):
            sim.set_link(old, 4, False)
        sim.run_for(2_000)
        for old in (1, 2, 3):
            sim.set_link(old, 4, True)
        sim.run_for(6_000)
        assert servers[4].global_log_len == 31
        assert tuple(sorted(servers[4].members)) == (1, 2, 3, 4)


class TestStragglers:
    def test_straggler_old_member_joins_late(self):
        """A continuing member partitioned through the whole reconfiguration
        catches up afterwards via announcements + migration."""
        sim, servers = build_omni_cluster(3, joiners=(4,))
        leader = run_until_leader(sim)
        preload(sim, leader, 20)
        straggler = next(p for p in (1, 2, 3) if p != leader)
        for other in (1, 2, 3, 4):
            if other != straggler:
                sim.set_link(straggler, other, False)
        sim.reconfigure(leader, (1, 2, 3, 4))
        sim.run_for(3_000)
        assert servers[straggler].global_log_len < 21
        sim.heal_all_links()
        sim.run_for(6_000)
        assert servers[straggler].global_log_len == 21
        assert tuple(sorted(servers[straggler].members)) == (1, 2, 3, 4)

    def test_new_config_makes_progress_before_straggler_joins(self):
        """The new configuration does not wait for stragglers: a majority of
        started members suffices."""
        sim, servers = build_omni_cluster(3, joiners=(4,))
        leader = run_until_leader(sim)
        preload(sim, leader, 10)
        straggler = next(p for p in (1, 2, 3) if p != leader)
        for other in (1, 2, 3, 4):
            if other != straggler:
                sim.set_link(straggler, other, False)
        sim.reconfigure(leader, (1, 2, 3, 4))
        sim.run_for(3_000)
        leaders = sim.leaders()
        assert leaders
        sim.propose(leaders[0], cmd(100))
        sim.run_for(1_000)
        active = [p for p in (1, 2, 3, 4) if p != straggler]
        lengths = {servers[p].global_log_len for p in active}
        assert lengths == {12}  # 10 + stop-sign + 1 new command
