"""Runtime wire-path tests: coalescing, backpressure, corrupt-frame
handling, clean teardown, and leader-side proposal pipelining."""

import asyncio
import socket
import warnings

import pytest

from repro.errors import ConfigError
from repro.obs.registry import MetricsRegistry
from repro.omni.entry import Command
from repro.omni.messages import COMPONENT_SP, Envelope, PrepareReq
from repro.omni.server import ClusterConfig, OmniPaxosConfig, OmniPaxosServer
from repro.runtime import (
    PeerAddress,
    PipelineConfig,
    RuntimeNode,
    TcpMesh,
    install_uvloop,
)
from repro.runtime.codec import encode_frame


def free_ports(count):
    socks = [socket.socket() for _ in range(count)]
    try:
        for s in socks:
            s.bind(("127.0.0.1", 0))
            s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        return [s.getsockname()[1] for s in socks]
    finally:
        for s in socks:
            s.close()


def make_addrs(pids):
    ports = free_ports(len(pids))
    return {p: PeerAddress(p, "127.0.0.1", port)
            for p, port in zip(pids, ports)}


async def wait_for(predicate, timeout_s=15.0, interval_s=0.02):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    while loop.time() < deadline:
        value = predicate()
        if value:
            return value
        await asyncio.sleep(interval_s)
    raise AssertionError("condition not reached over TCP in time")


class _StubTransport:
    def __init__(self, buffered):
        self.buffered = buffered

    def get_write_buffer_size(self):
        return self.buffered


class _StubWriter:
    """Looks enough like a StreamWriter for TcpMesh's send path."""

    def __init__(self, buffered=0):
        self.transport = _StubTransport(buffered)
        self.chunks = []

    def write(self, data):
        self.chunks.append(bytes(data))

    def close(self):
        pass

    async def wait_closed(self):
        pass


def _mesh(pid=1, peers=None, obs=None, **kwargs):
    addrs = make_addrs([1, 2])
    mesh = TcpMesh(pid, addrs[pid],
                   peers if peers is not None
                   else {q: a for q, a in addrs.items() if q != pid},
                   on_message=lambda s, m: None, **kwargs)
    if obs is not None:
        mesh.set_observability(obs)
    return mesh


class TestBackpressure:
    def test_send_drops_above_high_water_mark(self):
        reg = MetricsRegistry()
        mesh = _mesh(obs=reg, max_write_buffer_bytes=1024)
        writer = _StubWriter(buffered=2048)  # already past the mark
        mesh._writers[2] = writer
        mesh.send(2, PrepareReq())
        assert writer.chunks == []
        assert reg.counter_value("repro_messages_dropped_total",
                                 src=1, reason="backpressure") == 1
        # Sent counters still billed, like SimNetwork's dropped sends.
        assert reg.counter_value("repro_messages_sent_total",
                                 src=1, kind="PrepareReq") == 1

    def test_staged_bytes_count_toward_the_mark(self):
        # Needs a running loop: without one, send degrades to write-now
        # and the staging buffer never accumulates.
        async def scenario():
            reg = MetricsRegistry()
            mesh = _mesh(obs=reg, max_write_buffer_bytes=200,
                         coalesce_bytes=10_000)
            mesh._writers[2] = _StubWriter(buffered=0)
            for i in range(100):
                mesh.send(2, Command(data=b"x" * 32, client_id=1, seq=i))
            dropped = reg.counter_value("repro_messages_dropped_total",
                                        src=1, reason="backpressure")
            assert dropped > 0
            assert len(mesh._staged[2]) <= 200

        asyncio.run(scenario())

    def test_below_mark_nothing_dropped(self):
        reg = MetricsRegistry()
        mesh = _mesh(obs=reg)
        writer = _StubWriter()
        mesh._writers[2] = writer
        mesh.send(2, PrepareReq())
        mesh.flush()
        assert len(writer.chunks) == 1
        assert reg.counter_value("repro_messages_dropped_total",
                                 src=1, reason="backpressure") == 0


class TestCoalescing:
    def test_many_sends_one_write(self):
        async def scenario():
            mesh = _mesh()
            writer = _StubWriter()
            mesh._writers[2] = writer
            for i in range(50):
                mesh.send(2, Command(data=b"x", client_id=1, seq=i))
            assert writer.chunks == []  # staged, nothing written yet
            mesh.flush()
            assert len(writer.chunks) == 1  # one syscall for all 50
            from repro.runtime.codec import FrameDecoder
            frames = FrameDecoder().feed(writer.chunks[0])
            assert len(frames) == 50
            assert [p.seq for _, p in frames] == list(range(50))  # FIFO

        asyncio.run(scenario())

    def test_size_threshold_flushes_immediately(self):
        mesh = _mesh(coalesce_bytes=64)
        writer = _StubWriter()
        mesh._writers[2] = writer
        mesh.send(2, Command(data=b"x" * 100, client_id=1, seq=0))
        assert len(writer.chunks) == 1  # exceeded threshold: flushed now

    def test_scheduled_flush_inside_event_loop(self):
        async def scenario():
            mesh = _mesh()
            writer = _StubWriter()
            mesh._writers[2] = writer
            mesh.send(2, PrepareReq())
            assert writer.chunks == []
            await asyncio.sleep(0)  # let the call_soon flush run
            return writer.chunks

        chunks = asyncio.run(scenario())
        assert len(chunks) == 1

    def test_coalesced_frames_deliver_over_real_tcp(self):
        async def scenario():
            addrs = make_addrs([1, 2])
            inbox = []
            a = TcpMesh(1, addrs[1], {2: addrs[2]},
                        on_message=lambda s, m: None)
            b = TcpMesh(2, addrs[2], {1: addrs[1]},
                        on_message=lambda s, m: inbox.append((s, m)))
            await a.start()
            await b.start()
            try:
                await wait_for(lambda: 2 in a.connected_peers)
                for i in range(200):
                    a.send(2, Command(data=b"y", client_id=1, seq=i))
                a.flush()
                await wait_for(lambda: len(inbox) == 200)
            finally:
                await a.close()
                await b.close()
            return inbox

        inbox = asyncio.run(scenario())
        assert [m.seq for _, m in inbox] == list(range(200))

    def test_mixed_wire_cluster_interoperates(self):
        # A binary node and a legacy pickle node on one mesh: inbound
        # auto-detects per frame, so both directions deliver.
        async def scenario():
            addrs = make_addrs([1, 2])
            inbox_a, inbox_b = [], []
            a = TcpMesh(1, addrs[1], {2: addrs[2]},
                        on_message=lambda s, m: inbox_a.append(m),
                        wire="binary")
            b = TcpMesh(2, addrs[2], {1: addrs[1]},
                        on_message=lambda s, m: inbox_b.append(m),
                        wire="pickle")
            await a.start()
            await b.start()
            try:
                await wait_for(lambda: 2 in a.connected_peers
                               and 1 in b.connected_peers)
                a.send(2, Command(data=b"bin", client_id=1, seq=1))
                b.send(1, Command(data=b"pkl", client_id=2, seq=2))
                a.flush()
                b.flush()
                await wait_for(lambda: inbox_a and inbox_b)
            finally:
                await a.close()
                await b.close()
            return inbox_a, inbox_b

        inbox_a, inbox_b = asyncio.run(scenario())
        assert inbox_a[0].data == b"pkl"
        assert inbox_b[0].data == b"bin"


class TestCorruptFrames:
    def test_corrupt_frame_closes_connection_with_counter(self):
        async def scenario():
            addrs = make_addrs([1, 2])
            reg = MetricsRegistry()
            inbox = []
            b = TcpMesh(2, addrs[2], {}, on_message=lambda s, m:
                        inbox.append(m))
            b.set_observability(reg)
            await b.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", addrs[2].port)
                # A valid frame, then unframeable garbage.
                writer.write(encode_frame(1, PrepareReq()))
                writer.write(b"\xff\xff\xff\xff garbage")
                await writer.drain()
                await wait_for(lambda: reg.counter_value(
                    "repro_messages_dropped_total",
                    src=2, reason="corrupt_frame") == 1)
                # The receiver closed the poisoned connection cleanly.
                data = await asyncio.wait_for(reader.read(), timeout=5.0)
                assert data == b""
                writer.close()
            finally:
                await b.close()
            return inbox

        inbox = asyncio.run(scenario())
        assert inbox == [PrepareReq()]  # the good frame still delivered

    def test_unhandled_task_exceptions_absent(self):
        # The regression this PR fixes: TransportError escaping
        # _handle_inbound surfaced via the loop exception handler.
        async def scenario():
            failures = []
            asyncio.get_running_loop().set_exception_handler(
                lambda loop, ctx: failures.append(ctx))
            addrs = make_addrs([1, 2])
            b = TcpMesh(2, addrs[2], {}, on_message=lambda s, m: None)
            await b.start()
            _reader, writer = await asyncio.open_connection(
                "127.0.0.1", addrs[2].port)
            writer.write(b"\xff\xff\xff\xffgarbage")
            await writer.drain()
            await asyncio.sleep(0.2)
            writer.close()
            await b.close()
            # Give any pending task-exception callbacks a chance to fire.
            await asyncio.sleep(0.1)
            return failures

        assert asyncio.run(scenario()) == []


class TestTeardown:
    def test_close_leaves_no_pending_tasks(self):
        async def scenario():
            addrs = make_addrs([1, 2])
            mesh = TcpMesh(1, addrs[1], {2: addrs[2]},
                           on_message=lambda s, m: None,
                           ping_interval_ms=20.0)
            await mesh.start()
            await asyncio.sleep(0.1)
            await mesh.close()
            others = [t for t in asyncio.all_tasks()
                      if t is not asyncio.current_task() and not t.done()]
            return others

        assert asyncio.run(scenario()) == []

    def test_close_emits_no_resource_warnings(self):
        async def scenario():
            addrs = make_addrs([1, 2])
            a = TcpMesh(1, addrs[1], {2: addrs[2]},
                        on_message=lambda s, m: None)
            b = TcpMesh(2, addrs[2], {1: addrs[1]},
                        on_message=lambda s, m: None)
            await a.start()
            await b.start()
            await wait_for(lambda: 2 in a.connected_peers)
            a.send(2, PrepareReq())
            await a.close()
            await b.close()

        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            asyncio.run(scenario())


class TestPipelining:
    def _build(self, pipeline_for_all=None, on_decided=None):
        cc = ClusterConfig(0, (1, 2, 3))
        addrs = make_addrs(list(cc.servers))
        nodes = {}
        for p in cc.servers:
            server = OmniPaxosServer(OmniPaxosConfig(
                pid=p, cluster=cc, hb_period_ms=40.0, initial_leader=1))
            handler = on_decided(p) if on_decided else (lambda i, e: None)
            nodes[p] = RuntimeNode(
                server, addrs[p],
                {q: a for q, a in addrs.items() if q != p},
                tick_ms=5.0,
                on_decided=handler,
                pipeline=pipeline_for_all,
            )
        return nodes

    def test_pipeline_requires_decided_handler(self):
        addrs = make_addrs([1, 2])
        cc = ClusterConfig(0, (1, 2))
        server = OmniPaxosServer(OmniPaxosConfig(pid=1, cluster=cc))
        with pytest.raises(ConfigError):
            RuntimeNode(server, addrs[1], {2: addrs[2]},
                        pipeline=PipelineConfig())

    def test_pipelined_proposals_all_decide(self):
        async def scenario():
            decided = {1: [], 2: [], 3: []}

            def handler(pid):
                return lambda idx, entry: decided[pid].append((idx, entry))

            cfg = PipelineConfig(inflight_high=64, inflight_low=16,
                                 max_batch=16)
            nodes = self._build(pipeline_for_all=cfg, on_decided=handler)
            for node in nodes.values():
                await node.start()
            try:
                await wait_for(lambda: all(
                    n.leader_pid == 1 for n in nodes.values()))
                entries = [Command(data=b"p", client_id=1, seq=i)
                           for i in range(500)]
                nodes[1].propose_batch(entries)
                # Admission is watermark-bounded, not all-at-once.
                assert nodes[1].inflight_proposals <= 64
                await wait_for(lambda: all(
                    len(d) == 500 for d in decided.values()))
            finally:
                for node in nodes.values():
                    await node.stop()
            return decided

        decided = asyncio.run(scenario())
        for pid in (1, 2, 3):
            assert [e.seq for _, e in decided[pid]] == list(range(500))
        assert decided[1] == decided[2] == decided[3]

    def test_window_chokes_then_drains(self):
        async def scenario():
            decided = {1: 0, 2: 0, 3: 0}

            def handler(pid):
                def on_decided(idx, entry):
                    decided[pid] += 1
                return on_decided

            cfg = PipelineConfig(inflight_high=8, inflight_low=2,
                                 max_batch=4)
            nodes = self._build(pipeline_for_all=cfg, on_decided=handler)
            for node in nodes.values():
                await node.start()
            try:
                await wait_for(lambda: all(
                    n.leader_pid == 1 for n in nodes.values()))
                leader = nodes[1]
                leader.propose_batch(
                    [Command(data=b"c", client_id=1, seq=i)
                     for i in range(40)])
                # Tiny window: most entries must still be queued in the
                # node, in-flight capped at the high watermark.
                assert leader.inflight_proposals <= 8
                assert leader.pending_proposals >= 32
                assert leader.status()["pipeline"]["choked"] is True
                await wait_for(lambda: all(c == 40
                                           for c in decided.values()))
            finally:
                for node in nodes.values():
                    await node.stop()
            return decided

        assert set(asyncio.run(scenario()).values()) == {40}

    def test_pending_and_inflight_drain_to_zero(self):
        async def scenario():
            counts = {1: 0, 2: 0, 3: 0}

            def handler(pid):
                def on_decided(idx, entry):
                    counts[pid] += 1
                return on_decided

            cfg = PipelineConfig(inflight_high=32, inflight_low=8,
                                 max_batch=8)
            nodes = self._build(pipeline_for_all=cfg, on_decided=handler)
            for node in nodes.values():
                await node.start()
            try:
                await wait_for(lambda: all(
                    n.leader_pid == 1 for n in nodes.values()))
                nodes[1].propose_batch(
                    [Command(data=b"d", client_id=1, seq=i)
                     for i in range(100)])
                await wait_for(lambda: all(c == 100
                                           for c in counts.values()))
                await wait_for(lambda: nodes[1].pending_proposals == 0
                               and nodes[1].inflight_proposals == 0)
                status = nodes[1].status()
                assert status["pipeline"]["pending"] == 0
                assert status["pipeline"]["choked"] is False
                assert status["wire"] == "binary"
            finally:
                for node in nodes.values():
                    await node.stop()

        asyncio.run(scenario())


class TestUvloop:
    def test_install_uvloop_is_gated(self):
        # The container has no uvloop: the helper must report False and
        # leave the default policy working.
        result = install_uvloop()
        assert result in (True, False)
        if not result:
            asyncio.run(asyncio.sleep(0))  # policy still functional
