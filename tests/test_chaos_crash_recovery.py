"""Leader crash-then-restart in the middle of follower resynchronization.

The scenario the fail-recovery model (paper section 3) is really about:
a follower falls behind during a partition, the heal triggers the
leader's catch-up machinery (Omni-Paxos: Prepare/AcceptSync; Raft:
AppendEntries backtracking), and the leader dies with that exchange in
flight. The cluster must elect a successor, keep deciding, and absorb
the old leader's restart — with its storage intact or wiped — without
ever violating log-prefix agreement.
"""

import pytest

from repro.chaos.checker import DecidedLogChecker
from repro.omni.invariants import check_all
from repro.sim.harness import ExperimentConfig, build_experiment, make_replica

from dataclasses import replace

#: The satellite names Omni-Paxos and the Raft baseline explicitly.
PROTOCOLS = ("omni", "raft")


class CrashRecoveryRig:
    """Drives the common scenario; assertions live in the tests."""

    def __init__(self, protocol: str, seed: int = 0):
        self.cfg = ExperimentConfig(
            protocol=protocol,
            num_servers=3,
            election_timeout_ms=100.0,
            one_way_ms=0.1,
            seed=seed,
            initial_leader=1,
        )
        self.exp = build_experiment(self.cfg)
        self.cluster = self.exp.cluster
        self.client = self.exp.make_client(concurrent_proposals=4)
        self.checker = DecidedLogChecker()
        self.cluster.on_decided(self.checker.observe)

    def decided_len(self) -> int:
        return len(self.checker.canonical)

    def isolate_follower(self, pid: int = 3) -> None:
        for peer in (1, 2):
            self.cluster.set_link(peer, pid, False)

    def heal_and_crash_leader_mid_sync(self, follower: int = 3,
                                       crash_after_ms: float = 0.35) -> None:
        """Reconnect the lagging follower and kill the leader while the
        resulting catch-up exchange is still in flight (sub-RTT window)."""
        for peer in (1, 2):
            self.cluster.set_link(peer, follower, True)
        self.cluster.run_until(self.cluster.now + crash_after_ms)
        self.cluster.crash(1)

    def restart_leader(self, wipe: bool) -> None:
        if wipe:
            fresh = make_replica(replace(self.cfg, initial_leader=None), 1)
            self.cluster.replace_replica(1, fresh)
            self.checker.forget(1)
        else:
            self.cluster.recover(1)

    def converged(self) -> bool:
        counts = {self.checker.next_idx.get(pid, 0)
                  for pid in self.cluster.pids}
        return len(counts) == 1


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("wipe", (False, True), ids=("intact", "wiped"))
def test_leader_crash_mid_sync_then_restart(protocol, wipe):
    rig = CrashRecoveryRig(protocol)
    cluster = rig.cluster

    # Steady state under the seeded leader.
    cluster.run_for(500.0)
    assert 1 in cluster.leaders()
    baseline = rig.decided_len()
    assert baseline > 0

    # Follower 3 lags while {1, 2} keep deciding.
    rig.isolate_follower(3)
    cluster.run_for(600.0)
    lagged = rig.decided_len()
    assert lagged > baseline

    # Heal, then crash the leader inside the catch-up window.
    rig.heal_and_crash_leader_mid_sync(follower=3)
    assert cluster.is_crashed(1)

    # A successor among {2, 3} takes over and progress resumes.
    cluster.run_for(2_000.0)
    assert rig.checker.ok, rig.checker.violation
    post_crash = rig.decided_len()
    assert post_crash > lagged
    assert any(leader != 1 for leader in cluster.leaders())

    # The old leader returns (intact storage or a wiped disk) and rejoins.
    rig.restart_leader(wipe=wipe)
    cluster.run_for(2_000.0)

    assert rig.checker.ok, rig.checker.violation
    assert rig.decided_len() > post_crash
    # Quiesce the workload: with proposals in flight, followers trail the
    # leader's apply watermark by one commit-notification round trip.
    rig.client.stop()
    cluster.run_for(1_000.0)
    assert rig.converged(), rig.checker.next_idx
    if protocol == "omni":
        check_all([cluster.replica(pid) for pid in cluster.pids])


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_repeated_crash_restart_cycles_stay_safe(protocol):
    """Two consecutive crash/restart cycles of the same leader pid, the
    second against an already once-recovered cluster."""
    rig = CrashRecoveryRig(protocol, seed=1)
    cluster = rig.cluster
    cluster.run_for(500.0)
    for _cycle in range(2):
        rig.isolate_follower(3)
        cluster.run_for(400.0)
        rig.heal_and_crash_leader_mid_sync(follower=3)
        cluster.run_for(1_500.0)
        assert rig.checker.ok, rig.checker.violation
        rig.restart_leader(wipe=False)
        cluster.run_for(1_500.0)
        assert rig.checker.ok, rig.checker.violation
    rig.client.stop()
    cluster.run_for(1_000.0)
    assert rig.converged(), rig.checker.next_idx
