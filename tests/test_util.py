"""Unit tests for statistics and RNG utilities."""

import math

import pytest

from repro.util.rng import make_rng, spawn_rng
from repro.util.stats import ConfidenceInterval, mean_ci, percentile, summarize


class TestMeanCI:
    def test_requires_samples(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_single_sample_zero_width(self):
        ci = mean_ci([5.0])
        assert ci.mean == 5.0
        assert ci.half_width == 0.0
        assert ci.n == 1

    def test_identical_samples_zero_width(self):
        ci = mean_ci([2.0] * 10)
        assert ci.mean == 2.0
        assert ci.half_width == pytest.approx(0.0)

    def test_known_value(self):
        # n=10, sd=1 -> half width = t(9, .975) * 1/sqrt(10) ~= 0.7154
        samples = [0.0, 2.0] * 5  # mean 1, sample sd ~1.054
        ci = mean_ci(samples)
        assert ci.mean == pytest.approx(1.0)
        sd = math.sqrt(sum((x - 1.0) ** 2 for x in samples) / 9)
        expected = 2.262 * sd / math.sqrt(10)
        assert ci.half_width == pytest.approx(expected, rel=1e-3)

    def test_bounds(self):
        ci = mean_ci([1.0, 2.0, 3.0])
        assert ci.low == ci.mean - ci.half_width
        assert ci.high == ci.mean + ci.half_width

    def test_str_format(self):
        assert "n=3" in str(mean_ci([1.0, 2.0, 3.0]))

    def test_wider_with_more_variance(self):
        tight = mean_ci([1.0, 1.1, 0.9, 1.0])
        loose = mean_ci([0.0, 2.0, -1.0, 3.0])
        assert loose.half_width > tight.half_width


class TestPercentile:
    def test_requires_samples(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_bounds_check(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_median_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 50) == 5.0

    def test_extremes(self):
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0


class TestSummarize:
    def test_keys(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert set(stats) == {"mean", "ci95", "min", "max", "p50", "p99", "n"}

    def test_values(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        assert stats["n"] == 3


class TestRng:
    def test_make_rng_deterministic(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_spawn_streams_differ_by_scope(self):
        a = spawn_rng(42, "raft", 1)
        b = spawn_rng(42, "raft", 2)
        assert a.random() != b.random()

    def test_spawn_streams_differ_by_seed(self):
        a = spawn_rng(1, "x")
        b = spawn_rng(2, "x")
        assert a.random() != b.random()

    def test_spawn_reproducible(self):
        a = spawn_rng(42, "net")
        b = spawn_rng(42, "net")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_large_seeds_matter(self):
        a = spawn_rng(1 << 40, "x")
        b = spawn_rng(0, "x")
        assert a.random() != b.random()
