"""End-to-end tests: traced scenario export -> repro-obs timeline/spans.

Runs the tracing smoke tool (a short quorum-loss scenario with causal
tracing on), then drives the ``repro-obs`` CLI over the export — the same
pipeline the CI smoke job runs — and checks the acceptance criterion that
the reconstructed down-time window matches the harness's own
:class:`DecidedTracker` measurement.
"""

import re

import pytest

from repro.obs.exporters import read_jsonl
from repro.obs.report import decided_tracker_from_events
from repro.obs.spans import SPAN_COMMIT, assemble_spans
from repro.obs.timeline import render_spans, render_timeline
from repro.tools import obs_report, trace_smoke

ELECTION_TIMEOUT_MS = 50.0


@pytest.fixture(scope="module")
def smoke(tmp_path_factory):
    """One traced quorum-loss run: (export path, smoke-tool stdout dict)."""
    path = tmp_path_factory.mktemp("trace") / "smoke.jsonl"
    import io
    import contextlib

    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        code = trace_smoke.main([
            str(path),
            "--election-timeout-ms", str(ELECTION_TIMEOUT_MS),
            "--partition-ms", "1000",
            "--warmup-ms", "500",
            "--cooldown-ms", "500",
        ])
    assert code == 0
    printed = dict(
        line.split("=", 1) for line in buf.getvalue().splitlines()
    )
    return str(path), printed


class TestTraceSmokeTool:
    def test_export_holds_span_events(self, smoke):
        path, printed = smoke
        events, metrics = read_jsonl(path)
        kinds = {r.event.kind for r in events}
        assert {"ProposalAppended", "QuorumAccepted", "EntryApplied",
                "ClientProposalSent", "ClientReplyDecided"} <= kinds
        assert metrics  # the snapshot was appended on close
        assert printed["scenario"] == "quorum_loss"

    def test_commit_spans_reconstruct(self, smoke):
        path, _ = smoke
        events, _ = read_jsonl(path)
        spans = assemble_spans(events)
        commits = [s for s in spans if s.kind == SPAN_COMMIT]
        assert commits
        # Every commit span has the replicate milestone and a trace id.
        assert all(s.phases[0][0] == "replicate" for s in commits)
        assert any(s.trace_id.startswith("c") for s in commits)


class TestTimelineCli:
    def test_timeline_exits_zero_with_gantt(self, smoke, capsys):
        path, _ = smoke
        assert obs_report.main(["timeline", path]) == 0
        out = capsys.readouterr().out
        assert "leader" in out and "downtime" in out
        assert "longest down-time:" in out
        # Lanes are drawn, not empty.
        assert re.search(r"decided  \|.*[.#+:].*\|", out)

    def test_downtime_matches_harness_tracker(self, smoke, capsys):
        path, printed = smoke
        start = float(printed["partition_at_ms"])
        end = float(printed["partition_end_ms"])
        assert obs_report.main([
            "timeline", path, "--start-ms", str(start), "--end-ms", str(end),
        ]) == 0
        out = capsys.readouterr().out
        m = re.search(r"longest down-time: ([0-9.]+) ms", out)
        assert m
        reconstructed = float(m.group(1))
        harness = float(printed["downtime_ms"])
        # Same DecidedTracker, same window: identical up to print rounding
        # (the criterion allows one heartbeat; we land far inside it).
        assert abs(reconstructed - harness) < ELECTION_TIMEOUT_MS
        assert reconstructed == pytest.approx(harness, abs=0.05)

    def test_downtime_window_is_exact_against_tracker(self, smoke):
        path, printed = smoke
        events, _ = read_jsonl(path)
        start = float(printed["partition_at_ms"])
        end = float(printed["partition_end_ms"])
        tracker = decided_tracker_from_events(events)
        gap_start, gap_end = tracker.downtime_window(start, end)
        assert gap_end - gap_start == pytest.approx(
            float(printed["downtime_ms"]), abs=1e-6)

    def test_spans_subcommand(self, smoke, capsys):
        path, _ = smoke
        assert obs_report.main(["spans", path, "--kind", "commit",
                                "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("spans ")
        assert "commit (" in out
        # At least one Gantt bar ('=' body, or '+' when a sub-column span
        # is all milestone).
        assert re.search(r"\|[ ]*[=+]", out)

    def test_timeline_renders_p99_critical_path(self, smoke, capsys):
        path, _ = smoke
        assert obs_report.main(["timeline", path]) == 0
        out = capsys.readouterr().out
        assert "p99 commit" in out
        assert "replicate" in out

    def test_legacy_report_form_still_works(self, smoke, capsys):
        path, _ = smoke
        assert obs_report.main([path]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_report_subcommand(self, smoke, capsys):
        path, _ = smoke
        assert obs_report.main(["report", path, "--window-ms", "1000"]) == 0
        assert "decided replies" in capsys.readouterr().out

    def test_missing_file_is_error(self, capsys):
        assert obs_report.main(["timeline", "/nonexistent.jsonl"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_no_arguments_prints_help(self, capsys):
        assert obs_report.main([]) == 2

    def test_render_functions_pure(self, smoke):
        # The renderers are usable as a library, not just via the CLI.
        path, _ = smoke
        events, _ = read_jsonl(path)
        spans = assemble_spans(events)
        assert "timeline" in render_timeline(events, spans=spans)
        assert "spans" in render_spans(spans)
        assert render_timeline([]) == "(no events)"
        assert render_spans([]) == "(no spans)"
