"""WAN-setting behaviour (Figure 7's geo-distributed deployment).

In the paper's WAN setup the leader sits in us-central1 with followers in
eu-west1 (RTT 105 ms) and asia-northeast1 (RTT 145 ms). Commit latency is
governed by the round trip to the *nearest majority*, and elections still
work across high-latency links as long as the heartbeat period exceeds the
RTT.
"""

import pytest

from repro.sim.harness import ExperimentConfig, build_experiment, wan_latency_map


def build_wan(protocol="omni", n=3, timeout=500.0, seed=1):
    servers = tuple(range(1, n + 1))
    leader = n
    cfg = ExperimentConfig(
        protocol=protocol,
        num_servers=n,
        election_timeout_ms=timeout,
        latency_map=wan_latency_map(servers, leader),
        seed=seed,
        initial_leader=leader,
        tick_ms=1.0,
    )
    return build_experiment(cfg), leader


class TestWanCommitLatency:
    def test_commit_waits_for_nearest_majority(self):
        """With followers at one-way 52.5 and 72.5 ms, a 3-server commit
        completes after the *faster* follower's round trip (~105 ms), not
        the slower one's."""
        exp, leader = build_wan(n=3)
        client = exp.make_client(concurrent_proposals=1)
        exp.cluster.run_for(5_000)
        pct = client.latency_percentiles()
        # One-way 52.5 -> RTT 105 ms; allow client-tick quantization; the
        # p50 must sit well below the slow follower's 145 ms RTT.
        assert 100.0 <= pct["p50"] <= 130.0

    def test_five_server_wan_same_majority_latency(self):
        """With two followers per zone, the majority (leader + two nearest)
        still completes at the fast zone's RTT."""
        exp, leader = build_wan(n=5)
        client = exp.make_client(concurrent_proposals=1)
        exp.cluster.run_for(5_000)
        pct = client.latency_percentiles()
        assert 100.0 <= pct["p50"] <= 130.0

    @pytest.mark.parametrize("protocol", ("omni", "raft", "multipaxos"))
    def test_all_protocols_commit_over_wan(self, protocol):
        exp, leader = build_wan(protocol=protocol)
        client = exp.make_client(concurrent_proposals=8)
        exp.cluster.run_for(5_000)
        assert client.decided_count > 0


class TestWanProposalTimeout:
    def test_default_timeout_sized_from_slowest_link(self):
        """Regression: the client's default proposal timeout used to be
        derived from the *base* ``one_way_ms`` (0.1 ms here) even when a
        latency map put every real link at WAN distances. With a small
        election timeout the derived value undershot a WAN round trip and
        the client re-proposed entries that were still in flight."""
        exp, _leader = build_wan(n=3, timeout=100.0)
        client = exp.make_client(concurrent_proposals=1)
        max_one_way = exp.network.max_latency()
        assert max_one_way >= 125.0  # the cross-zone links of the WAN map
        assert client._params.proposal_timeout_ms >= 8.0 * max_one_way

    def test_lan_default_timeout_unchanged(self):
        cfg = ExperimentConfig(num_servers=3, election_timeout_ms=100.0,
                               initial_leader=1)
        exp = build_experiment(cfg)
        client = exp.make_client(concurrent_proposals=1)
        assert client._params.proposal_timeout_ms == \
            2.0 * cfg.election_timeout_ms

    def test_no_spurious_reproposals_over_wan(self):
        """A healthy WAN cluster must commit everything on first submission:
        re-proposals mean the timeout is shorter than the commit path."""
        exp, _leader = build_wan(n=3)
        client = exp.make_client(concurrent_proposals=4)
        exp.cluster.run_for(5_000)
        assert client.decided_count > 0
        assert client.reproposals == 0


class TestWanElections:
    def test_election_succeeds_across_wan(self):
        """A leader crash in the WAN setting re-elects despite >100 ms RTTs
        (the heartbeat period of 500 ms dominates)."""
        exp, leader = build_wan(n=3)
        exp.cluster.run_for(2_000)
        exp.cluster.crash(leader)
        elapsed = 0.0
        new_leader = None
        while elapsed < 20_000:
            exp.cluster.run_for(250)
            elapsed += 250
            leaders = [p for p in exp.cluster.leaders() if p != leader]
            if leaders:
                new_leader = leaders[0]
                break
        assert new_leader is not None
        client = exp.make_client(concurrent_proposals=4)
        exp.cluster.run_for(3_000)
        assert client.decided_count > 0

    def test_heartbeat_period_must_exceed_rtt(self):
        """With a heartbeat period *below* the WAN round trip, replies never
        arrive inside their round and no server sees a quorum — the classic
        mis-configured-timeout failure, visible and diagnosable."""
        exp, leader = build_wan(n=3, timeout=50.0)  # < 105 ms RTT
        exp.cluster.run_for(3_000)
        ble = exp.cluster.replica(leader).ble_of_current()
        assert not ble.quorum_heard_within(exp.cluster.now, 200.0)
