"""Failover tests over real TCP: kill a live leader process, watch the
cluster re-elect and resync, including the socket-level session-drop path."""

import asyncio
import socket

import pytest

from repro.omni.entry import Command
from repro.omni.server import ClusterConfig, OmniPaxosConfig, OmniPaxosServer
from repro.runtime import PeerAddress, RuntimeNode


def free_ports(count):
    """OS-assigned free ports (closed immediately; small reuse race is far
    less flaky than fixed port numbers under a loaded test suite)."""
    socks = [socket.socket() for _ in range(count)]
    try:
        for s in socks:
            s.bind(("127.0.0.1", 0))
            s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        return [s.getsockname()[1] for s in socks]
    finally:
        for s in socks:
            s.close()


def build_nodes(offset, hb_ms=40.0):
    cc = ClusterConfig(0, (1, 2, 3))
    ports = free_ports(3)
    addrs = {p: PeerAddress(p, "127.0.0.1", ports[p - 1])
             for p in cc.servers}
    nodes = {}
    for p in cc.servers:
        server = OmniPaxosServer(OmniPaxosConfig(
            pid=p, cluster=cc, hb_period_ms=hb_ms))
        nodes[p] = RuntimeNode(
            server, addrs[p],
            {q: a for q, a in addrs.items() if q != p},
            tick_ms=8.0,
        )
    return nodes, addrs


async def wait_for(predicate, timeout_s=20.0, interval_s=0.03):
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout_s
    while loop.time() < deadline:
        value = predicate()
        if value:
            return value
        await asyncio.sleep(interval_s)
    raise AssertionError("condition not reached over TCP in time")


def current_leader(nodes, exclude=()):
    for p, n in nodes.items():
        if p not in exclude and n.is_leader:
            return p
    return None


class TestLiveFailover:
    def test_leader_kill_and_reelection(self):
        async def scenario():
            nodes, _addrs = build_nodes(0)
            for n in nodes.values():
                await n.start()
            try:
                leader = await wait_for(lambda: current_leader(nodes))
                for i in range(5):
                    nodes[leader].propose(Command(b"x", client_id=1, seq=i))
                await wait_for(lambda: all(
                    n.replica.global_log_len == 5 for n in nodes.values()))
                # Kill the leader process outright.
                await nodes[leader].stop()
                survivors = {p: n for p, n in nodes.items() if p != leader}
                new_leader = await wait_for(
                    lambda: current_leader(survivors))
                assert new_leader != leader
                nodes[new_leader].propose(Command(b"y", client_id=1, seq=5))
                await wait_for(lambda: all(
                    n.replica.global_log_len == 6
                    for n in survivors.values()))
            finally:
                for p, n in nodes.items():
                    await n.stop()

        asyncio.run(scenario())

    def test_restarted_node_resyncs_over_tcp(self):
        async def scenario():
            nodes, addrs = build_nodes(20)
            for n in nodes.values():
                await n.start()
            try:
                leader = await wait_for(lambda: current_leader(nodes))
                follower = next(p for p in nodes if p != leader)
                # Take the follower offline (socket-level).
                await nodes[follower].stop()
                for i in range(5):
                    nodes[leader].propose(Command(b"x", client_id=1, seq=i))
                others = [p for p in nodes if p != follower]
                await wait_for(lambda: all(
                    nodes[p].replica.global_log_len == 5 for p in others))
                # Restart it as a fresh process over the same storage-less
                # replica object (simulated recovery path).
                replica = nodes[follower].replica
                replica.crash()
                replica.recover(0.0)
                nodes[follower] = RuntimeNode(
                    replica, addrs[follower],
                    {q: a for q, a in addrs.items() if q != follower},
                    tick_ms=8.0,
                )
                await nodes[follower].start()
                await wait_for(
                    lambda: nodes[follower].replica.global_log_len == 5)
            finally:
                for n in nodes.values():
                    await n.stop()

        asyncio.run(scenario())

    def test_many_proposals_through_live_cluster(self):
        async def scenario():
            nodes, _addrs = build_nodes(40)
            for n in nodes.values():
                await n.start()
            try:
                leader = await wait_for(lambda: current_leader(nodes))
                for batch in range(10):
                    nodes[leader].propose_batch([
                        Command(b"z", client_id=1, seq=batch * 20 + i)
                        for i in range(20)
                    ])
                    await asyncio.sleep(0.02)
                await wait_for(lambda: all(
                    n.replica.global_log_len == 200 for n in nodes.values()))
                logs = {tuple(e.seq for e in n.replica.read_log())
                        for n in nodes.values()}
                assert len(logs) == 1  # identical logs over real sockets
            finally:
                for n in nodes.values():
                    await n.stop()

        asyncio.run(scenario())
