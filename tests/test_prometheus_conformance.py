"""Conformance tests for the Prometheus text exposition output.

A miniature parser checks :func:`render_prometheus` against the text
format 0.0.4 rules a real scraper enforces: sample-line grammar, escaped
label values, ``# TYPE`` before any sample of its family, and histogram
invariants (cumulative monotone ``le`` buckets, exactly one ``+Inf``
bucket equal to ``_count``, a ``_sum``/``_count`` pair).
"""

import math
import re

from repro.obs.exporters import render_prometheus
from repro.obs.registry import MetricsRegistry

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>NaN|[+-]Inf|[-+]?[0-9.eE+-]+)$"
)
LABEL_PAIR = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def parse(text):
    """``(types, samples)``: metric family types and parsed sample lines.

    Asserts the grammar of every line along the way and that a family's
    ``# TYPE`` precedes all of its samples.
    """
    types = {}
    samples = []
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            assert METRIC_NAME.match(name), f"bad family name: {name}"
            assert kind in ("counter", "gauge", "histogram", "summary")
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
            continue
        assert not line.startswith("#"), f"unexpected comment: {line}"
        m = SAMPLE.match(line)
        assert m, f"sample line fails grammar: {line!r}"
        name = m.group("name")
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        assert family in types or name in types, \
            f"sample {name} before/without its # TYPE line"
        labels = {}
        raw = m.group("labels")
        if raw:
            consumed = LABEL_PAIR.sub("", raw).strip(",")
            assert consumed == "", f"unparseable label text: {raw!r}"
            for pair in LABEL_PAIR.finditer(raw):
                assert LABEL_NAME.match(pair.group("name"))
                labels[pair.group("name")] = pair.group("value")
        value = m.group("value")
        if value == "NaN":
            parsed = math.nan
        elif value == "+Inf":
            parsed = math.inf
        elif value == "-Inf":
            parsed = -math.inf
        else:
            parsed = float(value)
        samples.append((name, labels, parsed))
    return types, samples


def populated_registry():
    reg = MetricsRegistry()
    reg.counter("repro_messages_sent_total", src=1, kind="Prepare").inc(3)
    reg.gauge("repro_role", pid=2).set(1)
    h = reg.histogram("repro_commit_phase_ms", phase="replicate")
    for v in (0.3, 0.9, 2.5, 2.5, 40.0, 1e9):  # 1e9 lands in overflow
        h.observe(v)
    return reg


class TestGrammar:
    def test_every_line_parses(self):
        types, samples = parse(render_prometheus(populated_registry()))
        assert types["repro_messages_sent_total"] == "counter"
        assert types["repro_role"] == "gauge"
        assert types["repro_commit_phase_ms"] == "histogram"
        assert samples

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("repro_messages_dropped_total",
                    reason='a"b\\c\nd').inc()
        text = render_prometheus(reg)
        assert 'reason="a\\"b\\\\c\\nd"' in text
        types, samples = parse(text)
        ((_, labels, value),) = samples
        # The mini-parser round-trips the escaped form; unescaping it
        # recovers the original value.
        unescaped = (labels["reason"]
                     .replace("\\n", "\n").replace('\\"', '"')
                     .replace("\\\\", "\\"))
        assert unescaped == 'a"b\\c\nd'
        assert value == 1


class TestHistogramInvariants:
    def samples_for(self, reg, family):
        _, samples = parse(render_prometheus(reg))
        return [s for s in samples if s[0].startswith(family)]

    def test_buckets_cumulative_and_inf_equals_count(self):
        reg = populated_registry()
        rows = self.samples_for(reg, "repro_commit_phase_ms")
        buckets = [(labels["le"], value) for name, labels, value in rows
                   if name.endswith("_bucket")]
        count = [value for name, _, value in rows if name.endswith("_count")]
        total = [value for name, _, value in rows if name.endswith("_sum")]
        assert len(count) == 1 and len(total) == 1
        # Exactly one +Inf bucket, last, equal to _count.
        assert [le for le, _ in buckets].count("+Inf") == 1
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == count[0] == 6
        # Cumulative: non-decreasing counts and increasing bounds.
        values = [v for _, v in buckets]
        assert values == sorted(values)
        finite = [float(le) for le, _ in buckets[:-1]]
        assert finite == sorted(finite)
        assert total[0] == sum((0.3, 0.9, 2.5, 2.5, 40.0, 1e9))

    def test_empty_histogram_still_has_inf_bucket(self):
        reg = MetricsRegistry()
        reg.histogram("repro_span_duration_ms", kind="commit")
        rows = self.samples_for(reg, "repro_span_duration_ms")
        buckets = [(labels["le"], v) for name, labels, v in rows
                   if name.endswith("_bucket")]
        assert buckets == [("+Inf", 0)]
        assert [v for name, _, v in rows if name.endswith("_count")] == [0]

    def test_special_values_spelled_exactly(self):
        reg = MetricsRegistry()
        reg.gauge("repro_nan").set(math.nan)
        reg.gauge("repro_inf", side="hi").set(math.inf)
        reg.gauge("repro_inf", side="lo").set(-math.inf)
        text = render_prometheus(reg)
        assert "repro_nan NaN" in text
        assert 'repro_inf{side="hi"} +Inf' in text
        assert 'repro_inf{side="lo"} -Inf' in text
        parse(text)  # and the grammar accepts them


def validate_histogram_series(samples):
    """Generic histogram check over *every* family and label set.

    Groups ``_bucket`` samples by (family, labels-sans-le) and asserts, for
    each series: exactly one ``+Inf`` bucket, last; strictly increasing
    finite bounds; non-decreasing (cumulative) counts; and ``+Inf`` equal
    to the series' ``_count``. Returns the number of series checked so
    callers can assert coverage wasn't vacuous.
    """
    series = {}
    counts = {}
    for name, labels, value in samples:
        if name.endswith("_bucket"):
            family = name[: -len("_bucket")]
            key = (family, tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le")))
            series.setdefault(key, []).append((labels["le"], value))
        elif name.endswith("_count"):
            family = name[: -len("_count")]
            counts[(family, tuple(sorted(labels.items())))] = value
    for (family, label_key), buckets in series.items():
        where = f"{family}{dict(label_key)}"
        les = [le for le, _ in buckets]
        assert les.count("+Inf") == 1, f"{where}: want one +Inf bucket"
        assert les[-1] == "+Inf", f"{where}: +Inf must come last"
        finite = [float(le) for le in les[:-1]]
        assert finite == sorted(finite), f"{where}: bounds out of order"
        assert len(set(finite)) == len(finite), f"{where}: duplicate bound"
        values = [v for _, v in buckets]
        assert values == sorted(values), \
            f"{where}: buckets not cumulative: {values}"
        assert values[-1] == counts[(family, label_key)], \
            f"{where}: +Inf bucket != _count"
    return len(series)


class TestAllFamiliesMonotone:
    """Bucket monotonicity must hold for every family, not one exemplar."""

    def test_synthetic_multifamily_multilabel(self):
        reg = populated_registry()
        other = reg.histogram("repro_commit_phase_ms", phase="apply")
        for v in (0.1, 7.0, 7.0):
            other.observe(v)
        reg.histogram("repro_heartbeat_rtt_ms", pid=1, peer=2).observe(0.4)
        reg.histogram("repro_empty_ms", pid=9)  # zero observations
        _, samples = parse(render_prometheus(reg))
        checked = validate_histogram_series(samples)
        assert checked >= 4  # two phase label sets + rtt + empty

    def test_live_instrumented_run_all_families(self):
        """A real traced run with the series engine attached: every
        histogram family the stack produces must render monotone, and the
        new queue-depth / series-window gauge families must be present."""
        from repro.sim.harness import ExperimentConfig, build_experiment

        reg = MetricsRegistry()
        reg.enable_tracing()
        exp = build_experiment(
            ExperimentConfig(protocol="omni", num_servers=3,
                             election_timeout_ms=100.0, one_way_ms=0.5,
                             seed=3, initial_leader=1),
            obs=reg)
        exp.attach_series(window_ms=100.0)
        exp.make_client(4)
        exp.cluster.run_for(1_500.0)
        types, samples = parse(render_prometheus(reg))
        checked = validate_histogram_series(samples)
        assert checked >= 2  # at least commit latency + rtt histograms
        assert types["repro_queue_depth"] == "gauge"
        assert types["repro_series_window"] == "gauge"
        depth_queues = {labels["queue"] for name, labels, _ in samples
                        if name == "repro_queue_depth"}
        assert "sim_events" in depth_queues
        assert "net_in_flight" in depth_queues
