"""Tests for the executable invariant checks, and their integration."""

import pytest

from repro.omni.ballot import Ballot
from repro.omni.entry import StopSign
from repro.omni.invariants import (
    InvariantViolation,
    check_all,
    check_decided_prefix_order,
    check_decided_within_log,
    check_promise_dominates_accepted,
    check_single_leader_per_round,
    check_stopsign_terminal,
)
from repro.omni.storage import InMemoryStorage

from tests.conftest import build_omni_cluster, run_until_leader
from tests.test_sequence_paxos import Shuttle, cmd, make_sp


def healthy_trio():
    nodes = {pid: make_sp(pid) for pid in (1, 2, 3)}
    net = Shuttle(nodes)
    net.elect(1)
    for i in range(4):
        nodes[1].propose(cmd(i))
    net.deliver_all()
    return nodes, net


class TestHealthyClustersPass:
    def test_replicated_trio(self):
        nodes, _net = healthy_trio()
        check_all(nodes.values())

    def test_partitioned_cluster_still_sound(self):
        nodes, net = healthy_trio()
        net.cut(1, 3)
        nodes[1].propose(cmd(99))
        net.deliver_all()
        check_all(nodes.values())

    def test_omni_servers_accepted_directly(self):
        sim, servers = build_omni_cluster(3)
        run_until_leader(sim)
        sim.run_for(200)
        check_all(servers.values())

    def test_mid_prepare_cluster_sound(self):
        nodes = {pid: make_sp(pid) for pid in (1, 2, 3)}
        nodes[1].handle_leader(Ballot(1, 0, 1))  # prepare in flight
        check_all(nodes.values())


class TestViolationsDetected:
    def test_diverging_decided_logs(self):
        nodes, _net = healthy_trio()
        # Corrupt a decided entry behind the protocol's back.
        nodes[2].storage._log[1] = cmd(999)
        with pytest.raises(InvariantViolation):
            check_decided_prefix_order(nodes.values())

    def test_accept_beyond_promise(self):
        node = make_sp(1)
        node.storage.set_promise(Ballot(1, 0, 2))
        node.storage.set_accepted_round(Ballot(5, 0, 3))
        with pytest.raises(InvariantViolation):
            check_promise_dominates_accepted([node])

    def test_two_leaders_same_round(self):
        a, b = make_sp(1), make_sp(2)
        a.handle_leader(Ballot(1, 0, 1))
        b.handle_leader(Ballot(1, 0, 2))
        # Forge b's round to collide with a's (cannot happen via BLE).
        b._current_round = Ballot(1, 0, 1)
        with pytest.raises(InvariantViolation):
            check_single_leader_per_round([a, b])

    def test_foreign_round_leadership(self):
        a = make_sp(1)
        a.handle_leader(Ballot(1, 0, 1))
        a._current_round = Ballot(1, 0, 9)  # forged: leads someone else's
        with pytest.raises(InvariantViolation):
            check_single_leader_per_round([a])

    def test_decided_beyond_log(self):
        node = make_sp(1)
        storage = node.storage
        storage.append_entry(cmd(0))
        storage._decided_idx = 5  # forged
        with pytest.raises(InvariantViolation):
            check_decided_within_log([node])

    def test_midlog_stopsign(self):
        node = make_sp(1)
        node.storage.append_entries([
            StopSign(1, (1, 2)), cmd(0),
        ])
        with pytest.raises(InvariantViolation):
            check_stopsign_terminal([node])


class TestCompactionAware:
    def test_prefix_check_on_compacted_overlap(self):
        nodes, net = healthy_trio()
        nodes[1].trim()  # decided everywhere: safe trim
        net.deliver_all()
        check_decided_prefix_order(nodes.values())

    def test_mixed_compaction_levels(self):
        nodes, net = healthy_trio()
        # Only the leader compacts locally (followers' Trim still queued).
        nodes[1].trim()
        check_decided_prefix_order(nodes.values())
