"""Unit tests for the MigrationPlan state machine and donor serving."""

import pytest

from repro.errors import ConfigError, MigrationError
from repro.omni.messages import LogPullRequest, LogSegment
from repro.omni.reconfig import (
    LEADER_ONLY,
    PARALLEL,
    MigrationPlan,
    serve_pull_request,
)


def plan(**kwargs):
    defaults = dict(
        config_id=1, from_idx=0, to_idx=100, donors=[2, 3],
        chunk_entries=25, retry_ms=100.0,
    )
    defaults.update(kwargs)
    return MigrationPlan(**defaults)


def serve(plan_obj, log, now=0.0, only_donor=None):
    """Answer every outstanding request from ``log``; return #served."""
    served = 0
    for dst, req in plan_obj.take_outbox():
        if only_donor is not None and dst != only_donor:
            continue
        seg = serve_pull_request(log, req)
        plan_obj.on_segment(dst, seg, now)
        served += 1
    return served


LOG = [f"e{i}" for i in range(100)]


class TestValidation:
    def test_rejects_unknown_strategy(self):
        with pytest.raises(ConfigError):
            plan(strategy="magic")

    def test_rejects_negative_range(self):
        with pytest.raises(ConfigError):
            plan(from_idx=10, to_idx=5)

    def test_rejects_no_donors(self):
        with pytest.raises(MigrationError):
            plan(donors=[])

    def test_empty_range_is_complete(self):
        p = plan(from_idx=5, to_idx=5, donors=[])
        assert p.complete()
        assert p.collected_entries() == ()

    def test_rejects_bad_chunk(self):
        with pytest.raises(ConfigError):
            plan(chunk_entries=0)


class TestHappyPath:
    def test_completes_from_full_donors(self):
        p = plan()
        p.start(0.0)
        for _ in range(10):
            if p.complete():
                break
            serve(p, LOG)
        assert p.complete()
        assert list(p.collected_entries()) == LOG

    def test_progress_tracks_fetched_fraction(self):
        p = plan(chunk_entries=50)
        p.start(0.0)
        assert p.progress() == 0.0
        ((dst, req), *rest) = p.take_outbox()
        p.on_segment(dst, serve_pull_request(LOG, req), 0.0)
        assert 0.0 < p.progress() <= 0.5

    def test_collected_before_complete_raises(self):
        p = plan()
        p.start(0.0)
        with pytest.raises(MigrationError):
            p.collected_entries()

    def test_partial_start_offset(self):
        p = plan(from_idx=40)
        p.start(0.0)
        while not p.complete():
            if not serve(p, LOG):
                break
        assert list(p.collected_entries()) == LOG[40:]

    def test_start_idempotent(self):
        p = plan()
        p.start(0.0)
        first = len(p.take_outbox())
        p.start(0.0)
        assert p.take_outbox() == []
        assert first > 0


class TestFlowControl:
    def test_window_limits_outstanding_per_donor(self):
        p = plan(chunk_entries=10, window_per_donor=2)
        p.start(0.0)
        out = p.take_outbox()
        per_donor = {}
        for dst, _req in out:
            per_donor[dst] = per_donor.get(dst, 0) + 1
        assert all(count <= 2 for count in per_donor.values())

    def test_pipeline_refills_after_reply(self):
        p = plan(chunk_entries=10, window_per_donor=1)
        p.start(0.0)
        ((dst, req),) = [(d, r) for d, r in p.take_outbox() if d == 2][:1]
        p.on_segment(dst, serve_pull_request(LOG, req), 0.0)
        refill = [d for d, _r in p.take_outbox() if d == 2]
        assert refill  # donor 2 got its next chunk immediately


class TestFailureHandling:
    def test_timeout_rotates_donor(self):
        p = plan(donors=[2, 3], chunk_entries=100, window_per_donor=1)
        p.start(0.0)
        ((first_donor, _req),) = p.take_outbox()
        p.tick(200.0)  # past retry_ms
        ((second_donor, _req2),) = p.take_outbox()
        assert second_donor != first_donor
        assert p.retries == 1

    def test_partial_segment_requests_remainder(self):
        p = plan(donors=[2, 3], chunk_entries=100, window_per_donor=1)
        p.start(0.0)
        ((dst, req),) = p.take_outbox()
        # Donor has only 30 entries decided.
        p.on_segment(dst, serve_pull_request(LOG[:30], req), 0.0)
        ((dst2, req2),) = p.take_outbox()
        assert req2.from_idx == 30
        assert dst2 != dst  # rotated to a donor that may have more

    def test_empty_segment_waits_for_deadline(self):
        p = plan(donors=[2, 3], chunk_entries=100, window_per_donor=1)
        p.start(0.0)
        ((dst, req),) = p.take_outbox()
        p.on_segment(dst, serve_pull_request([], req), 0.0)
        assert p.take_outbox() == []  # no tight re-request loop
        p.tick(200.0)
        assert len(p.take_outbox()) == 1  # retried after the deadline

    def test_duplicate_segments_harmless(self):
        p = plan(chunk_entries=100, window_per_donor=1)
        p.start(0.0)
        ((dst, req),) = p.take_outbox()
        seg = serve_pull_request(LOG, req)
        p.on_segment(dst, seg, 0.0)
        p.on_segment(dst, seg, 0.0)
        assert p.complete()
        assert list(p.collected_entries()) == LOG

    def test_segment_for_other_config_ignored(self):
        p = plan(chunk_entries=100)
        p.start(0.0)
        seg = LogSegment(config_id=99, from_idx=0,
                         entries=tuple(LOG), complete=True)
        p.on_segment(2, seg, 0.0)
        assert not p.complete()

    def test_add_and_remove_donor(self):
        p = plan(donors=[2])
        p.add_donor(7)
        assert 7 in p.donors
        p.remove_donor(2)
        assert p.donors == (7,)

    def test_last_donor_not_removable(self):
        p = plan(donors=[2])
        p.remove_donor(2)
        assert p.donors == (2,)


class TestStrategies:
    def test_parallel_uses_all_donors(self):
        p = plan(donors=[2, 3, 4, 5], chunk_entries=25, window_per_donor=1)
        p.start(0.0)
        donors_used = {dst for dst, _req in p.take_outbox()}
        assert donors_used == {2, 3, 4, 5}

    def test_leader_only_uses_first_donor(self):
        p = plan(donors=[2, 3, 4, 5], strategy=LEADER_ONLY,
                 chunk_entries=25, window_per_donor=4)
        p.start(0.0)
        donors_used = {dst for dst, _req in p.take_outbox()}
        assert donors_used == {2}

    def test_leader_only_completes(self):
        p = plan(donors=[2, 3], strategy=LEADER_ONLY, chunk_entries=10)
        p.start(0.0)
        for _ in range(30):
            if p.complete():
                break
            serve(p, LOG)
        assert p.complete()


class TestDonorServing:
    def test_full_range(self):
        seg = serve_pull_request(LOG, LogPullRequest(1, 10, 20))
        assert seg.entries == tuple(LOG[10:20])
        assert seg.complete

    def test_partial_range(self):
        seg = serve_pull_request(LOG[:15], LogPullRequest(1, 10, 20))
        assert seg.entries == tuple(LOG[10:15])
        assert not seg.complete

    def test_nothing_available(self):
        seg = serve_pull_request(LOG[:5], LogPullRequest(1, 10, 20))
        assert seg.entries == ()
        assert seg.from_idx == 10
        assert not seg.complete
