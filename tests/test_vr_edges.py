"""Additional VR edge cases: gossip cascades, view races, stale messages."""

import pytest

from repro.baselines.vr import (
    DoViewChange,
    StartView,
    StartViewChange,
    VRConfig,
    VRReplica,
    VRStatus,
)
from repro.omni.entry import Command

from tests.test_vr import build_vr_cluster, cmd, wait_leader

T = 100.0


def make_vr(pid, servers=(1, 2, 3, 4, 5)):
    replica = VRReplica(VRConfig(pid=pid, servers=servers,
                                 election_timeout_ms=T))
    replica.start(0.0)
    replica.take_outbox()
    return replica


class TestGossipCascades:
    def test_svc_gossip_propagates_transitively(self):
        """A StartViewChange reaching one replica is re-broadcast — the
        liveness hazard the paper describes becomes a two-hop cascade."""
        a = make_vr(1)
        a.on_message(3, StartViewChange(4), 1.0)
        out = a.take_outbox()
        targets = {d for d, m in out if isinstance(m, StartViewChange)}
        assert targets == {2, 3, 4, 5}

    def test_duplicate_svc_counted_once(self):
        a = make_vr(1)
        a.on_message(3, StartViewChange(4), 1.0)
        a.take_outbox()
        a.on_message(3, StartViewChange(4), 2.0)
        a.on_message(3, StartViewChange(4), 3.0)
        # Majority of 5 is 3; two distinct voices (3 and self) are not it.
        out = a.take_outbox()
        assert not any(isinstance(m, DoViewChange) for _d, m in out)

    def test_exactly_majority_triggers_dvc(self):
        a = make_vr(1)
        a.on_message(3, StartViewChange(4), 1.0)
        a.take_outbox()
        a.on_message(2, StartViewChange(4), 2.0)
        out = a.take_outbox()
        dvcs = [(d, m) for d, m in out if isinstance(m, DoViewChange)]
        assert len(dvcs) == 1
        assert dvcs[0][0] == a._config.leader_of(4)

    def test_dvc_not_resent(self):
        a = make_vr(1)
        for src in (2, 3):
            a.on_message(src, StartViewChange(4), 1.0)
        a.take_outbox()
        a.on_message(4, StartViewChange(4), 2.0)
        out = a.take_outbox()
        assert not any(isinstance(m, DoViewChange) for _d, m in out)


class TestViewRaces:
    def test_higher_view_supersedes_in_flight_change(self):
        a = make_vr(1)
        a.on_message(3, StartViewChange(4), 1.0)
        a.take_outbox()
        a.on_message(2, StartViewChange(9), 2.0)
        assert a.view == 9
        assert a.status is VRStatus.VIEW_CHANGE

    def test_stale_dvc_ignored(self):
        primary = make_vr(2)
        primary.on_message(3, StartViewChange(11), 1.0)  # join view 11
        primary.take_outbox()
        primary.on_message(3, DoViewChange(6), 2.0)  # for an older view
        assert primary.status is VRStatus.VIEW_CHANGE
        assert primary.view == 11

    def test_stale_start_view_ignored(self):
        a = make_vr(1)
        a.on_message(2, StartView(6), 1.0)
        a.on_message(3, StartView(4), 2.0)
        assert a.view == 6
        assert a.leader_pid == a._config.leader_of(6)

    def test_dvc_for_higher_view_joins_it(self):
        primary = make_vr(2)
        view = 6  # leader_of(6) == 2 in a 5-server cluster
        assert primary._config.leader_of(view) == 2
        primary.on_message(3, DoViewChange(view), 1.0)
        assert primary.view == view
        assert primary.status is VRStatus.VIEW_CHANGE


class TestClusterBehaviour:
    def test_round_robin_skips_dead_primaries(self):
        """Successive crashes walk the view schedule forward."""
        sim, reps = build_vr_cluster(5, initial_leader=1)
        sim.run_for(300)
        first = wait_leader(sim)
        sim.crash(first)
        second = wait_leader(sim)
        assert second != first
        sim.crash(second)
        third = wait_leader(sim)
        assert third not in (first, second)

    def test_replication_survives_two_view_changes(self):
        sim, reps = build_vr_cluster(5, initial_leader=1)
        sim.run_for(300)
        sim.propose(1, cmd(0))
        sim.run_for(100)
        sim.crash(1)
        second = wait_leader(sim)
        sim.propose(second, cmd(1))
        sim.run_for(100)
        sim.crash(second)
        third = wait_leader(sim)
        sim.propose(third, cmd(2))
        sim.run_for(300)
        alive = [r for p, r in reps.items() if p not in (1, second)]
        assert all(r.sequence_paxos.decided_idx == 3 for r in alive)
