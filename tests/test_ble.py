"""Unit tests for Ballot Leader Election (paper section 5, Figure 4).

These drive BLE instances directly by shuttling heartbeat messages between
them, with full control over which links deliver.
"""

from typing import Dict, Iterable, Optional, Set, Tuple

import pytest

from repro.errors import ConfigError
from repro.omni.ballot import BOTTOM, Ballot
from repro.omni.ble import BallotLeaderElection, BLEConfig
from repro.omni.messages import HeartbeatReply, HeartbeatRequest

HB = 100.0


def make_ble(pid: int, n: int = 3, priority: int = 0,
             initial_leader=None, use_qc_flag: bool = True):
    peers = tuple(p for p in range(1, n + 1) if p != pid)
    return BallotLeaderElection(
        BLEConfig(pid=pid, peers=peers, hb_period_ms=HB,
                  priority=priority, use_qc_flag=use_qc_flag),
        initial_leader=initial_leader,
    )


class Net:
    """Tiny BLE-only shuttle with a link matrix."""

    def __init__(self, nodes: Dict[int, BallotLeaderElection]):
        self.nodes = nodes
        self.down: Set[frozenset] = set()
        self.now = 0.0
        for node in nodes.values():
            node.start(self.now)
        self.shuttle()

    def cut(self, a: int, b: int) -> None:
        self.down.add(frozenset((a, b)))

    def up(self, a: int, b: int) -> None:
        self.down.discard(frozenset((a, b)))

    def shuttle(self, rounds: int = 6) -> None:
        """Deliver messages until quiescent (within one heartbeat round)."""
        for _ in range(rounds):
            moved = False
            for pid, node in self.nodes.items():
                for dst, msg in node.take_outbox():
                    if frozenset((pid, dst)) in self.down:
                        continue
                    self.nodes[dst].on_message(pid, msg)
                    moved = True
            if not moved:
                return

    def advance_round(self) -> None:
        """Let every node finish the current heartbeat round."""
        self.now += HB
        for node in self.nodes.values():
            node.tick(self.now)
        self.shuttle()

    def leaders(self) -> Dict[int, Optional[Ballot]]:
        return {pid: node.leader for pid, node in self.nodes.items()}


@pytest.fixture
def net3():
    return Net({pid: make_ble(pid, 3) for pid in (1, 2, 3)})


@pytest.fixture
def net5():
    return Net({pid: make_ble(pid, 5) for pid in (1, 2, 3, 4, 5)})


def make_net(n: int) -> Net:
    return Net({pid: make_ble(pid, n) for pid in range(1, n + 1)})


class TestConfig:
    def test_rejects_zero_pid(self):
        with pytest.raises(ConfigError):
            BLEConfig(pid=0, peers=(1, 2))

    def test_rejects_self_in_peers(self):
        with pytest.raises(ConfigError):
            BLEConfig(pid=1, peers=(1, 2))

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigError):
            BLEConfig(pid=1, peers=(2,), hb_period_ms=0)

    def test_majority(self):
        assert BLEConfig(pid=1, peers=(2, 3)).majority == 2
        assert BLEConfig(pid=1, peers=(2, 3, 4, 5)).majority == 3

    def test_initial_ballot_must_match_pid(self):
        with pytest.raises(ConfigError):
            BallotLeaderElection(BLEConfig(pid=1, peers=(2,)),
                                 initial_ballot=Ballot(1, 0, 2))


class TestElection:
    def test_elects_unique_leader_when_fully_connected(self, net3):
        for _ in range(4):
            net3.advance_round()
        leaders = set(net3.leaders().values())
        assert len(leaders) == 1
        assert leaders.pop() is not None

    def test_highest_pid_wins_initial_tie(self, net3):
        for _ in range(4):
            net3.advance_round()
        assert net3.leaders()[1].pid == 3

    def test_priority_beats_pid(self):
        nodes = {
            1: make_ble(1, 3, priority=10),
            2: make_ble(2, 3),
            3: make_ble(3, 3),
        }
        net = Net(nodes)
        for _ in range(4):
            net.advance_round()
        assert net.leaders()[2].pid == 1

    def test_leader_event_fires_once_per_election(self, net3):
        for _ in range(5):
            net3.advance_round()
        events = net3.nodes[1].take_leader_events()
        assert len(events) <= 1  # drained repeatedly they must not repeat

    def test_seeded_leader_prevents_initial_election(self):
        seed = Ballot(1, 0, 2)
        nodes = {pid: make_ble(pid, 3, initial_leader=seed) for pid in (1, 2, 3)}
        net = Net(nodes)
        for _ in range(4):
            net.advance_round()
        assert all(b == seed for b in net.leaders().values())
        assert nodes[2].stats.leader_changes == 0

    def test_ballots_monotonically_increase(self, net3):
        history = []
        for _ in range(8):
            net3.advance_round()
            history.append(net3.nodes[1].current_ballot)
        for prev, cur in zip(history, history[1:]):
            assert cur >= prev


class TestFailureDetection:
    def test_dead_leader_replaced(self, net3):
        for _ in range(4):
            net3.advance_round()
        dead = net3.leaders()[1].pid
        net3.cut(dead, 1)
        net3.cut(dead, 2)
        net3.cut(dead, 3)
        for _ in range(5):
            net3.advance_round()
        survivors = [p for p in (1, 2, 3) if p != dead]
        new_leader = net3.nodes[survivors[0]].leader
        assert new_leader is not None
        assert new_leader.pid != dead

    def test_non_qc_server_never_bumps(self):
        net = make_net(5)
        for _ in range(4):
            net.advance_round()
        # Fully isolate server 2 from everyone: it is not QC.
        for other in (1, 3, 4, 5):
            net.cut(2, other)
        before = net.nodes[2].current_ballot
        for _ in range(6):
            net.advance_round()
        # A server that cannot reach a majority never performs checkLeader,
        # so it never churns its ballot (key to quorum-loss stability).
        assert net.nodes[2].current_ballot == before
        assert net.nodes[2].quorum_connected is False

    def test_late_heartbeat_ignored(self):
        node = make_ble(1, 3)
        node.start(0.0)
        node.take_outbox()
        stale = HeartbeatReply(round=0, ballot=Ballot(9, 0, 2), quorum_connected=True)
        node.on_message(2, stale)
        node.tick(HB)
        # The stale round-0 reply must not have been counted.
        assert node.leader is None

    def test_heartbeat_request_gets_reply(self):
        node = make_ble(1, 3)
        node.start(0.0)
        node.take_outbox()
        node.on_message(2, HeartbeatRequest(round=7))
        out = node.take_outbox()
        assert len(out) == 1
        dst, reply = out[0]
        assert dst == 2
        assert isinstance(reply, HeartbeatReply)
        assert reply.round == 7


class TestQuorumConnectedFlag:
    def test_quorum_loss_transfers_leadership(self):
        """Figure 5a: leader keeps one link but loses its quorum; the pivot
        takes over within a few rounds."""
        seed = Ballot(1, 0, 3)
        net = Net({pid: make_ble(pid, 5, initial_leader=seed)
                   for pid in (1, 2, 3, 4, 5)})
        # Quorum-loss around pivot 1: only links to 1 survive.
        for a in (2, 3, 4, 5):
            for b in (2, 3, 4, 5):
                if a < b:
                    net.cut(a, b)
        for _ in range(6):
            net.advance_round()
        assert net.nodes[1].leader.pid == 1

    def test_without_qc_flag_quorum_loss_deadlocks(self):
        """Ablation: disable the flag and the pivot never learns the leader
        is useless, so leadership never moves."""
        seed = Ballot(1, 0, 3)
        net = Net({pid: make_ble(pid, 5, initial_leader=seed,
                                 use_qc_flag=False)
                   for pid in (1, 2, 3, 4, 5)})
        for a in (2, 3, 4, 5):
            for b in (2, 3, 4, 5):
                if a < b:
                    net.cut(a, b)
        for _ in range(8):
            net.advance_round()
        assert net.nodes[1].leader == seed  # still the stale leader

    def test_chained_scenario_single_leader_change(self):
        """Figure 5c: cutting leader<->endpoint causes exactly one change."""
        seed = Ballot(1, 0, 2)
        net = Net({pid: make_ble(pid, 3, initial_leader=seed)
                   for pid in (1, 2, 3)})
        for _ in range(3):
            net.advance_round()
        net.cut(2, 3)
        for _ in range(8):
            net.advance_round()
        # 3 elected itself; 1 (the middle) follows 3; 2 stays stale.
        assert net.nodes[3].leader.pid == 3
        assert net.nodes[1].leader.pid == 3
        assert net.nodes[2].leader.pid == 2
        # The middle server changed leader exactly once after the cut.
        assert net.nodes[1].stats.leader_changes == 1


class TestRecoverySupport:
    def test_initial_ballot_restored(self):
        node = BallotLeaderElection(
            BLEConfig(pid=2, peers=(1, 3), hb_period_ms=HB),
            initial_ballot=Ballot(7, 0, 2),
        )
        assert node.current_ballot == Ballot(7, 0, 2)

    def test_restored_ballot_keeps_rising(self):
        node = BallotLeaderElection(
            BLEConfig(pid=2, peers=(1, 3), hb_period_ms=HB),
            initial_ballot=Ballot(7, 0, 2),
        )
        bumped = node.current_ballot.bump(Ballot(7, 0, 2))
        assert bumped.n == 8


class TestQuorumLease:
    def test_quorum_heard_tracks_majority_rounds(self):
        net = make_net(3)
        for _ in range(3):
            net.advance_round()
        node = net.nodes[1]
        assert node.quorum_heard_within(net.now, 2 * HB)

    def test_no_quorum_before_any_round(self):
        node = make_ble(1, 3)
        node.start(0.0)
        assert not node.quorum_heard_within(0.0, 1000.0)

    def test_window_expires(self):
        net = make_net(3)
        for _ in range(3):
            net.advance_round()
        node = net.nodes[1]
        assert not node.quorum_heard_within(net.now + 10 * HB, HB)

    def test_isolated_server_loses_quorum_signal(self):
        net = make_net(3)
        for _ in range(3):
            net.advance_round()
        net.cut(1, 2)
        net.cut(1, 3)
        for _ in range(4):
            net.advance_round()
        assert not net.nodes[1].quorum_heard_within(net.now, 2 * HB)
