"""Tests for the repro.bench harness: determinism across identical runs,
the deterministic-counter view, and the before/after comparison logic.

The determinism tests are the harness's core promise: same seed + same
config => byte-identical decided logs and identical event/message counts,
no matter how long the runs took in wall-clock. Budgets here are tiny —
the property, not the throughput, is under test.
"""

from repro.bench.micro import bench_codec, bench_commit_loop, bench_event_queue
from repro.bench.macro import run_macro
from repro.bench.runner import (
    INFORMATIONAL_COUNTERS,
    LogDigest,
    compare_results,
    deterministic_view,
)


class TestMicroDeterminism:
    def test_event_queue_counters_stable(self):
        a = bench_event_queue(2_000, seed=7)
        b = bench_event_queue(2_000, seed=7)
        assert a["counters"] == b["counters"]
        assert a["ops"] == b["ops"]

    def test_commit_loop_digest_and_counts_stable(self):
        a = bench_commit_loop(8, 16, seed=3)
        b = bench_commit_loop(8, 16, seed=3)
        assert a["counters"] == b["counters"]
        assert "decided_log_digest" in a["counters"]

    def test_codec_counters_stable(self):
        a = bench_codec(200)
        b = bench_codec(200)
        assert a["counters"] == b["counters"]


class TestMacroDeterminism:
    def test_same_seed_same_decided_log(self):
        """Two end-to-end sim runs with identical seed and config must
        decide the same entries in the same order at every server (equal
        digests) and process the same event/message counts."""
        a = run_macro("omni", duration_ms=500.0, cp=16, seed=5,
                      num_servers=3)
        b = run_macro("omni", duration_ms=500.0, cp=16, seed=5,
                      num_servers=3)
        assert a["counters"]["decided_log_digest"] == \
            b["counters"]["decided_log_digest"]
        assert a["counters"] == b["counters"]
        assert a["counters"]["decided_total"] > 0

    def test_different_seed_different_counters(self):
        a = run_macro("omni", duration_ms=500.0, cp=16, seed=5,
                      num_servers=3)
        b = run_macro("omni", duration_ms=500.0, cp=16, seed=6,
                      num_servers=3)
        # Seeds drive jitter-free runs too (client/network RNG streams);
        # at minimum the runs are *allowed* to differ — what matters is
        # that equality is not an artifact of the digest ignoring input.
        assert a["counters"]["events_processed"] > 0
        assert b["counters"]["events_processed"] > 0


class TestRuntimeDigestIdentity:
    def test_pickle_and_binary_wires_decide_identically(self):
        """The runtime macro bench over real TCP must produce the same
        decided-log digest on the legacy pickle stack and the full binary
        stack — the wire format, coalescing, and pipelining change how
        bytes move, never what the cluster decides."""
        from repro.bench.macro import run_runtime_macro

        a = run_runtime_macro("omni", wire="pickle", n_entries=100,
                              payload_bytes=8, seed=3)
        b = run_runtime_macro("omni", wire="binary", n_entries=100,
                              payload_bytes=8, seed=3)
        assert a["counters"]["decided_log_digest"] == \
            b["counters"]["decided_log_digest"]
        assert a["counters"] == b["counters"]
        assert a["counters"]["decided_per_server"] >= 100


class TestLogDigest:
    def test_order_sensitive(self):
        a, b = LogDigest(), LogDigest()
        a.record(1, 0, "x")
        a.record(1, 1, "y")
        b.record(1, 0, "y")
        b.record(1, 1, "x")
        assert a.hexdigest() != b.hexdigest()

    def test_per_server_lanes(self):
        a, b = LogDigest(), LogDigest()
        a.record(1, 0, "x")
        a.record(2, 0, "y")
        b.record(1, 0, "y")
        b.record(2, 0, "x")
        assert a.hexdigest() != b.hexdigest()

    def test_interleaving_across_servers_irrelevant(self):
        """Lanes are per-server: the observation interleaving across
        servers (a wall-clock artifact) does not change the digest."""
        a, b = LogDigest(), LogDigest()
        a.record(1, 0, "x")
        a.record(2, 0, "y")
        b.record(2, 0, "y")
        b.record(1, 0, "x")
        assert a.hexdigest() == b.hexdigest()


def _doc(counters, ops_per_sec=100.0):
    return {"micro": {"codec": {"name": "codec", "ops_per_sec": ops_per_sec,
                                "counters": counters}}}


class TestCompareResults:
    def test_identical_counters_pass(self):
        cmp = compare_results(_doc({"frames_decoded": 5}),
                              _doc({"frames_decoded": 5}, 200.0))
        assert cmp["behaviour_identical"]
        assert cmp["speedup"]["micro.codec"] == 2.0

    def test_counter_drift_fails(self):
        cmp = compare_results(_doc({"frames_decoded": 5}),
                              _doc({"frames_decoded": 6}))
        assert not cmp["behaviour_identical"]
        assert cmp["counter_mismatches"] == ["micro.codec"]

    def test_informational_byte_counters_ignored(self):
        """Wire-byte counters track the pickle encoding, not protocol
        behaviour: they may change across versions without failing the
        behaviour check, as long as frame *counts* still match."""
        assert "frame_bytes" in INFORMATIONAL_COUNTERS
        cmp = compare_results(
            _doc({"frames_decoded": 5, "frame_bytes": 715,
                  "stream_bytes": 7150}),
            _doc({"frames_decoded": 5, "frame_bytes": 538,
                  "stream_bytes": 5380}),
        )
        assert cmp["behaviour_identical"]

    def test_deterministic_view_keeps_byte_counters(self):
        """The same-build CI baseline diff *does* check byte counters —
        only the cross-version comparison treats them as informational."""
        view = deterministic_view(_doc({"frames_decoded": 5,
                                        "frame_bytes": 538}))
        assert view["micro.codec"]["frame_bytes"] == 538
