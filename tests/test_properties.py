"""Property-based tests (hypothesis) for the core invariants.

The crown jewels are the Sequence Consensus properties under randomized
partial-connectivity schedules:

- SC1 (validity): decided logs contain only proposed commands,
- SC2 (uniform agreement): decided logs across servers are prefix-ordered,
- SC3 (integrity): a server's decided log only ever grows.

plus ballot-order properties (LE3), a model-based storage test, migration
completeness under arbitrary donor behaviour, and KV determinism.
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.omni.ballot import BOTTOM, Ballot
from repro.omni.entry import Command
from repro.omni.invariants import check_all
from repro.omni.reconfig import MigrationPlan, serve_pull_request
from repro.omni.storage import InMemoryStorage
from repro.kv.store import KVCommand, KVStateMachine, encode_command

from tests.conftest import build_omni_cluster

# ---------------------------------------------------------------------------
# Ballot properties (LE3)
# ---------------------------------------------------------------------------

ballots = st.builds(
    Ballot,
    n=st.integers(min_value=0, max_value=1000),
    priority=st.integers(min_value=0, max_value=10),
    pid=st.integers(min_value=1, max_value=50),
)


class TestBallotProperties:
    @given(ballots, ballots)
    def test_total_order(self, a, b):
        assert (a < b) + (a > b) + (a == b) == 1

    @given(ballots, ballots)
    def test_bump_dominates_both(self, a, b):
        bumped = a.bump(b)
        assert bumped > a or bumped.n > a.n
        assert bumped > b
        assert bumped.pid == a.pid

    @given(ballots)
    def test_real_ballots_beat_bottom(self, b):
        assert b > BOTTOM or b == BOTTOM

    @given(st.lists(ballots, min_size=2, max_size=20))
    def test_max_is_unique_winner(self, bs):
        top = max(bs)
        assert all(b <= top for b in bs)


# ---------------------------------------------------------------------------
# Storage: model-based
# ---------------------------------------------------------------------------

storage_ops = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.integers(0, 100)),
        st.tuples(st.just("truncate"), st.integers(0, 30)),
        st.tuples(st.just("decide"), st.integers(0, 30)),
    ),
    max_size=40,
)


class TestStorageModel:
    @given(storage_ops)
    @settings(max_examples=60)
    def test_matches_list_model(self, ops):
        storage = InMemoryStorage()
        model = []
        decided = 0
        counter = itertools.count()
        for op, arg in ops:
            if op == "append":
                storage.append_entry(("e", arg, next(counter)))
                model.append(("e", arg, counter))
                model[-1] = storage.get_entry(storage.log_len() - 1)
            elif op == "truncate":
                idx = decided + arg
                storage.truncate_suffix(idx)
                del model[idx:]
            else:  # decide
                target = min(decided + arg, len(model))
                if target > decided:
                    storage.set_decided_idx(target)
                    decided = target
            assert storage.log_len() == len(model)
            assert list(storage.get_entries(0, len(model))) == model
            assert storage.get_decided_idx() == decided


# ---------------------------------------------------------------------------
# Migration completeness under arbitrary donor behaviour
# ---------------------------------------------------------------------------

class TestMigrationProperties:
    @given(
        total=st.integers(min_value=0, max_value=400),
        chunk=st.integers(min_value=1, max_value=64),
        donor_progress=st.lists(
            st.integers(min_value=0, max_value=400), min_size=2, max_size=5
        ),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_eventually_complete_and_correct(self, total, chunk,
                                             donor_progress, data):
        """No matter how much each donor has decided at first, as long as
        one donor eventually has everything, migration completes with the
        exact range."""
        log = [f"entry-{i}" for i in range(total)]
        donors = list(range(2, 2 + len(donor_progress)))
        have = dict(zip(donors, donor_progress))
        have[donors[-1]] = total  # one donor has the full log
        plan = MigrationPlan(
            config_id=1, from_idx=0, to_idx=total, donors=donors,
            chunk_entries=chunk, retry_ms=10.0,
        )
        now = 0.0
        plan.start(now)
        for _round in range(400):
            if plan.complete():
                break
            requests = plan.take_outbox()
            for dst, req in requests:
                seg = serve_pull_request(log[:have[dst]], req)
                plan.on_segment(dst, seg, now)
            now += 20.0
            plan.tick(now)
        assert plan.complete()
        assert list(plan.collected_entries()) == log


# ---------------------------------------------------------------------------
# KV determinism
# ---------------------------------------------------------------------------

kv_commands = st.lists(
    st.one_of(
        st.builds(KVCommand, op=st.just("put"),
                  key=st.sampled_from("abc"), value=st.text(max_size=3)),
        st.builds(KVCommand, op=st.just("delete"), key=st.sampled_from("abc")),
        st.builds(KVCommand, op=st.just("get"), key=st.sampled_from("abc")),
    ),
    max_size=30,
)


class TestKVProperties:
    @given(kv_commands)
    def test_replicas_deterministic(self, cmds):
        machines = [KVStateMachine() for _ in range(3)]
        for machine in machines:
            for i, cmd in enumerate(cmds):
                machine.apply(encode_command(cmd, client_id=1, seq=i), i)
        assert machines[0].snapshot() == machines[1].snapshot()
        assert machines[1].snapshot() == machines[2].snapshot()

    @given(kv_commands, st.lists(st.integers(0, 29), max_size=10))
    def test_duplicate_deliveries_ignored(self, cmds, dup_positions):
        """Replaying any prefix commands (client retries) never changes
        the state: exactly-once via sessions."""
        reference = KVStateMachine()
        for i, cmd in enumerate(cmds):
            reference.apply(encode_command(cmd, client_id=1, seq=i), i)
        replayed = KVStateMachine()
        idx = 0
        for i, cmd in enumerate(cmds):
            replayed.apply(encode_command(cmd, client_id=1, seq=i), idx)
            idx += 1
            for pos in dup_positions:
                if pos <= i:
                    replayed.apply(
                        encode_command(cmds[pos], client_id=1, seq=pos), idx)
                    idx += 1
        assert replayed.snapshot() == reference.snapshot()


# ---------------------------------------------------------------------------
# Sequence Consensus under random partial connectivity (the big one)
# ---------------------------------------------------------------------------

def _proposed_commands(client_log):
    return {(c.client_id, c.seq) for c in client_log}


class SCChecker:
    """Tracks SC1-SC3 across a run."""

    def __init__(self, servers):
        self.servers = servers
        self.decided_prefixes = {pid: () for pid in servers}
        self.proposed = set()

    def propose(self, sim, pid, command):
        self.proposed.add((command.client_id, command.seq))
        try:
            sim.propose(pid, command)
        except Exception:
            pass  # not a leader / retired: fine

    def check(self):
        logs = {}
        for pid, server in self.servers.items():
            log = server.read_log()
            # SC3: the decided log only grows, and the old prefix persists.
            old = self.decided_prefixes[pid]
            assert log[:len(old)] == old, f"SC3 violated at {pid}"
            self.decided_prefixes[pid] = log
            logs[pid] = log
            # SC1: only proposed commands (and stop-signs) decide.
            for entry in log:
                if isinstance(entry, Command):
                    assert (entry.client_id, entry.seq) in self.proposed, \
                        "SC1 violated"
        # SC2: all logs prefix-ordered.
        ordered = sorted(logs.values(), key=len)
        for shorter, longer in zip(ordered, ordered[1:]):
            assert longer[:len(shorter)] == shorter, "SC2 violated"


actions = st.lists(
    st.one_of(
        st.tuples(st.just("propose"), st.integers(1, 5)),
        st.tuples(st.just("cut"),
                  st.tuples(st.integers(1, 5), st.integers(1, 5))),
        st.tuples(st.just("heal"), st.just(0)),
        st.tuples(st.just("crash"), st.integers(1, 5)),
        st.tuples(st.just("recover"), st.integers(1, 5)),
        st.tuples(st.just("advance"), st.integers(1, 10)),
        st.tuples(st.just("trim"), st.integers(1, 5)),
    ),
    min_size=5,
    max_size=40,
)


class TestSequenceConsensusProperties:
    @given(actions=actions, seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_sc_invariants_under_chaos(self, actions, seed):
        sim, servers = build_omni_cluster(5, hb_period_ms=50.0,
                                          initial_leader=3)
        checker = SCChecker(servers)
        seq = itertools.count()
        crashed = set()
        for action, arg in actions:
            if action == "propose":
                target = arg if arg not in crashed else None
                if target:
                    checker.propose(
                        sim, target,
                        Command(b"p", client_id=9, seq=next(seq)))
            elif action == "cut":
                a, b = arg
                if a != b:
                    sim.set_link(a, b, False)
            elif action == "heal":
                sim.heal_all_links()
            elif action == "crash" and arg not in crashed and \
                    len(crashed) < 2:
                sim.crash(arg)
                crashed.add(arg)
            elif action == "recover" and arg in crashed:
                sim.recover(arg)
                crashed.discard(arg)
            elif action == "advance":
                sim.run_for(arg * 25.0)
            elif action == "trim" and arg not in crashed:
                # Compaction under chaos: only an Accept-phase leader with
                # a fully-reported cluster may trim; refusals are expected.
                from repro.errors import CompactionError, NotLeaderError
                try:
                    servers[arg].trim()
                except (CompactionError, NotLeaderError):
                    pass
            checker.check()
            check_all(srv for pid, srv in servers.items()
                      if pid not in crashed)
        # Heal everything and let the cluster converge.
        sim.heal_all_links()
        for pid in list(crashed):
            sim.recover(pid)
        sim.run_for(3_000)
        checker.check()
        # After healing, with a leader established, all servers converge to
        # the same decided length.
        if sim.leaders():
            lengths = {srv.global_log_len for srv in servers.values()}
            sim.run_for(2_000)
            final = {srv.global_log_len for srv in servers.values()}
            assert len(final) == 1, f"no convergence after heal: {final}"
