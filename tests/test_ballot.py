"""Unit tests for Ballot: total order, bumping, uniqueness (LE3)."""

import pytest

from repro.omni.ballot import BOTTOM, Ballot, QCBallot


class TestOrdering:
    def test_round_number_dominates(self):
        assert Ballot(2, 0, 1) > Ballot(1, 9, 9)

    def test_priority_breaks_round_ties(self):
        assert Ballot(1, 2, 1) > Ballot(1, 1, 9)

    def test_pid_breaks_full_ties(self):
        assert Ballot(1, 1, 2) > Ballot(1, 1, 1)

    def test_equality_requires_all_fields(self):
        assert Ballot(1, 2, 3) == Ballot(1, 2, 3)
        assert Ballot(1, 2, 3) != Ballot(1, 2, 4)

    def test_bottom_is_minimal_for_real_servers(self):
        for n in (0, 1, 5):
            for pid in (1, 2, 100):
                assert Ballot(n, 0, pid) > BOTTOM

    def test_sorting_is_total(self):
        ballots = [Ballot(2, 0, 1), Ballot(1, 0, 2), Ballot(1, 1, 1), BOTTOM]
        ordered = sorted(ballots)
        assert ordered == [BOTTOM, Ballot(1, 0, 2), Ballot(1, 1, 1), Ballot(2, 0, 1)]

    def test_hashable_and_frozen(self):
        b = Ballot(1, 0, 1)
        assert hash(b) == hash(Ballot(1, 0, 1))
        with pytest.raises(AttributeError):
            b.n = 5  # type: ignore[misc]


class TestBump:
    def test_bump_outranks_target(self):
        mine = Ballot(3, 0, 2)
        other = Ballot(7, 5, 9)
        assert mine.bump(other) > other

    def test_bump_outranks_self(self):
        mine = Ballot(7, 0, 2)
        assert mine.bump(Ballot(3, 0, 9)) > mine

    def test_bump_preserves_identity(self):
        mine = Ballot(1, 4, 2)
        bumped = mine.bump(Ballot(9, 0, 3))
        assert bumped.pid == 2
        assert bumped.priority == 4

    def test_bump_monotone_under_repetition(self):
        b = Ballot(0, 0, 1)
        seen = set()
        for _ in range(10):
            b = b.bump(b)
            assert b not in seen
            seen.add(b)

    def test_with_priority(self):
        assert Ballot(2, 0, 1).with_priority(9) == Ballot(2, 9, 1)


class TestQCBallot:
    def test_defaults_quorum_connected(self):
        assert QCBallot(Ballot(1, 0, 1)).quorum_connected is True

    def test_str_is_informative(self):
        assert "pid=3" in str(Ballot(1, 0, 3))
