"""Storage fault injection: errors propagate, safety holds, recovery works."""

import pytest

from repro.errors import StorageError
from repro.omni.ballot import Ballot
from repro.omni.entry import Command
from repro.omni.faults import FaultyStorage
from repro.omni.server import ClusterConfig, OmniPaxosConfig, OmniPaxosServer
from repro.omni.storage import InMemoryStorage
from repro.sim.cluster import SimCluster
from repro.sim.events import EventQueue
from repro.sim.network import NetworkParams, SimNetwork

from tests.conftest import decided_logs_agree, run_until_leader
from tests.test_sequence_paxos import Shuttle, cmd, make_sp


class TestFaultyStorageUnit:
    def test_passthrough_when_healthy(self):
        storage = FaultyStorage(InMemoryStorage())
        storage.append_entries(["a", "b"])
        storage.set_promise(Ballot(1, 0, 1))
        assert storage.log_len() == 2
        assert storage.get_promise() == Ballot(1, 0, 1)

    def test_fail_after_countdown(self):
        storage = FaultyStorage(InMemoryStorage())
        storage.fail_after(2)
        storage.append_entry("a")
        storage.append_entry("b")
        with pytest.raises(StorageError):
            storage.append_entry("c")
        assert storage.log_len() == 2
        assert storage.writes_failed == 1

    def test_reads_survive_faults(self):
        storage = FaultyStorage(InMemoryStorage())
        storage.append_entry("a")
        storage.fail_after(0)
        assert storage.get_entries(0, 1) == ("a",)
        assert storage.log_len() == 1

    def test_heal_restores_writes(self):
        storage = FaultyStorage(InMemoryStorage())
        storage.fail_after(0)
        with pytest.raises(StorageError):
            storage.append_entry("x")
        storage.heal()
        assert storage.append_entry("x") == 1


class TestProtocolUnderStorageFaults:
    def test_leader_append_fault_propagates(self):
        """A leader that cannot persist must surface the error to the
        proposer, not acknowledge phantom entries."""
        nodes = {pid: make_sp(pid) for pid in (1, 2, 3)}
        faulty = FaultyStorage(nodes[1].storage)
        nodes[1] = make_sp(1, storage=faulty)
        net = Shuttle(nodes)
        net.elect(1)
        faulty.fail_after(0)
        with pytest.raises(StorageError):
            nodes[1].propose(cmd(0))

    def test_follower_fault_does_not_break_cluster(self):
        """One replica's dead disk stalls only that replica; the majority
        keeps deciding, and the replica resyncs after recovery."""
        cc = ClusterConfig(0, (1, 2, 3))
        queue = EventQueue()
        net = SimNetwork(queue, NetworkParams(one_way_ms=0.1))
        faulty = FaultyStorage(InMemoryStorage())
        storages = {1: InMemoryStorage(), 2: faulty, 3: InMemoryStorage()}
        servers = {
            pid: OmniPaxosServer(OmniPaxosConfig(
                pid=pid, cluster=cc, hb_period_ms=50.0,
                storage_factory=lambda cid, s=storages[pid]: s))
            for pid in cc.servers
        }
        sim = SimCluster(servers, net, queue, tick_ms=5.0)
        sim.start()
        leader = run_until_leader(sim)
        if leader == 2:
            pytest.skip("fault target became leader; covered by other test")
        faulty.fail_after(0)
        # The faulty follower dies on its first persistence attempt; the
        # harness treats that as a crash (fail-recovery model). Each step is
        # guarded separately: the fault fires inside event processing.
        for i in range(5):
            try:
                sim.propose(leader, cmd(i))
            except StorageError:
                pass
            try:
                sim.run_for(30)
            except StorageError:
                pass
        sim.crash(2)
        sim.run_for(100)
        survivors = {p: servers[p] for p in (1, 3)}
        for i in range(5, 8):
            sim.propose(leader, cmd(i))
        sim.run_for(100)
        assert all(s.global_log_len >= 8 for s in survivors.values())
        # Disk replaced: heal and rejoin through fail-recovery.
        faulty.heal()
        sim.recover(2)
        sim.run_for(1_000)
        assert servers[2].global_log_len == servers[leader].global_log_len
        assert decided_logs_agree(servers)

    def test_no_phantom_acknowledgement(self):
        """Entries that failed to persist never appear decided anywhere."""
        nodes = {pid: make_sp(pid) for pid in (1, 2, 3)}
        faulty = FaultyStorage(nodes[2].storage)
        nodes[2] = make_sp(2, storage=faulty)
        net = Shuttle(nodes)
        net.elect(1)
        faulty.fail_after(0)
        # Replication to 2 explodes at the shuttle level; drop its deliveries
        # like a crashed process would.
        nodes[1].propose(cmd(0))
        try:
            net.deliver_all()
        except StorageError:
            pass
        # The majority {1, 3} still decides; 2 acknowledged nothing.
        assert nodes[1].decided_idx <= 1
        assert faulty.get_decided_idx() == 0


class TestTornWrites:
    def test_torn_append_persists_prefix_then_fails(self):
        storage = FaultyStorage(InMemoryStorage())
        storage.fail_after(0, mode="torn")
        with pytest.raises(StorageError):
            storage.append_entries(["a", "b", "c", "d"])
        # Half the batch hit the disk before the "power cut".
        assert storage.log_len() == 2
        assert storage.get_entries(0, 2) == ("a", "b")
        assert storage.entries_torn == 2

    def test_only_the_tripping_write_tears(self):
        storage = FaultyStorage(InMemoryStorage())
        storage.fail_after(0, mode="torn")
        with pytest.raises(StorageError):
            storage.append_entries(["a", "b"])
        # Later writes fail cleanly: the medium is dead, not torn again.
        with pytest.raises(StorageError):
            storage.append_entries(["c", "d"])
        assert storage.log_len() == 1

    def test_single_entry_batch_cannot_tear(self):
        storage = FaultyStorage(InMemoryStorage())
        storage.fail_after(0, mode="torn")
        with pytest.raises(StorageError):
            storage.append_entries(["a"])
        assert storage.log_len() == 0

    def test_heal_resets_mode(self):
        storage = FaultyStorage(InMemoryStorage())
        storage.fail_after(0, mode="torn")
        with pytest.raises(StorageError):
            storage.append_entries(["a", "b"])
        storage.heal()
        storage.fail_after(0)
        with pytest.raises(StorageError):
            storage.append_entries(["c", "d"])
        assert storage.log_len() == 1, "plain mode must not tear"

    def test_rejects_unknown_mode(self):
        storage = FaultyStorage(InMemoryStorage())
        with pytest.raises(ValueError):
            storage.fail_after(0, mode="sideways")

    def test_recovery_discards_torn_suffix_safely(self):
        """A follower whose disk tears mid-batch crashes; after heal +
        recovery its log is resynchronized from the leader, the torn
        (never-acknowledged) suffix is overwritten, and no invariant
        breaks — un-acked entries may be lost, acked ones may not."""
        from repro.omni.invariants import check_all

        cc = ClusterConfig(0, (1, 2, 3))
        queue = EventQueue()
        net = SimNetwork(queue, NetworkParams(one_way_ms=0.1))
        faulty = FaultyStorage(InMemoryStorage())
        storages = {1: InMemoryStorage(), 2: faulty, 3: InMemoryStorage()}
        servers = {
            pid: OmniPaxosServer(OmniPaxosConfig(
                pid=pid, cluster=cc, hb_period_ms=50.0,
                storage_factory=lambda cid, s=storages[pid]: s))
            for pid in cc.servers
        }
        sim = SimCluster(servers, net, queue, tick_ms=5.0)
        sim.start()
        leader = run_until_leader(sim)
        if leader == 2:
            pytest.skip("fault target became leader; not the torn scenario")
        sim.propose_batch(leader, [cmd(i) for i in range(4)])
        sim.run_for(50)
        # Arm the tear: the next follower-side append persists a prefix,
        # then the replica crashes (fail-recovery containment in the sim).
        faulty.fail_after(0, mode="torn")
        sim.propose_batch(leader, [cmd(i) for i in range(4, 12)])
        sim.run_for(200)
        assert faulty.entries_torn > 0, "the batch should have torn"
        assert sim.is_crashed(2), "a torn write must crash the replica"
        torn_len = faulty.log_len()
        # The majority kept going without 2.
        for i in range(12, 16):
            sim.propose(leader, cmd(i))
        sim.run_for(200)
        faulty.heal()
        sim.recover(2)
        sim.run_for(1_000)
        assert servers[2].global_log_len == servers[leader].global_log_len
        assert servers[2].global_log_len >= torn_len
        assert decided_logs_agree(servers)
        check_all(servers.values())
