"""Acceptance test: one observability vocabulary across sim and runtime.

The same :class:`MetricsRegistry` + :class:`MemorySink` pair is populated
by a simulated ``build_experiment`` run and by a live TCP
:class:`RuntimeNode` cluster, and both produce the same core protocol
event kinds (``BallotElected``, ``RoleChanged``) and the same decide /
message counters — the unified-layer guarantee the PR is about.
"""

import asyncio

from repro.obs.exporters import MemorySink
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SPAN_COMMIT, assemble_spans
from repro.omni.entry import Command
from repro.omni.server import ClusterConfig, OmniPaxosConfig, OmniPaxosServer
from repro.runtime.node import RuntimeNode
from repro.runtime.transport import PeerAddress
from repro.sim.harness import ExperimentConfig, build_experiment

BASE_PORT = 42800
CORE_KINDS = {"BallotElected", "RoleChanged"}


def run_sim(proposals=5):
    reg = MetricsRegistry()
    reg.enable_tracing()
    sink = MemorySink()
    reg.add_sink(sink)
    exp = build_experiment(
        ExperimentConfig(protocol="omni", num_servers=3,
                         election_timeout_ms=50.0),
        obs=reg,
    )
    exp.cluster.start()
    exp.cluster.run_for(1_000)
    (leader,) = exp.cluster.leaders()
    for i in range(proposals):
        exp.cluster.propose(leader, Command(b"x", client_id=1, seq=i))
    exp.cluster.run_for(500)
    return reg, sink, exp


def run_runtime(proposals=5):
    reg = MetricsRegistry()
    reg.enable_tracing()
    sink = MemorySink()
    reg.add_sink(sink)

    async def scenario():
        cc = ClusterConfig(0, (1, 2, 3))
        addrs = {p: PeerAddress(p, "127.0.0.1", BASE_PORT + p)
                 for p in cc.servers}
        nodes = {}
        for p in cc.servers:
            server = OmniPaxosServer(OmniPaxosConfig(
                pid=p, cluster=cc, hb_period_ms=40.0))
            nodes[p] = RuntimeNode(
                server, addrs[p],
                {q: a for q, a in addrs.items() if q != p},
                tick_ms=8.0, obs=reg,
            )
        for node in nodes.values():
            await node.start()
        try:
            leader = None
            for _ in range(100):
                await asyncio.sleep(0.05)
                leaders = [p for p, n in nodes.items() if n.is_leader]
                if leaders:
                    leader = leaders[0]
                    break
            assert leader is not None, "no leader over TCP"
            for i in range(proposals):
                nodes[leader].propose(Command(b"x", client_id=1, seq=i))
            for _ in range(100):
                await asyncio.sleep(0.05)
                if all(n.replica.global_log_len == proposals
                       for n in nodes.values()):
                    break
            assert all(n.replica.global_log_len == proposals
                       for n in nodes.values())
        finally:
            for node in nodes.values():
                await node.stop()

    asyncio.run(scenario())
    return reg, sink


class TestSimRuntimeParity:
    def test_same_core_event_kinds_and_counters(self):
        sim_reg, sim_sink, _exp = run_sim()
        rt_reg, rt_sink = run_runtime()

        # Both layers speak the same protocol-event vocabulary.
        assert CORE_KINDS <= set(sim_sink.kinds())
        assert CORE_KINDS <= set(rt_sink.kinds())

        # Every server in each world converged on one leader, announced via
        # the same BallotElected event (real time may see a transient first
        # election, so compare each server's *latest* announcement).
        for sink in (sim_sink, rt_sink):
            elected = sink.by_kind("BallotElected")
            assert elected
            latest = {}
            for r in elected:
                latest[r.event.pid] = r.event.leader
            assert set(latest) == {1, 2, 3}
            assert len(set(latest.values())) == 1
            roles = sink.by_kind("RoleChanged")
            assert any(r.event.role == "leader" for r in roles)

        # The same decide counter is populated by both layers: 5 commands
        # fully replicated on 3 servers each.
        for reg in (sim_reg, rt_reg):
            assert reg.sum_counter("repro_decided_entries_total") == 15.0
            for pid in (1, 2, 3):
                assert reg.counter_value(
                    "repro_decided_entries_total", pid=pid) == 5.0

        # Both transports count sent messages and bytes under one name.
        for reg in (sim_reg, rt_reg):
            assert reg.sum_counter("repro_messages_sent_total") > 0
            assert reg.sum_counter("repro_bytes_sent_total") > 0

        # With tracing on, the same run reconstructs the same span kinds
        # in both worlds (the ISSUE's sim/runtime tracing-parity check).
        sim_spans = assemble_spans(sim_sink.records)
        rt_spans = assemble_spans(rt_sink.records)
        sim_kinds = {s.kind for s in sim_spans}
        rt_kinds = {s.kind for s in rt_spans}
        assert SPAN_COMMIT in sim_kinds
        assert sim_kinds == rt_kinds
        # The commit spans cover the proposed commands on both sides, and
        # inherit the canonical client trace ids from the entries.
        for spans in (sim_spans, rt_spans):
            commits = [s for s in spans if s.kind == SPAN_COMMIT]
            assert sum(s.attr("entries") for s in commits) == 5
            assert any(s.trace_id.startswith("c1-") for s in commits)

        # Tracing also feeds the live replicate-phase histogram everywhere.
        for reg in (sim_reg, rt_reg):
            hist = reg.histogram("repro_commit_phase_ms", phase="replicate")
            assert hist.count > 0

    def test_event_timestamps_follow_each_clock(self):
        _reg, sink, exp = run_sim()
        assert all(0.0 <= r.at_ms <= exp.queue.now for r in sink.records)
        # Virtual-time ordering: the sink sees records in emit order.
        stamps = [r.at_ms for r in sink.records]
        assert stamps == sorted(stamps)
