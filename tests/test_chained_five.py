"""The 5-server chained scenario (paper section 2c).

"in scenarios where there is no fully-connected server (e.g., a chained
scenario with 5 servers), the cluster will be in a livelock with repeated
leader changes due to the terms being gossiped."

With servers connected 1-2-3-4-5 the inner servers {2, 3, 4} are each
quorum-connected (three reachable servers of five) but *nobody* is fully
connected, so protocols that rely on a fully-connected server to settle the
gossip churn forever. Omni-Paxos settles after a bounded number of ballot
bumps: the eventual leader is a QC server, and servers that cannot see its
ballot keep stale claims harmlessly (no leader-identity gossip).
"""

import pytest

from repro.omni.entry import Command
from repro.sim import partitions
from repro.sim.harness import ExperimentConfig, build_experiment

T = 100.0
CHAIN = (1, 2, 3, 4, 5)


def run_chain(protocol, duration_ms=6_000.0, seed=7):
    cfg = ExperimentConfig(protocol=protocol, num_servers=5,
                           election_timeout_ms=T, seed=seed,
                           initial_leader=2)
    exp = build_experiment(cfg)
    client = exp.make_client(concurrent_proposals=8)
    exp.cluster.run_for(2_000)
    at = exp.cluster.now
    partitions.chained(exp.cluster, order=CHAIN)
    exp.cluster.run_for(duration_ms)
    return exp, client, at


class TestOmniFiveChain:
    def test_only_qc_servers_lead(self):
        exp, client, at = run_chain("omni")
        # Every leadership claim (including stale ones) belongs to a
        # quorum-connected inner server; the endpoints never claim.
        assert set(exp.cluster.leaders()) <= {2, 3, 4}
        assert exp.cluster.leaders()  # and someone does lead

    def test_stable_progress(self):
        exp, client, at = run_chain("omni")
        end = exp.cluster.now
        downtime = client.tracker.downtime(at, end)
        assert downtime <= 6 * T  # one constant-time leader change
        assert client.tracker.count_between(at, end) > 0

    def test_single_leader_change(self):
        exp, client, at = run_chain("omni")
        middle = exp.cluster.replica(3)
        # Exactly one takeover attempt at the only QC server.
        assert middle.ble_of_current().stats.ballots_bumped <= 2


class TestBaselinesFiveChain:
    def test_multipaxos_livelocks(self):
        """The endpoints keep preempting each other through the chain;
        Multi-Paxos decides far less than Omni-Paxos."""
        omni_exp, omni_client, at_o = run_chain("omni")
        mp_exp, mp_client, at_m = run_chain("multipaxos")
        omni_decided = omni_client.tracker.count_between(
            at_o, omni_exp.cluster.now)
        mp_decided = mp_client.tracker.count_between(
            at_m, mp_exp.cluster.now)
        assert mp_decided < 0.8 * omni_decided

    def test_raft_churns_terms(self):
        exp, client, at = run_chain("raft")
        # Only the middle server can stabilize; before it does, terms churn
        # well beyond the single change Omni-Paxos needs.
        max_term = max(exp.cluster.replica(p).stats.max_term_seen
                       for p in CHAIN)
        assert max_term >= 3  # paper: up to 8 terms above the initial

    def test_omni_beats_raft_on_downtime(self):
        omni_exp, omni_client, at_o = run_chain("omni")
        raft_exp, raft_client, at_r = run_chain("raft")
        omni_down = omni_client.tracker.downtime(at_o, omni_exp.cluster.now)
        raft_down = raft_client.tracker.downtime(at_r, raft_exp.cluster.now)
        assert omni_down <= raft_down
