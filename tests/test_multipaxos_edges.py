"""Additional Multi-Paxos edge cases: preemption, back-off, recovery."""

import pytest

from repro.baselines.multipaxos import (
    MPRole,
    MultiPaxosConfig,
    MultiPaxosReplica,
    NOOP,
    P1a,
    P1b,
    P2a,
    P2b,
    Ping,
    Pong,
)
from repro.omni.entry import Command

from tests.test_multipaxos import build_mp_cluster, cmd, wait_leader

T = 100.0


def make_mp(pid, peers=(2, 3), **kwargs):
    replica = MultiPaxosReplica(MultiPaxosConfig(
        pid=pid, peers=peers, election_timeout_ms=T, **kwargs))
    replica.start(0.0)
    replica.take_outbox()
    return replica


class TestCandidateBehaviour:
    def test_suspicion_triggers_campaign(self):
        replica = make_mp(1, initial_leader=2)
        replica.tick(2 * T)  # no pongs ever arrived
        out = replica.take_outbox()
        assert any(isinstance(m, P1a) for _d, m in out)
        assert replica._role is MPRole.CANDIDATE

    def test_pong_resets_suspicion(self):
        replica = make_mp(1, initial_leader=2)
        replica.tick(T * 0.5)
        replica.take_outbox()
        replica.on_message(2, Pong(), T * 0.9)
        replica.tick(T * 1.5)
        out = replica.take_outbox()
        assert not any(isinstance(m, P1a) for _d, m in out)

    def test_candidate_retries_with_backoff(self):
        replica = make_mp(1, initial_leader=2)
        replica.tick(2 * T)
        replica.take_outbox()
        first_ballot = replica.ballot
        # Way past any back-off: a retry campaign must fire.
        replica.tick(20 * T)
        out = replica.take_outbox()
        p1as = [m for _d, m in out if isinstance(m, P1a)]
        assert p1as
        assert p1as[0].ballot >= first_ballot

    def test_campaign_ballot_exceeds_everything_seen(self):
        replica = make_mp(1, initial_leader=2)
        replica.on_message(3, P1a((41, 3), 0), 1.0)
        replica.take_outbox()
        replica.tick(2 * T)
        out = replica.take_outbox()
        ((_, p1a),) = [(d, m) for d, m in out if isinstance(m, P1a)][:1]
        assert p1a.ballot[0] == 42

    def test_pongs_from_non_leader_ignored(self):
        replica = make_mp(1, initial_leader=2)
        replica.on_message(3, Pong(), T * 0.9)  # not the believed leader
        replica.tick(2 * T)
        out = replica.take_outbox()
        assert any(isinstance(m, P1a) for _d, m in out)


class TestLeaderBehaviour:
    def test_established_leader_heartbeats(self):
        sim, reps = build_mp_cluster(3, initial_leader=1)
        sim.run_for(500)
        # Followers keep seeing empty P2a heartbeats: no suspicion.
        assert sim.leaders() == [1]
        assert reps[2].leader_pid == 1

    def test_leader_preempted_by_p2b_reject(self):
        replica = make_mp(1, initial_leader=1)
        assert replica.is_leader
        replica.on_message(2, P2b((1, 1), (9, 3), 0), 1.0)
        assert not replica.is_leader
        assert replica.leader_pid == 3  # monitors the preemptor

    def test_noop_gaps_filled_on_takeover(self):
        """A new leader fills unrecovered slots with no-ops so the decided
        watermark can pass them."""
        replica = make_mp(1, peers=(2, 3))
        # Manually enter candidacy and feed promises with a gap at slot 1.
        replica.tick(2 * T)
        replica.take_outbox()
        ballot = replica.ballot
        replica.on_message(2, P1b(ballot, ballot,
                                  ((0, (1, 9), cmd(0)), (2, (1, 9), cmd(2))),
                                  0), 1.0)
        assert replica.is_leader
        assert replica._log[1] == NOOP

    def test_decided_watermark_needs_majority(self):
        sim, reps = build_mp_cluster(5, initial_leader=1)
        sim.run_for(300)
        for p in (3, 4, 5):
            sim.crash(p)
        sim.propose(1, cmd(0))
        sim.run_for(300)
        assert reps[1].decided_upto == 0  # 2 of 5 is not a majority


class TestRecovery:
    def test_recovered_acceptor_state_survives(self):
        sim, reps = build_mp_cluster(3, initial_leader=1)
        sim.run_for(300)
        for i in range(5):
            sim.propose(1, cmd(i))
        sim.run_for(200)
        sim.crash(2)
        sim.recover(2)
        sim.run_for(1_500)
        assert reps[2].decided_upto == 5

    def test_cluster_survives_rolling_leader_crashes(self):
        sim, reps = build_mp_cluster(3, initial_leader=1)
        sim.run_for(300)
        sim.propose(1, cmd(0))
        sim.run_for(200)
        sim.crash(1)
        second = wait_leader(sim)
        sim.propose(second, cmd(1))
        sim.run_for(200)
        sim.recover(1)
        sim.run_for(1_500)
        assert reps[1].decided_upto >= 2
