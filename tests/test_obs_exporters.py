"""Tests for the observability exporters: memory, JSON-lines, Prometheus."""

import io

import pytest

from repro.errors import ConfigError
from repro.obs.events import (
    BallotElected,
    ClientReplyDecided,
    EventRecord,
    RoleChanged,
)
from repro.obs.exporters import (
    JsonLinesSink,
    MemorySink,
    metrics_snapshot,
    read_jsonl,
    render_prometheus,
)
from repro.obs.registry import MetricsRegistry


def populated_registry():
    reg = MetricsRegistry(clock=lambda: 100.0)
    reg.counter("repro_decided_entries_total", pid=1).inc(10)
    reg.counter("repro_decided_entries_total", pid=2).inc(20)
    reg.gauge("repro_quorum_connected", pid=1).set(1.0)
    hist = reg.histogram("repro_propose_decide_latency_ms")
    for v in (1.0, 2.0, 300.0):
        hist.observe(v)
    return reg


class TestMemorySink:
    def make(self):
        reg = MetricsRegistry(clock=lambda: 0.0)
        sink = MemorySink()
        reg.add_sink(sink)
        t = [0.0]
        reg.set_clock(lambda: t[0])
        t[0] = 10.0
        reg.emit(BallotElected(pid=1, leader=1, ballot=1))
        t[0] = 20.0
        reg.emit(RoleChanged(pid=1, role="leader", protocol="sp"))
        t[0] = 30.0
        reg.emit(BallotElected(pid=2, leader=1, ballot=1))
        return sink

    def test_kinds_first_seen_order(self):
        sink = self.make()
        assert sink.kinds() == ("BallotElected", "RoleChanged")

    def test_by_kind(self):
        sink = self.make()
        assert len(sink.by_kind("BallotElected")) == 2
        assert sink.by_kind("StopSignDecided") == []

    def test_between_half_open(self):
        sink = self.make()
        window = sink.between(10.0, 30.0)
        assert [r.at_ms for r in window] == [10.0, 20.0]

    def test_clear(self):
        sink = self.make()
        sink.clear()
        assert len(sink) == 0
        assert sink.kinds() == ()


class TestJsonLinesRoundTrip:
    def test_events_and_metrics(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        reg = populated_registry()
        sink = JsonLinesSink(path)
        reg.add_sink(sink)
        reg.emit(BallotElected(pid=1, leader=3, ballot=7))
        reg.emit(ClientReplyDecided(client_id=9, seq=4))
        sink.close(reg)

        events, metrics = read_jsonl(path)
        assert [e.event.kind for e in events] == \
            ["BallotElected", "ClientReplyDecided"]
        assert events[0].at_ms == 100.0
        assert events[0].event.leader == 3
        by_name = {}
        for m in metrics:
            by_name.setdefault(m["name"], []).append(m)
        decided = by_name["repro_decided_entries_total"]
        assert sorted(m["value"] for m in decided) == [10, 20]
        assert all(m["metric"] == "counter" for m in decided)
        (hist,) = by_name["repro_propose_decide_latency_ms"]
        assert hist["metric"] == "histogram"
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(303.0)

    def test_io_handle_destination(self):
        buf = io.StringIO()
        reg = MetricsRegistry(clock=lambda: 5.0)
        sink = JsonLinesSink(buf)
        reg.add_sink(sink)
        reg.emit(RoleChanged(pid=2, role="follower", protocol="raft"))
        sink.close(reg)
        assert not buf.closed  # sink does not own externally-supplied handles
        events, _metrics = read_jsonl(buf.getvalue().splitlines())
        assert events[0].event.role == "follower"

    def test_histogram_inf_bucket_survives_json(self):
        reg = MetricsRegistry()
        reg.histogram("h_ms").observe(1e9)  # lands in the overflow bucket
        (snap,) = metrics_snapshot(reg)
        assert snap["buckets"] == [["+Inf", 1]]

    def test_unknown_tag_rejected(self):
        with pytest.raises(ConfigError):
            read_jsonl(['{"t": "mystery", "x": 1}'])

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(ConfigError):
            read_jsonl(['{"t": "event", "kind": "Nope", "at_ms": 0.0}'])

    def test_blank_lines_skipped(self):
        events, metrics = read_jsonl(["", "   ", ""])
        assert events == [] and metrics == []


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        text = render_prometheus(populated_registry())
        assert "# TYPE repro_decided_entries_total counter" in text
        assert 'repro_decided_entries_total{pid="1"} 10' in text
        assert 'repro_decided_entries_total{pid="2"} 20' in text
        assert "# TYPE repro_quorum_connected gauge" in text
        assert 'repro_quorum_connected{pid="1"} 1' in text

    def test_histogram_cumulative_with_inf(self):
        text = render_prometheus(populated_registry())
        assert "# TYPE repro_propose_decide_latency_ms histogram" in text
        bucket_lines = [
            l for l in text.splitlines()
            if l.startswith("repro_propose_decide_latency_ms_bucket")
        ]
        counts = [int(l.rsplit(" ", 1)[1]) for l in bucket_lines]
        assert counts == sorted(counts)  # cumulative
        assert counts[-1] == 3
        assert 'le="+Inf"' in bucket_lines[-1]
        assert "repro_propose_decide_latency_ms_sum 303" in text
        assert "repro_propose_decide_latency_ms_count 3" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("weird_total", label='a"b\\c').inc()
        text = render_prometheus(reg)
        assert r'label="a\"b\\c"' in text

    def test_empty_registry(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_unlabelled_counter(self):
        reg = MetricsRegistry()
        reg.counter("plain_total").inc(2)
        assert "plain_total 2" in render_prometheus(reg)
