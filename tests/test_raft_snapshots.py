"""Raft InstallSnapshot: snapshot-based catch-up for far-behind followers."""

import pytest

from repro.baselines.raft import (
    AppendEntriesReply,
    InstallSnapshot,
    RaftConfig,
    RaftLog,
    RaftReplica,
    RaftSlot,
)
from repro.omni.entry import Command, SnapshotInstalled
from repro.sim.cluster import SimCluster
from repro.sim.events import EventQueue
from repro.sim.network import NetworkParams, SimNetwork

T = 100.0


def cmd(i: int) -> Command:
    return Command(data=b"x", client_id=1, seq=i)


def counting_fold(entries, prev_state):
    base = prev_state or 0
    return base + len(entries)


def build_snapshot_cluster(threshold=50, n=3, initial_leader=1):
    voters = tuple(range(1, n + 1))
    queue = EventQueue()
    net = SimNetwork(queue, NetworkParams(one_way_ms=0.1))
    replicas = {
        pid: RaftReplica(RaftConfig(
            pid=pid, voters=voters, election_timeout_ms=T,
            snapshotter=counting_fold,
            snapshot_catchup_threshold=threshold,
            max_entries_per_msg=20,
            initial_leader=initial_leader, seed=3,
        ))
        for pid in voters
    }
    sim = SimCluster(replicas, net, queue, tick_ms=5.0)
    sim.start()
    return sim, replicas


class TestRaftLog:
    def test_logical_indices(self):
        log = RaftLog()
        log.extend(RaftSlot(1, cmd(i)) for i in range(5))
        assert len(log) == 5
        assert log.term_at(5) == 1
        assert log.slot_at(3).entry.seq == 2

    def test_install_keeps_tail(self):
        log = RaftLog()
        log.extend(RaftSlot(1, cmd(i)) for i in range(5))
        log.install(3, 1)
        assert len(log) == 5
        assert log.base == 3
        assert log.slot_at(4).entry.seq == 3
        assert log.term_at(3) == 1  # boundary term from the snapshot

    def test_install_beyond_len_clears(self):
        log = RaftLog()
        log.extend(RaftSlot(1, cmd(i)) for i in range(3))
        log.install(10, 2)
        assert len(log) == 10
        assert log.base == 10
        assert log.term_at(10) == 2

    def test_reading_snapshotted_raises(self):
        log = RaftLog()
        log.extend(RaftSlot(1, cmd(i)) for i in range(5))
        log.install(3, 1)
        with pytest.raises(IndexError):
            log.slot_at(2)

    def test_install_is_monotone(self):
        log = RaftLog()
        log.install(5, 2)
        log.install(3, 1)  # lower: no-op
        assert log.base == 5

    def test_slice_clamps_to_base(self):
        log = RaftLog()
        log.extend(RaftSlot(1, cmd(i)) for i in range(6))
        log.install(2, 1)
        assert [s.entry.seq for s in log.slice(0, 4)] == [2, 3]


class TestSnapshotCatchUp:
    def test_far_behind_follower_gets_snapshot(self):
        sim, reps = build_snapshot_cluster(threshold=50)
        sim.run_for(100)
        sim.crash(3)
        for lo in range(0, 200, 50):
            sim.propose_batch(1, [cmd(i) for i in range(lo, lo + 50)])
            sim.run_for(50)
        sim.recover(3)
        sim.run_for(2_000)
        assert reps[1].stats.snapshots_sent >= 1
        assert reps[3].commit_idx == 200
        assert reps[3]._log.base > 0

    def test_snapshot_surfaces_in_decided_stream(self):
        sim, reps = build_snapshot_cluster(threshold=50)
        decided = {p: [] for p in (1, 2, 3)}
        sim.on_decided(lambda pid, idx, e, now: decided[pid].append((idx, e)))
        sim.run_for(100)
        sim.crash(3)
        sim.propose_batch(1, [cmd(i) for i in range(200)])
        sim.run_for(200)
        sim.recover(3)
        sim.run_for(2_000)
        markers = [e for _i, e in decided[3]
                   if isinstance(e, SnapshotInstalled)]
        assert len(markers) >= 1
        # The fold counted the snapshotted entries.
        assert markers[0].state > 0
        # And regular entries continue after the marker.
        sim.propose_batch(1, [cmd(i) for i in range(200, 205)])
        sim.run_for(300)
        tail = [e.seq for _i, e in decided[3] if isinstance(e, Command)]
        assert tail and tail[-1] == 204

    def test_close_follower_streams_normally(self):
        sim, reps = build_snapshot_cluster(threshold=1_000)
        sim.run_for(100)
        sim.propose_batch(1, [cmd(i) for i in range(100)])
        sim.run_for(500)
        assert reps[1].stats.snapshots_sent == 0
        assert all(r.commit_idx == 100 for r in reps.values())

    def test_no_snapshotter_never_snapshots(self):
        from tests.test_raft import build_raft_cluster
        sim, reps = build_raft_cluster(3, initial_leader=1)
        sim.run_for(100)
        sim.crash(3)
        sim.propose_batch(1, [cmd(i) for i in range(500)])
        sim.run_for(200)
        sim.recover(3)
        sim.run_for(2_000)
        assert reps[1].stats.snapshots_sent == 0
        assert reps[3].commit_idx == 500  # full log streaming still works

    def test_stale_install_snapshot_rejected(self):
        replica = RaftReplica(RaftConfig(
            pid=2, voters=(1, 2, 3), election_timeout_ms=T))
        replica.start(0.0)
        replica.on_message(1, InstallSnapshot(
            term=0, leader=1, last_idx=10, last_term=1,
            state=10, leader_commit=10), 1.0)
        replica._term = 5  # now the message below is stale
        replica.take_outbox()
        replica.on_message(1, InstallSnapshot(
            term=1, leader=1, last_idx=20, last_term=1,
            state=20, leader_commit=20), 2.0)
        ((_d, reply),) = replica.take_outbox()
        assert isinstance(reply, AppendEntriesReply)
        assert not reply.success

    def test_snapshotted_follower_serves_as_leader(self):
        """A follower that only ever saw a snapshot can still win elections
        and replicate (it retains the state for even-later joiners)."""
        sim, reps = build_snapshot_cluster(threshold=50)
        sim.run_for(100)
        sim.crash(3)
        sim.propose_batch(1, [cmd(i) for i in range(200)])
        sim.run_for(200)
        sim.recover(3)
        sim.run_for(2_000)
        assert reps[3]._log.base > 0
        # Kill the other two; 3 must eventually offer its snapshot state.
        assert reps[3]._snap_state is not None
