"""Raft leadership transfer (TimeoutNow)."""

import pytest

from repro.errors import ConfigError, NotLeaderError
from repro.baselines.raft import TimeoutNow
from repro.omni.entry import Command

from tests.test_raft import build_raft_cluster, cmd, wait_leader

T = 100.0


class TestTransfer:
    def test_transfer_moves_leadership_fast(self):
        sim, reps = build_raft_cluster(3, initial_leader=1)
        sim.run_for(200)
        before = sim.now
        reps[1].transfer_leadership(2, sim.now)
        sim._flush(1)
        sim.run_for(50)  # one round trip, no election-timeout wait
        assert sim.leaders() == [2]
        assert sim.now - before <= T

    def test_replication_continues_after_transfer(self):
        sim, reps = build_raft_cluster(3, initial_leader=1)
        sim.run_for(200)
        for i in range(5):
            sim.propose(1, cmd(i))
        sim.run_for(100)
        reps[1].transfer_leadership(3, sim.now)
        sim._flush(1)
        sim.run_for(100)
        assert sim.leaders() == [3]
        for i in range(5, 10):
            sim.propose(3, cmd(i))
        sim.run_for(200)
        assert all(r.commit_idx == 10 for r in reps.values())

    def test_only_leader_may_transfer(self):
        sim, reps = build_raft_cluster(3, initial_leader=1)
        sim.run_for(200)
        with pytest.raises(NotLeaderError):
            reps[2].transfer_leadership(3, sim.now)

    def test_target_must_be_voter(self):
        sim, reps = build_raft_cluster(3, initial_leader=1)
        sim.run_for(200)
        with pytest.raises(ConfigError):
            reps[1].transfer_leadership(9, sim.now)
        with pytest.raises(ConfigError):
            reps[1].transfer_leadership(1, sim.now)

    def test_lagging_target_rejected_then_caught_up(self):
        sim, reps = build_raft_cluster(3, initial_leader=1)
        sim.run_for(200)
        sim.set_link(1, 2, False)
        for i in range(10):
            sim.propose(1, cmd(i))
        sim.run_for(100)
        sim.set_link(1, 2, True)
        with pytest.raises(ConfigError):
            reps[1].transfer_leadership(2, sim.now)
        sim._flush(1)  # the refusal also kicked off catch-up
        sim.run_for(200)
        reps[1].transfer_leadership(2, sim.now)
        sim._flush(1)
        sim.run_for(100)
        assert sim.leaders() == [2]

    def test_stale_timeout_now_ignored(self):
        sim, reps = build_raft_cluster(3, initial_leader=1)
        sim.run_for(200)
        term_before = reps[2].term
        reps[2].on_message(1, TimeoutNow(term=0), sim.now)  # stale term
        sim.run_for(50)
        assert sim.leaders() == [1]
        assert reps[2].term == term_before

    def test_transfer_works_under_pvcq(self):
        """TimeoutNow must bypass PreVote's leader stickiness."""
        sim, reps = build_raft_cluster(3, initial_leader=1, prevote=True,
                                       check_quorum=True)
        sim.run_for(200)
        reps[1].transfer_leadership(2, sim.now)
        sim._flush(1)
        sim.run_for(100)
        assert sim.leaders() == [2]
