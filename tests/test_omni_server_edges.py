"""Edge-case tests for OmniPaxosServer's service layer and multiplexing."""

import pytest

from repro.errors import NotLeaderError
from repro.omni.ballot import Ballot
from repro.omni.entry import Command
from repro.omni.messages import (
    COMPONENT_BLE,
    COMPONENT_SERVICE,
    COMPONENT_SP,
    Envelope,
    HeartbeatRequest,
    JoinComplete,
    LogPullRequest,
    LogSegment,
    NewConfiguration,
    PrepareReq,
)
from repro.omni.server import ClusterConfig, OmniPaxosConfig, OmniPaxosServer

from tests.conftest import build_omni_cluster, run_until_leader


def cmd(i: int) -> Command:
    return Command(data=b"x", client_id=1, seq=i)


def make_server(pid=1, servers=(1, 2, 3), **kwargs):
    server = OmniPaxosServer(OmniPaxosConfig(
        pid=pid, cluster=ClusterConfig(0, servers), hb_period_ms=50.0,
        **kwargs))
    server.start(0.0)
    return server


class TestEnvelopeRouting:
    def test_non_envelope_rejected(self):
        server = make_server()
        with pytest.raises(TypeError):
            server.on_message(2, HeartbeatRequest(1), 1.0)

    def test_unknown_config_dropped_and_counted(self):
        server = make_server()
        env = Envelope(99, COMPONENT_SP, PrepareReq())
        server.on_message(2, env, 1.0)
        assert server.stats.dropped_cross_config == 1

    def test_ble_for_inactive_config_ignored(self):
        sim, servers = build_omni_cluster(3, joiners=(4,))
        leader = run_until_leader(sim)
        sim.reconfigure(leader, (1, 2, 3, 4))
        sim.run_for(2_000)
        srv = servers[leader]
        # Heartbeats addressed to the *stopped* configuration 0 are ignored
        # without touching the live instance.
        before = srv.stats.dropped_cross_config
        srv.on_message(2, Envelope(0, COMPONENT_BLE, HeartbeatRequest(5)),
                       sim.now)
        assert srv.take_outbox() == []  # no reply from a stopped BLE

    def test_messages_before_start_ignored(self):
        server = OmniPaxosServer(OmniPaxosConfig(
            pid=1, cluster=ClusterConfig(0, (1, 2, 3))))
        server.on_message(2, Envelope(0, COMPONENT_SP, PrepareReq()), 0.0)
        assert server.take_outbox() == []

    def test_crashed_server_silent(self):
        server = make_server()
        server.take_outbox()  # drain the startup heartbeats
        server.crash()
        server.on_message(2, Envelope(0, COMPONENT_SP, PrepareReq()), 1.0)
        server.tick(10.0)
        assert server.take_outbox() == []


class TestServiceMessages:
    def test_duplicate_new_configuration_acked(self):
        """A NewConfiguration for an already-started config draws a
        JoinComplete so the announcer stops retransmitting."""
        server = make_server()
        msg = NewConfiguration(config_id=0, servers=(1, 2, 3), log_len=0)
        server.on_message(2, Envelope(0, COMPONENT_SERVICE, msg), 1.0)
        out = server.take_outbox()
        assert any(isinstance(e.payload, JoinComplete) and d == 2
                   for d, e in out)

    def test_new_configuration_for_other_server_ignored(self):
        server = make_server()
        msg = NewConfiguration(config_id=1, servers=(7, 8, 9), log_len=0)
        server.on_message(2, Envelope(1, COMPONENT_SERVICE, msg), 1.0)
        assert not server.migrating

    def test_pull_request_served_from_global_log(self):
        sim, servers = build_omni_cluster(3)
        leader = run_until_leader(sim)
        for i in range(5):
            sim.propose(leader, cmd(i))
        sim.run_for(100)
        srv = servers[leader]
        srv.on_message(9, Envelope(0, COMPONENT_SERVICE,
                                   LogPullRequest(1, 1, 4)), sim.now)
        out = srv.take_outbox()
        segments = [e.payload for _d, e in out
                    if isinstance(e.payload, LogSegment)]
        assert len(segments) == 1
        assert [entry.seq for entry in segments[0].entries] == [1, 2, 3]
        assert segments[0].complete

    def test_stray_log_segment_ignored(self):
        server = make_server()
        seg = LogSegment(config_id=1, from_idx=0, entries=(cmd(0),),
                         complete=True)
        server.on_message(2, Envelope(1, COMPONENT_SERVICE, seg), 1.0)
        assert server.global_log_len == 0

    def test_join_complete_stops_announcements(self):
        sim, servers = build_omni_cluster(3, joiners=(4,))
        leader = run_until_leader(sim)
        sim.reconfigure(leader, (1, 2, 3, 4))
        sim.run_for(3_000)  # join completes
        srv = servers[leader]
        assert 4 not in srv._announce_deadlines


class TestAccessors:
    def test_joiner_has_no_instances(self):
        joiner = OmniPaxosServer(OmniPaxosConfig(
            pid=9, cluster=ClusterConfig(0, (1, 2, 3))))
        joiner.start(0.0)
        assert joiner.ble_of_current() is None
        assert joiner.sp_of_current() is None
        assert joiner.leader_pid is None
        assert not joiner.is_leader

    def test_read_log_defaults_to_full(self):
        sim, servers = build_omni_cluster(3)
        leader = run_until_leader(sim)
        for i in range(3):
            sim.propose(leader, cmd(i))
        sim.run_for(100)
        assert len(servers[leader].read_log()) == 3
        assert len(servers[leader].read_log(1)) == 2

    def test_current_config(self):
        server = make_server()
        assert server.current_config.servers == (1, 2, 3)
        assert server.current_config.config_id == 0

    def test_start_idempotent(self):
        server = make_server()
        server.start(5.0)  # second start: no-op
        assert server.current_config is not None

    def test_stats_reconfigurations_counted(self):
        sim, servers = build_omni_cluster(3, joiners=(4,))
        leader = run_until_leader(sim)
        sim.reconfigure(leader, (1, 2, 3, 4))
        sim.run_for(2_000)
        assert servers[leader].stats.reconfigurations == 1


class TestProposalRouting:
    def test_reconfig_from_follower_forwards(self):
        sim, servers = build_omni_cluster(3, joiners=(4,))
        leader = run_until_leader(sim)
        follower = next(p for p in (1, 2, 3) if p != leader)
        sim.reconfigure(follower, (1, 2, 3, 4))
        sim.run_for(3_000)
        assert tuple(sorted(servers[4].members)) == (1, 2, 3, 4)

    def test_propose_at_retired_server_raises(self):
        sim, servers = build_omni_cluster(3, joiners=(4,))
        leader = run_until_leader(sim)
        removed = next(p for p in (1, 2, 3) if p != leader)
        sim.reconfigure(leader, tuple(sorted({1, 2, 3, 4} - {removed})))
        sim.run_for(3_000)
        with pytest.raises(NotLeaderError):
            servers[removed].propose(cmd(0), sim.now)

    def test_batch_on_transitioning_server_buffers(self):
        sim, servers = build_omni_cluster(3, joiners=(4,))
        leader = run_until_leader(sim)
        sim.reconfigure(leader, (1, 2, 3, 4))
        servers[leader].propose_batch([cmd(i) for i in range(3)], sim.now)
        sim.run_for(3_000)
        new_leader = run_until_leader(sim)
        sim.run_for(500)
        # stop-sign + the 3 buffered commands
        assert servers[new_leader].global_log_len == 4
