"""Codec round-trips for envelopes with and without trace contexts.

The runtime ships :class:`Envelope` over pickle frames; these tests pin
down that a :class:`TraceContext` survives the trip, that its absence
costs nothing on the wire, and — the backward-compat guarantee — that
artifacts from before the tracing layer (old pickles, old JSON-lines
exports) still load.
"""

import pickle

from repro.obs.events import ClientReplyDecided, event_from_dict, event_to_dict
from repro.obs.events import EventRecord
from repro.obs.spans import TraceContext
from repro.omni.messages import Envelope, HeartbeatRequest
from repro.runtime.codec import FrameDecoder, encode_frame


def round_trip(env):
    decoder = FrameDecoder()
    ((src, payload),) = decoder.feed(encode_frame(7, env))
    assert src == 7
    return payload


class TestEnvelopeRoundTrip:
    def test_without_trace(self):
        env = Envelope(config_id=0, component="ble",
                       payload=HeartbeatRequest(round=3))
        out = round_trip(env)
        assert out == env
        assert out.trace is None

    def test_with_trace(self):
        ctx = TraceContext("c1-5", span_id="2.9", parent_id="1.4")
        env = Envelope(config_id=0, component="sp",
                       payload=HeartbeatRequest(round=1), trace=ctx)
        out = round_trip(env)
        assert out.trace == ctx
        assert out.trace.child("3.0").parent_id == "2.9"

    def test_trace_costs_wire_bytes_only_when_present(self):
        payload = HeartbeatRequest(round=1)
        bare = Envelope(config_id=0, component="ble", payload=payload)
        traced = Envelope(config_id=0, component="ble", payload=payload,
                          trace=TraceContext("c1-0"))
        assert traced.wire_size() == bare.wire_size() + TraceContext.WIRE_SIZE

    def test_split_frame_delivery(self):
        env = Envelope(config_id=0, component="sp",
                       payload=HeartbeatRequest(round=2),
                       trace=TraceContext("c9-9"))
        frame = encode_frame(1, env)
        decoder = FrameDecoder()
        assert decoder.feed(frame[:5]) == []
        ((_, out),) = decoder.feed(frame[5:])
        assert out.trace.trace_id == "c9-9"


class TestBackwardCompat:
    def test_pre_tracing_pickle_reads_none_trace(self):
        # An envelope pickled before the ``trace`` field existed carries no
        # value for it in its state; ``__setstate__`` must default it to
        # None instead of raising.
        env = Envelope(config_id=1, component="sp",
                       payload=HeartbeatRequest(round=4))
        state = {"config_id": 1, "component": "sp", "payload": env.payload}
        old = Envelope.__new__(Envelope)
        old.__setstate__(state)  # the dict state an old pickle carries
        assert old.trace is None
        restored = pickle.loads(pickle.dumps(old))
        assert restored.trace is None
        assert restored.wire_size() == env.wire_size()

    def test_legacy_two_part_state_loads(self):
        # The default object protocol can also produce (dict, slots_dict)
        # two-part states; both halves must be honoured.
        env = Envelope.__new__(Envelope)
        env.__setstate__(({"config_id": 3}, {"component": "sp",
                          "payload": HeartbeatRequest(round=1)}))
        assert env.config_id == 3
        assert env.component == "sp"
        assert env.trace is None

    def test_event_dict_without_trace_id_loads(self):
        # A pre-tracing JSON-lines export: ClientReplyDecided rows have no
        # trace_id key; the dataclass default fills it in.
        payload = {"kind": "ClientReplyDecided", "at_ms": 12.5,
                   "client_id": 1, "seq": 3}
        record = event_from_dict(payload)
        assert isinstance(record.event, ClientReplyDecided)
        assert record.event.trace_id == ""
        assert record.at_ms == 12.5

    def test_event_dict_round_trip_keeps_trace_id(self):
        record = EventRecord(at_ms=1.0, event=ClientReplyDecided(
            client_id=1, seq=3, trace_id="c1-3"))
        out = event_from_dict(event_to_dict(record))
        assert out.event.trace_id == "c1-3"
