"""Unit and cluster tests for the Raft baseline (incl. PreVote/CheckQuorum)."""

from typing import Dict

import pytest

from repro.errors import ConfigError, NotLeaderError
from repro.baselines.raft import (
    AppendEntries,
    AppendEntriesReply,
    RaftConfig,
    RaftConfigChange,
    RaftReplica,
    RaftRole,
    RaftSlot,
    RequestVote,
    RequestVoteReply,
)
from repro.omni.entry import Command
from repro.sim.cluster import SimCluster
from repro.sim.events import EventQueue
from repro.sim.network import NetworkParams, SimNetwork

T = 100.0


def cmd(i: int) -> Command:
    return Command(data=b"x", client_id=1, seq=i)


def build_raft_cluster(n=3, initial_leader=None, prevote=False,
                       check_quorum=False, seed=3, extra_pids=()):
    voters = tuple(range(1, n + 1))
    queue = EventQueue()
    net = SimNetwork(queue, NetworkParams(one_way_ms=0.1))
    replicas = {}
    for pid in voters + tuple(extra_pids):
        in_config = pid in voters
        replicas[pid] = RaftReplica(RaftConfig(
            pid=pid,
            voters=voters if in_config else (),
            election_timeout_ms=T,
            prevote=prevote,
            check_quorum=check_quorum,
            seed=seed,
            initial_leader=initial_leader if in_config else None,
        ))
    sim = SimCluster(replicas, net, queue, tick_ms=5.0)
    sim.start()
    return sim, replicas


def wait_leader(sim, max_ms=10_000.0):
    elapsed = 0.0
    while elapsed < max_ms:
        sim.run_for(50.0)
        elapsed += 50.0
        leaders = sim.leaders()
        if len(leaders) == 1:
            return leaders[0]
    raise AssertionError("no raft leader elected")


class TestConfig:
    def test_pid_must_be_voter_or_joiner(self):
        with pytest.raises(ConfigError):
            RaftConfig(pid=9, voters=(1, 2, 3))
        RaftConfig(pid=9, voters=())  # joiner: fine

    def test_default_heartbeat_is_fifth(self):
        assert RaftConfig(pid=1, voters=(1,),
                          election_timeout_ms=500).heartbeat_interval == 100.0

    def test_rejects_bad_timeout(self):
        with pytest.raises(ConfigError):
            RaftConfig(pid=1, voters=(1,), election_timeout_ms=0)


class TestElection:
    def test_elects_a_leader(self):
        sim, reps = build_raft_cluster(3)
        leader = wait_leader(sim)
        assert reps[leader].role is RaftRole.LEADER

    def test_seeded_leader(self):
        sim, reps = build_raft_cluster(3, initial_leader=2)
        sim.run_for(50)
        assert sim.leaders() == [2]

    def test_dead_leader_replaced(self):
        sim, reps = build_raft_cluster(3, initial_leader=2)
        sim.run_for(200)
        sim.crash(2)
        leader = wait_leader(sim)
        assert leader != 2

    def test_votes_persist_within_term(self):
        replica = RaftReplica(RaftConfig(pid=1, voters=(1, 2, 3),
                                         election_timeout_ms=T))
        replica.start(0.0)
        replica.on_message(2, RequestVote(5, 2, 0, 0), 1.0)
        ((dst, reply),) = replica.take_outbox()
        assert reply.granted
        replica.on_message(3, RequestVote(5, 3, 0, 0), 2.0)
        ((_d, reply2),) = replica.take_outbox()
        assert not reply2.granted  # already voted for 2 in term 5

    def test_stale_term_vote_rejected(self):
        replica = RaftReplica(RaftConfig(pid=1, voters=(1, 2, 3),
                                         election_timeout_ms=T))
        replica.start(0.0)
        replica.on_message(2, RequestVote(3, 2, 0, 0), 1.0)
        replica.take_outbox()
        replica.on_message(3, RequestVote(1, 3, 0, 0), 2.0)
        ((_d, reply),) = replica.take_outbox()
        assert not reply.granted

    def test_log_up_to_date_rule(self):
        """The 'max log' requirement that deadlocks Raft in the
        constrained-election scenario."""
        replica = RaftReplica(RaftConfig(pid=1, voters=(1, 2, 3),
                                         election_timeout_ms=T))
        replica.preload([cmd(0), cmd(1)], term=1)
        replica.start(0.0)
        # Candidate with shorter log, same last term: rejected.
        replica.on_message(2, RequestVote(5, 2, 1, 1), 1.0)
        ((_d, r1),) = replica.take_outbox()
        assert not r1.granted
        # Candidate with longer log: granted.
        replica.on_message(3, RequestVote(5, 3, 5, 1), 2.0)
        ((_d, r2),) = replica.take_outbox()
        assert r2.granted

    def test_non_member_candidate_ignored(self):
        replica = RaftReplica(RaftConfig(pid=1, voters=(1, 2, 3),
                                         election_timeout_ms=T))
        replica.start(0.0)
        replica.on_message(9, RequestVote(9, 9, 99, 9), 1.0)
        ((_d, reply),) = replica.take_outbox()
        assert not reply.granted
        assert replica.term == 0  # term NOT adopted from a non-member

    def test_randomized_timeouts_differ_across_seeds(self):
        a = RaftReplica(RaftConfig(pid=1, voters=(1, 2), seed=1,
                                   election_timeout_ms=T))
        b = RaftReplica(RaftConfig(pid=1, voters=(1, 2), seed=2,
                                   election_timeout_ms=T))
        a.start(0.0)
        b.start(0.0)
        assert a._election_deadline != b._election_deadline


class TestReplication:
    def test_commands_commit_everywhere(self):
        sim, reps = build_raft_cluster(3, initial_leader=1)
        sim.run_for(100)
        for i in range(10):
            sim.propose(1, cmd(i))
        sim.run_for(200)
        assert all(r.commit_idx == 10 for r in reps.values())

    def test_decided_stream_in_order(self):
        sim, reps = build_raft_cluster(3, initial_leader=1)
        sim.run_for(100)
        seen = []
        sim.on_decided(lambda pid, idx, e, now: seen.append((pid, idx)))
        for i in range(5):
            sim.propose(1, cmd(i))
        sim.run_for(200)
        for pid in (1, 2, 3):
            indices = [i for p, i in seen if p == pid]
            assert indices == sorted(indices)

    def test_non_leader_raises_with_hint(self):
        sim, reps = build_raft_cluster(3, initial_leader=1)
        sim.run_for(100)
        with pytest.raises(NotLeaderError) as err:
            sim.propose(2, cmd(0))
        assert err.value.leader == 1

    def test_conflicting_suffix_truncated(self):
        replica = RaftReplica(RaftConfig(pid=2, voters=(1, 2, 3),
                                         election_timeout_ms=T))
        replica.start(0.0)
        # Old entries from term 1.
        replica.on_message(1, AppendEntries(
            term=1, leader=1, prev_idx=0, prev_term=0,
            entries=(RaftSlot(1, cmd(0)), RaftSlot(1, cmd(1))),
            leader_commit=0), 1.0)
        replica.take_outbox()
        # New leader at term 2 overwrites index 1.
        replica.on_message(3, AppendEntries(
            term=2, leader=3, prev_idx=1, prev_term=1,
            entries=(RaftSlot(2, cmd(9)),), leader_commit=0), 2.0)
        assert replica.log_len == 2
        assert replica._log.term_at(2) == 2

    def test_gap_rejected_with_hint(self):
        replica = RaftReplica(RaftConfig(pid=2, voters=(1, 2, 3),
                                         election_timeout_ms=T))
        replica.start(0.0)
        replica.on_message(1, AppendEntries(
            term=1, leader=1, prev_idx=5, prev_term=1,
            entries=(RaftSlot(1, cmd(9)),), leader_commit=0), 1.0)
        ((_d, reply),) = replica.take_outbox()
        assert not reply.success
        assert reply.match_idx == 0  # hint: my log is empty

    def test_joiner_catches_up_from_scratch(self):
        sim, reps = build_raft_cluster(3, initial_leader=1, extra_pids=(4,))
        sim.run_for(100)
        for i in range(50):
            sim.propose(1, cmd(i))
        sim.run_for(100)
        sim.reconfigure(1, (1, 2, 3, 4))
        sim.run_for(2000)
        assert reps[4].commit_idx == 51  # 50 commands + config entry
        assert reps[4].members == (1, 2, 3, 4)

    def test_commit_requires_current_term_entry(self):
        """A leader must not count replicas for old-term entries (Raft §5.4.2)."""
        sim, reps = build_raft_cluster(3, initial_leader=1)
        sim.run_for(100)
        sim.set_link(1, 2, False)
        sim.set_link(1, 3, False)
        try:
            sim.propose(1, cmd(0))
        except NotLeaderError:
            pytest.skip("leader already stepped down")
        sim.run_for(50)
        assert reps[1].commit_idx == 0


class TestReconfiguration:
    def test_removed_leader_steps_down(self):
        sim, reps = build_raft_cluster(3, initial_leader=1, extra_pids=(4,))
        sim.run_for(100)
        sim.reconfigure(1, (2, 3, 4))
        sim.run_for(3000)
        assert not reps[1].is_leader

    def test_double_reconfig_rejected_while_pending(self):
        sim, reps = build_raft_cluster(3, initial_leader=1, extra_pids=(4, 5))
        sim.run_for(100)
        sim.set_link(1, 2, False)
        sim.set_link(1, 3, False)  # prevent the first change committing
        sim.reconfigure(1, (1, 2, 3, 4))
        with pytest.raises(ConfigError):
            sim.reconfigure(1, (1, 2, 3, 5))

    def test_config_change_entry_visible(self):
        sim, reps = build_raft_cluster(3, initial_leader=1, extra_pids=(4,))
        sim.run_for(100)
        seen = []
        sim.on_decided(lambda pid, idx, e, now: seen.append(e))
        sim.reconfigure(1, (1, 2, 3, 4))
        sim.run_for(1000)
        assert any(isinstance(e, RaftConfigChange) for e in seen)


class TestPreVoteCheckQuorum:
    def test_prevote_does_not_bump_terms(self):
        sim, reps = build_raft_cluster(3, initial_leader=1, prevote=True,
                                       check_quorum=True)
        sim.run_for(200)
        term_before = reps[1].term
        # Isolate follower 3: its prevotes must fail without disturbing terms.
        sim.set_link(3, 1, False)
        sim.set_link(3, 2, False)
        sim.run_for(1500)
        assert reps[1].term == term_before
        assert reps[1].is_leader

    def test_plain_raft_isolated_follower_disrupts(self):
        """Without PreVote an isolated-then-healed follower's term churn
        dethrones a healthy leader (the classic disruption)."""
        sim, reps = build_raft_cluster(3, initial_leader=1)
        sim.run_for(200)
        sim.set_link(3, 1, False)
        sim.set_link(3, 2, False)
        sim.run_for(1500)
        assert reps[3].term > reps[1].term
        sim.set_link(3, 1, True)
        sim.set_link(3, 2, True)
        sim.run_for(1000)
        assert reps[1].term > 1  # the healthy group was forced to re-elect

    def test_check_quorum_leader_steps_down(self):
        sim, reps = build_raft_cluster(3, initial_leader=1,
                                       check_quorum=True)
        sim.run_for(200)
        sim.set_link(1, 2, False)
        sim.set_link(1, 3, False)
        sim.run_for(1000)
        assert not reps[1].is_leader
        assert reps[1].stats.stepdowns_check_quorum >= 1

    def test_prevote_grants_require_election_timeout(self):
        replica = RaftReplica(RaftConfig(pid=1, voters=(1, 2, 3),
                                         election_timeout_ms=T, prevote=True))
        replica.start(0.0)
        # Simulate fresh leader contact.
        replica.on_message(2, AppendEntries(
            term=1, leader=2, prev_idx=0, prev_term=0, entries=(),
            leader_commit=0), 10.0)
        replica.take_outbox()
        replica.on_message(3, RequestVote(2, 3, 0, 0, prevote=True), 20.0)
        ((_d, reply),) = replica.take_outbox()
        assert not reply.granted  # leader stickiness


class TestCrashRecovery:
    def test_log_survives_crash(self):
        sim, reps = build_raft_cluster(3, initial_leader=1)
        sim.run_for(100)
        for i in range(5):
            sim.propose(1, cmd(i))
        sim.run_for(100)
        sim.crash(2)
        sim.recover(2)
        sim.run_for(500)
        assert reps[2].log_len == 5
        assert reps[2].commit_idx == 5  # re-learnt from the leader

    def test_preload_after_start_rejected(self):
        replica = RaftReplica(RaftConfig(pid=1, voters=(1,),
                                         election_timeout_ms=T))
        replica.start(0.0)
        with pytest.raises(ConfigError):
            replica.preload([cmd(0)])
