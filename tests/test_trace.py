"""Tests for the message-tracing debug tool."""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.omni.entry import Command
from repro.sim.trace import MessageTrace

from tests.conftest import build_omni_cluster, run_until_leader


def traced_cluster():
    sim, servers = build_omni_cluster(3)
    trace = MessageTrace.attach(sim.network, capacity=50_000)
    leader = run_until_leader(sim)
    return sim, servers, trace, leader


class TestRecording:
    def test_records_protocol_traffic(self):
        sim, _servers, trace, leader = traced_cluster()
        assert len(trace) > 0
        kinds = trace.counts_by_type()
        assert kinds["HeartbeatRequest"] > 0
        assert kinds["Prepare"] >= 2

    def test_accept_traffic_visible(self):
        sim, _servers, trace, leader = traced_cluster()
        sim.run_for(100)  # let the leader finish its Prepare phase
        sim.propose(leader, Command(b"x", client_id=1, seq=0))
        sim.run_for(50)
        assert trace.counts_by_type()["AcceptDecide"] >= 2

    def test_ring_buffer_bounded(self):
        sim, _servers = build_omni_cluster(3)
        trace = MessageTrace.attach(sim.network, capacity=10)
        sim.run_for(2_000)
        assert len(trace) == 10

    def test_pause_resume(self):
        sim, _servers, trace, leader = traced_cluster()
        trace.pause()
        before = len(trace)
        sim.run_for(200)
        assert len(trace) == before
        trace.resume()
        sim.run_for(200)
        assert len(trace) > before


class TestFiltering:
    def test_filter_by_type(self):
        sim, _servers, trace, leader = traced_cluster()
        only = trace.events(types=("Prepare",))
        assert only
        assert all(e.kind == "Prepare" for e in only)

    def test_filter_by_src_dst(self):
        sim, _servers, trace, leader = traced_cluster()
        sent = trace.events(src=leader)
        assert sent and all(e.src == leader for e in sent)
        received = trace.events(dst=leader)
        assert received and all(e.dst == leader for e in received)

    def test_filter_involving(self):
        sim, _servers, trace, leader = traced_cluster()
        both = trace.events(involving=leader)
        assert all(leader in (e.src, e.dst) for e in both)

    def test_filter_time_window(self):
        sim, _servers, trace, leader = traced_cluster()
        now = sim.now
        sim.run_for(500)
        windowed = trace.events(between=(now, now + 500))
        assert windowed
        assert all(now <= e.at_ms < now + 500 for e in windowed)


class TestRendering:
    def test_render_produces_lines(self):
        sim, _servers, trace, leader = traced_cluster()
        text = trace.render(limit=5)
        assert len(text.splitlines()) == 5
        assert "->" in text

    def test_render_empty_filter(self):
        sim, _servers, trace, leader = traced_cluster()
        assert trace.render(types=("Nonexistent",)) == "(no matching events)"

    def test_detail_includes_fields(self):
        sim, _servers, trace, leader = traced_cluster()
        sim.run_for(100)  # let the leader finish its Prepare phase
        sim.propose(leader, Command(b"x", client_id=1, seq=0))
        sim.run_for(50)
        accepts = trace.events(types=("AcceptDecide",))
        assert "|entries|=1" in accepts[0].detail


class TestDrops:
    def test_link_down_drops_recorded_with_reason(self):
        sim, _servers, trace, leader = traced_cluster()
        victim = [p for p in (1, 2, 3) if p != leader][0]
        sim.network.set_link(leader, victim, False)
        sim.run_for(300)
        drops = trace.events(types=("drop:link_down",))
        assert drops
        assert all(e.kind == "drop:link_down" for e in drops)
        # The payload description survives into the drop event.
        assert any("Heartbeat" in e.detail or "Accept" in e.detail
                   for e in drops)

    def test_drops_render_in_timeline(self):
        sim, _servers, trace, leader = traced_cluster()
        victim = [p for p in (1, 2, 3) if p != leader][0]
        sim.network.set_link(leader, victim, False)
        sim.run_for(300)
        assert "drop:link_down" in trace.render(types=("drop:link_down",))

    def test_detach_restores_drop_callback(self):
        sim, _servers = build_omni_cluster(3)
        assert sim.network.drop_callback is None
        trace = MessageTrace.attach(sim.network)
        assert sim.network.drop_callback is not None
        trace.detach()
        assert sim.network.drop_callback is None

    def test_stacked_traces_both_see_drops(self):
        sim, _servers = build_omni_cluster(3)
        first = MessageTrace.attach(sim.network)
        second = MessageTrace.attach(sim.network)
        leader = run_until_leader(sim)
        victim = [p for p in (1, 2, 3) if p != leader][0]
        sim.network.set_link(leader, victim, False)
        sim.run_for(300)
        assert first.events(types=("drop:link_down",))
        assert second.events(types=("drop:link_down",))

    def test_paused_trace_skips_drops(self):
        sim, _servers, trace, leader = traced_cluster()
        trace.pause()
        victim = [p for p in (1, 2, 3) if p != leader][0]
        sim.network.set_link(leader, victim, False)
        sim.run_for(300)
        assert not trace.events(types=("drop:link_down",))


class TestTraceIds:
    def traced_tracing_cluster(self):
        sim, servers = build_omni_cluster(3)
        reg = MetricsRegistry()
        reg.enable_tracing()
        for server in servers.values():
            server.set_observability(reg)
        trace = MessageTrace.attach(sim.network, capacity=50_000)
        leader = run_until_leader(sim)
        return sim, trace, leader

    def test_replication_messages_carry_trace_id(self):
        sim, trace, leader = self.traced_tracing_cluster()
        sim.run_for(100)
        sim.propose(leader, Command(b"x", client_id=1, seq=0))
        sim.run_for(50)
        accepts = trace.events(types=("AcceptDecide",))
        assert accepts
        assert all(e.trace_id == "c1-0" for e in accepts)
        # The causal chain continues into the Accepted replies.
        replies = trace.events(types=("Accepted",))
        assert any(e.trace_id == "c1-0" for e in replies)

    def test_trace_id_shown_in_render(self):
        sim, trace, leader = self.traced_tracing_cluster()
        sim.run_for(100)
        sim.propose(leader, Command(b"x", client_id=1, seq=0))
        sim.run_for(50)
        assert "~c1-0" in trace.render(types=("AcceptDecide",))

    def test_no_trace_ids_when_tracing_disabled(self):
        sim, _servers, trace, leader = traced_cluster()
        sim.run_for(100)
        sim.propose(leader, Command(b"x", client_id=1, seq=0))
        sim.run_for(50)
        assert all(e.trace_id == "" for e in trace.events())


class TestAttachDetach:
    def test_attach_uses_public_clock(self):
        sim, _servers = build_omni_cluster(3)
        trace = MessageTrace.attach(sim.network)
        run_until_leader(sim)
        assert trace.events()[0].at_ms == pytest.approx(
            trace.events()[0].at_ms
        )
        # Timestamps come from the network's public clock and are within
        # the simulated time span.
        assert all(0 <= e.at_ms <= sim.now for e in trace.events())

    def test_detach_restores_send(self):
        sim, _servers = build_omni_cluster(3)
        original = sim.network.send
        trace = MessageTrace.attach(sim.network)
        assert sim.network.send != original
        assert trace.attached
        trace.detach()
        # Bound methods compare equal when they wrap the same function on
        # the same instance (identity differs per attribute access).
        assert sim.network.send == original
        assert not trace.attached

    def test_detach_stops_recording(self):
        sim, _servers = build_omni_cluster(3)
        trace = MessageTrace.attach(sim.network)
        run_until_leader(sim)
        recorded = len(trace)
        assert recorded > 0
        trace.detach()
        sim.run_for(500)
        assert len(trace) == recorded

    def test_detach_idempotent(self):
        sim, _servers = build_omni_cluster(3)
        trace = MessageTrace.attach(sim.network)
        trace.detach()
        trace.detach()  # no-op, no error

    def test_detach_never_attached_is_noop(self):
        trace = MessageTrace()
        trace.detach()
        assert not trace.attached

    def test_detach_lifo_enforced(self):
        sim, _servers = build_omni_cluster(3)
        first = MessageTrace.attach(sim.network)
        second = MessageTrace.attach(sim.network)
        with pytest.raises(RuntimeError):
            first.detach()
        second.detach()
        first.detach()
        assert not first.attached and not second.attached

    def test_stacked_traces_both_record(self):
        sim, _servers = build_omni_cluster(3)
        first = MessageTrace.attach(sim.network)
        second = MessageTrace.attach(sim.network)
        run_until_leader(sim)
        assert len(first) > 0
        assert len(second) > 0
