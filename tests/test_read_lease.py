"""Leader read leases: linearizable local reads without log writes."""

import pytest

from repro.errors import NotLeaderError
from repro.kv.store import KVCommand, ReplicatedKVStore
from repro.omni.entry import Command
from repro.sim import partitions

from tests.conftest import build_omni_cluster, run_until_leader


def cmd(i: int) -> Command:
    return Command(data=b"x", client_id=1, seq=i)


class TestLeaseBasics:
    def test_steady_state_leader_holds_lease(self):
        sim, servers = build_omni_cluster(3, hb_period_ms=50.0)
        leader = run_until_leader(sim)
        sim.run_for(200)
        assert servers[leader].holds_read_lease(sim.now)

    def test_followers_never_hold_lease(self):
        sim, servers = build_omni_cluster(3, hb_period_ms=50.0)
        leader = run_until_leader(sim)
        sim.run_for(200)
        for pid, server in servers.items():
            if pid != leader:
                assert not server.holds_read_lease(sim.now)

    def test_lease_expires_without_ticks(self):
        sim, servers = build_omni_cluster(3, hb_period_ms=50.0)
        leader = run_until_leader(sim)
        sim.run_for(200)
        # Two heartbeat periods into the future with no new quorum round.
        assert not servers[leader].holds_read_lease(sim.now + 100.0)

    def test_quorum_loss_drops_lease_within_a_round(self):
        """A leader that lost its quorum must stop serving local reads —
        the scenario where serving them would be a stale read."""
        sim, servers = build_omni_cluster(5, hb_period_ms=50.0,
                                          initial_leader=3)
        sim.run_for(300)
        assert servers[3].holds_read_lease(sim.now)
        partitions.quorum_loss(sim, pivot=1)
        sim.run_for(150)  # a few rounds with no majority replies at 3
        assert not servers[3].holds_read_lease(sim.now)

    def test_safety_factor_shrinks_window(self):
        sim, servers = build_omni_cluster(3, hb_period_ms=50.0)
        leader = run_until_leader(sim)
        sim.run_for(200)
        assert servers[leader].holds_read_lease(sim.now, safety=0.8)
        assert not servers[leader].holds_read_lease(sim.now + 45.0,
                                                    safety=0.5)


class TestKVLeasedReads:
    def wire(self, sim, servers):
        stores = {p: ReplicatedKVStore(servers[p], client_id=p)
                  for p in servers}
        sim.on_decided(lambda pid, idx, e, now: stores[pid].ingest(idx, e))
        return stores

    def test_leased_read_returns_committed_value(self):
        sim, servers = build_omni_cluster(3, hb_period_ms=50.0)
        leader = run_until_leader(sim)
        stores = self.wire(sim, servers)
        stores[leader].submit(KVCommand("put", "k", "v1"), sim.now)
        sim.run_for(200)
        assert stores[leader].read_leased("k", sim.now) == "v1"

    def test_leased_read_refused_at_follower(self):
        sim, servers = build_omni_cluster(3, hb_period_ms=50.0)
        leader = run_until_leader(sim)
        stores = self.wire(sim, servers)
        follower = next(p for p in servers if p != leader)
        sim.run_for(200)
        with pytest.raises(NotLeaderError):
            stores[follower].read_leased("k", sim.now)

    def test_deposed_leader_refuses_reads(self):
        """The money test: a leader cut off from its quorum refuses local
        reads even while a new leader elsewhere accepts new writes —
        preventing the classic stale-read anomaly."""
        sim, servers = build_omni_cluster(5, hb_period_ms=50.0,
                                          initial_leader=3)
        stores = self.wire(sim, servers)
        sim.run_for(300)
        stores[3].submit(KVCommand("put", "color", "blue"), sim.now)
        sim.run_for(100)
        partitions.quorum_loss(sim, pivot=1)
        sim.run_for(600)  # pivot takes over leadership
        assert 1 in sim.leaders()
        # The new leader commits a write the old leader cannot see.
        stores[1].submit(KVCommand("put", "color", "green"), sim.now)
        sim.run_for(100)
        assert stores[1].read_leased("color", sim.now) == "green"
        with pytest.raises(NotLeaderError):
            stores[3].read_leased("color", sim.now)
