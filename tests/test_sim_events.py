"""Unit tests for the event queue and virtual clock."""

import pytest

from repro.sim.events import EventQueue, SimulationLimitError


class TestEventQueue:
    def test_starts_at_zero(self):
        assert EventQueue().now == 0.0

    def test_runs_in_time_order(self):
        q = EventQueue()
        order = []
        q.schedule(5.0, lambda: order.append("b"))
        q.schedule(1.0, lambda: order.append("a"))
        q.schedule(9.0, lambda: order.append("c"))
        q.run_until(10.0)
        assert order == ["a", "b", "c"]

    def test_fifo_within_same_timestamp(self):
        q = EventQueue()
        order = []
        for i in range(5):
            q.schedule(1.0, lambda i=i: order.append(i))
        q.run_until(1.0)
        assert order == [0, 1, 2, 3, 4]

    def test_run_until_stops_at_boundary(self):
        q = EventQueue()
        fired = []
        q.schedule(5.0, lambda: fired.append(5))
        q.schedule(10.1, lambda: fired.append(10))
        q.run_until(10.0)
        assert fired == [5]
        assert q.now == 10.0

    def test_clock_lands_exactly_on_until(self):
        q = EventQueue()
        q.run_until(42.0)
        assert q.now == 42.0

    def test_run_for_is_relative(self):
        q = EventQueue()
        q.run_until(10.0)
        q.run_for(5.0)
        assert q.now == 15.0

    def test_schedule_in(self):
        q = EventQueue()
        fired = []
        q.run_until(10.0)
        q.schedule_in(5.0, lambda: fired.append(q.now))
        q.run_for(5.0)
        assert fired == [15.0]

    def test_past_events_clamped_to_now(self):
        q = EventQueue()
        q.run_until(10.0)
        fired = []
        q.schedule(1.0, lambda: fired.append(q.now))
        q.run_for(0.0)
        assert fired == [10.0]

    def test_events_scheduled_during_run_execute(self):
        q = EventQueue()
        fired = []

        def cascade():
            fired.append("first")
            q.schedule_in(1.0, lambda: fired.append("second"))

        q.schedule(1.0, cascade)
        q.run_until(5.0)
        assert fired == ["first", "second"]

    def test_processed_counter(self):
        q = EventQueue()
        for i in range(3):
            q.schedule(float(i), lambda: None)
        q.run_until(10.0)
        assert q.processed == 3

    def test_event_budget_enforced(self):
        q = EventQueue(max_events=10)

        def forever():
            q.schedule_in(1.0, forever)

        q.schedule(0.0, forever)
        with pytest.raises(SimulationLimitError):
            q.run_until(1e9)

    def test_len_reports_pending(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        assert len(q) == 2
