"""Health observatory: connectivity matrix vs ground truth, gray failures.

The tentpole claims under test:

- the believed-connectivity matrix assembled from heartbeat views matches
  the network's actual link state once heartbeat rounds quiesce, under
  each paper partition scenario,
- a 100x-slowed leader (per-pid tick scaling, the fail-slow scenario of
  ROADMAP item 5) is flagged ``PeerDegraded`` by the gray-failure
  detectors while every crash/partition signal stays green — heartbeat
  liveness lies, beacon intervals do not.
"""

import pytest

from repro.obs.events import (
    HeartbeatViewReported,
    PeerDegraded,
    PeerRecovered,
    SessionDropped,
)
from repro.obs.exporters import MemorySink
from repro.obs.health import (
    ConnectivityMatrix,
    GrayFailureDetector,
    HealthMonitor,
    ground_truth_from_network,
    matrix_disagreements,
)
from repro.obs.registry import MetricsRegistry
from repro.sim import partitions
from repro.sim.harness import ExperimentConfig, build_experiment

from tests.conftest import build_omni_cluster, run_until_leader


def _view(pid, peers, **kw):
    defaults = dict(pid=pid, round=1, ballot=1, leader=1,
                    quorum_connected=True, connectivity=len(peers) + 1,
                    peers_heard=tuple(peers), phase="follower")
    defaults.update(kw)
    return HeartbeatViewReported(**defaults)


class TestConnectivityMatrix:
    def test_beliefs_follow_latest_view(self):
        m = ConnectivityMatrix()
        m.observe(_view(1, (2, 3)), at_ms=100.0)
        assert m.believes_up(1, 2) is True
        assert m.believes_up(1, 3) is True
        m.observe(_view(1, (2,), round=2), at_ms=150.0)
        assert m.believes_up(1, 3) is False
        assert m.belief(1, 3).round == 2

    def test_unknown_reporter_has_no_claim(self):
        m = ConnectivityMatrix()
        m.observe(_view(1, (2,)), at_ms=100.0)
        assert m.believes_up(2, 1) is None
        assert m.believes_up(1, 1) is True  # self link is trivially up

    def test_pids_unions_reporters_and_peers(self):
        m = ConnectivityMatrix()
        m.observe(_view(1, (2, 5)), at_ms=0.0)
        assert m.pids() == (1, 2, 5)

    def test_freshness_and_staleness(self):
        m = ConnectivityMatrix(stale_after_ms=200.0)
        m.observe(_view(1, (2,)), at_ms=100.0)
        assert m.freshness_ms(1, now_ms=150.0) == 50.0
        assert not m.is_stale(1, now_ms=250.0)
        assert m.is_stale(1, now_ms=400.0)
        assert m.is_stale(2, now_ms=100.0)  # never reported

    def test_disagreements_against_truth(self):
        m = ConnectivityMatrix()
        m.observe(_view(1, (2,)), at_ms=0.0)
        m.observe(_view(2, (1,)), at_ms=0.0)
        truth = {(1, 2): False, (2, 1): False}  # net actually cut
        got = matrix_disagreements(m, truth)
        assert got == [(1, 2, True, False), (2, 1, True, False)]

    def test_stale_reporters_skipped_in_disagreements(self):
        m = ConnectivityMatrix(stale_after_ms=100.0)
        m.observe(_view(1, (2,)), at_ms=0.0)
        truth = {(1, 2): False}
        assert matrix_disagreements(m, truth, now_ms=50.0)
        assert matrix_disagreements(m, truth, now_ms=500.0) == []


class TestGrayFailureDetectorUnit:
    def test_stretched_beacons_flag_degraded(self):
        reg = MetricsRegistry()
        sink = MemorySink()
        reg.add_sink(sink)
        det = GrayFailureDetector(pid=1, expected_interval_ms=50.0)
        det.bind(reg)
        now = 0.0
        for _ in range(5):  # healthy cadence
            det.observe_beacon(2, now)
            now += 50.0
        assert det.degraded_peers() == ()
        for _ in range(6):  # peer's clock runs 10x slow
            det.observe_beacon(2, now)
            now += 500.0
        assert det.degraded_peers() == (2,)
        events = sink.by_kind("PeerDegraded")
        assert len(events) == 1
        assert events[0].event.reason == "heartbeat_interval"
        assert events[0].event.score >= det.degraded_factor
        assert reg.counter("repro_peer_degraded_total",
                           pid=1, peer=2).value == 1

    def test_recovery_has_hysteresis(self):
        reg = MetricsRegistry()
        sink = MemorySink()
        reg.add_sink(sink)
        det = GrayFailureDetector(pid=1, expected_interval_ms=50.0)
        det.bind(reg)
        now = 0.0
        det.observe_beacon(2, now)
        for _ in range(8):
            now += 500.0
            det.observe_beacon(2, now)
        assert det.degraded_peers() == (2,)
        # Back to a healthy cadence: must fall *under* recover_factor,
        # not merely under degraded_factor, before the flag clears.
        recovered_at = None
        for i in range(40):
            now += 50.0
            det.observe_beacon(2, now)
            if not det.degraded_peers():
                recovered_at = i
                break
        assert recovered_at is not None
        assert len(sink.by_kind("PeerRecovered")) == 1
        # The scores crossed (recover, degraded) strictly before clearing.
        assert det.score_of(2) <= det.recover_factor

    def test_partition_gap_does_not_linger(self):
        """A total beacon gap (a partition) is the fail-stop detectors'
        business: the interval sample is capped, so the flag clears
        within a few healthy beacons of the heal instead of polluting
        the EWMA with one enormous sample."""
        det = GrayFailureDetector(pid=1, expected_interval_ms=50.0)
        now = 0.0
        for _ in range(10):
            det.observe_beacon(2, now)
            now += 50.0
        now += 5_000.0  # the partition window: total silence
        det.observe_beacon(2, now)
        healthy_until_clear = 0
        while det.degraded_peers():
            now += 50.0
            det.observe_beacon(2, now)
            healthy_until_clear += 1
            assert healthy_until_clear < 12, "gap flag lingered"

    def test_rtt_spike_flags_with_rtt_reason(self):
        det = GrayFailureDetector(pid=1, expected_interval_ms=50.0,
                                  min_rtt_floor_ms=1.0)
        for _ in range(5):
            det.observe_rtt(3, 1.0)
        assert det.degraded_peers() == ()
        for _ in range(10):
            det.observe_rtt(3, 100.0)
        assert det.degraded_peers() == (3,)
        assert det.peers[3].reason == "rtt"

    def test_subfloor_noise_never_flags(self):
        det = GrayFailureDetector(pid=1, expected_interval_ms=50.0)
        # Localhost-style jitter: all samples far below the floor.
        for rtt in (0.05, 0.2, 0.4, 0.1, 0.9, 0.3) * 5:
            det.observe_rtt(2, rtt)
        assert det.degraded_peers() == ()

    def test_snapshot_is_json_safe(self):
        import json
        det = GrayFailureDetector(pid=1, expected_interval_ms=50.0)
        det.observe_beacon(2, 0.0)
        det.observe_beacon(2, 50.0)
        det.observe_rtt(2, 0.4)
        json.dumps(det.snapshot())


def _observed_cluster(n=5, hb_period_ms=50.0):
    """A sim cluster with an enabled registry + health monitor attached."""
    sim, servers = build_omni_cluster(n, hb_period_ms=hb_period_ms)
    reg = MetricsRegistry(clock=lambda: sim.queue.now)
    sink = MemorySink()
    monitor = HealthMonitor(stale_after_ms=20 * hb_period_ms)
    reg.add_sink(sink)
    reg.add_sink(monitor)
    for server in servers.values():
        server.set_observability(reg)
    return sim, servers, sink, monitor


class TestMatrixMatchesGroundTruth:
    """Satellite: under each paper partition the assembled matrix must
    match the network's link state exactly once heartbeat rounds quiesce."""

    SETTLE_MS = 2_000.0

    def _assert_matrix_matches(self, sim, monitor):
        truth = ground_truth_from_network(sim.network, list(sim.pids))
        disputes = matrix_disagreements(monitor.matrix, truth, sim.now)
        assert disputes == [], disputes

    @pytest.mark.parametrize("scenario", ["quorum_loss", "constrained",
                                          "chained"])
    def test_partition_scenarios(self, scenario):
        sim, servers, sink, monitor = _observed_cluster(5)
        run_until_leader(sim)
        sim.run_for(self.SETTLE_MS)
        self._assert_matrix_matches(sim, monitor)

        if scenario == "quorum_loss":
            partitions.quorum_loss(sim, pivot=3)
        elif scenario == "constrained":
            leader = sim.leaders()[0]
            pivot = next(p for p in sim.pids if p != leader)
            partitions.constrained_election(sim, pivot=pivot, leader=leader)
        else:
            partitions.chained(sim, order=list(sim.pids))
        # Immediately after the cut the believed matrix still describes
        # the old topology: the disagreement signal must be non-empty.
        truth = ground_truth_from_network(sim.network, list(sim.pids))
        assert matrix_disagreements(monitor.matrix, truth, sim.now)

        sim.run_for(self.SETTLE_MS)
        self._assert_matrix_matches(sim, monitor)

        partitions.heal(sim)
        sim.run_for(self.SETTLE_MS)
        self._assert_matrix_matches(sim, monitor)

    def test_matrix_as_dict_shape(self):
        sim, servers, sink, monitor = _observed_cluster(3)
        run_until_leader(sim)
        sim.run_for(self.SETTLE_MS)
        assert monitor.matrix.as_dict() == {
            1: (2, 3), 2: (1, 3), 3: (1, 2),
        }


class TestGrayFailureInSim:
    """Acceptance: a 100x-slowed leader is flagged PeerDegraded while the
    crash/partition detectors stay silent."""

    def test_slow_leader_flagged_degraded_only(self):
        sim, servers, sink, monitor = _observed_cluster(3)
        leader = run_until_leader(sim)
        sim.run_for(1_000.0)
        slowdown_at = sim.now
        sim.set_tick_scale(leader, 100.0)
        sim.run_for(6_000.0)

        followers = [p for p in sim.pids if p != leader]
        degraded = [r.event for r in sink.by_kind("PeerDegraded")
                    if r.at_ms >= slowdown_at]
        # Every follower noticed the leader's stretched beacons.
        assert {e.pid for e in degraded if e.peer == leader} == set(followers)
        assert all(e.reason == "heartbeat_interval"
                   for e in degraded if e.peer == leader)
        for f in followers:
            assert servers[f].gray_detector.degraded_peers() == (leader,)

        # ... while every fail-stop detector stays green: nobody crashed,
        # no link dropped, no session broke, the matrix still believes the
        # leader fully connected, and the leader kept its ballot.
        assert not sim.is_crashed(leader)
        assert sim.network.down_links() == ()
        assert not [r for r in sink.by_kind("SessionDropped")
                    if r.at_ms >= slowdown_at]
        for f in followers:
            assert monitor.matrix.believes_up(f, leader) is True
        assert sim.leaders() == [leader]
        truth = ground_truth_from_network(sim.network, list(sim.pids))
        assert matrix_disagreements(monitor.matrix, truth, sim.now) == []

    def test_inflated_link_rtt_trips_rtt_lens_only(self):
        """Satellite acceptance: a 50x-inflated link RTT flips the RTT lens
        (``PeerDegraded(reason="rtt")``) on both ends of the link while
        heartbeat liveness stays green — the inflated round trip (20 ms)
        still lands well inside the 50 ms beacon period, so the interval
        lens and every fail-stop detector see a healthy cluster."""
        sim, servers, sink, monitor = _observed_cluster(3)
        leader = run_until_leader(sim)
        a, b = [p for p in sim.pids if p != leader]
        # Establish the healthy RTT baseline (LAN 0.1 ms one-way, floored
        # to the detector's 5 ms noise floor).
        sim.run_for(2_000.0)
        inflated_at = sim.now
        # 50x the healthy round trip: 0.2 ms -> 10 ms one-way = 20 ms RTT,
        # ratio 20/5 = 4 over the floored baseline (threshold 3).
        sim.network.set_latency(a, b, 10.0)
        sim.run_for(6_000.0)

        degraded = [r.event for r in sink.by_kind("PeerDegraded")
                    if r.at_ms >= inflated_at]
        # Both ends of the slow link flag their peer, via the RTT lens.
        assert {(e.pid, e.peer) for e in degraded} == {(a, b), (b, a)}
        assert all(e.reason == "rtt" for e in degraded)
        assert servers[a].gray_detector.degraded_peers() == (b,)
        assert servers[b].gray_detector.degraded_peers() == (a,)
        # The leader's links are untouched: nobody flags it, it flags
        # nobody.
        assert servers[leader].gray_detector.degraded_peers() == ()

        # Heartbeat liveness stays green: beacons keep cadence, so no
        # crash/partition/session signal fires and the believed matrix
        # still matches the fully-connected truth.
        assert not sim.is_crashed(a) and not sim.is_crashed(b)
        assert sim.network.down_links() == ()
        assert not [r for r in sink.by_kind("SessionDropped")
                    if r.at_ms >= inflated_at]
        assert monitor.matrix.believes_up(a, b) is True
        assert monitor.matrix.believes_up(b, a) is True
        assert sim.leaders() == [leader]
        truth = ground_truth_from_network(sim.network, list(sim.pids))
        assert matrix_disagreements(monitor.matrix, truth, sim.now) == []

        # Restoring the link clears the flag through PeerRecovered.
        sim.network.clear_latency(a, b)
        sim.run_for(6_000.0)
        recovered = [r.event for r in sink.by_kind("PeerRecovered")
                     if r.at_ms >= inflated_at]
        assert {(e.pid, e.peer) for e in recovered} >= {(a, b), (b, a)}
        assert monitor.degraded_pairs() == []

    def test_restored_leader_recovers(self):
        sim, servers, sink, monitor = _observed_cluster(3)
        leader = run_until_leader(sim)
        sim.run_for(1_000.0)
        sim.set_tick_scale(leader, 100.0)
        sim.run_for(6_000.0)
        assert monitor.degraded_pairs()
        sim.set_tick_scale(leader, 1.0)
        sim.run_for(3_000.0)
        assert sink.by_kind("PeerRecovered")
        assert monitor.degraded_pairs() == []


class TestStatusSurfaces:
    def test_omni_status_fields(self):
        sim, servers, sink, monitor = _observed_cluster(3)
        leader = run_until_leader(sim)
        sim.run_for(1_000.0)
        status = servers[leader].status()
        assert status["phase"] == "leader"
        assert status["leader"] == leader
        assert status["quorum_connected"] is True
        assert status["connectivity"] == 3
        assert sorted(status["peers_heard"] + [leader]) == list(sim.pids)
        assert status["hb_round"] > 0
        import json
        json.dumps(status)

    def test_raft_status_and_views(self):
        reg = MetricsRegistry()
        sink = MemorySink()
        reg.add_sink(sink)
        exp = build_experiment(ExperimentConfig(
            protocol="raft", num_servers=3, election_timeout_ms=100.0,
            initial_leader=1), obs=reg)
        exp.cluster.run_for(2_000.0)
        views = [r.event for r in sink.by_kind("HeartbeatViewReported")]
        assert views, "raft servers must report health views too"
        leader_views = [v for v in views if v.pid == 1]
        assert leader_views[-1].phase == "leader"
        assert leader_views[-1].ballot >= 1  # the raft term
        assert tuple(leader_views[-1].peers_heard) == (2, 3)
        status = exp.cluster.replica(2).status()
        assert status["protocol"] == "raft"
        assert status["leader"] == 1
        assert status["peers_heard"] == [1]  # followers only hear the leader

    def test_default_replica_status(self):
        exp = build_experiment(ExperimentConfig(
            protocol="multipaxos", num_servers=3,
            election_timeout_ms=100.0, initial_leader=1))
        exp.cluster.run_for(500.0)
        status = exp.cluster.replica(1).status()
        assert status["pid"] == 1
        assert status["phase"] in ("leader", "follower")

    def test_harness_statuses_and_ground_truth(self):
        reg = MetricsRegistry()
        exp = build_experiment(ExperimentConfig(
            protocol="omni", num_servers=3, election_timeout_ms=100.0,
            initial_leader=1), obs=reg)
        monitor = exp.attach_health()
        exp.cluster.run_for(2_000.0)
        statuses = exp.statuses()
        assert set(statuses) == {1, 2, 3}
        assert statuses[1]["phase"] == "leader"
        exp.cluster.crash(2)
        assert exp.statuses()[2]["phase"] == "crashed"
        truth = exp.ground_truth()
        assert truth[(1, 3)] is True
        assert matrix_disagreements(monitor.matrix, truth, exp.cluster.now) \
            == []

    def test_attach_health_requires_enabled_registry(self):
        from repro.errors import ConfigError
        exp = build_experiment(ExperimentConfig(
            protocol="omni", num_servers=3, election_timeout_ms=100.0))
        with pytest.raises(ConfigError):
            exp.attach_health()
