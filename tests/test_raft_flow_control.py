"""Focused tests for Raft's replication flow control.

Large catch-ups (reconfiguration, recovered stragglers) must stream in
bounded windows and survive stale rejections — the machinery that keeps the
Figure-9 experiments stable under finite egress.
"""

import pytest

from repro.baselines.raft import (
    AppendEntries,
    AppendEntriesReply,
    RaftConfig,
    RaftReplica,
)
from repro.omni.entry import Command

from tests.test_raft import build_raft_cluster, cmd, wait_leader

T = 100.0


def make_leader_with_log(entries=100, max_batch=10):
    leader = RaftReplica(RaftConfig(
        pid=1, voters=(1, 2, 3), election_timeout_ms=T,
        max_entries_per_msg=max_batch, initial_leader=1))
    leader.preload([cmd(i) for i in range(entries)])
    leader.start(0.0)
    leader.take_outbox()
    return leader


class TestBatching:
    def test_appends_respect_max_batch(self):
        leader = make_leader_with_log(entries=100, max_batch=10)
        # Follower 2 rejects from scratch: hint 0.
        last_seq = leader._append_seq.get(2, 0)
        leader.on_message(2, AppendEntriesReply(1, False, 0, last_seq), 1.0)
        out = leader.take_outbox()
        batches = [m for d, m in out if d == 2 and isinstance(m, AppendEntries)]
        assert batches
        assert all(len(m.entries) <= 10 for m in batches)

    def test_window_bounds_inflight(self):
        leader = make_leader_with_log(entries=100, max_batch=10)
        last_seq = leader._append_seq.get(2, 0)
        leader.on_message(2, AppendEntriesReply(1, False, 0, last_seq), 1.0)
        out = [m for d, m in leader.take_outbox()
               if d == 2 and isinstance(m, AppendEntries) and m.entries]
        # With a 2-batch window, at most 2 entry-carrying messages at once.
        assert len(out) <= 2

    def test_stream_continues_on_success(self):
        leader = make_leader_with_log(entries=30, max_batch=10)
        last_seq = leader._append_seq.get(2, 0)
        leader.on_message(2, AppendEntriesReply(1, False, 0, last_seq), 1.0)
        leader.take_outbox()
        leader.on_message(2, AppendEntriesReply(1, True, 10, 0), 2.0)
        out = [m for d, m in leader.take_outbox()
               if d == 2 and isinstance(m, AppendEntries)]
        assert out and out[0].prev_idx == 10


class TestStaleRejections:
    def test_stale_rejection_ignored(self):
        """Only the most recent probe's rejection resets next_idx —
        earlier rejections from the same failure burst must not."""
        leader = make_leader_with_log(entries=100, max_batch=10)
        current = leader._append_seq.get(2, 0)
        leader.on_message(2, AppendEntriesReply(1, False, 0, current), 1.0)
        leader.take_outbox()
        progressed = leader._next_idx[2]
        assert progressed > 0
        # A stale rejection (old seq) arrives late: must be ignored.
        leader.on_message(2, AppendEntriesReply(1, False, 0, current - 1), 2.0)
        assert leader._next_idx[2] == progressed

    def test_fresh_rejection_accepted(self):
        leader = make_leader_with_log(entries=100, max_batch=10)
        current = leader._append_seq.get(2, 0)
        leader.on_message(2, AppendEntriesReply(1, False, 0, current), 1.0)
        assert leader._next_idx[2] <= 10 * 2


class TestEndToEndCatchUp:
    def test_straggler_catches_up_in_windows(self):
        sim, reps = build_raft_cluster(3, initial_leader=1)
        sim.run_for(100)
        sim.crash(3)
        for i in range(200):
            sim.propose(1, cmd(i))
        sim.run_for(200)
        sim.recover(3)
        sim.run_for(2_000)
        assert reps[3].commit_idx == 200

    def test_catch_up_under_finite_egress(self):
        from repro.sim.harness import ExperimentConfig, build_experiment

        cfg = ExperimentConfig(protocol="raft", num_servers=3,
                               election_timeout_ms=T, initial_leader=1,
                               egress_bytes_per_ms=500.0, seed=1)
        exp = build_experiment(cfg)
        exp.cluster.run_for(300)
        exp.cluster.crash(3)
        for lo in range(0, 2_000, 100):
            exp.cluster.propose_batch(
                1, [cmd(i) for i in range(lo, lo + 100)])
            exp.cluster.run_for(50)
        exp.cluster.recover(3)
        exp.cluster.run_for(15_000)
        assert exp.cluster.replica(3).commit_idx == 2_000
        # The leader never lost its seat to heartbeat starvation.
        assert exp.cluster.replica(1).is_leader
