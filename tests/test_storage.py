"""Unit tests for the storage backends: logs, variables, durability."""

import os

import pytest

from repro.errors import StorageError
from repro.omni.ballot import BOTTOM, Ballot
from repro.omni.entry import Command
from repro.omni.storage import FileStorage, InMemoryStorage, snapshot_state


@pytest.fixture(params=["memory", "file"])
def storage(request, tmp_path):
    if request.param == "memory":
        yield InMemoryStorage()
    else:
        backend = FileStorage(str(tmp_path / "wal.bin"))
        yield backend
        backend.close()


class TestLogOperations:
    def test_starts_empty(self, storage):
        assert storage.log_len() == 0
        assert storage.get_suffix(0) == ()

    def test_append_entry_returns_length(self, storage):
        assert storage.append_entry("a") == 1
        assert storage.append_entry("b") == 2

    def test_append_entries_batch(self, storage):
        assert storage.append_entries(["a", "b", "c"]) == 3
        assert storage.get_entries(0, 3) == ("a", "b", "c")

    def test_get_entries_clamps_bounds(self, storage):
        storage.append_entries(["a", "b"])
        assert storage.get_entries(-5, 100) == ("a", "b")
        assert storage.get_entries(1, 1) == ()

    def test_get_suffix(self, storage):
        storage.append_entries(["a", "b", "c"])
        assert storage.get_suffix(1) == ("b", "c")
        assert storage.get_suffix(3) == ()

    def test_get_entry_in_range(self, storage):
        storage.append_entries(["a", "b"])
        assert storage.get_entry(1) == "b"

    def test_get_entry_out_of_range_raises(self, storage):
        with pytest.raises(StorageError):
            storage.get_entry(0)

    def test_truncate_suffix(self, storage):
        storage.append_entries(["a", "b", "c"])
        storage.truncate_suffix(1)
        assert storage.get_entries(0, 10) == ("a",)

    def test_truncate_noop_beyond_end(self, storage):
        storage.append_entries(["a"])
        storage.truncate_suffix(5)
        assert storage.log_len() == 1

    def test_truncate_below_decided_refused(self, storage):
        storage.append_entries(["a", "b", "c"])
        storage.set_decided_idx(2)
        with pytest.raises(StorageError):
            storage.truncate_suffix(1)

    def test_truncate_at_decided_allowed(self, storage):
        storage.append_entries(["a", "b", "c"])
        storage.set_decided_idx(2)
        storage.truncate_suffix(2)
        assert storage.log_len() == 2


class TestVariables:
    def test_defaults(self, storage):
        assert storage.get_promise() == BOTTOM
        assert storage.get_accepted_round() == BOTTOM
        assert storage.get_decided_idx() == 0

    def test_promise_roundtrip(self, storage):
        storage.set_promise(Ballot(3, 1, 2))
        assert storage.get_promise() == Ballot(3, 1, 2)

    def test_accepted_round_roundtrip(self, storage):
        storage.set_accepted_round(Ballot(2, 0, 1))
        assert storage.get_accepted_round() == Ballot(2, 0, 1)

    def test_decided_idx_monotone(self, storage):
        storage.append_entries(["a", "b"])
        storage.set_decided_idx(2)
        with pytest.raises(StorageError):
            storage.set_decided_idx(1)

    def test_snapshot_state(self, storage):
        storage.append_entries(["a"])
        state = snapshot_state(storage)
        assert state["log_len"] == 1
        assert state["decided_idx"] == 0


class TestFileDurability:
    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "wal.bin")
        first = FileStorage(path)
        first.append_entries([Command(b"x"), Command(b"y")])
        first.set_promise(Ballot(4, 0, 2))
        first.set_accepted_round(Ballot(4, 0, 2))
        first.set_decided_idx(1)
        first.close()
        second = FileStorage(path)
        assert second.log_len() == 2
        assert second.get_promise() == Ballot(4, 0, 2)
        assert second.get_accepted_round() == Ballot(4, 0, 2)
        assert second.get_decided_idx() == 1
        second.close()

    def test_truncation_replays(self, tmp_path):
        path = str(tmp_path / "wal.bin")
        first = FileStorage(path)
        first.append_entries(["a", "b", "c"])
        first.truncate_suffix(1)
        first.append_entry("d")
        first.close()
        second = FileStorage(path)
        assert second.get_entries(0, 10) == ("a", "d")
        second.close()

    def test_torn_final_record_is_discarded(self, tmp_path):
        path = str(tmp_path / "wal.bin")
        first = FileStorage(path)
        first.append_entries(["a", "b"])
        first.close()
        # Simulate a crash mid-write: append garbage half-record.
        with open(path, "ab") as f:
            f.write(b"\x00\x00\x10\x00partial")
        second = FileStorage(path)
        assert second.get_entries(0, 10) == ("a", "b")
        second.close()

    def test_fsync_mode_writes(self, tmp_path):
        path = str(tmp_path / "wal.bin")
        backend = FileStorage(path, sync=True)
        backend.append_entry("a")
        backend.close()
        assert os.path.getsize(path) > 0

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises((StorageError, OSError)):
            FileStorage(str(tmp_path / "nope" / "wal.bin"))
