"""Tests for Sequence Paxos' lossy-transport safeguards.

The paper assumes session-based FIFO perfect links (TCP). Like the
authors' Rust crate, this implementation additionally survives transports
that drop individual messages: AcceptDecide carries a session sequence
number so a follower detects gaps and resynchronizes instead of silently
corrupting its log, and tick-driven retries recover lost Prepare /
AcceptSync exchanges.
"""

import pytest

from repro.omni.ballot import Ballot
from repro.omni.entry import Command
from repro.omni.messages import AcceptDecide, Prepare, PrepareReq
from repro.omni.sequence_paxos import Phase, SequencePaxos, SequencePaxosConfig
from repro.omni.storage import InMemoryStorage

from tests.test_sequence_paxos import Shuttle, cmd, make_sp


def make_follower(accepted_upto=0):
    """A follower promised and synced into round (1,0,1)."""
    follower = make_sp(2)
    follower.on_message(1, Prepare(
        n=Ballot(1, 0, 1), acc_rnd=Ballot(0, 0, 0), log_idx=0, decided_idx=0))
    follower.take_outbox()
    from repro.omni.messages import AcceptSync
    follower.on_message(1, AcceptSync(
        n=Ballot(1, 0, 1), suffix=tuple(cmd(i) for i in range(accepted_upto)),
        sync_idx=0, decided_idx=0))
    follower.take_outbox()
    return follower


class TestSequenceGapDetection:
    def test_in_order_accepts_applied(self):
        follower = make_follower()
        for seq in (1, 2, 3):
            follower.on_message(1, AcceptDecide(
                n=Ballot(1, 0, 1), entries=(cmd(seq),), decided_idx=0,
                seq=seq))
        assert follower.log_len == 3

    def test_gap_triggers_resync_request(self):
        follower = make_follower()
        follower.on_message(1, AcceptDecide(
            n=Ballot(1, 0, 1), entries=(cmd(1),), decided_idx=0, seq=1))
        follower.take_outbox()
        # seq 2 lost; seq 3 arrives.
        follower.on_message(1, AcceptDecide(
            n=Ballot(1, 0, 1), entries=(cmd(3),), decided_idx=0, seq=3))
        out = follower.take_outbox()
        assert any(isinstance(m, PrepareReq) for _d, m in out)
        assert follower.log_len == 1  # the out-of-order batch was NOT applied

    def test_resync_requested_only_once(self):
        follower = make_follower()
        follower.on_message(1, AcceptDecide(
            n=Ballot(1, 0, 1), entries=(cmd(5),), decided_idx=0, seq=5))
        follower.take_outbox()
        follower.on_message(1, AcceptDecide(
            n=Ballot(1, 0, 1), entries=(cmd(6),), decided_idx=0, seq=6))
        out = follower.take_outbox()
        assert not any(isinstance(m, PrepareReq) for _d, m in out)

    def test_duplicate_accept_ignored_silently(self):
        follower = make_follower()
        msg = AcceptDecide(n=Ballot(1, 0, 1), entries=(cmd(1),),
                           decided_idx=0, seq=1)
        follower.on_message(1, msg)
        follower.take_outbox()
        follower.on_message(1, msg)  # duplicate
        out = follower.take_outbox()
        assert follower.log_len == 1
        assert not any(isinstance(m, PrepareReq) for _d, m in out)

    def test_stale_session_straggler_dropped(self):
        """A reordered AcceptDecide from *before* a re-sync must not be
        appended after it — same ballot, matching seq, older session."""
        from repro.omni.messages import AcceptSync

        follower = make_follower()
        follower.on_message(1, AcceptDecide(
            n=Ballot(1, 0, 1), entries=(cmd(1),), decided_idx=0,
            seq=1, session=1))
        # The leader re-syncs (session 2) after a Promise/Prepare race.
        follower.on_message(1, AcceptSync(
            n=Ballot(1, 0, 1), suffix=(cmd(1),), sync_idx=0, decided_idx=0,
            session=2))
        follower.take_outbox()
        # A delayed straggler of session 1 arrives: seq 2 is exactly what a
        # session-blind counter would expect next. It must be dropped.
        follower.on_message(1, AcceptDecide(
            n=Ballot(1, 0, 1), entries=(cmd(99),), decided_idx=0,
            seq=2, session=1))
        out = follower.take_outbox()
        assert follower.log_len == 1
        assert not any(isinstance(m, PrepareReq) for _d, m in out)
        # The current session proceeds normally.
        follower.on_message(1, AcceptDecide(
            n=Ballot(1, 0, 1), entries=(cmd(2),), decided_idx=0,
            seq=1, session=2))
        assert follower.log_len == 2

    def test_duplicate_accept_sync_not_reapplied(self):
        """A duplicated AcceptSync must not roll the log back to its old
        sync point (it would also desynchronize the seq counters)."""
        from repro.omni.messages import AcceptSync

        follower = make_follower()
        sync = AcceptSync(n=Ballot(1, 0, 1), suffix=(), sync_idx=0,
                          decided_idx=0, session=1)
        for seq in (1, 2):
            follower.on_message(1, AcceptDecide(
                n=Ballot(1, 0, 1), entries=(cmd(seq),), decided_idx=0,
                seq=seq, session=1))
        follower.on_message(1, sync)  # duplicate of the session-1 sync
        assert follower.log_len == 2  # not truncated back to sync_idx 0
        follower.on_message(1, AcceptDecide(
            n=Ballot(1, 0, 1), entries=(cmd(3),), decided_idx=0,
            seq=3, session=1))
        assert follower.log_len == 3  # seq counter kept its position

    def test_session_ahead_triggers_resync(self):
        """An AcceptDecide whose session is ahead of the last applied sync
        means the AcceptSync was lost: request a fresh Prepare."""
        follower = make_follower()
        follower.on_message(1, AcceptDecide(
            n=Ballot(1, 0, 1), entries=(cmd(1),), decided_idx=0,
            seq=1, session=2))
        out = follower.take_outbox()
        assert follower.log_len == 0
        assert any(isinstance(m, PrepareReq) for _d, m in out)

    def test_full_resync_after_gap(self):
        """End-to-end: drop one AcceptDecide; the follower resynchronizes
        via PrepareReq -> Prepare -> Promise -> AcceptSync and converges."""
        nodes = {pid: make_sp(pid) for pid in (1, 2, 3)}
        net = Shuttle(nodes)
        net.elect(1)
        nodes[1].propose(cmd(0))
        net.deliver_all()
        # Drop the AcceptDecide to follower 2 for the next proposal.
        nodes[1].propose(cmd(1))
        for dst, msg in nodes[1].take_outbox():
            if not (dst == 2 and isinstance(msg, AcceptDecide)):
                nodes[dst].on_message(1, msg)
        net.deliver_all()
        # Follower 2 is now behind (gap invisible until the next message).
        nodes[1].propose(cmd(2))
        net.deliver_all()  # 2 sees seq gap -> PrepareReq -> resync
        assert nodes[2].log_len == 3
        assert nodes[2].decided_idx >= 2


class TestTickRetries:
    def test_leader_reprepares_unpromised_peer(self):
        nodes = {pid: make_sp(pid) for pid in (1, 2, 3)}
        net = Shuttle(nodes)
        net.cut(1, 3)
        net.elect(1)
        assert nodes[1].phase is Phase.ACCEPT  # majority {1, 2}
        net.down.clear()
        # First tick arms the timer; second fires the retry.
        nodes[1].tick(0.0)
        nodes[1].take_outbox()
        nodes[1].tick(10_000.0)
        out = nodes[1].take_outbox()
        assert any(isinstance(m, Prepare) and d == 3 for d, m in out)

    def test_follower_stuck_in_prepare_rerequests(self):
        follower = make_sp(2)
        follower.on_message(1, Prepare(
            n=Ballot(1, 0, 1), acc_rnd=Ballot(0, 0, 0),
            log_idx=0, decided_idx=0))
        follower.take_outbox()  # the Promise (assume lost)
        follower.tick(0.0)
        follower.tick(10_000.0)
        out = follower.take_outbox()
        assert any(isinstance(m, PrepareReq) and d == 1 for d, m in out)

    def test_recovering_server_rebroadcasts(self):
        replica = make_sp(2)
        replica.fail_recover()
        replica.take_outbox()
        replica.tick(0.0)
        replica.tick(10_000.0)
        out = replica.take_outbox()
        assert sum(isinstance(m, PrepareReq) for _d, m in out) == 2

    def test_no_retry_before_period(self):
        nodes = {pid: make_sp(pid) for pid in (1, 2, 3)}
        net = Shuttle(nodes)
        net.elect(1)
        nodes[1].tick(0.0)
        nodes[1].take_outbox()
        nodes[1].tick(1.0)  # well within the resend period
        assert nodes[1].take_outbox() == []

    def test_synced_cluster_ticks_quietly(self):
        nodes = {pid: make_sp(pid) for pid in (1, 2, 3)}
        net = Shuttle(nodes)
        net.elect(1)
        for node in nodes.values():
            node.tick(0.0)
            node.take_outbox()
            node.tick(10_000.0)
            assert node.take_outbox() == []
