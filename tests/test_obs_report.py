"""Round-trip acceptance: export a run, reproduce the harness's numbers.

A chained partition scenario runs with a :class:`JsonLinesSink` attached;
the ``repro-obs`` report rebuilt from that file must match the harness's
own :class:`ScenarioResult` — downtime, decided counts, throughput — to
float tolerance, because the report feeds the exported timestamps through
the very same :class:`DecidedTracker`.
"""

import pytest

from repro.obs.exporters import JsonLinesSink, read_jsonl
from repro.obs.registry import MetricsRegistry
from repro.obs.report import summarize_run
from repro.sim.scenarios import run_partition_scenario
from repro.tools.obs_report import main as obs_report_main


@pytest.fixture(scope="module")
def exported_run(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("obs") / "chained.jsonl")
    reg = MetricsRegistry()
    sink = JsonLinesSink(path)
    reg.add_sink(sink)
    result = run_partition_scenario("omni", "chained", seed=3, obs=reg)
    sink.close(reg)
    return path, result


class TestExportReproducesHarness:
    def test_partition_window_numbers_match(self, exported_run):
        path, result = exported_run
        events, metrics = read_jsonl(path)
        report = summarize_run(
            events, metrics,
            start_ms=result.partition_at_ms,
            end_ms=result.partition_end_ms,
        )
        assert report.downtime_ms == pytest.approx(result.downtime_ms)
        assert report.decided_total == result.decided_during_partition
        span_s = (result.partition_end_ms - result.partition_at_ms) / 1000.0
        assert report.throughput_ops_s == pytest.approx(
            result.decided_during_partition / span_s)

    def test_windows_partition_the_count(self, exported_run):
        path, result = exported_run
        events, _metrics = read_jsonl(path)
        report = summarize_run(
            events,
            start_ms=result.partition_at_ms,
            end_ms=result.partition_end_ms,
        )
        assert sum(c for _w, c in report.windows) == report.decided_total

    def test_metrics_sections_present(self, exported_run):
        path, _result = exported_run
        events, metrics = read_jsonl(path)
        report = summarize_run(events, metrics)
        # 3-server chained cluster: every server sent bytes and decided.
        assert set(report.io_bytes_by_server) == {"1", "2", "3"}
        assert set(report.decided_by_server) == {"1", "2", "3"}
        assert all(v > 0 for v in report.io_bytes_by_server.values())
        assert report.event_counts["ClientReplyDecided"] > 0
        assert report.event_counts["BallotElected"] >= 1

    def test_render_mentions_key_numbers(self, exported_run):
        path, result = exported_run
        events, metrics = read_jsonl(path)
        report = summarize_run(
            events, metrics,
            start_ms=result.partition_at_ms,
            end_ms=result.partition_end_ms,
        )
        text = report.render()
        assert "throughput" in text
        assert f"{result.downtime_ms:.1f} ms" in text
        assert "decided entries per server:" in text


class TestCli:
    def test_cli_renders_report(self, exported_run, capsys):
        path, result = exported_run
        rc = obs_report_main([
            path,
            "--start-ms", str(result.partition_at_ms),
            "--end-ms", str(result.partition_end_ms),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"down-time (longest): {result.downtime_ms:.1f} ms" in out

    def test_cli_window_override(self, exported_run, capsys):
        path, _result = exported_run
        assert obs_report_main([path, "--window-ms", "2000"]) == 0
        assert "per-2s-window decided:" in capsys.readouterr().out

    def test_cli_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert obs_report_main([str(empty)]) == 1

    def test_cli_missing_file(self, tmp_path, capsys):
        assert obs_report_main([str(tmp_path / "nope.jsonl")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_cli_corrupt_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"t": "mystery"}\n')
        assert obs_report_main([str(bad)]) == 1
        assert "unknown JSON-lines record tag" in capsys.readouterr().err

    def test_cli_inverted_bounds_rejected(self, exported_run, capsys):
        path, _result = exported_run
        assert obs_report_main(
            [path, "--start-ms", "5000", "--end-ms", "1000"]) == 2
        # One-sided: start past the event span inverts against the
        # defaulted end and is caught at summarize time.
        assert obs_report_main([path, "--start-ms", "1e9"]) == 2

    def test_cli_nonpositive_window_rejected(self, exported_run, capsys):
        # A zero window used to loop forever in windowed_counts.
        path, _result = exported_run
        assert obs_report_main([path, "--window-ms", "0"]) == 2
        assert "--window-ms must be positive" in capsys.readouterr().err


class TestSeriesAndDiffCli:
    def test_series_renders_sparkline_lanes(self, exported_run, capsys):
        path, _result = exported_run
        assert obs_report_main(["series", path, "--window-ms", "500"]) == 0
        out = capsys.readouterr().out
        assert "windows x 500 ms" in out
        assert "decided_per_s" in out

    def test_series_family_filter(self, exported_run, capsys):
        path, _result = exported_run
        assert obs_report_main(["series", path, "--window-ms", "500",
                                "--family", "decided_per_s"]) == 0
        out = capsys.readouterr().out
        assert "decided_per_s" in out

    def test_diff_same_export_unchanged_exit_zero(self, exported_run,
                                                  capsys):
        path, _result = exported_run
        assert obs_report_main(["diff", path, path,
                                "--window-ms", "500"]) == 0
        out = capsys.readouterr().out
        assert "verdict: unchanged" in out

    def test_diff_missing_file_exits_nonzero(self, exported_run, tmp_path,
                                             capsys):
        path, _result = exported_run
        assert obs_report_main(
            ["diff", path, str(tmp_path / "nope.jsonl")]) == 1

    def test_diff_nonpositive_window_rejected(self, exported_run, capsys):
        path, _result = exported_run
        assert obs_report_main(
            ["diff", path, path, "--window-ms", "0"]) == 2
