"""Tests for the replicated lock service, including the mutual-exclusion
property under random schedules."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.locks.service import (
    LockCommand,
    LockError,
    LockStateMachine,
    ReplicatedLockService,
    decode_lock_command,
    encode_lock_command,
)
from repro.omni.entry import Command

from tests.conftest import build_omni_cluster, run_until_leader


class TestCommandValidation:
    def test_unknown_op(self):
        with pytest.raises(LockError):
            LockCommand("steal", "l", "h", 0.0, 1.0)

    def test_acquire_needs_lease(self):
        with pytest.raises(LockError):
            LockCommand("acquire", "l", "h", 0.0, 0.0)

    def test_empty_names(self):
        with pytest.raises(LockError):
            LockCommand("acquire", "", "h", 0.0, 1.0)

    def test_codec_roundtrip(self):
        cmd = LockCommand("acquire", "db-leader", "worker-1", 123.0, 5_000.0)
        assert decode_lock_command(encode_lock_command(cmd)) == cmd

    def test_malformed_payload(self):
        with pytest.raises(LockError):
            decode_lock_command(Command(data=b"junk"))


class TestStateMachine:
    def apply(self, machine, cmd, idx=0):
        return machine.apply(encode_lock_command(cmd), idx)

    def test_acquire_free_lock(self):
        m = LockStateMachine()
        result = self.apply(m, LockCommand("acquire", "l", "a", 0.0, 100.0))
        assert result.ok
        assert m.holder_of("l") == "a"

    def test_contender_rejected_while_held(self):
        m = LockStateMachine()
        self.apply(m, LockCommand("acquire", "l", "a", 0.0, 100.0))
        result = self.apply(m, LockCommand("acquire", "l", "b", 10.0, 100.0),
                            idx=1)
        assert not result.ok
        assert result.current_holder == "a"

    def test_renewal_by_holder(self):
        m = LockStateMachine()
        self.apply(m, LockCommand("acquire", "l", "a", 0.0, 100.0))
        result = self.apply(m, LockCommand("acquire", "l", "a", 50.0, 100.0),
                            idx=1)
        assert result.ok
        # Lease extended: still held at logical time 120.
        self.apply(m, LockCommand("acquire", "other", "x", 120.0, 10.0),
                   idx=2)
        assert m.holder_of("l") == "a"

    def test_expired_lease_taken_over(self):
        m = LockStateMachine()
        self.apply(m, LockCommand("acquire", "l", "a", 0.0, 100.0))
        result = self.apply(m, LockCommand("acquire", "l", "b", 150.0, 100.0),
                            idx=1)
        assert result.ok
        assert m.holder_of("l") == "b"

    def test_release_by_holder(self):
        m = LockStateMachine()
        self.apply(m, LockCommand("acquire", "l", "a", 0.0, 100.0))
        result = self.apply(m, LockCommand("release", "l", "a", 10.0), idx=1)
        assert result.ok
        assert m.holder_of("l") is None

    def test_release_by_stranger_fails(self):
        m = LockStateMachine()
        self.apply(m, LockCommand("acquire", "l", "a", 0.0, 100.0))
        result = self.apply(m, LockCommand("release", "l", "b", 10.0), idx=1)
        assert not result.ok
        assert m.holder_of("l") == "a"

    def test_release_expired_lock_fails(self):
        m = LockStateMachine()
        self.apply(m, LockCommand("acquire", "l", "a", 0.0, 50.0))
        result = self.apply(m, LockCommand("release", "l", "a", 100.0), idx=1)
        assert not result.ok  # the lease already lapsed

    def test_clock_never_rewinds(self):
        m = LockStateMachine()
        self.apply(m, LockCommand("acquire", "l", "a", 100.0, 50.0))
        # A command stamped in the past does not resurrect expiries.
        self.apply(m, LockCommand("acquire", "other", "x", 10.0, 10.0), idx=1)
        assert m.logical_now == 100.0

    def test_independent_locks(self):
        m = LockStateMachine()
        self.apply(m, LockCommand("acquire", "l1", "a", 0.0, 100.0))
        self.apply(m, LockCommand("acquire", "l2", "b", 0.0, 100.0), idx=1)
        assert m.holder_of("l1") == "a"
        assert m.holder_of("l2") == "b"


lock_ops = st.lists(
    st.builds(
        LockCommand,
        op=st.sampled_from(["acquire", "release"]),
        lock=st.sampled_from(["la", "lb"]),
        holder=st.sampled_from(["h1", "h2", "h3"]),
        now_ms=st.floats(min_value=0, max_value=1000),
        lease_ms=st.floats(min_value=1, max_value=200),
    ),
    max_size=40,
)


class TestMutualExclusionProperty:
    @given(lock_ops)
    @settings(max_examples=60)
    def test_at_most_one_holder(self, ops):
        """After every applied command, each lock has at most one unexpired
        holder, and replicas applying the same history agree on it."""
        machines = [LockStateMachine() for _ in range(3)]
        for i, cmd in enumerate(ops):
            entry = encode_lock_command(cmd, client_id=1, seq=i)
            for machine in machines:
                machine.apply(entry, i)
            holders = {m.holder_of(cmd.lock) for m in machines}
            assert len(holders) == 1  # replicas agree
        assert machines[0].table() == machines[1].table() == machines[2].table()

    @given(lock_ops)
    @settings(max_examples=30)
    def test_granted_acquire_implies_holder(self, ops):
        machine = LockStateMachine()
        for i, cmd in enumerate(ops):
            result = machine.apply(encode_lock_command(cmd), i)
            if cmd.op == "acquire" and result.ok:
                assert machine.holder_of(cmd.lock) == cmd.holder


class TestReplicatedService:
    def wire(self, sim, servers):
        services = {p: ReplicatedLockService(servers[p], client_id=p)
                    for p in servers}
        sim.on_decided(lambda pid, idx, e, now: services[pid].ingest(idx, e))
        return services

    def test_acquire_through_cluster(self):
        sim, servers = build_omni_cluster(3)
        leader = run_until_leader(sim)
        services = self.wire(sim, servers)
        seq = services[leader].acquire("db", "worker-1", 10_000.0, sim.now)
        sim.run_for(100)
        assert services[leader].result(seq).ok
        assert all(s.holder_of("db") == "worker-1"
                   for s in services.values())

    def test_contention_decided_by_log_order(self):
        sim, servers = build_omni_cluster(3)
        leader = run_until_leader(sim)
        services = self.wire(sim, servers)
        s1 = services[leader].acquire("db", "alpha", 10_000.0, sim.now)
        s2 = services[leader].acquire("db", "beta", 10_000.0, sim.now)
        sim.run_for(100)
        first = services[leader].result(s1)
        second = services[leader].result(s2)
        assert first.ok and not second.ok
        assert all(s.holder_of("db") == "alpha" for s in services.values())

    def test_release_then_reacquire(self):
        sim, servers = build_omni_cluster(3)
        leader = run_until_leader(sim)
        services = self.wire(sim, servers)
        services[leader].acquire("db", "alpha", 10_000.0, sim.now)
        sim.run_for(50)
        services[leader].release("db", "alpha", sim.now)
        sim.run_for(50)
        seq = services[leader].acquire("db", "beta", 10_000.0, sim.now)
        sim.run_for(50)
        assert services[leader].result(seq).ok

    def test_lock_survives_leader_crash(self):
        sim, servers = build_omni_cluster(3)
        leader = run_until_leader(sim)
        services = self.wire(sim, servers)
        services[leader].acquire("db", "alpha", 60_000.0, sim.now)
        sim.run_for(100)
        sim.crash(leader)
        new_leader = run_until_leader(sim)
        assert services[new_leader].holder_of("db") == "alpha"
