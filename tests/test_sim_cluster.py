"""Tests for SimCluster wiring: ticks, crashes, observers, late joiners."""

import pytest

from repro.errors import ConfigError
from repro.omni.entry import Command
from repro.sim.cluster import SimCluster
from repro.sim.events import EventQueue
from repro.sim.network import NetworkParams, SimNetwork

from tests.conftest import build_omni_cluster, run_until_leader


def cmd(i: int) -> Command:
    return Command(data=b"x", client_id=1, seq=i)


class TestValidation:
    def test_rejects_empty_cluster(self):
        q = EventQueue()
        with pytest.raises(ConfigError):
            SimCluster({}, SimNetwork(q), q)

    def test_rejects_bad_tick(self):
        sim, servers = build_omni_cluster(3)
        q = EventQueue()
        with pytest.raises(ConfigError):
            SimCluster({1: servers[1]}, SimNetwork(q), q, tick_ms=0)

    def test_unknown_pid_operations(self):
        sim, _servers = build_omni_cluster(3)
        with pytest.raises(ConfigError):
            sim.propose(99, cmd(0))
        with pytest.raises(ConfigError):
            sim.crash(99)

    def test_propose_at_crashed_server_rejected(self):
        sim, _servers = build_omni_cluster(3, initial_leader=1)
        sim.crash(1)
        with pytest.raises(ConfigError):
            sim.propose(1, cmd(0))

    def test_duplicate_add_replica_rejected(self):
        sim, servers = build_omni_cluster(3)
        with pytest.raises(ConfigError):
            sim.add_replica(1, servers[1])


class TestDriving:
    def test_now_advances(self):
        sim, _servers = build_omni_cluster(3)
        sim.run_for(123.0)
        assert sim.now == pytest.approx(123.0)

    def test_crashed_replicas_not_ticked(self):
        sim, servers = build_omni_cluster(3, initial_leader=1)
        sim.run_for(100)
        sim.crash(2)
        rounds_before = servers[2].ble_of_current().stats.rounds
        sim.run_for(500)
        assert servers[2].ble_of_current().stats.rounds == rounds_before

    def test_recover_unknown_is_noop(self):
        sim, _servers = build_omni_cluster(3)
        sim.recover(1)  # never crashed: no-op

    def test_leaders_excludes_crashed(self):
        sim, _servers = build_omni_cluster(3, initial_leader=1)
        sim.run_for(100)
        sim.crash(1)
        assert 1 not in sim.leaders()

    def test_decided_observer_sees_every_server(self):
        sim, _servers = build_omni_cluster(3, initial_leader=1)
        sim.run_for(100)
        seen = []
        sim.on_decided(lambda pid, idx, e, now: seen.append(pid))
        sim.propose(1, cmd(0))
        sim.run_for(100)
        assert sorted(set(seen)) == [1, 2, 3]

    def test_pids_sorted(self):
        sim, _servers = build_omni_cluster(5)
        assert sim.pids == (1, 2, 3, 4, 5)
