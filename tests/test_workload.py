"""Tests for the closed-loop client workload."""

import pytest

from repro.errors import ConfigError
from repro.sim.workload import ClosedLoopClient, WorkloadParams

from tests.conftest import build_omni_cluster, run_until_leader


class TestParams:
    def test_rejects_zero_cp(self):
        with pytest.raises(ConfigError):
            WorkloadParams(concurrent_proposals=0)

    def test_rejects_bad_timing(self):
        with pytest.raises(ConfigError):
            WorkloadParams(client_tick_ms=0)


class TestClosedLoop:
    def test_keeps_cp_in_flight(self):
        sim, servers = build_omni_cluster(3, initial_leader=1)
        client = ClosedLoopClient(sim, WorkloadParams(concurrent_proposals=8))
        client.start()
        sim.run_for(2000)
        assert client.decided_count > 0
        # In a closed loop, in-flight never exceeds CP.
        assert len(client._outstanding) <= 8

    def test_throughput_scales_with_cp(self):
        counts = {}
        for cp in (4, 32):
            sim, _servers = build_omni_cluster(3, initial_leader=1)
            client = ClosedLoopClient(
                sim, WorkloadParams(concurrent_proposals=cp))
            client.start()
            sim.run_for(2000)
            counts[cp] = client.decided_count
        assert counts[32] > counts[4] * 2

    def test_each_command_counted_once(self):
        sim, _servers = build_omni_cluster(3, initial_leader=1)
        client = ClosedLoopClient(
            sim, WorkloadParams(concurrent_proposals=4,
                                proposal_timeout_ms=50.0))  # aggressive retries
        client.start()
        sim.run_for(2000)
        # decided_count counts unique seqs; tracker records one per unique.
        assert client.tracker.count == client.decided_count

    def test_waits_when_no_leader(self):
        sim, _servers = build_omni_cluster(3)  # nobody seeded
        client = ClosedLoopClient(sim, WorkloadParams(concurrent_proposals=4))
        client.start()
        sim.run_for(10)  # before any election completes
        assert client.proposals_sent == 0

    def test_reroutes_after_leader_crash(self):
        sim, _servers = build_omni_cluster(3, initial_leader=1)
        client = ClosedLoopClient(
            sim, WorkloadParams(concurrent_proposals=4,
                                proposal_timeout_ms=200.0))
        client.start()
        sim.run_for(1000)
        before = client.decided_count
        sim.crash(1)
        sim.run_for(3000)
        assert client.decided_count > before
        assert client.leader_switches >= 1

    def test_stop_ceases_proposing(self):
        sim, _servers = build_omni_cluster(3, initial_leader=1)
        client = ClosedLoopClient(sim, WorkloadParams(concurrent_proposals=4))
        client.start()
        sim.run_for(500)
        client.stop()
        sent = client.proposals_sent
        sim.run_for(500)
        assert client.proposals_sent == sent

    def test_start_idempotent(self):
        sim, _servers = build_omni_cluster(3, initial_leader=1)
        client = ClosedLoopClient(sim, WorkloadParams(concurrent_proposals=4))
        client.start()
        client.start()
        sim.run_for(300)
        assert client.decided_count > 0


class TestLatencyTracking:
    def test_latencies_recorded(self):
        sim, _servers = build_omni_cluster(3, initial_leader=1)
        client = ClosedLoopClient(sim, WorkloadParams(concurrent_proposals=4))
        client.start()
        sim.run_for(1000)
        assert len(client.latencies_ms) == client.decided_count
        assert all(lat >= 0 for lat in client.latencies_ms)

    def test_percentiles_ordered(self):
        sim, _servers = build_omni_cluster(3, initial_leader=1)
        client = ClosedLoopClient(sim, WorkloadParams(concurrent_proposals=8))
        client.start()
        sim.run_for(1000)
        pct = client.latency_percentiles()
        assert pct["p50"] <= pct["p95"] <= pct["p99"]
        assert pct["p50"] > 0

    def test_empty_percentiles(self):
        sim, _servers = build_omni_cluster(3)
        client = ClosedLoopClient(sim, WorkloadParams(concurrent_proposals=4))
        pct = client.latency_percentiles()
        assert pct == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_latency_spans_partition_retry(self):
        """A proposal delayed by a leader crash counts its full wait."""
        sim, _servers = build_omni_cluster(3, initial_leader=1)
        client = ClosedLoopClient(
            sim, WorkloadParams(concurrent_proposals=2,
                                proposal_timeout_ms=150.0))
        client.start()
        sim.run_for(500)
        baseline_p99 = client.latency_percentiles()["p99"]
        sim.crash(1)
        sim.run_for(2000)
        assert max(client.latencies_ms) > baseline_p99
