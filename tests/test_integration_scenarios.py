"""The paper's headline result as a test suite: Table 1.

Each test asserts one cell of the partial-connectivity matrix: which
protocol recovers from which scenario. Omni-Paxos must recover from all
three; every baseline must fail in exactly the scenarios the paper reports.

These are the most important tests in the repository: if a refactor breaks
the resilience behaviour, they fail.
"""

import pytest

from repro.sim.scenarios import run_partition_scenario

T = 100.0
DURATION = 40 * T


def run(protocol, scenario, seed=7):
    return run_partition_scenario(
        protocol, scenario,
        election_timeout_ms=T,
        partition_duration_ms=DURATION,
        seed=seed,
    )


class TestQuorumLossScenario:
    """Figure 1a / 8a: only the pivot is quorum-connected; the old leader
    stays alive but useless."""

    def test_omni_recovers_in_constant_time(self):
        result = run("omni", "quorum_loss")
        assert result.recovered
        # Paper: ~4 heartbeat rounds; allow a small margin.
        assert result.downtime_in_timeouts <= 6

    def test_raft_recovers_with_term_churn(self):
        result = run("raft", "quorum_loss")
        assert result.recovered

    def test_raft_pvcq_recovers(self):
        result = run("raft_pvcq", "quorum_loss")
        assert result.recovered

    def test_multipaxos_deadlocks(self):
        result = run("multipaxos", "quorum_loss")
        assert not result.recovered
        assert result.decided_during_partition == 0

    def test_vr_deadlocks(self):
        result = run("vr", "quorum_loss")
        assert not result.recovered
        assert result.decided_during_partition == 0

    def test_omni_faster_than_plain_raft(self):
        omni = run("omni", "quorum_loss")
        raft = run("raft", "quorum_loss")
        assert omni.downtime_ms <= raft.downtime_ms


class TestConstrainedElectionScenario:
    """Figure 1b / 8b: the only QC server has a stale log."""

    def test_omni_recovers_despite_stale_log(self):
        result = run("omni", "constrained")
        assert result.recovered
        # Paper: constant ~3 timeouts.
        assert result.downtime_in_timeouts <= 5

    def test_multipaxos_recovers(self):
        result = run("multipaxos", "constrained")
        assert result.recovered

    def test_raft_deadlocks_on_max_log_rule(self):
        result = run("raft", "constrained")
        assert not result.recovered

    def test_raft_pvcq_deadlocks(self):
        result = run("raft_pvcq", "constrained")
        assert not result.recovered

    def test_vr_deadlocks(self):
        result = run("vr", "constrained")
        assert not result.recovered


class TestChainedScenario:
    """Figure 1c / 8c: the Cloudflare outage topology."""

    def test_omni_recovers_with_single_change(self):
        result = run("omni", "chained")
        assert result.recovered
        assert result.downtime_in_timeouts <= 4

    def test_raft_eventually_recovers(self):
        result = run("raft", "chained")
        assert result.recovered

    def test_raft_pvcq_stable(self):
        result = run("raft_pvcq", "chained")
        assert result.recovered

    def test_vr_recovers(self):
        result = run("vr", "chained")
        assert result.recovered

    def test_multipaxos_livelock_degrades_throughput(self):
        omni = run("omni", "chained")
        mp = run("multipaxos", "chained")
        # Paper: Multi-Paxos consistently records the lowest throughput in
        # the chained scenario due to its leader-change loop.
        assert mp.decided_during_partition < 0.8 * omni.decided_during_partition

    def test_all_protocols_make_some_progress(self):
        for protocol in ("omni", "raft", "raft_pvcq", "vr", "multipaxos"):
            result = run(protocol, "chained")
            assert result.decided_during_partition > 0, protocol


class TestHealing:
    """After the partition ends, everyone must converge again."""

    @pytest.mark.parametrize("protocol",
                             ["omni", "raft", "raft_pvcq", "multipaxos", "vr"])
    @pytest.mark.parametrize("scenario",
                             ["quorum_loss", "constrained", "chained"])
    def test_progress_resumes_after_heal(self, protocol, scenario):
        result = run_partition_scenario(
            protocol, scenario,
            election_timeout_ms=T,
            partition_duration_ms=10 * T,
            cooldown_ms=40 * T,
            seed=7,
        )
        # Decided replies after the heal prove the cluster converged back.
        assert result.decided_after_heal > 0, (protocol, scenario)


class TestTimeoutScaling:
    """Omni's recovery scales linearly with the election timeout (the paper
    sweeps {50, 500, 50k} ms; we check proportionality at two points)."""

    def test_downtime_proportional_to_timeout(self):
        fast = run_partition_scenario(
            "omni", "quorum_loss", election_timeout_ms=50,
            partition_duration_ms=4_000, seed=7)
        slow = run_partition_scenario(
            "omni", "quorum_loss", election_timeout_ms=500,
            partition_duration_ms=20_000, seed=7)
        assert fast.recovered and slow.recovered
        assert fast.downtime_in_timeouts <= 6
        assert slow.downtime_in_timeouts <= 6
