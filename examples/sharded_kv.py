#!/usr/bin/env python
"""Sharded KV: many Omni-Paxos groups over shared machines.

Production RSM deployments (TiKV, Dragonboat — both in the paper's related
work) shard state over many consensus groups co-hosted on the same
machines. This demo runs four groups on three machines, routes keys by
hash, crashes a machine — taking down one replica of *every* group — and
shows every shard failing over independently.

Run with::

    python examples/sharded_kv.py
"""

from repro.multigroup import MultiGroupCluster, ShardedKVStore


def show_leaders(cluster) -> None:
    leaders = cluster.leaders()
    rendered = ", ".join(f"group {g} -> machine {m}"
                         for g, m in sorted(leaders.items()))
    print(f"  leaders: {rendered}")


def main() -> None:
    cluster = MultiGroupCluster(num_machines=3, num_groups=4,
                                hb_period_ms=50.0)
    cluster.wait_for_leaders()
    kv = ShardedKVStore(cluster)
    print("4 Omni-Paxos groups across 3 machines")
    show_leaders(cluster)

    keys = [f"user:{i}" for i in range(12)]
    for i, key in enumerate(keys):
        kv.put(key, f"profile-{i}")
        cluster.run_for(20)
    cluster.run_for(200)
    by_group = {}
    for key in keys:
        by_group.setdefault(kv.group_for(key), []).append(key)
    print(f"  12 keys spread over groups: "
          f"{ {g: len(ks) for g, ks in sorted(by_group.items())} }")

    print("--- machine 1 crashes (one replica of every group dies) ---")
    cluster.crash_machine(1)
    cluster.wait_for_leaders()
    show_leaders(cluster)

    # Every shard still serves reads and writes.
    kv.put("user:99", "written-after-crash")
    cluster.run_for(200)
    survivor = 2
    assert kv.get_local("user:0", survivor) == "profile-0"
    assert kv.get_local("user:99", survivor) == "written-after-crash"
    print("  all shards available through the machine failure")

    print("--- machine 1 returns ---")
    cluster.recover_machine(1)
    cluster.run_for(2_000)
    assert kv.get_local("user:99", 1) == "written-after-crash"
    print("  recovered machine caught up in every group")


if __name__ == "__main__":
    main()
