#!/usr/bin/env python
"""Log compaction: trim, and snapshot-synchronized stragglers.

Demonstrates the two compaction modes of the replication layer:

1. **Safe trim** — the leader reclaims a prefix every server has decided.
2. **Snapshot trim** — with a snapshotter configured (here: the KV state
   machine fold), the leader compacts past a *partitioned* follower's
   decided index; when the follower returns it receives the KV state
   instead of the trimmed history.

Run with::

    python examples/log_compaction.py
"""

from repro.kv.store import KVCommand, KVStateMachine, encode_command, kv_snapshotter
from repro.omni.ballot import Ballot
from repro.omni.entry import SnapshotInstalled
from repro.omni.sequence_paxos import SequencePaxos, SequencePaxosConfig
from repro.omni.storage import InMemoryStorage


class Net:
    """Minimal message shuttle for three standalone Sequence Paxos nodes."""

    def __init__(self, nodes):
        self.nodes = nodes
        self.down = set()

    def cut(self, a, b):
        self.down.add(frozenset((a, b)))

    def heal(self):
        self.down.clear()

    def deliver(self):
        for _ in range(20):
            moved = False
            for pid, node in self.nodes.items():
                for dst, msg in node.take_outbox():
                    if frozenset((pid, dst)) not in self.down:
                        self.nodes[dst].on_message(pid, msg)
                        moved = True
            if not moved:
                return


def main() -> None:
    nodes = {
        pid: SequencePaxos(
            SequencePaxosConfig(
                pid=pid,
                peers=tuple(p for p in (1, 2, 3) if p != pid),
                snapshotter=kv_snapshotter,
            ),
            InMemoryStorage(),
        )
        for pid in (1, 2, 3)
    }
    net = Net(nodes)
    ballot = Ballot(n=1, priority=0, pid=1)
    for node in nodes.values():
        node.handle_leader(ballot)
    net.deliver()
    leader = nodes[1]
    print(f"leader: server 1 (round {leader.current_round})")

    # Partition follower 3, then write a batch of KV commands.
    net.cut(1, 3)
    net.cut(2, 3)
    for i in range(8):
        leader.propose(encode_command(
            KVCommand("put", f"key{i}", str(i)), client_id=1, seq=i))
    net.deliver()
    print(f"decided at leader: {leader.decided_idx} "
          f"(follower 3 is partitioned at {nodes[3].decided_idx})")

    # Snapshot trim: compacts past follower 3's decided index.
    trimmed = leader.trim()
    print(f"leader trimmed its log to index {trimmed}; "
          f"storage now starts at {leader.compacted_idx}")

    # Heal: follower 3 is synchronized with the snapshot, not the history.
    net.heal()
    nodes[3].reconnected(1)
    net.deliver()
    machine = KVStateMachine()
    for idx, entry in nodes[3].take_decided():
        if isinstance(entry, SnapshotInstalled):
            machine.restore(entry.state)
            print(f"follower 3 installed a snapshot covering [0, {idx})")
        else:
            machine.apply(entry, idx)
    print(f"follower 3 state after snapshot sync: {machine.snapshot()}")
    assert machine.lookup("key7") == "7"
    print("straggler caught up from state, not history — compaction works")


if __name__ == "__main__":
    main()
