#!/usr/bin/env python
"""Reconfiguration with parallel log migration (paper section 6, Figure 9).

A five-server cluster with a pre-loaded log replaces one server. Omni-Paxos
migrates the log to the joiner in parallel from all continuing servers;
Raft's leader streams it alone. Compare the throughput dips and the old
leader's peak outgoing IO.

Run with::

    python examples/reconfiguration_demo.py
"""

from repro.sim.reconfig_experiment import run_reconfiguration_experiment


def show(result) -> None:
    print(f"  baseline throughput : {result.baseline_window:8.0f} decided / window")
    print(f"  deepest drop        : {result.max_drop:8.0%}")
    print(f"  degraded period     : {result.degraded_ms / 1000:8.1f} s")
    print(f"  client down-time    : {result.downtime_ms / 1000:8.2f} s")
    print(f"  old-leader peak IO  : {result.leader_peak_window_bytes / 1e6:8.2f} MB / window")
    if result.completed_at_ms is not None:
        print(f"  new config complete : {result.completed_at_ms / 1000:8.1f} s after proposal")


def main() -> None:
    common = dict(
        replace="one",
        concurrent_proposals=64,
        preload_entries=100_000,
        egress_bytes_per_ms=2_000.0,
        run_ms=20_000.0,
        window_ms=2_000.0,
    )
    print("Omni-Paxos (parallel log migration in the service layer):")
    show(run_reconfiguration_experiment("omni", **common))
    print("\nOmni-Paxos with migration restricted to the leader (Figure 6a):")
    show(run_reconfiguration_experiment("omni", migration_strategy="leader", **common))
    print("\nRaft (leader-only catch-up via AppendEntries):")
    show(run_reconfiguration_experiment("raft", **common))


if __name__ == "__main__":
    main()
