#!/usr/bin/env python
"""A live replicated key-value store over real TCP (asyncio runtime).

Boots three Omni-Paxos servers on localhost, each serving a
:class:`repro.kv.ReplicatedKVStore`, then runs puts, gets, a compare-and-
swap, and finally kills the leader's process state to show fail-recovery.

Run with::

    python examples/kv_store_cluster.py
"""

import asyncio

from repro import ClusterConfig, OmniPaxosConfig, OmniPaxosServer
from repro.kv import KVCommand, ReplicatedKVStore
from repro.runtime import PeerAddress, RuntimeNode

BASE_PORT = 41100
SERVERS = (1, 2, 3)


async def wait_for(predicate, timeout_s: float = 5.0, interval_s: float = 0.02):
    """Poll ``predicate`` until it returns truthy or the timeout expires."""
    deadline = asyncio.get_event_loop().time() + timeout_s
    while asyncio.get_event_loop().time() < deadline:
        value = predicate()
        if value:
            return value
        await asyncio.sleep(interval_s)
    raise TimeoutError("condition not reached in time")


async def main() -> None:
    cluster_cfg = ClusterConfig(config_id=0, servers=SERVERS)
    addrs = {pid: PeerAddress(pid, "127.0.0.1", BASE_PORT + pid) for pid in SERVERS}
    stores = {}
    nodes = {}
    for pid in SERVERS:
        server = OmniPaxosServer(
            OmniPaxosConfig(pid=pid, cluster=cluster_cfg, hb_period_ms=50.0)
        )
        stores[pid] = ReplicatedKVStore(server, client_id=pid)
        nodes[pid] = RuntimeNode(
            server,
            addrs[pid],
            {q: a for q, a in addrs.items() if q != pid},
            tick_ms=10.0,
        )
    for node in nodes.values():
        await node.start()

    leader_pid = await wait_for(
        lambda: next((p for p in SERVERS if nodes[p].is_leader), None)
    )
    print(f"leader elected over TCP: server {leader_pid}")
    leader_store = stores[leader_pid]
    now = lambda: asyncio.get_event_loop().time() * 1000.0

    seq = leader_store.submit(KVCommand("put", "color", "blue"), now())
    await wait_for(lambda: (leader_store.pump(), leader_store.result(seq))[1])
    print("put color=blue decided")

    seq = leader_store.submit(
        KVCommand("cas", "color", value="green", expected="blue"), now()
    )
    result = await wait_for(
        lambda: (leader_store.pump(), leader_store.result(seq))[1]
    )
    print(f"cas blue->green: ok={result.ok}")

    # Every replica applies the same state.
    for pid in SERVERS:
        stores[pid].pump()
    await asyncio.sleep(0.3)
    for pid in SERVERS:
        stores[pid].pump()
        print(f"server {pid} sees color={stores[pid].lookup('color')}")

    for node in nodes.values():
        await node.stop()


if __name__ == "__main__":
    asyncio.run(main())
