#!/usr/bin/env python
"""Quickstart: a three-server Omni-Paxos cluster in the simulator.

Builds a cluster, waits for Ballot Leader Election to elect a leader,
replicates a handful of commands, and shows that every server decided the
same log. Run with::

    python examples/quickstart.py
"""

from repro import ClusterConfig, Command, OmniPaxosConfig, OmniPaxosServer
from repro.sim import EventQueue, NetworkParams, SimCluster, SimNetwork


def main() -> None:
    cluster_cfg = ClusterConfig(config_id=0, servers=(1, 2, 3))
    queue = EventQueue()
    network = SimNetwork(queue, NetworkParams(one_way_ms=0.1))
    servers = {
        pid: OmniPaxosServer(
            OmniPaxosConfig(pid=pid, cluster=cluster_cfg, hb_period_ms=50.0)
        )
        for pid in cluster_cfg.servers
    }
    sim = SimCluster(servers, network, queue, tick_ms=5.0)
    sim.start()

    # Ballot Leader Election needs a couple of heartbeat rounds.
    sim.run_for(500)
    leader = sim.leaders()[0]
    print(f"elected leader: server {leader}")

    for i in range(5):
        sim.propose(leader, Command(f"command-{i}".encode(), client_id=1, seq=i))
    sim.run_for(100)

    for pid in cluster_cfg.servers:
        log = servers[pid].read_log()
        decoded = [entry.data.decode() for entry in log]
        print(f"server {pid}: decided {len(log)} entries: {decoded}")

    logs = {servers[pid].read_log() for pid in cluster_cfg.servers}
    assert len(logs) == 1, "all servers must hold identical decided logs"
    print("all replicas agree — Sequence Consensus holds (SC2)")


if __name__ == "__main__":
    main()
