#!/usr/bin/env python
"""The Cloudflare outage, in miniature (paper sections 1-2).

Replays the three partial-connectivity scenarios against every protocol of
the paper's evaluation and prints who survives. The chained scenario is the
one behind Cloudflare's 2020 outage: a broken link between two switches left
the cluster connected in a chain and the RSM livelocked on leader changes.

Run with::

    python examples/partial_connectivity_demo.py
"""

from repro.sim.harness import PROTOCOLS
from repro.sim.scenarios import SCENARIOS, run_partition_scenario

TIMEOUT_MS = 100.0


def verdict(result) -> str:
    if not result.recovered:
        return "UNAVAILABLE for the whole partition"
    return (
        f"recovered — down-time {result.downtime_ms:.0f} ms "
        f"({result.downtime_in_timeouts:.1f} election timeouts), "
        f"{result.decided_during_partition} cmds decided during partition"
    )


def main() -> None:
    for scenario in SCENARIOS:
        print(f"\n=== {scenario.replace('_', '-')} scenario ===")
        for protocol in PROTOCOLS:
            result = run_partition_scenario(
                protocol,
                scenario,
                election_timeout_ms=TIMEOUT_MS,
                partition_duration_ms=4_000.0,
                seed=1,
            )
            print(f"  {protocol:10s} {verdict(result)}")
    print(
        "\nOmni-Paxos is the only protocol that recovers from every "
        "scenario — Table 1 of the paper."
    )


if __name__ == "__main__":
    main()
