#!/usr/bin/env python
"""A Chubby-style lock service that survives partial connectivity.

The paper's introduction motivates RSMs with exactly this workload (lock
services, coordination). Here three workers contend for a leased lock
through a 3-server Omni-Paxos cluster; mid-run the cluster suffers the
chained partition that livelocked Cloudflare's cluster — and the lock
service keeps granting and releasing correctly.

Run with::

    python examples/lock_service.py
"""

from repro.locks import ReplicatedLockService
from repro.omni.server import ClusterConfig, OmniPaxosConfig, OmniPaxosServer
from repro.sim import EventQueue, NetworkParams, SimCluster, SimNetwork
from repro.sim import partitions


def main() -> None:
    cluster_cfg = ClusterConfig(config_id=0, servers=(1, 2, 3))
    queue = EventQueue()
    network = SimNetwork(queue, NetworkParams(one_way_ms=0.1))
    servers = {
        pid: OmniPaxosServer(OmniPaxosConfig(
            pid=pid, cluster=cluster_cfg, hb_period_ms=50.0,
            initial_leader=2))
        for pid in cluster_cfg.servers
    }
    sim = SimCluster(servers, network, queue, tick_ms=5.0)
    services = {pid: ReplicatedLockService(servers[pid], client_id=pid)
                for pid in cluster_cfg.servers}
    sim.on_decided(lambda pid, idx, e, now: services[pid].ingest(idx, e))
    sim.start()
    sim.run_for(300)
    leader = sim.leaders()[0]
    print(f"leader: server {leader}")

    # Worker alpha takes the lock with a 2-second lease.
    services[leader].acquire("primary-shard", "alpha", 2_000.0, sim.now)
    sim.run_for(50)
    print(f"t={sim.now:5.0f}ms  holder: "
          f"{services[leader].holder_of('primary-shard')}")

    # The Cloudflare scenario strikes: chain 2-1-3 (leader 2 cut from 3).
    partitions.chained(sim, order=(2, 1, 3))
    print("--- chained partition injected (link 2-3 down) ---")
    sim.run_for(500)
    new_leader = [p for p in sim.leaders() if p != 2] or sim.leaders()
    leader = new_leader[0]
    print(f"t={sim.now:5.0f}ms  cluster recovered, leader: server {leader}")

    # Beta tries to steal — rejected while alpha's lease is live.
    seq = services[leader].acquire("primary-shard", "beta", 2_000.0, sim.now)
    sim.run_for(100)
    result = services[leader].result(seq)
    print(f"t={sim.now:5.0f}ms  beta acquire during lease: ok={result.ok} "
          f"(holder {result.current_holder})")

    # Alpha's lease lapses; beta wins on retry.
    sim.run_for(2_000)
    seq = services[leader].acquire("primary-shard", "beta", 2_000.0, sim.now)
    sim.run_for(100)
    result = services[leader].result(seq)
    print(f"t={sim.now:5.0f}ms  beta acquire after expiry: ok={result.ok}")
    assert result.ok

    # Every reachable replica agrees on the holder.
    for pid in (1, 3):
        print(f"server {pid} sees holder: "
              f"{services[pid].holder_of('primary-shard')}")
    print("mutual exclusion held straight through the partition")


if __name__ == "__main__":
    main()
