"""Figure 8 — resilience to partial connectivity.

- **8a** quorum-loss down-time per protocol, swept over election timeouts:
  Omni-Paxos recovers in a constant ~3-4 timeouts; Raft recovers with term
  churn (and higher variance); Raft PV+CQ recovers; VR and Multi-Paxos are
  down for the whole partition.
- **8b** constrained-election down-time: only Omni-Paxos (constant ~2-3
  timeouts) and Multi-Paxos recover.
- **8c** chained scenario: decided requests during the partition; Multi-
  Paxos is consistently lowest (leader-change livelock), Omni-Paxos is the
  most stable with a single leader change.
"""

import pytest

from repro.sim.harness import PROTOCOLS
from repro.sim.scenarios import run_partition_scenario
from repro.util.stats import mean_ci

from benchmarks.conftest import (
    ELECTION_TIMEOUTS_MS,
    FULL,
    record_rows,
    run_duration_ms,
)

SEEDS = (1, 2, 3, 4, 5) if FULL else (1, 2, 3)

_downtimes = {}  # (fig, protocol, timeout) -> CI or "deadlock"
_chained = {}    # (protocol, timeout) -> decided CI


def _sweep(protocol, scenario, timeout):
    duration = max(run_duration_ms(), 40 * timeout)
    samples = []
    deadlocked = 0
    decided = []
    for seed in SEEDS:
        result = run_partition_scenario(
            protocol, scenario,
            election_timeout_ms=timeout,
            partition_duration_ms=duration,
            seed=seed,
        )
        decided.append(result.decided_during_partition)
        if result.recovered:
            samples.append(result.downtime_ms)
        else:
            deadlocked += 1
    return samples, deadlocked, decided


@pytest.mark.parametrize("timeout", ELECTION_TIMEOUTS_MS)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_fig8a_quorum_loss(benchmark, protocol, timeout):
    samples, deadlocked, _dec = benchmark.pedantic(
        _sweep, args=(protocol, "quorum_loss", timeout),
        rounds=1, iterations=1)
    key = ("8a", protocol, timeout)
    if deadlocked == len(SEEDS):
        _downtimes[key] = "deadlock"
    else:
        _downtimes[key] = mean_ci(samples)
    if protocol in ("omni", "raft", "raft_pvcq"):
        assert deadlocked == 0, f"{protocol} must recover from quorum-loss"
        if protocol == "omni":
            assert mean_ci(samples).mean <= 6 * timeout
    else:
        assert deadlocked == len(SEEDS), f"{protocol} must deadlock"


@pytest.mark.parametrize("timeout", ELECTION_TIMEOUTS_MS)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_fig8b_constrained(benchmark, protocol, timeout):
    samples, deadlocked, _dec = benchmark.pedantic(
        _sweep, args=(protocol, "constrained", timeout),
        rounds=1, iterations=1)
    key = ("8b", protocol, timeout)
    if deadlocked == len(SEEDS):
        _downtimes[key] = "deadlock"
    else:
        _downtimes[key] = mean_ci(samples)
    if protocol in ("omni", "multipaxos"):
        assert deadlocked == 0, f"{protocol} must recover from constrained"
        if protocol == "omni":
            assert mean_ci(samples).mean <= 5 * timeout
    else:
        assert deadlocked == len(SEEDS), f"{protocol} must deadlock"


@pytest.mark.parametrize("timeout", ELECTION_TIMEOUTS_MS[:2])
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_fig8c_chained(benchmark, protocol, timeout):
    _samples, _deadlocked, decided = benchmark.pedantic(
        _sweep, args=(protocol, "chained", timeout),
        rounds=1, iterations=1)
    _chained[(protocol, timeout)] = mean_ci([float(d) for d in decided])
    assert all(d > 0 for d in decided), "chained must keep some progress"


def test_fig8_print(benchmark):
    def build():
        lines = []
        for fig, scenario in (("8a", "quorum-loss"), ("8b", "constrained")):
            lines.append(f"--- Figure {fig}: {scenario} down-time (ms) ---")
            for protocol in PROTOCOLS:
                cells = []
                for timeout in ELECTION_TIMEOUTS_MS:
                    value = _downtimes.get((fig, protocol, timeout))
                    if value is None:
                        cells.append(f"{'n/a':>18s}")
                    elif value == "deadlock":
                        cells.append(f"{'deadlock':>18s}")
                    else:
                        cells.append(f"{value.mean:10.0f}±{value.half_width:6.0f}")
                lines.append(f"{protocol:12s}" + "  ".join(cells))
        lines.append("--- Figure 8c: chained, decided during partition ---")
        for protocol in PROTOCOLS:
            cells = []
            for timeout in ELECTION_TIMEOUTS_MS[:2]:
                ci = _chained.get((protocol, timeout))
                cells.append(f"{ci.mean:10.0f}±{ci.half_width:6.0f}"
                             if ci else f"{'n/a':>18s}")
            lines.append(f"{protocol:12s}" + "  ".join(cells))
        return lines

    lines = benchmark.pedantic(build, rounds=1, iterations=1)
    header = ("timeouts: " +
              ", ".join(f"{t:.0f} ms" for t in ELECTION_TIMEOUTS_MS))
    record_rows("fig8_partitions", header, lines)
    from benchmarks.conftest import record_json

    def ci_or_deadlock(value):
        if value is None:
            return None
        if value == "deadlock":
            return "deadlock"
        return {"mean_ms": value.mean, "ci95": value.half_width}

    record_json("fig8_partitions", {
        "downtime": {
            f"{fig}:{protocol}:{timeout:.0f}": ci_or_deadlock(
                _downtimes.get((fig, protocol, timeout)))
            for fig in ("8a", "8b")
            for protocol in PROTOCOLS
            for timeout in ELECTION_TIMEOUTS_MS
        },
        "chained_decided": {
            f"{protocol}:{timeout:.0f}": {
                "mean": _chained[(protocol, timeout)].mean,
                "ci95": _chained[(protocol, timeout)].half_width,
            }
            for protocol in PROTOCOLS
            for timeout in ELECTION_TIMEOUTS_MS[:2]
            if (protocol, timeout) in _chained
        },
    })
    # The paper's chained-scenario ordering: Multi-Paxos lowest.
    for timeout in ELECTION_TIMEOUTS_MS[:2]:
        mp = _chained.get(("multipaxos", timeout))
        omni = _chained.get(("omni", timeout))
        if mp and omni:
            assert mp.mean < omni.mean, \
                "Multi-Paxos must be lowest in the chained scenario"
