"""Table 1 — partial-connectivity scenario matrix.

Regenerates the right half of the paper's Table 1: for each protocol and
each scenario, does the cluster keep (or regain) stable progress, or is it
unavailable for the whole partition?

Expected output (the paper's ✓/✗ pattern):

    protocol     quorum-loss  constrained  chained
    omni         ok           ok           ok
    raft         ok(churn)    UNAVAILABLE  ok
    raft_pvcq    ok           UNAVAILABLE  ok
    vr           UNAVAILABLE  UNAVAILABLE  ok
    multipaxos   UNAVAILABLE  ok           ok(degraded)
"""

import pytest

from repro.sim.harness import PROTOCOLS
from repro.sim.scenarios import SCENARIOS, run_partition_scenario

from benchmarks.conftest import record_rows, run_duration_ms

T = 100.0

_results = {}


def _cell(protocol, scenario):
    result = run_partition_scenario(
        protocol, scenario,
        election_timeout_ms=T,
        partition_duration_ms=run_duration_ms(),
        seed=7,
    )
    _results[(protocol, scenario)] = result
    return result


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_table1_row(benchmark, protocol):
    def row():
        return {s: _cell(protocol, s) for s in SCENARIOS}

    results = benchmark.pedantic(row, rounds=1, iterations=1)
    benchmark.extra_info["recovered"] = {
        s: r.recovered for s, r in results.items()
    }
    # Omni-Paxos is the only protocol that must survive everything.
    if protocol == "omni":
        assert all(r.recovered for r in results.values())


def test_table1_print(benchmark):
    """Assemble and verify the full matrix (depends on the rows above)."""

    def fill_missing():
        for protocol in PROTOCOLS:
            for scenario in SCENARIOS:
                if (protocol, scenario) not in _results:
                    _cell(protocol, scenario)

    benchmark.pedantic(fill_missing, rounds=1, iterations=1)

    def verdict(result):
        if not result.recovered:
            return "UNAVAILABLE"
        return f"ok({result.downtime_in_timeouts:.1f}T)"

    rows = []
    for protocol in PROTOCOLS:
        cells = "  ".join(
            f"{verdict(_results[(protocol, s)]):>16s}" for s in SCENARIOS
        )
        rows.append(f"{protocol:12s}{cells}")
    header = "protocol    " + "  ".join(f"{s:>16s}" for s in SCENARIOS)
    record_rows("table1_matrix", header, rows)
    from benchmarks.conftest import record_json
    record_json("table1_matrix", {
        protocol: {
            scenario: {
                "recovered": _results[(protocol, scenario)].recovered,
                "downtime_ms": _results[(protocol, scenario)].downtime_ms,
                "decided": _results[(protocol, scenario)]
                .decided_during_partition,
            }
            for scenario in SCENARIOS
        }
        for protocol in PROTOCOLS
    })

    expected = {
        "omni": (True, True, True),
        "raft": (True, False, True),
        "raft_pvcq": (True, False, True),
        "vr": (False, False, True),
        "multipaxos": (False, True, True),
    }
    for protocol, pattern in expected.items():
        actual = tuple(
            _results[(protocol, s)].recovered for s in SCENARIOS
        )
        assert actual == pattern, f"{protocol}: {actual} != paper {pattern}"
