"""Benchmark harnesses regenerating every table and figure of the paper.

Run with::

    pytest benchmarks/ --benchmark-only

Each module covers one artifact:

- ``bench_table1_matrix.py`` — Table 1 (scenario matrix),
- ``bench_fig7_normal.py`` — Figure 7 (regular LAN/WAN throughput),
- ``bench_fig8_partitions.py`` — Figure 8a/8b/8c (partition down-time and
  chained-scenario throughput, swept over election timeouts),
- ``bench_fig9_reconfig.py`` — Figure 9 (reconfiguration),
- ``bench_ablations.py`` — design-choice ablations from DESIGN.md.

Reproduced series are printed and persisted under ``benchmarks/results/``.
"""
