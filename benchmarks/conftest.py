"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper and does two
things: (a) times the experiment via pytest-benchmark, and (b) prints —
and appends to ``benchmarks/results/`` — the same rows/series the paper
reports, so the reproduction can be compared against the publication even
when pytest captures stdout.

Scale: durations and the CP sweep are scaled down so the whole suite runs
in minutes of wall-clock; set ``REPRO_BENCH_FULL=1`` for longer runs closer
to the paper's 5-minute experiments. Shapes (who wins, by what factor,
where crossovers fall) are preserved either way; absolute numbers are
simulator-scale, not testbed-scale.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")

#: The paper's CP = {500, 5k, 50k} maps to scaled pipeline levels.
CP_LEVELS = {"low": 16, "mid": 128, "high": 512}

#: Election timeouts swept in Figure 8 ({50, 500, 50k} ms in the paper;
#: the largest is scaled down to keep virtual time tractable).
ELECTION_TIMEOUTS_MS = (50.0, 500.0, 5_000.0) if FULL else (50.0, 500.0)


def run_duration_ms() -> float:
    return 30_000.0 if FULL else 5_000.0


def record_rows(name: str, header: str, rows) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [header] + [str(row) for row in rows]
    text = "\n".join(lines)
    print(f"\n=== {name} ===\n{text}")
    with open(RESULTS_DIR / f"{name}.txt", "w") as handle:
        handle.write(text + "\n")


def record_json(name: str, payload) -> None:
    """Persist machine-readable results (for plotting / regression diffs),
    mirroring the paper artifact's meta_results directories."""
    import json

    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{name}.json", "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)


@pytest.fixture
def once(benchmark):
    """Run the measured function exactly once (experiments are long and
    deterministic; statistical repetition lives *inside* them as seeds)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
