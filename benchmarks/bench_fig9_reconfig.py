"""Figure 9 — reconfiguration speed.

A 5-server cluster with a pre-loaded log replaces (a) one server and
(b) a majority (3 of 5), comparing Omni-Paxos' parallel service-layer
migration against Raft's leader-only catch-up under a finite per-server
egress capacity. Reported per cell, as in the paper:

- throughput per window around the reconfiguration (the Figure 9 series),
- deepest relative drop and how long throughput stayed degraded,
- full client down-time,
- peak outgoing bytes per window at the old leader ("peak IO"),
- time until the new configuration is fully operational.

Paper shapes asserted: Omni's disruption is several-fold shorter, its
leader peak IO several-fold lower, and replace-majority stalls Raft
completely until a new server has the whole log.
"""

import pytest

from repro.sim.reconfig_experiment import run_reconfiguration_experiment

from benchmarks.conftest import FULL, record_rows

PARAMS = dict(
    concurrent_proposals=64,
    preload_entries=400_000 if FULL else 150_000,
    entry_bytes=8,
    egress_bytes_per_ms=2_000.0,
    election_timeout_ms=100.0,
    warmup_ms=4_000.0,
    run_ms=60_000.0 if FULL else 25_000.0,
    window_ms=5_000.0 if FULL else 2_000.0,
)

_results = {}


def _run(protocol, replace, **overrides):
    params = dict(PARAMS)
    params.update(overrides)
    return run_reconfiguration_experiment(protocol, replace, **params)


@pytest.mark.parametrize("replace", ("one", "majority"))
@pytest.mark.parametrize("protocol", ("omni", "raft"))
def test_fig9_cell(benchmark, protocol, replace):
    result = benchmark.pedantic(_run, args=(protocol, replace),
                                rounds=1, iterations=1)
    _results[(protocol, replace)] = result
    benchmark.extra_info.update(
        max_drop=result.max_drop,
        degraded_s=result.degraded_ms / 1000.0,
        downtime_s=result.downtime_ms / 1000.0,
        busiest_peak_mb=result.busiest_old_peak_window_bytes / 1e6,
    )
    assert result.completed_at_ms is not None, "reconfiguration must finish"


def test_fig9_print(benchmark):
    def fill():
        for protocol in ("omni", "raft"):
            for replace in ("one", "majority"):
                if (protocol, replace) not in _results:
                    _results[(protocol, replace)] = _run(protocol, replace)

    benchmark.pedantic(fill, rounds=1, iterations=1)
    lines = []
    for replace in ("one", "majority"):
        lines.append(f"--- replace {replace} ---")
        for protocol in ("omni", "raft"):
            r = _results[(protocol, replace)]
            lines.append(
                f"{protocol:5s} drop={r.max_drop:5.0%} "
                f"degraded={r.degraded_ms / 1000:5.1f}s "
                f"downtime={r.downtime_ms / 1000:5.2f}s "
                f"busiest_peak={r.busiest_old_peak_window_bytes / 1e6:6.2f}MB/win "
                f"old_total={r.old_servers_total_bytes / 1e6:6.1f}MB "
                f"complete={r.completed_at_ms / 1000:5.1f}s"
            )
        for protocol in ("omni", "raft"):
            r = _results[(protocol, replace)]
            series = " ".join(str(c) for _t, c in r.windows[:10])
            lines.append(f"  {protocol} windows: {series}")
    record_rows("fig9_reconfiguration",
                "reconfiguration under finite leader egress", lines)
    from benchmarks.conftest import record_json
    record_json("fig9_reconfiguration", {
        f"{protocol}:{replace}": {
            "max_drop": r.max_drop,
            "degraded_ms": r.degraded_ms,
            "downtime_ms": r.downtime_ms,
            "busiest_old_peak_bytes": r.busiest_old_peak_window_bytes,
            "old_total_bytes": r.old_servers_total_bytes,
            "completed_ms": r.completed_at_ms,
            "windows": list(r.windows),
        }
        for (protocol, replace), r in _results.items()
    })

    # Paper claims (shape, not absolute numbers):
    one_omni = _results[("omni", "one")]
    one_raft = _results[("raft", "one")]
    assert one_omni.degraded_ms < one_raft.degraded_ms
    assert one_omni.busiest_old_peak_window_bytes < \
        one_raft.busiest_old_peak_window_bytes
    maj_omni = _results[("omni", "majority")]
    maj_raft = _results[("raft", "majority")]
    assert maj_raft.downtime_ms > 2 * maj_omni.downtime_ms
    assert maj_omni.busiest_old_peak_window_bytes <= \
        maj_raft.busiest_old_peak_window_bytes
