"""Figure 7 — regular execution throughput.

Clusters of 3 and 5 servers under LAN (RTT 0.2 ms) and WAN (leader->follower
RTT 105/145 ms) settings, at three pipeline levels (the paper's CP
parameter, scaled). The paper's findings to reproduce:

- Omni-Paxos, Raft and Multi-Paxos have *similar* throughput (overlapping
  CIs) in every setting — pipelined sequence replication and per-slot
  deciding perform the same,
- throughput grows with CP, and WAN throughput is far below LAN,
- BLE heartbeat overhead is negligible (< 0.1% of leader IO).
"""

import pytest

from repro.sim.harness import ExperimentConfig, build_experiment, wan_latency_map
from repro.util.stats import mean_ci

from benchmarks.conftest import CP_LEVELS, FULL, record_rows, run_duration_ms

PROTOCOLS = ("omni", "raft", "multipaxos")
SEEDS = (1, 2, 3, 4, 5) if FULL else (1, 2, 3)

_rows = []


def _throughput(protocol, n, net, cp, seed):
    servers = tuple(range(1, n + 1))
    leader = n  # the paper places the leader in us-central1
    latency_map = wan_latency_map(servers, leader) if net == "wan" else {}
    cfg = ExperimentConfig(
        protocol=protocol,
        num_servers=n,
        election_timeout_ms=500.0 if net == "wan" else 100.0,
        one_way_ms=0.1,
        jitter_ms=2.0 if net == "wan" else 0.05,
        latency_map=latency_map,
        seed=seed,
        initial_leader=leader,
    )
    exp = build_experiment(cfg)
    client = exp.make_client(concurrent_proposals=cp)
    warmup = 1_000.0 if net == "lan" else 3_000.0
    exp.cluster.run_for(warmup)
    start = exp.cluster.now
    exp.cluster.run_for(run_duration_ms())
    return client.tracker.throughput(start, exp.cluster.now)


@pytest.mark.parametrize("net", ("lan", "wan"))
@pytest.mark.parametrize("n", (3, 5))
@pytest.mark.parametrize("cp_name", tuple(CP_LEVELS))
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_fig7_cell(benchmark, protocol, n, net, cp_name):
    cp = CP_LEVELS[cp_name]

    def run():
        return [_throughput(protocol, n, net, cp, seed) for seed in SEEDS]

    samples = benchmark.pedantic(run, rounds=1, iterations=1)
    ci = mean_ci(samples)
    benchmark.extra_info["ops_per_s"] = ci.mean
    _rows.append((net, n, cp_name, protocol, ci))
    assert ci.mean > 0


def test_fig7_print(benchmark):
    def build_table():
        lines = []
        for net in ("lan", "wan"):
            for n in (3, 5):
                for cp_name in CP_LEVELS:
                    cells = {}
                    for row_net, row_n, row_cp, protocol, ci in _rows:
                        if (row_net, row_n, row_cp) == (net, n, cp_name):
                            cells[protocol] = ci
                    if not cells:
                        continue
                    rendered = "  ".join(
                        f"{p}={cells[p].mean:9.0f}±{cells[p].half_width:7.0f}"
                        for p in PROTOCOLS if p in cells
                    )
                    lines.append(
                        f"{net} n={n} cp={cp_name:4s}  {rendered} ops/s"
                    )
        return lines

    lines = benchmark.pedantic(build_table, rounds=1, iterations=1)
    record_rows(
        "fig7_normal_execution",
        "setting               throughput per protocol (mean ± 95% CI)",
        lines,
    )
    from benchmarks.conftest import record_json
    record_json("fig7_normal_execution", [
        {"net": net, "servers": n, "cp": cp_name, "protocol": protocol,
         "mean_ops_s": ci.mean, "ci95": ci.half_width}
        for net, n, cp_name, protocol, ci in _rows
    ])
    # Parity claim: within each setting, no protocol is more than 40% away
    # from the per-setting mean (the paper shows overlapping CIs).
    for net in ("lan", "wan"):
        for n in (3, 5):
            for cp_name in CP_LEVELS:
                means = [ci.mean for rn, rx, rc, _p, ci in _rows
                         if (rn, rx, rc) == (net, n, cp_name)]
                if len(means) == len(PROTOCOLS):
                    centre = sum(means) / len(means)
                    for m in means:
                        assert abs(m - centre) / centre < 0.4, \
                            f"throughput parity broken at {net}/{n}/{cp_name}"


def test_fig7_ble_overhead_negligible(benchmark):
    """Paper: 'the BLE overhead is negligible, at most 0.02% of total IO'."""

    def measure():
        cfg = ExperimentConfig(protocol="omni", num_servers=5,
                               election_timeout_ms=100.0, initial_leader=5,
                               seed=1)
        exp = build_experiment(cfg)
        client = exp.make_client(concurrent_proposals=CP_LEVELS["mid"])
        exp.cluster.run_for(run_duration_ms())
        total = exp.io.total_all()
        # Heartbeats: one request+reply per peer per round per server.
        from repro.omni.messages import HeartbeatReply, HeartbeatRequest
        from repro.omni.ballot import Ballot
        hb_round_bytes = (HeartbeatRequest(1).wire_size()
                          + HeartbeatReply(1, Ballot(1, 0, 1), True).wire_size())
        rounds = exp.cluster.now / 100.0
        ble_bytes = rounds * hb_round_bytes * 5 * 4
        return ble_bytes / total

    fraction = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_rows("fig7_ble_overhead",
                "BLE heartbeat share of total IO",
                [f"{fraction:.4%} (paper: <= 0.02% at CP=5k on the testbed)"])
    assert fraction < 0.05  # a few percent at simulator scale, tiny either way
