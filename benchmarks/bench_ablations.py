"""Ablations for the design choices DESIGN.md calls out.

1. **QC flag in heartbeats** — without it, the quorum-loss scenario
   deadlocks even for Omni-Paxos' BLE (the old leader never signals it lost
   its quorum). This isolates *why* BLE heartbeats carry the flag.
2. **Parallel vs leader-only log migration** — same protocol, same
   workload, only the migration scheme differs (Figure 6a vs 6b).
3. **Ballot priority field** — the custom field ``c`` in ``b = (n, c, pid)``
   steers leadership without affecting liveness (paper section 5.2).
4. **Batching** — pipeline (CP) scaling of throughput, the reason deciding
   in parallel vs in sequence makes no difference (paper section 9).
"""

import pytest

from repro.omni.server import ClusterConfig, OmniPaxosConfig, OmniPaxosServer
from repro.sim.cluster import SimCluster
from repro.sim.events import EventQueue
from repro.sim.harness import ExperimentConfig, build_experiment
from repro.sim.network import NetworkParams, SimNetwork
from repro.sim.partitions import quorum_loss
from repro.sim.reconfig_experiment import run_reconfiguration_experiment
from repro.sim.workload import ClosedLoopClient, WorkloadParams

from benchmarks.conftest import record_rows, run_duration_ms


def _omni_cluster(use_qc_flag, priorities=None):
    cc = ClusterConfig(0, (1, 2, 3, 4, 5))
    queue = EventQueue()
    net = SimNetwork(queue, NetworkParams(one_way_ms=0.1))
    servers = {
        pid: OmniPaxosServer(OmniPaxosConfig(
            pid=pid, cluster=cc, hb_period_ms=100.0,
            use_qc_flag=use_qc_flag, initial_leader=3,
            priority=(priorities or {}).get(pid, 0),
        ))
        for pid in cc.servers
    }
    sim = SimCluster(servers, net, queue, tick_ms=10.0)
    sim.start()
    return sim


def _quorum_loss_downtime(use_qc_flag):
    sim = _omni_cluster(use_qc_flag)
    client = ClosedLoopClient(sim, WorkloadParams(
        concurrent_proposals=8, client_tick_ms=10.0,
        proposal_timeout_ms=300.0))
    client.start()
    sim.run_for(2_000)
    at = sim.now
    quorum_loss(sim, pivot=1)
    duration = run_duration_ms()
    sim.run_for(duration)
    return client.tracker.downtime(at, sim.now), duration


def test_ablation_qc_flag(benchmark):
    def run():
        with_flag, duration = _quorum_loss_downtime(True)
        without_flag, _ = _quorum_loss_downtime(False)
        return with_flag, without_flag, duration

    with_flag, without_flag, duration = benchmark.pedantic(
        run, rounds=1, iterations=1)
    record_rows("ablation_qc_flag",
                "quorum-loss down-time with vs without the QC flag",
                [f"with qc flag   : {with_flag:8.0f} ms",
                 f"without qc flag: {without_flag:8.0f} ms "
                 f"(= whole partition -> deadlock)"])
    assert with_flag < 8 * 100.0
    assert without_flag >= duration * 0.9  # deadlocked


def test_ablation_migration_strategy(benchmark):
    params = dict(
        replace="one",
        concurrent_proposals=32,
        preload_entries=150_000,
        egress_bytes_per_ms=2_000.0,
        run_ms=25_000.0,
        window_ms=2_000.0,
    )

    def run():
        parallel = run_reconfiguration_experiment(
            "omni", migration_strategy="parallel", **params)
        leader_only = run_reconfiguration_experiment(
            "omni", migration_strategy="leader", **params)
        return parallel, leader_only

    parallel, leader_only = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(
        "ablation_migration",
        "parallel vs leader-only migration (same protocol, Figure 6)",
        [f"parallel   : complete={parallel.completed_at_ms / 1000:5.1f}s "
         f"busiest_donor_peak={parallel.busiest_old_peak_window_bytes / 1e6:5.2f}MB",
         f"leader-only: complete={leader_only.completed_at_ms / 1000:5.1f}s "
         f"busiest_donor_peak={leader_only.busiest_old_peak_window_bytes / 1e6:5.2f}MB"],
    )
    assert parallel.completed_at_ms < leader_only.completed_at_ms
    assert parallel.busiest_old_peak_window_bytes < \
        leader_only.busiest_old_peak_window_bytes


def test_ablation_ballot_priority(benchmark):
    """Priorities steer elections: with pid 1 given a high priority, it wins
    the initial election even though higher pids would win the tie-break."""

    def run():
        sim = _omni_cluster(True, priorities={1: 100})
        # Kill the seeded leader so a real election must happen.
        sim.crash(3)
        for _ in range(100):
            sim.run_for(100)
            leaders = sim.leaders()
            if leaders:
                return leaders[0]
        return None

    winner = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("ablation_priority",
                "election winner with priority(pid 1) = 100",
                [f"winner: server {winner} (without priorities: server 5)"])
    assert winner == 1


def test_ablation_connectivity_priority(benchmark):
    """Paper section 8: stamping measured connectivity into the ballot
    makes the best-connected quorum-connected candidate win elections,
    without destabilizing a healthy leader."""
    from repro.sim.partitions import isolate_link

    def elect_after_leader_death(connectivity_priority):
        cc = ClusterConfig(0, (1, 2, 3, 4, 5))
        queue = EventQueue()
        net = SimNetwork(queue, NetworkParams(one_way_ms=0.1))
        servers = {
            pid: OmniPaxosServer(OmniPaxosConfig(
                pid=pid, cluster=cc, hb_period_ms=100.0, initial_leader=5,
                connectivity_priority=connectivity_priority))
            for pid in cc.servers
        }
        sim = SimCluster(servers, net, queue, tick_ms=10.0)
        sim.start()
        sim.run_for(500)
        # Degrade server 4 (the pid tie-break favourite after 5 dies):
        # it loses its link to 1 — both get connectivity 4 of 5.
        isolate_link(sim, 4, 1)
        sim.crash(5)
        for _ in range(60):
            sim.run_for(100)
            leaders = sim.leaders()
            if leaders:
                return leaders[0]
        return None

    def run():
        return (elect_after_leader_death(False),
                elect_after_leader_death(True))

    plain, aware = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(
        "ablation_connectivity_priority",
        "election winner after leader death (server 4 degraded)",
        [f"plain pid tie-break     : server {plain} (sees 4 of 5)",
         f"connectivity-aware      : server {aware} (sees 5 of 5)"],
    )
    assert plain == 4       # highest pid wins despite worse connectivity
    assert aware in (2, 3)  # a fully-connected candidate wins


def test_ablation_multigroup_scaling(benchmark):
    """Sharding across independent Omni-Paxos groups multiplies aggregate
    throughput (TiKV/Dragonboat-style multi-group deployment)."""
    from repro.kv.store import KVCommand
    from repro.multigroup import MultiGroupCluster, ShardedKVStore

    def run():
        out = {}
        for groups in (1, 4):
            cluster = MultiGroupCluster(num_machines=3, num_groups=groups,
                                        hb_period_ms=50.0)
            cluster.wait_for_leaders()
            kv = ShardedKVStore(cluster)
            written = 0
            start = cluster.now
            # Fixed offered load per group leader per step.
            for step in range(100):
                leaders = cluster.leaders()
                for group, machine in leaders.items():
                    if machine is None:
                        continue
                    store = kv._stores[(group, machine)]
                    for j in range(8):
                        store.submit(
                            KVCommand("put", f"g{group}-s{step}-{j}", "x"),
                            cluster.now)
                        written += 1
                cluster.run_for(10)
            cluster.run_for(200)
            applied = sum(kv.shard_sizes().values())
            out[groups] = (written, applied,
                           applied / ((cluster.now - start) / 1000.0))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(
        "ablation_multigroup",
        "aggregate applied throughput vs number of groups (3 machines)",
        [f"groups={g}: offered={w} applied={a} ({tp:8.0f} ops/s)"
         for g, (w, a, tp) in out.items()],
    )
    # Four groups absorb ~4x the single group's offered load.
    assert out[4][1] > 3 * out[1][1]


def test_ablation_pipeline_scaling(benchmark):
    """Throughput scales ~linearly with CP until the pipeline saturates —
    why pipelined sequence replication matches per-slot deciding."""

    def run():
        out = {}
        for cp in (8, 32, 128):
            cfg = ExperimentConfig(protocol="omni", num_servers=3,
                                   election_timeout_ms=100.0,
                                   initial_leader=3, seed=1)
            exp = build_experiment(cfg)
            client = exp.make_client(concurrent_proposals=cp)
            exp.cluster.run_for(run_duration_ms())
            out[cp] = client.tracker.throughput(500, exp.cluster.now)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("ablation_pipeline",
                "throughput vs concurrent proposals (CP)",
                [f"cp={cp:4d}: {tp:10.0f} ops/s" for cp, tp in out.items()])
    assert out[32] > 2 * out[8]
    assert out[128] > 2 * out[32]
