"""Legacy setup shim.

The metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on older setuptools/pip toolchains that lack
PEP 660 editable-wheel support.
"""

from setuptools import setup

setup()
