"""Fig-8-style fail-slow leader experiments (gray failure, ROADMAP item 5).

The paper's Figure 8 measures downtime under *partitions*; this module
runs the same shape of experiment under the classic production failure the
paper does not model: a **fail-slow leader** — alive, message-responsive,
heartbeating, yet 100× slow on its timers and CPU. The run:

1. builds a cluster with a seeded leader and warms it up under the
   closed-loop workload,
2. makes the leader fail-slow (tick scale ×``slow_factor`` plus a
   serialized per-message CPU cost — the same knobs the chaos engine's
   ``slow_cpu`` op uses),
3. steps through the slow window watching for a *handover* (some healthy
   server claiming leadership),
4. restores the leader's speed and cools down.

The interesting comparison is per protocol × ``gray_aware``: default
heartbeat-based election (Omni BLE, Raft PV+CQ) never displaces a slow
leader that still answers promptly, so throughput stays collapsed for the
whole window; with ``gray_aware`` the leader scores *itself* degraded and
abdicates within a few heartbeat rounds (:mod:`repro.obs.health`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.sim.geo import geo_latency_map
from repro.sim.harness import ExperimentConfig, build_experiment

#: The seeded leader that goes fail-slow (matches scenarios.LEADER).
SLOW_LEADER = 3


@dataclass(frozen=True)
class FailSlowResult:
    """Measurements from one fail-slow leader run."""

    protocol: str
    gray_aware: bool
    election_timeout_ms: float
    slow_factor: float
    slow_at_ms: float
    slow_end_ms: float
    #: Longest client-visible gap during the slow window (ms).
    downtime_ms: float
    #: Onset-to-first-decided-reply, or None if nothing decided at all.
    recovery_ms: Optional[float]
    decided_before_slow: int
    decided_during_slow: int
    decided_after_heal: int
    #: When a *healthy* server first claimed leadership after onset (ms
    #: since onset), or None if the slow leader held on throughout.
    handover_ms: Optional[float]
    #: Whether the slow leader stopped claiming leadership before heal.
    abdicated: bool
    leaders_at_end: Tuple[int, ...]
    #: Decided replies per second before onset and during the window.
    throughput_before_per_s: float
    throughput_during_per_s: float

    @property
    def downtime_in_timeouts(self) -> float:
        return self.downtime_ms / self.election_timeout_ms

    @property
    def throughput_dip(self) -> float:
        """Fraction of pre-onset throughput lost during the slow window
        (1.0 = fully stalled, 0.0 = unaffected)."""
        if self.throughput_before_per_s <= 0:
            return 0.0
        return max(
            0.0,
            1.0 - self.throughput_during_per_s / self.throughput_before_per_s,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "gray_aware": self.gray_aware,
            "election_timeout_ms": self.election_timeout_ms,
            "slow_factor": self.slow_factor,
            "downtime_ms": round(self.downtime_ms, 3),
            "recovery_ms": (
                None if self.recovery_ms is None
                else round(self.recovery_ms, 3)
            ),
            "decided_during_slow": self.decided_during_slow,
            "handover_ms": (
                None if self.handover_ms is None
                else round(self.handover_ms, 3)
            ),
            "abdicated": self.abdicated,
            "throughput_before_per_s": round(self.throughput_before_per_s, 3),
            "throughput_during_per_s": round(self.throughput_during_per_s, 3),
            "throughput_dip": round(self.throughput_dip, 3),
        }


def run_failslow_scenario(
    protocol: str,
    gray_aware: bool = False,
    election_timeout_ms: float = 100.0,
    slow_factor: float = 100.0,
    per_msg_ms: float = 5.0,
    slow_duration_ms: Optional[float] = None,
    warmup_ms: Optional[float] = None,
    cooldown_ms: Optional[float] = None,
    concurrent_proposals: int = 8,
    seed: int = 0,
    num_servers: int = 5,
    geo: Optional[str] = None,
    obs=None,
) -> FailSlowResult:
    """Run one fail-slow-leader cell and return its measurements.

    ``geo`` names a latency map from :data:`repro.sim.geo.GEO_MAPS` to run
    the experiment in a geo-replicated environment. ``obs`` is an optional
    enabled :class:`~repro.obs.registry.MetricsRegistry`, through which
    the run's events reach the series/timeline/flight tooling.
    """
    if slow_factor < 1.0:
        raise ConfigError("slow_factor must be >= 1 (this is a slowdown)")
    timeout = election_timeout_ms
    if slow_duration_ms is None:
        slow_duration_ms = max(40.0 * timeout, 4_000.0)
    if warmup_ms is None:
        warmup_ms = max(10.0 * timeout, 1_000.0)
    if cooldown_ms is None:
        cooldown_ms = max(10.0 * timeout, 1_000.0)
    servers = tuple(range(1, num_servers + 1))
    cfg = ExperimentConfig(
        protocol=protocol,
        num_servers=num_servers,
        election_timeout_ms=timeout,
        seed=seed,
        initial_leader=SLOW_LEADER,
        latency_map=geo_latency_map(servers, geo) if geo else {},
        gray_aware=gray_aware,
    )
    exp = build_experiment(cfg, obs=obs)
    cluster = exp.cluster
    client = exp.make_client(concurrent_proposals=concurrent_proposals)
    cluster.run_for(warmup_ms)

    decided_before = client.decided_count
    slow_at = cluster.now
    handle = cluster.push_tick_scale(SLOW_LEADER, slow_factor)
    cluster.set_msg_cost(SLOW_LEADER, per_msg_ms)

    # Step through the slow window in election-timeout slices, watching
    # for the first moment a healthy server claims leadership.
    handover: Optional[float] = None
    end_at = slow_at + slow_duration_ms
    while cluster.now < end_at:
        cluster.run_until(min(cluster.now + timeout, end_at))
        if handover is None:
            healthy = [p for p in cluster.leaders() if p != SLOW_LEADER]
            if healthy:
                handover = cluster.now - slow_at
    slow_end = cluster.now
    abdicated = SLOW_LEADER not in cluster.leaders()

    cluster.pop_tick_scale(SLOW_LEADER, handle)
    cluster.set_msg_cost(SLOW_LEADER, 0.0)
    cluster.run_for(cooldown_ms)

    tracker = client.tracker
    during = tracker.count_between(slow_at, slow_end)
    return FailSlowResult(
        protocol=protocol,
        gray_aware=gray_aware,
        election_timeout_ms=timeout,
        slow_factor=slow_factor,
        slow_at_ms=slow_at,
        slow_end_ms=slow_end,
        downtime_ms=tracker.downtime(slow_at, slow_end),
        recovery_ms=tracker.recovery_time(slow_at, slow_end),
        decided_before_slow=decided_before,
        decided_during_slow=during,
        decided_after_heal=tracker.count_between(slow_end, cluster.now),
        handover_ms=handover,
        abdicated=abdicated,
        leaders_at_end=tuple(cluster.leaders()),
        throughput_before_per_s=(
            decided_before / (slow_at / 1000.0) if slow_at > 0 else 0.0
        ),
        throughput_during_per_s=(
            during / (slow_duration_ms / 1000.0)
            if slow_duration_ms > 0 else 0.0
        ),
    )


#: The fig8-fail-slow comparison grid: heartbeat-based election vs the
#: gray-aware variants, over the protocols that have a reaction hook.
COMPARISON_CELLS: Tuple[Tuple[str, bool], ...] = (
    ("omni", False),
    ("omni", True),
    ("raft_pvcq", False),
    ("raft_pvcq", True),
)


def run_failslow_comparison(
    election_timeout_ms: float = 100.0,
    slow_factor: float = 100.0,
    slow_duration_ms: Optional[float] = None,
    seed: int = 0,
    num_servers: int = 5,
    geo: Optional[str] = None,
    cells: Tuple[Tuple[str, bool], ...] = COMPARISON_CELLS,
) -> List[FailSlowResult]:
    """Run the full comparison grid (one seed) and return every cell."""
    return [
        run_failslow_scenario(
            protocol,
            gray_aware=gray_aware,
            election_timeout_ms=election_timeout_ms,
            slow_factor=slow_factor,
            slow_duration_ms=slow_duration_ms,
            seed=seed,
            num_servers=num_servers,
            geo=geo,
        )
        for protocol, gray_aware in cells
    ]
