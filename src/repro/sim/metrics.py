"""Measurement instruments for the evaluation harness.

The paper reports three kinds of measurements:

- decided-proposal throughput (total and per 5 s window, Figures 7, 8c, 9),
- *down-time*: "the duration for when the client received no decided
  replies" (Figure 8a/8b),
- per-server outgoing IO volume, peak per 5 s window (section 7.3).

:class:`DecidedTracker` and :class:`IOTracker` compute exactly those from
raw event streams.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError
from repro.omni.messages import Envelope


class DecidedTracker:
    """Records timestamps of decided client replies and derives metrics."""

    def __init__(self) -> None:
        self._times: List[float] = []

    def record(self, now_ms: float) -> None:
        """Record one decided reply at ``now_ms`` (must be non-decreasing)."""
        self._times.append(now_ms)

    @property
    def count(self) -> int:
        return len(self._times)

    def count_between(self, start_ms: float, end_ms: float) -> int:
        """Number of decided replies in ``[start_ms, end_ms)``."""
        lo = bisect.bisect_left(self._times, start_ms)
        hi = bisect.bisect_left(self._times, end_ms)
        return hi - lo

    def throughput(self, start_ms: float, end_ms: float) -> float:
        """Decided replies per second over ``[start_ms, end_ms)``."""
        duration_s = (end_ms - start_ms) / 1000.0
        if duration_s <= 0:
            return 0.0
        return self.count_between(start_ms, end_ms) / duration_s

    def windowed_counts(self, start_ms: float, end_ms: float,
                        window_ms: float = 5000.0) -> List[Tuple[float, int]]:
        """``(window_start, decided_count)`` per window — Figure 9's series."""
        if window_ms <= 0:
            raise ConfigError("window_ms must be positive")
        out = []
        t = start_ms
        while t < end_ms:
            hi = min(t + window_ms, end_ms)
            out.append((t, self.count_between(t, hi)))
            t = hi
        return out

    def downtime(self, start_ms: float, end_ms: float) -> float:
        """The longest gap with no decided replies within ``[start, end]``.

        This matches the paper's definition for Figure 8a/8b: the duration
        for which the client received no decided replies. Gaps are clipped
        to the observation interval; if nothing was decided at all, the
        whole interval is down-time.
        """
        gap_start, gap_end = self.downtime_window(start_ms, end_ms)
        return gap_end - gap_start

    def downtime_window(self, start_ms: float,
                        end_ms: float) -> Tuple[float, float]:
        """The ``(gap_start, gap_end)`` interval whose length
        :meth:`downtime` reports — lets timelines draw *where* the
        down-time happened, not just how long it was. Ties go to the
        earliest gap."""
        lo = bisect.bisect_left(self._times, start_ms)
        hi = bisect.bisect_left(self._times, end_ms)
        inside = self._times[lo:hi]
        if not inside:
            return (start_ms, end_ms)
        best = (start_ms, inside[0])
        for prev, cur in zip(inside, inside[1:]):
            if cur - prev > best[1] - best[0]:
                best = (prev, cur)
        if end_ms - inside[-1] > best[1] - best[0]:
            best = (inside[-1], end_ms)
        return best

    def recovery_time(self, partition_at_ms: float,
                      end_ms: float) -> Optional[float]:
        """Time from the partition until the first decided reply after it.

        Returns None when nothing was decided after the partition (deadlock).
        """
        idx = bisect.bisect_right(self._times, partition_at_ms)
        if idx >= len(self._times) or self._times[idx] > end_ms:
            return None
        return self._times[idx] - partition_at_ms


class IOTracker:
    """Accounts outgoing bytes per server, total and per time window."""

    def __init__(self, window_ms: float = 5000.0):
        self._window_ms = window_ms
        self._total: Dict[int, int] = defaultdict(int)
        self._windows: Dict[int, Dict[int, int]] = defaultdict(lambda: defaultdict(int))

    def record(self, src: int, nbytes: int, now_ms: float) -> None:
        self._total[src] += nbytes
        self._windows[src][int(now_ms // self._window_ms)] += nbytes

    def total_bytes(self, pid: int) -> int:
        return self._total.get(pid, 0)

    def total_all(self) -> int:
        return sum(self._total.values())

    def peak_window_bytes(self, pid: int) -> int:
        """The busiest window's outgoing bytes for ``pid`` (paper: 'peak IO
        for the leader over a 5s-window')."""
        windows = self._windows.get(pid)
        if not windows:
            return 0
        return max(windows.values())

    def window_series(self, pid: int) -> List[Tuple[float, int]]:
        """``(window_start_ms, bytes)`` sorted series for one server."""
        windows = self._windows.get(pid, {})
        return [(k * self._window_ms, v) for k, v in sorted(windows.items())]


#: Per-message framing overhead assumed for payloads that cannot size
#: themselves (matches ``_HEADER`` in :mod:`repro.omni.messages`).
_FALLBACK_PAYLOAD_BYTES = 24
#: The envelope's own framing cost (config id + component tag).
_ENVELOPE_HEADER_BYTES = 6


def wire_size(msg) -> int:
    """Approximate serialized size of any message.

    Messages that implement ``wire_size()`` answer for themselves. An
    :class:`~repro.omni.messages.Envelope` around a payload *without* a
    sizer is accounted as envelope header plus the payload fallback —
    previously such envelopes were flattened to 24 bytes total, which
    systematically undercounted IOTracker numbers for unsized messages.
    """
    if isinstance(msg, Envelope):
        return _ENVELOPE_HEADER_BYTES + wire_size(msg.payload)
    sizer = getattr(msg, "wire_size", None)
    if sizer is not None:
        return sizer()
    return _FALLBACK_PAYLOAD_BYTES
