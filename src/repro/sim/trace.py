"""Message tracing for debugging protocol runs.

Attach a :class:`MessageTrace` to a :class:`~repro.sim.network.SimNetwork`
and every sent message is recorded as a :class:`TraceEvent` in a bounded
ring buffer. Filters select by server, message type, or time window, and
:meth:`render` produces the compact timeline that makes protocol debugging
bearable::

    trace = MessageTrace.attach(exp.network, capacity=10_000)
    ...run the experiment...
    print(trace.render(between=(4_000, 4_200), types=("Prepare", "Promise")))

Tracing wraps the network's send path non-invasively, so it can be attached
to any already-built experiment.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Any, Deque, Iterable, List, Optional, Sequence, Tuple

from repro.omni.messages import Envelope
from repro.sim.network import SimNetwork


@dataclass(frozen=True)
class TraceEvent:
    """One sent message."""

    at_ms: float
    src: int
    dst: int
    kind: str
    detail: str

    def __str__(self) -> str:
        return (f"{self.at_ms:10.1f}ms  {self.src}->{self.dst}  "
                f"{self.kind:<16s} {self.detail}")


def _describe(msg: Any) -> Tuple[str, str]:
    """(kind, one-line detail) for any protocol message."""
    payload = msg.payload if isinstance(msg, Envelope) else msg
    kind = type(payload).__name__
    fields = []
    for attr in ("n", "term", "ballot", "view", "round", "seq",
                 "decided_idx", "log_idx", "sync_idx", "prev_idx",
                 "leader_commit", "trimmed_idx", "config_id",
                 "from_idx", "to_idx"):
        value = getattr(payload, attr, None)
        if value is not None:
            fields.append(f"{attr}={value}")
    entries = getattr(payload, "entries", None)
    if entries is None:
        entries = getattr(payload, "suffix", None)
    if entries is not None:
        fields.append(f"|entries|={len(entries)}")
    return kind, " ".join(fields)


class MessageTrace:
    """A bounded ring buffer of sent messages."""

    def __init__(self, capacity: int = 10_000):
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._enabled = True
        self._network: Optional[SimNetwork] = None
        self._original_send = None
        self._wrapper = None

    # -- attachment ----------------------------------------------------------

    @classmethod
    def attach(cls, network: SimNetwork, capacity: int = 10_000) -> "MessageTrace":
        """Wrap ``network.send`` so every message is recorded.

        Keep the returned trace and call :meth:`detach` to restore the
        original send path. Traces stack; detach in reverse attach order.
        """
        trace = cls(capacity=capacity)
        original = network.send

        def traced_send(src: int, dst: int, msg: Any) -> None:
            trace.record(network.now, src, dst, msg)
            original(src, dst, msg)

        network.send = traced_send  # type: ignore[method-assign]
        trace._network = network
        trace._original_send = original
        trace._wrapper = traced_send
        return trace

    def detach(self) -> None:
        """Restore the network's original ``send``, stopping the trace.

        Raises :class:`RuntimeError` when another wrapper was attached on
        top of this one and is still active (detach LIFO), or when the
        trace was never attached. Idempotent once detached.
        """
        if self._network is None:
            return
        if self._network.send is not self._wrapper:
            raise RuntimeError(
                "cannot detach: network.send was wrapped again after this "
                "trace attached (detach the newer wrapper first)"
            )
        self._network.send = self._original_send  # type: ignore[method-assign]
        self._network = None
        self._original_send = None
        self._wrapper = None

    @property
    def attached(self) -> bool:
        return self._network is not None

    def record(self, at_ms: float, src: int, dst: int, msg: Any) -> None:
        if not self._enabled:
            return
        kind, detail = _describe(msg)
        self._events.append(TraceEvent(at_ms, src, dst, kind, detail))

    def pause(self) -> None:
        self._enabled = False

    def resume(self) -> None:
        self._enabled = True

    # -- querying --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def events(
        self,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        involving: Optional[int] = None,
        types: Optional[Sequence[str]] = None,
        between: Optional[Tuple[float, float]] = None,
    ) -> List[TraceEvent]:
        """Filtered view of the recorded events, oldest first."""
        out = []
        for event in self._events:
            if src is not None and event.src != src:
                continue
            if dst is not None and event.dst != dst:
                continue
            if involving is not None and involving not in (event.src, event.dst):
                continue
            if types is not None and event.kind not in types:
                continue
            if between is not None and not (between[0] <= event.at_ms < between[1]):
                continue
            out.append(event)
        return out

    def counts_by_type(self) -> Counter:
        """Message volume per type — a quick profile of a run."""
        return Counter(event.kind for event in self._events)

    def render(self, limit: int = 100, **filters) -> str:
        """A printable timeline of the (filtered) last ``limit`` events."""
        selected = self.events(**filters)[-limit:]
        if not selected:
            return "(no matching events)"
        return "\n".join(str(event) for event in selected)
