"""Message tracing for debugging protocol runs.

Attach a :class:`MessageTrace` to a :class:`~repro.sim.network.SimNetwork`
and every sent message is recorded as a :class:`TraceEvent` in a bounded
ring buffer. Filters select by server, message type, or time window, and
:meth:`render` produces the compact timeline that makes protocol debugging
bearable::

    trace = MessageTrace.attach(exp.network, capacity=10_000)
    ...run the experiment...
    print(trace.render(between=(4_000, 4_200), types=("Prepare", "Promise")))

Tracing wraps the network's send path non-invasively, so it can be attached
to any already-built experiment.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass

from repro.util.compat import SLOTTED
from typing import Any, Deque, Iterable, List, Optional, Sequence, Tuple

from repro.omni.messages import Envelope
from repro.sim.network import SimNetwork


@dataclass(frozen=True, **SLOTTED)
class TraceEvent:
    """One sent (or dropped) message.

    ``kind`` is the payload type name for sends, or ``drop:<reason>``
    when the link model discarded the message (``link_down``, ``loss``,
    ``in_flight_cut``); for drops ``detail`` still describes the payload,
    so timelines show what vanished and why. ``trace_id`` is the causal
    trace carried by the message's envelope, when present.
    """

    at_ms: float
    src: int
    dst: int
    kind: str
    detail: str
    trace_id: str = ""

    def __str__(self) -> str:
        line = (f"{self.at_ms:10.1f}ms  {self.src}->{self.dst}  "
                f"{self.kind:<16s} {self.detail}")
        if self.trace_id:
            line += f"  ~{self.trace_id}"
        return line


def _trace_id_of(msg: Any) -> str:
    """The envelope's causal trace id, when the message carries one."""
    ctx = getattr(msg, "trace", None)
    return ctx.trace_id if ctx is not None else ""


def _describe(msg: Any) -> Tuple[str, str]:
    """(kind, one-line detail) for any protocol message."""
    payload = msg.payload if isinstance(msg, Envelope) else msg
    kind = type(payload).__name__
    fields = []
    for attr in ("n", "term", "ballot", "view", "round", "seq",
                 "decided_idx", "log_idx", "sync_idx", "prev_idx",
                 "leader_commit", "trimmed_idx", "config_id",
                 "from_idx", "to_idx"):
        value = getattr(payload, attr, None)
        if value is not None:
            fields.append(f"{attr}={value}")
    entries = getattr(payload, "entries", None)
    if entries is None:
        entries = getattr(payload, "suffix", None)
    if entries is not None:
        fields.append(f"|entries|={len(entries)}")
    return kind, " ".join(fields)


class MessageTrace:
    """A bounded ring buffer of sent messages."""

    def __init__(self, capacity: int = 10_000):
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._enabled = True
        self._network: Optional[SimNetwork] = None
        self._original_send = None
        self._wrapper = None
        self._original_drop = None
        self._drop_wrapper = None

    # -- attachment ----------------------------------------------------------

    @classmethod
    def attach(cls, network: SimNetwork, capacity: int = 10_000) -> "MessageTrace":
        """Wrap ``network.send`` so every message is recorded, and hook the
        network's drop callback so link drops appear as ``drop:<reason>``
        events.

        Keep the returned trace and call :meth:`detach` to restore the
        original send path. Traces stack; detach in reverse attach order.
        """
        trace = cls(capacity=capacity)
        original = network.send
        original_drop = network.drop_callback

        def traced_send(src: int, dst: int, msg: Any) -> None:
            trace.record(network.now, src, dst, msg)
            original(src, dst, msg)

        def traced_drop(at_ms: float, src: int, dst: int, msg: Any,
                        reason: str) -> None:
            trace.record_drop(at_ms, src, dst, msg, reason)
            if original_drop is not None:
                original_drop(at_ms, src, dst, msg, reason)

        network.send = traced_send  # type: ignore[method-assign]
        network.drop_callback = traced_drop
        trace._network = network
        trace._original_send = original
        trace._wrapper = traced_send
        trace._original_drop = original_drop
        trace._drop_wrapper = traced_drop
        return trace

    def detach(self) -> None:
        """Restore the network's original ``send``, stopping the trace.

        Raises :class:`RuntimeError` when another wrapper was attached on
        top of this one and is still active (detach LIFO), or when the
        trace was never attached. Idempotent once detached.
        """
        if self._network is None:
            return
        if self._network.send is not self._wrapper:
            raise RuntimeError(
                "cannot detach: network.send was wrapped again after this "
                "trace attached (detach the newer wrapper first)"
            )
        self._network.send = self._original_send  # type: ignore[method-assign]
        if self._network.drop_callback is self._drop_wrapper:
            self._network.drop_callback = self._original_drop
        self._network = None
        self._original_send = None
        self._wrapper = None
        self._original_drop = None
        self._drop_wrapper = None

    @property
    def attached(self) -> bool:
        return self._network is not None

    def record(self, at_ms: float, src: int, dst: int, msg: Any) -> None:
        if not self._enabled:
            return
        kind, detail = _describe(msg)
        self._events.append(
            TraceEvent(at_ms, src, dst, kind, detail, _trace_id_of(msg)))

    def record_drop(self, at_ms: float, src: int, dst: int, msg: Any,
                    reason: str) -> None:
        """Record a message the link model discarded (kind ``drop:<reason>``)."""
        if not self._enabled:
            return
        kind, detail = _describe(msg)
        self._events.append(TraceEvent(
            at_ms, src, dst, f"drop:{reason}", f"{kind} {detail}".rstrip(),
            _trace_id_of(msg)))

    def pause(self) -> None:
        self._enabled = False

    def resume(self) -> None:
        self._enabled = True

    # -- querying --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def events(
        self,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        involving: Optional[int] = None,
        types: Optional[Sequence[str]] = None,
        between: Optional[Tuple[float, float]] = None,
    ) -> List[TraceEvent]:
        """Filtered view of the recorded events, oldest first."""
        out = []
        for event in self._events:
            if src is not None and event.src != src:
                continue
            if dst is not None and event.dst != dst:
                continue
            if involving is not None and involving not in (event.src, event.dst):
                continue
            if types is not None and event.kind not in types:
                continue
            if between is not None and not (between[0] <= event.at_ms < between[1]):
                continue
            out.append(event)
        return out

    def counts_by_type(self) -> Counter:
        """Message volume per type — a quick profile of a run."""
        return Counter(event.kind for event in self._events)

    def render(self, limit: int = 100, **filters) -> str:
        """A printable timeline of the (filtered) last ``limit`` events."""
        selected = self.events(**filters)[-limit:]
        if not selected:
            return "(no matching events)"
        return "\n".join(str(event) for event in selected)
