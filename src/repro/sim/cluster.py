"""SimCluster: wires protocol replicas, the network, and observers.

Any mapping of ``pid -> Replica`` can be driven — Omni-Paxos servers, Raft,
Multi-Paxos, or VR — which is what makes all the comparative experiments of
the paper runnable from one harness.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigError, StorageError
from repro.replica import Replica
from repro.sim.events import EventQueue
from repro.sim.network import SimNetwork

DecidedObserver = Callable[[int, int, Any, float], None]


class SimCluster:
    """Drives a set of replicas over a simulated network."""

    def __init__(
        self,
        replicas: Dict[int, Replica],
        network: SimNetwork,
        queue: EventQueue,
        tick_ms: float = 10.0,
    ):
        if not replicas:
            raise ConfigError("a cluster needs at least one replica")
        if tick_ms <= 0:
            raise ConfigError("tick_ms must be positive")
        self._replicas = dict(replicas)
        self._network = network
        self._queue = queue
        self._tick_ms = tick_ms
        self._crashed: Set[int] = set()
        self._started = False
        self._decided_observers: List[DecidedObserver] = []
        #: Per-server *effective* tick-interval multiplier (what the tick
        #: loop reads): base scale x the product of pushed layers. A server
        #: with scale 2.0 checks its timers half as often, so its election
        #: timeouts fire late relative to its peers.
        self._tick_scale: Dict[int, float] = {}
        #: Absolute base scale per pid (:meth:`set_tick_scale`).
        self._tick_base: Dict[int, float] = {}
        #: Stacked multiplicative layers per pid: ``{pid: {handle: factor}}``
        #: (:meth:`push_tick_scale` / :meth:`pop_tick_scale`). Keeping each
        #: injection as its own layer lets ``clock_skew`` and ``slow_cpu``
        #: target the same server and revert in any order without one
        #: revert clobbering the other.
        self._tick_layers: Dict[int, Dict[int, float]] = {}
        self._tick_layer_seq = 0
        #: One-shot extra delay (ms) added to a server's *next* tick — the
        #: sim model of a disk stall blocking the timer loop (``slow_disk``).
        self._tick_stall: Dict[int, float] = {}
        #: Per-server CPU cost (ms) to process one inbound message. Empty in
        #: the default model (message handling is instantaneous); a fail-slow
        #: server serializes arrivals through a busy-until gate, so its
        #: replies lag and its commit pipeline backs up while heartbeat-level
        #: liveness stays green (the gray-failure signature).
        self._msg_cost: Dict[int, float] = {}
        self._cpu_free_at: Dict[int, float] = {}
        #: Servers crashed by a failed storage write (fail-recovery model).
        self.storage_crashes = 0
        network.on_deliver(self._deliver)
        network.on_session_restored(self._session_restored)

    # -- accessors -----------------------------------------------------------

    @property
    def now(self) -> float:
        return self._queue.now

    @property
    def queue(self) -> EventQueue:
        return self._queue

    @property
    def network(self) -> SimNetwork:
        return self._network

    @property
    def pids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._replicas))

    def replica(self, pid: int) -> Replica:
        return self._replicas[pid]

    def add_replica(self, pid: int, replica: Replica) -> None:
        """Register a server that joins later (reconfiguration targets)."""
        if pid in self._replicas:
            raise ConfigError(f"pid {pid} already registered")
        self._replicas[pid] = replica
        if self._started:
            replica.start(self._queue.now)
            self._schedule_tick(pid)
            self._flush(pid)

    def replace_replica(self, pid: int, replica: Replica) -> None:
        """Swap the object driven as ``pid`` for a fresh one.

        This models a *wiped* restart (disk replaced, fail-recovery model
        violated on purpose): the new replica starts from whatever state it
        was constructed with. The running tick loop keeps driving ``pid``
        because it looks the object up by pid on every tick.
        """
        if pid not in self._replicas:
            raise ConfigError(f"unknown pid {pid}")
        self._replicas[pid] = replica
        self._crashed.discard(pid)
        if self._started:
            replica.start(self._queue.now)
            self._flush(pid)

    def is_crashed(self, pid: int) -> bool:
        return pid in self._crashed

    def leaders(self) -> List[int]:
        """Every alive server currently claiming leadership.

        Under partial connectivity more than one server may claim the lead
        (e.g. the stale leader in the chained scenario) — callers decide
        what to do with the set.
        """
        return [
            pid
            for pid, replica in sorted(self._replicas.items())
            if pid not in self._crashed and replica.is_leader
        ]

    def on_decided(self, observer: DecidedObserver) -> None:
        """Register ``observer(pid, global_idx, entry, now)`` for every
        newly decided entry at every server."""
        self._decided_observers.append(observer)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for pid, replica in sorted(self._replicas.items()):
            replica.start(self._queue.now)
        for pid in sorted(self._replicas):
            self._flush(pid)
            self._schedule_tick(pid)

    def run_for(self, duration_ms: float) -> None:
        self._queue.run_for(duration_ms)

    def run_until(self, until_ms: float) -> None:
        self._queue.run_until(until_ms)

    # -- client-side API ------------------------------------------------------

    def propose(self, pid: int, entry: Any) -> None:
        """Propose ``entry`` at server ``pid`` (raises if it cannot)."""
        replica = self._alive(pid)
        try:
            replica.propose(entry, self._queue.now)
        except StorageError:
            self._handle_storage_failure(pid)
            raise
        self._flush(pid)

    def propose_batch(self, pid: int, entries: List[Any]) -> None:
        replica = self._alive(pid)
        try:
            replica.propose_batch(entries, self._queue.now)
        except StorageError:
            self._handle_storage_failure(pid)
            raise
        self._flush(pid)

    def reconfigure(self, pid: int, servers: Tuple[int, ...]) -> None:
        """Propose a membership change at server ``pid`` (leader)."""
        replica = self._alive(pid)
        replica.propose_reconfiguration(tuple(servers), now_ms=self._queue.now)
        self._flush(pid)

    # -- failure injection ------------------------------------------------------

    def crash(self, pid: int) -> None:
        """Crash a server: it loses volatile state and goes silent."""
        if pid not in self._replicas:
            raise ConfigError(f"unknown pid {pid}")
        self._crashed.add(pid)
        self._replicas[pid].crash()
        # A crashed process's queued-but-unsent messages die with it.
        self._replicas[pid].take_outbox()

    def recover(self, pid: int) -> None:
        """Restart a crashed server from its persistent state."""
        if pid not in self._crashed:
            return
        self._crashed.discard(pid)
        self._replicas[pid].recover(self._queue.now)
        self._flush(pid)

    def set_link(self, a: int, b: int, up: bool) -> None:
        self._network.set_link(a, b, up)

    def heal_all_links(self) -> None:
        self._network.heal_all()

    def set_tick_scale(self, pid: int, factor: float) -> None:
        """Stretch (factor > 1) or shrink (factor < 1) ``pid``'s tick interval.

        Models clock skew at the timer-check granularity: a server with a
        slow clock polls its election/heartbeat deadlines less often, so
        they fire late relative to its peers. ``factor=1.0`` restores the
        nominal rate; takes effect from the next scheduled tick.

        This is the *absolute* form: it sets the base scale and discards
        any layers pushed with :meth:`push_tick_scale` (so healing a
        cluster with ``set_tick_scale(pid, 1.0)`` really restores nominal
        timing no matter what injections were stacked).
        """
        if pid not in self._replicas:
            raise ConfigError(f"unknown pid {pid}")
        if factor <= 0:
            raise ConfigError("tick scale factor must be positive")
        self._tick_layers.pop(pid, None)
        if factor == 1.0:
            self._tick_base.pop(pid, None)
        else:
            self._tick_base[pid] = factor
        self._recompute_tick_scale(pid)

    def push_tick_scale(self, pid: int, factor: float) -> int:
        """Stack a multiplicative tick-scale layer on ``pid``; returns a
        handle for :meth:`pop_tick_scale`.

        Layers compose: ``clock_skew`` x2 stacked on ``slow_cpu`` x100
        yields an effective x200 interval, and popping either layer (in any
        order) leaves exactly the other in force — the revert-ordering
        guarantee the self-reverting chaos ops rely on.
        """
        if pid not in self._replicas:
            raise ConfigError(f"unknown pid {pid}")
        if factor <= 0:
            raise ConfigError("tick scale factor must be positive")
        self._tick_layer_seq += 1
        handle = self._tick_layer_seq
        self._tick_layers.setdefault(pid, {})[handle] = factor
        self._recompute_tick_scale(pid)
        return handle

    def pop_tick_scale(self, pid: int, handle: int) -> None:
        """Remove one pushed layer (no-op if already gone — e.g. cleared
        wholesale by a heal's ``set_tick_scale(pid, 1.0)``)."""
        layers = self._tick_layers.get(pid)
        if not layers:
            return
        layers.pop(handle, None)
        if not layers:
            self._tick_layers.pop(pid, None)
        self._recompute_tick_scale(pid)

    def tick_scale_of(self, pid: int) -> float:
        """The effective tick-interval multiplier currently applied."""
        return self._tick_scale.get(pid, 1.0)

    def _recompute_tick_scale(self, pid: int) -> None:
        scale = self._tick_base.get(pid, 1.0)
        for factor in self._tick_layers.get(pid, {}).values():
            scale *= factor
        if scale == 1.0:
            self._tick_scale.pop(pid, None)
        else:
            self._tick_scale[pid] = scale

    def add_tick_stall(self, pid: int, stall_ms: float) -> None:
        """Delay ``pid``'s next timer tick by an extra ``stall_ms``.

        The sim model of a blocking disk write (``slow_disk``): the event
        loop is stuck in fsync, so timers are serviced late. Stalls
        accumulate until the next tick consumes them; message *delivery*
        is not affected (the network thread keeps draining), which is what
        keeps the failure gray rather than fail-stop.
        """
        if pid not in self._replicas:
            raise ConfigError(f"unknown pid {pid}")
        if stall_ms < 0:
            raise ConfigError("stall must be non-negative")
        self._tick_stall[pid] = self._tick_stall.get(pid, 0.0) + stall_ms

    def clear_tick_stall(self, pid: int) -> None:
        """Drop any accumulated not-yet-consumed tick stall (heals use
        this so a pending fsync backlog doesn't leak past the heal)."""
        self._tick_stall.pop(pid, None)

    def set_msg_cost(self, pid: int, per_msg_ms: float) -> None:
        """Charge ``pid`` this much CPU time (ms) per inbound message.

        ``0`` restores the default instantaneous handling. While set,
        arrivals are serialized through a busy-until gate: a fail-slow CPU
        still answers everything — late — so commit throughput through
        that server sags while heartbeats keep it looking alive.
        """
        if pid not in self._replicas:
            raise ConfigError(f"unknown pid {pid}")
        if per_msg_ms < 0:
            raise ConfigError("per-message cost must be non-negative")
        if per_msg_ms == 0.0:
            self._msg_cost.pop(pid, None)
            self._cpu_free_at.pop(pid, None)
        else:
            self._msg_cost[pid] = per_msg_ms

    def msg_cost_of(self, pid: int) -> float:
        """The per-message CPU cost currently charged to ``pid`` (ms)."""
        return self._msg_cost.get(pid, 0.0)

    # -- internals ---------------------------------------------------------------

    def _alive(self, pid: int) -> Replica:
        if pid not in self._replicas:
            raise ConfigError(f"unknown pid {pid}")
        if pid in self._crashed:
            raise ConfigError(f"server {pid} is crashed")
        return self._replicas[pid]

    def _handle_storage_failure(self, pid: int) -> None:
        """Fail-recovery model: a server whose disk write failed crashes.

        The exception surfaced mid-handler, so any messages it had queued
        this turn reflect un-persisted state — they die with the process.
        """
        self.storage_crashes += 1
        self._crashed.add(pid)
        self._replicas[pid].crash()
        self._replicas[pid].take_outbox()

    def _schedule_tick(self, pid: int) -> None:
        def tick() -> None:
            if pid in self._replicas:
                if pid not in self._crashed:
                    try:
                        self._replicas[pid].tick(self._queue.now)
                    except StorageError:
                        self._handle_storage_failure(pid)
                    else:
                        self._flush(pid)
                interval = self._tick_ms * self._tick_scale.get(pid, 1.0)
                if self._tick_stall:
                    interval += self._tick_stall.pop(pid, 0.0)
                self._queue.schedule_in(interval, tick)

        self._queue.schedule_in(self._tick_ms * self._tick_scale.get(pid, 1.0), tick)

    def _deliver(self, src: int, dst: int, msg: Any) -> None:
        # Hottest callback in the simulator: one call per delivered message.
        # The empty-dict check keeps the default path one falsy test away
        # from the historical behaviour (bit-identical schedules).
        if self._msg_cost:
            cost = self._msg_cost.get(dst)
            if cost:
                # Serialize through the slowed CPU: handling starts when
                # the previous message finishes, and takes ``cost`` ms.
                now = self._queue.now
                done = max(now, self._cpu_free_at.get(dst, 0.0)) + cost
                self._cpu_free_at[dst] = done
                self._queue.schedule(
                    done, lambda: self._deliver_now(src, dst, msg)
                )
                return
        self._deliver_now(src, dst, msg)

    def _deliver_now(self, src: int, dst: int, msg: Any) -> None:
        replica = self._replicas.get(dst)
        if replica is None or dst in self._crashed:
            return
        try:
            replica.on_message(src, msg, self._queue.now)
        except StorageError:
            self._handle_storage_failure(dst)
            return
        self._flush(dst)

    def _session_restored(self, a: int, b: int) -> None:
        now = self._queue.now
        for pid, peer in ((a, b), (b, a)):
            if pid in self._replicas and pid not in self._crashed:
                try:
                    self._replicas[pid].on_session_drop(peer, now)
                except StorageError:
                    self._handle_storage_failure(pid)
                    continue
                self._flush(pid)

    def _flush(self, pid: int) -> None:
        replica = self._replicas[pid]
        outbox = replica.take_outbox()
        if outbox:
            send = self._network.send
            for dst, msg in outbox:
                send(pid, dst, msg)
        decided = replica.take_decided()
        if decided and self._decided_observers:
            now = self._queue.now
            for idx, entry in decided:
                for observer in self._decided_observers:
                    observer(pid, idx, entry, now)
