"""Deterministic discrete-event simulation substrate.

The paper's experiments ran on cloud VMs with link-level partitions injected
between servers. This package reproduces that environment in virtual time:

- :mod:`repro.sim.events` — the event queue and virtual clock,
- :mod:`repro.sim.network` — per-link latency, loss and a connectivity
  matrix for partial partitions,
- :mod:`repro.sim.cluster` — wires any set of :class:`repro.replica.Replica`
  objects to the network and drives their timers,
- :mod:`repro.sim.partitions` — the three partial-connectivity scenarios of
  paper section 2 (quorum-loss, constrained election, chained),
- :mod:`repro.sim.workload` — the closed-loop client with a configurable
  number of concurrent proposals (the paper's CP parameter),
- :mod:`repro.sim.metrics` — decided-throughput windows, down-time, and
  per-server IO accounting.
"""

from repro.sim.events import EventQueue
from repro.sim.network import SimNetwork, NetworkParams
from repro.sim.cluster import SimCluster
from repro.sim.workload import ClosedLoopClient, WorkloadParams
from repro.sim.metrics import DecidedTracker, IOTracker
from repro.sim.harness import (
    PROTOCOLS,
    Experiment,
    ExperimentConfig,
    build_experiment,
    make_replica,
    wan_latency_map,
)
from repro.sim.scenarios import SCENARIOS, ScenarioResult, run_partition_scenario
from repro.sim.reconfig_experiment import (
    ReconfigResult,
    run_reconfiguration_experiment,
)
from repro.sim import partitions

__all__ = [
    "EventQueue",
    "SimNetwork",
    "NetworkParams",
    "SimCluster",
    "ClosedLoopClient",
    "WorkloadParams",
    "DecidedTracker",
    "IOTracker",
    "PROTOCOLS",
    "Experiment",
    "ExperimentConfig",
    "build_experiment",
    "make_replica",
    "wan_latency_map",
    "SCENARIOS",
    "ScenarioResult",
    "run_partition_scenario",
    "ReconfigResult",
    "run_reconfiguration_experiment",
    "partitions",
]
