"""Event queue and virtual clock for the discrete-event simulator.

Events are ``(time, seq, callback)`` triples in a binary heap. The ``seq``
tie-breaker makes execution order deterministic when events share a
timestamp, which in turn makes every experiment reproducible from its seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import ReproError


class SimulationLimitError(ReproError):
    """The simulation exceeded its configured event budget (runaway guard)."""


class EventQueue:
    """A deterministic discrete-event queue with a virtual millisecond clock."""

    def __init__(self, max_events: Optional[int] = None):
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._max_events = max_events

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, at: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at virtual time ``at`` (clamped to now)."""
        heapq.heappush(self._heap, (max(at, self._now), next(self._seq), callback))

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` milliseconds."""
        self.schedule(self._now + delay, callback)

    def run_until(self, until: float) -> None:
        """Execute events with timestamp <= ``until``; advance the clock.

        The clock lands exactly on ``until`` even if the queue drains early,
        so repeated calls tile time contiguously.
        """
        while self._heap and self._heap[0][0] <= until:
            when, _seq, callback = heapq.heappop(self._heap)
            self._now = when
            self._processed += 1
            if self._max_events is not None and self._processed > self._max_events:
                raise SimulationLimitError(
                    f"exceeded event budget of {self._max_events}"
                )
            callback()
        self._now = max(self._now, until)

    def run_for(self, duration: float) -> None:
        """Execute events for ``duration`` more virtual milliseconds."""
        self.run_until(self._now + duration)
