"""Event queue and virtual clock for the discrete-event simulator.

Events are ``(time, seq, callback)`` triples ordered by ``(time, seq)``.
The ``seq`` tie-breaker makes execution order deterministic when events
share a timestamp, which in turn makes every experiment reproducible from
its seed.

This is the simulator's innermost loop, so the implementation is tuned:

- the class is slotted and ``now`` / ``processed`` are plain attributes
  (callbacks read ``queue.now`` constantly; a property here is measurable),
- ``schedule`` / ``schedule_in`` avoid per-call allocations beyond the
  heap entry itself (a plain int sequence counter, no ``itertools.count``),
- ``run_until`` keeps the heap and the budget in locals and batches the
  ``processed`` write-back around the drain loop,
- draining a *large* backlog (>= :data:`_BULK_DRAIN_MIN` pending events)
  switches to a sort-and-scan fast path: one ``list.sort`` replaces a
  heappop cascade, and events scheduled by callbacks mid-drain go to a
  side heap that is merged in ``(time, seq)`` order. Pop order is
  bit-identical to the plain heap path.

``run_until`` is not reentrant: callbacks may ``schedule`` freely but must
not call ``run_until`` / ``run_for`` themselves.
"""

from __future__ import annotations

from heapq import heapify as _heapify, heappop as _heappop, heappush as _heappush
from typing import Callable, List, Optional, Tuple

from repro.errors import ReproError

#: Pending-event count at which ``run_until`` prefers one ``list.sort``
#: over a cascade of heappops. Typical protocol runs keep far fewer events
#: in flight and never take the bulk path; chaos preloads and message
#: storms do.
_BULK_DRAIN_MIN = 4096


class SimulationLimitError(ReproError):
    """The simulation exceeded its configured event budget (runaway guard)."""


class EventQueue:
    """A deterministic discrete-event queue with a virtual millisecond clock.

    ``now`` (current virtual time in ms) and ``processed`` (events executed
    so far) are read-only by convention: they are plain attributes for
    speed, and only the queue itself should write them.
    """

    __slots__ = ("_heap", "_seq", "now", "processed", "_max_events",
                 "bulk_drains", "limit_hits")

    def __init__(self, max_events: Optional[int] = None):
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0.0
        self.processed = 0
        self._max_events = max_events
        #: Times the sort-and-scan bulk path engaged (a backlog signal —
        #: the queue only takes it past :data:`_BULK_DRAIN_MIN` pending).
        self.bulk_drains = 0
        #: Times the event budget was exhausted (drain-budget exhaustion;
        #: each one raised :class:`SimulationLimitError`).
        self.limit_hits = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, at: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at virtual time ``at`` (clamped to now)."""
        now = self.now
        if at < now:
            at = now
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._heap, (at, seq, callback))

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` milliseconds."""
        now = self.now
        at = now + delay
        if at < now:
            at = now
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._heap, (at, seq, callback))

    def run_until(self, until: float) -> None:
        """Execute events with timestamp <= ``until``; advance the clock.

        The clock lands exactly on ``until`` even if the queue drains early,
        so repeated calls tile time contiguously.
        """
        heap = self._heap
        if len(heap) >= _BULK_DRAIN_MIN:
            self._run_bulk(until)
            return
        if heap and heap[0][0] <= until:
            processed = self.processed
            limit = self._max_events
            try:
                if limit is None:
                    while heap and heap[0][0] <= until:
                        at, _seq, callback = _heappop(heap)
                        self.now = at
                        processed += 1
                        callback()
                else:
                    while heap and heap[0][0] <= until:
                        at, _seq, callback = _heappop(heap)
                        self.now = at
                        processed += 1
                        if processed > limit:
                            self.limit_hits += 1
                            raise SimulationLimitError(
                                f"exceeded event budget of {limit}"
                            )
                        callback()
            finally:
                self.processed = processed
        if self.now < until:
            self.now = until

    def _run_bulk(self, until: float) -> None:
        """Sort-and-scan drain for large backlogs (see module docstring).

        The pending list is sorted once (cheap in C, and adaptive when the
        remainder of a previous bulk drain is already sorted) and consumed
        by index; events scheduled by callbacks during the drain land in a
        fresh side heap (``self._heap``) and are interleaved in exact
        ``(time, seq)`` order. Whatever remains afterwards is restored as
        a valid heap.
        """
        snapshot = self._heap
        snapshot.sort()
        self.bulk_drains += 1
        side = self._heap = []
        processed = self.processed
        limit = self._max_events
        i = 0
        n = len(snapshot)
        try:
            while i < n:
                item = snapshot[i]
                at = item[0]
                if at > until:
                    break
                while side and side[0] < item:
                    s_at, _seq, callback = _heappop(side)
                    self.now = s_at
                    processed += 1
                    if limit is not None and processed > limit:
                        self.limit_hits += 1
                        raise SimulationLimitError(
                            f"exceeded event budget of {limit}"
                        )
                    callback()
                i += 1
                self.now = at
                processed += 1
                if limit is not None and processed > limit:
                    self.limit_hits += 1
                    raise SimulationLimitError(
                        f"exceeded event budget of {limit}"
                    )
                item[2]()
        finally:
            self.processed = processed
            if i < n:
                rest = snapshot[i:]
                if side:
                    rest.extend(side)
                    _heapify(rest)
                self._heap = rest
            else:
                self._heap = side
        # Side events <= until (scheduled mid-drain) may still be pending;
        # recurse once over the restored heap to finish, and to land the
        # clock on ``until``.
        self.run_until(until)

    def run_for(self, duration: float) -> None:
        """Execute events for ``duration`` more virtual milliseconds."""
        self.run_until(self.now + duration)
