"""Geo-replication scenario library: multi-region latency environments.

The paper's WAN experiment (:func:`repro.sim.harness.wan_latency_map`) is
one fixed leader-centric topology. This module generalizes it into a small
library of *named, realistic* multi-region environments that every layer
can share by name:

- the harness (``ExperimentConfig.latency_map = geo_latency_map(...)``),
- the chaos engine (``ChaosSchedule.geo = "regions3"`` runs the whole
  schedule in that environment, recorded in the schedule so replays and
  shrinks reproduce it),
- scenario/benchmark macros (region outage and inter-region degradation
  expand to the exact link lists the partition/delay ops consume).

Latencies are one-way milliseconds, loosely modeled on public inter-region
RTT tables (AWS/GCP order of magnitude): same-region replicas sit a
fraction of a millisecond apart; crossing an ocean costs tens of ms. The
exact values matter less than the *shape* — intra-region traffic is ~100×
faster than inter-region, which is what makes region-aware failures (a
region cut off, one ocean link degraded) behave qualitatively differently
from LAN partitions.

Servers are assigned to regions round-robin by position: with regions
``(A, B, C)`` and servers ``(1..5)``, pids 1 and 4 sit in A, 2 and 5 in B,
3 in C. Deterministic, so the same cluster shape always produces the same
environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.errors import ConfigError


@dataclass(frozen=True)
class GeoMap:
    """A named multi-region latency environment.

    ``inter_one_way_ms`` holds one-way latencies for region *index* pairs
    ``(i, j)`` with ``i < j``; ``intra_one_way_ms`` is the within-region
    one-way latency.
    """

    name: str
    regions: Tuple[str, ...]
    inter_one_way_ms: Dict[Tuple[int, int], float]
    intra_one_way_ms: float = 0.25

    def __post_init__(self) -> None:
        n = len(self.regions)
        if n < 2:
            raise ConfigError("a geo map needs at least two regions")
        expected = {(i, j) for i in range(n) for j in range(i + 1, n)}
        if set(self.inter_one_way_ms) != expected:
            raise ConfigError(
                f"geo map {self.name!r} must define every region pair"
            )

    def one_way_ms(self, region_a: int, region_b: int) -> float:
        """One-way latency between two region indices."""
        if region_a == region_b:
            return self.intra_one_way_ms
        key = (min(region_a, region_b), max(region_a, region_b))
        return self.inter_one_way_ms[key]


#: Three regions spanning one ocean each way — the classic 3-DC spread
#: (think us-east / eu-west / ap-northeast). RTTs ~75 / ~165 / ~220 ms.
REGIONS3 = GeoMap(
    name="regions3",
    regions=("us-east", "eu-west", "ap-northeast"),
    inter_one_way_ms={
        (0, 1): 37.5,   # us-east <-> eu-west
        (0, 2): 82.5,   # us-east <-> ap-northeast
        (1, 2): 110.0,  # eu-west <-> ap-northeast
    },
)

#: Five regions across three continents — a realistic 5-way spread where
#: no majority fits on one continent (us-east/us-west pair with Europe and
#: two Asian regions).
REGIONS5 = GeoMap(
    name="regions5",
    regions=("us-east", "us-west", "eu-west", "ap-northeast", "ap-south"),
    inter_one_way_ms={
        (0, 1): 30.0,   # us-east <-> us-west
        (0, 2): 37.5,   # us-east <-> eu-west
        (0, 3): 82.5,   # us-east <-> ap-northeast
        (0, 4): 90.0,   # us-east <-> ap-south
        (1, 2): 65.0,   # us-west <-> eu-west
        (1, 3): 55.0,   # us-west <-> ap-northeast
        (1, 4): 110.0,  # us-west <-> ap-south
        (2, 3): 110.0,  # eu-west <-> ap-northeast
        (2, 4): 60.0,   # eu-west <-> ap-south
        (3, 4): 35.0,   # ap-northeast <-> ap-south
    },
)

#: The named environments chaos schedules and CLIs refer to.
GEO_MAPS: Dict[str, GeoMap] = {
    REGIONS3.name: REGIONS3,
    REGIONS5.name: REGIONS5,
}


def resolve_geo(geo: Union[str, GeoMap]) -> GeoMap:
    """Look up a geo map by name (or pass a :class:`GeoMap` through)."""
    if isinstance(geo, GeoMap):
        return geo
    resolved = GEO_MAPS.get(geo)
    if resolved is None:
        raise ConfigError(
            f"unknown geo map {geo!r}; pick one of {sorted(GEO_MAPS)}"
        )
    return resolved


def region_assignment(servers: Tuple[int, ...],
                      geo: Union[str, GeoMap]) -> Dict[int, int]:
    """``{pid: region index}`` — round-robin by position, deterministic."""
    gmap = resolve_geo(geo)
    return {
        pid: i % len(gmap.regions) for i, pid in enumerate(sorted(servers))
    }


def region_members(servers: Tuple[int, ...], geo: Union[str, GeoMap],
                   region: Union[int, str]) -> Tuple[int, ...]:
    """The pids living in one region (by index or name)."""
    gmap = resolve_geo(geo)
    if isinstance(region, str):
        if region not in gmap.regions:
            raise ConfigError(
                f"unknown region {region!r} in geo map {gmap.name!r}"
            )
        region = gmap.regions.index(region)
    assignment = region_assignment(servers, gmap)
    return tuple(sorted(p for p, r in assignment.items() if r == region))


def geo_latency_map(servers: Tuple[int, ...],
                    geo: Union[str, GeoMap]) -> Dict[Tuple[int, int], float]:
    """Expand a geo environment to the harness's per-link latency map.

    Returns ``{(a, b): one_way_ms}`` over unordered pids ``a < b`` —
    exactly the shape ``ExperimentConfig.latency_map`` consumes.
    """
    gmap = resolve_geo(geo)
    assignment = region_assignment(servers, gmap)
    ordered = sorted(servers)
    out: Dict[Tuple[int, int], float] = {}
    for i, a in enumerate(ordered):
        for b in ordered[i + 1:]:
            out[(a, b)] = gmap.one_way_ms(assignment[a], assignment[b])
    return out


def region_outage_links(servers: Tuple[int, ...], geo: Union[str, GeoMap],
                        region: Union[int, str]) -> List[List[int]]:
    """The links a full region outage cuts: every link with exactly one
    endpoint inside the region (intra-region links stay up — the region is
    internally healthy, just unreachable). Feed to a ``partition`` op or
    ``SimCluster.set_link``.
    """
    inside = set(region_members(servers, geo, region))
    if not inside:
        raise ConfigError("region has no members for this cluster size")
    ordered = sorted(servers)
    return [
        [a, b]
        for i, a in enumerate(ordered)
        for b in ordered[i + 1:]
        if (a in inside) != (b in inside)
    ]


def inter_region_links(servers: Tuple[int, ...], geo: Union[str, GeoMap],
                       region_a: Union[int, str],
                       region_b: Union[int, str]) -> List[List[int]]:
    """The links crossing two specific regions (one endpoint in each) —
    the target set of an inter-region degradation (``delay_spike`` /
    ``slow_link`` on a struggling ocean route)."""
    in_a = set(region_members(servers, geo, region_a))
    in_b = set(region_members(servers, geo, region_b))
    if not in_a or not in_b:
        raise ConfigError("both regions need members for this cluster size")
    if in_a & in_b:
        raise ConfigError("region_a and region_b must differ")
    ordered = sorted(servers)
    return [
        [a, b]
        for i, a in enumerate(ordered)
        for b in ordered[i + 1:]
        if (a in in_a and b in in_b) or (a in in_b and b in in_a)
    ]


def region_outage_op(at_ms: float, servers: Tuple[int, ...],
                     geo: Union[str, GeoMap], region: Union[int, str],
                     heal_ms: float):
    """A ready-made ``partition`` :class:`~repro.chaos.schedule.FaultOp`
    cutting one region off for ``heal_ms`` — composable with any other
    scheduled ops."""
    from repro.chaos.schedule import FaultOp
    return FaultOp(at_ms=at_ms, kind="partition", params={
        "pattern": "region_outage",
        "links": region_outage_links(servers, geo, region),
        "heal_ms": heal_ms,
    })


def inter_region_degradation_op(at_ms: float, servers: Tuple[int, ...],
                                geo: Union[str, GeoMap],
                                region_a: Union[int, str],
                                region_b: Union[int, str],
                                extra_ms: float, duration_ms: float):
    """A ready-made ``delay_spike`` op inflating every link between two
    regions — the degraded-ocean-route scenario."""
    from repro.chaos.schedule import FaultOp
    return FaultOp(at_ms=at_ms, kind="delay_spike", params={
        "links": inter_region_links(servers, geo, region_a, region_b),
        "extra_ms": extra_ms,
        "duration_ms": duration_ms,
    })
