"""The partial-connectivity scenarios of paper section 2 (Figure 1).

Each builder mutates the cluster's link matrix to create one of the three
scenarios. Server-to-server links only — the measuring client reaches every
server throughout, as on the paper's testbed.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence, Tuple

from repro.errors import ConfigError
from repro.sim.cluster import SimCluster


def _all_pairs(pids: Sequence[int]) -> Iterable[Tuple[int, int]]:
    return itertools.combinations(sorted(pids), 2)


def quorum_loss(cluster: SimCluster, pivot: int) -> None:
    """Figure 1a: every server stays connected to ``pivot`` only.

    The old leader remains connected to the pivot, so it stays *alive* but
    loses quorum-connectivity — the scenario where "the alive status of the
    current leader is an insufficient metric".
    """
    pids = cluster.pids
    if pivot not in pids:
        raise ConfigError(f"pivot {pivot} not in cluster")
    for a, b in _all_pairs(pids):
        if pivot not in (a, b):
            cluster.set_link(a, b, False)


def constrained_election(cluster: SimCluster, pivot: int, leader: int) -> None:
    """Figure 1b: the leader is fully partitioned; everyone else only
    reaches ``pivot``.

    The pivot is the sole quorum-connected server. To match the paper's
    setup, disconnect ``pivot`` from ``leader`` *earlier* (see
    :func:`isolate_link`) so the pivot's log is outdated when this partition
    hits — that staleness is what deadlocks Raft here.
    """
    pids = cluster.pids
    if pivot not in pids or leader not in pids:
        raise ConfigError("pivot and leader must be cluster members")
    if pivot == leader:
        raise ConfigError("pivot and leader must differ")
    for a, b in _all_pairs(pids):
        if leader in (a, b):
            cluster.set_link(a, b, False)
        elif pivot not in (a, b):
            cluster.set_link(a, b, False)


def isolate_link(cluster: SimCluster, a: int, b: int) -> None:
    """Cut a single link (used to pre-stale the pivot's log)."""
    cluster.set_link(a, b, False)


def chained(cluster: SimCluster, order: Sequence[int]) -> None:
    """Figure 1c: connect the servers in a chain ``order[0]-order[1]-...``.

    With ``order = (A, B, C)`` only A-B and B-C remain up: exactly the
    3-server chain where B (the middle) still reaches everyone while the
    endpoints only reach B. The paper's experiment cuts the B-C link of a
    3-server cluster with leader B, i.e. ``order = (leader, middle, other)``.
    """
    pids = cluster.pids
    if sorted(order) != list(pids):
        raise ConfigError("order must be a permutation of the cluster's pids")
    allowed = {frozenset(pair) for pair in zip(order, order[1:])}
    for a, b in _all_pairs(pids):
        if frozenset((a, b)) not in allowed:
            cluster.set_link(a, b, False)


def full_partition(cluster: SimCluster, side_a: Sequence[int]) -> None:
    """A conventional clean partition: ``side_a`` vs everyone else."""
    side = set(side_a)
    for a, b in _all_pairs(cluster.pids):
        if (a in side) != (b in side):
            cluster.set_link(a, b, False)


def heal(cluster: SimCluster) -> None:
    """Restore full connectivity (ends the partition window)."""
    cluster.heal_all_links()
