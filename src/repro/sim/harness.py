"""Experiment harness: build comparable clusters of any protocol.

Every experiment in the paper runs the same cluster/workload under a
different protocol. This module is the single place that knows how to
instantiate each protocol with equivalent parameters:

- the *election timeout* maps to Omni-Paxos' BLE heartbeat period, Raft's
  base election timeout, Multi-Paxos' failure-detector suspicion timeout,
  and VR's view-change timeout,
- all protocols get the same network, tick resolution and seeded leader.

The supported protocol names are the evaluation's five configurations:
``"omni"``, ``"raft"``, ``"raft_pvcq"``, ``"multipaxos"``, ``"vr"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.omni.entry import Command, entry_wire_size
from repro.omni.reconfig import PARALLEL
from repro.omni.server import ClusterConfig, OmniPaxosConfig, OmniPaxosServer
from repro.omni.storage import InMemoryStorage, Storage
from repro.baselines.multipaxos import MultiPaxosConfig, MultiPaxosReplica
from repro.baselines.raft import RaftConfig, RaftReplica
from repro.baselines.vr import VRConfig, VRReplica
from repro.replica import Replica
from repro.sim.cluster import SimCluster
from repro.sim.events import EventQueue
from repro.sim.metrics import DecidedTracker, IOTracker
from repro.sim.network import NetworkParams, SimNetwork
from repro.sim.workload import ClosedLoopClient, WorkloadParams
from repro.util.rng import spawn_rng

PROTOCOLS = ("omni", "raft", "raft_pvcq", "multipaxos", "vr")


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters shared by every comparative experiment."""

    protocol: str = "omni"
    num_servers: int = 5
    election_timeout_ms: float = 100.0
    one_way_ms: float = 0.1
    #: Uniform random extra delay in [0, jitter_ms) per message; gives the
    #: seeded repetitions of a benchmark non-degenerate variance.
    jitter_ms: float = 0.0
    #: Optional per-link one-way latency overrides: {(a, b): ms}.
    latency_map: Dict[Tuple[int, int], float] = field(default_factory=dict)
    seed: int = 0
    initial_leader: Optional[int] = None
    #: None -> derived from the election timeout.
    tick_ms: Optional[float] = None
    #: Finite sender NIC bandwidth (bytes/ms); None = infinite.
    egress_bytes_per_ms: Optional[float] = None
    io_window_ms: float = 5000.0
    #: Omni-only: "parallel" or "leader" log migration.
    migration_strategy: str = PARALLEL
    migration_chunk_entries: int = 10_000
    #: Cap on entries per bulk replication message (Raft AppendEntries /
    #: Multi-Paxos P2a). None derives it so one message's transmission time
    #: stays well under the election timeout when egress is finite, like
    #: real systems' max-message-size settings.
    max_batch_entries: Optional[int] = None
    #: Representative log entry used to size bulk-replication batches when
    #: ``max_batch_entries`` is derived; None means the workload's 8-byte
    #: no-op command.
    batch_sample_entry: Optional[Any] = None
    #: Omni-only hook: ``wrapper(pid, storage) -> storage`` applied to every
    #: freshly created backing store, letting fault injectors (e.g. the chaos
    #: engine's FaultyStorage) interpose on disk writes per server.
    storage_wrapper: Optional[Callable[[int, Storage], Storage]] = None
    #: Opt-in graceful degradation under fail-slow faults: servers that
    #: score *themselves* degraded withdraw from leadership (Omni BLE
    #: demotes/withholds its ballot; Raft declines candidacy and a
    #: degraded leader steps down). Applies to ``omni``, ``raft`` and
    #: ``raft_pvcq``; ``multipaxos``/``vr`` have no reaction hook and
    #: ignore it. Default off — default behaviour and bench digests are
    #: untouched.
    gray_aware: bool = False

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ConfigError(
                f"unknown protocol {self.protocol!r}; pick one of {PROTOCOLS}"
            )
        if self.num_servers < 1:
            raise ConfigError("num_servers must be >= 1")
        if self.election_timeout_ms <= 0:
            raise ConfigError("election_timeout_ms must be positive")

    @property
    def servers(self) -> Tuple[int, ...]:
        return tuple(range(1, self.num_servers + 1))

    @property
    def effective_tick_ms(self) -> float:
        if self.tick_ms is not None:
            return self.tick_ms
        return min(max(self.election_timeout_ms / 10.0, 1.0), 50.0)

    @property
    def effective_max_batch(self) -> int:
        if self.max_batch_entries is not None:
            return self.max_batch_entries
        return derive_max_batch(self.egress_bytes_per_ms,
                                self.election_timeout_ms,
                                self.batch_sample_entry)


#: Default sizing sample for :func:`derive_max_batch`: the workload's
#: 8-byte no-op command, which the codec sizes at 24 wire bytes.
_DEFAULT_SAMPLE_ENTRY = Command(data=bytes(8))


def derive_max_batch(egress_bytes_per_ms: Optional[float],
                     election_timeout_ms: float,
                     sample_entry: Optional[object] = None) -> int:
    """Entries per bulk message such that one message transmits in ~5% of an
    election timeout — the analogue of real systems' max-message-size
    settings, which keep heartbeats from starving behind bulk catch-up
    traffic.

    Per-entry wire bytes come from the codec's own sizing
    (:func:`~repro.omni.entry.entry_wire_size`) of ``sample_entry``; the
    default sample is the workload's 8-byte no-op command (24 wire bytes).
    Workloads with larger payloads should pass a representative entry so
    the derived batch reflects their actual message sizes.
    """
    if egress_bytes_per_ms is None:
        return 4096
    if sample_entry is None:
        sample_entry = _DEFAULT_SAMPLE_ENTRY
    entry_bytes = max(entry_wire_size(sample_entry), 1)
    batch = int(egress_bytes_per_ms * 0.05 * election_timeout_ms / entry_bytes)
    return max(min(batch, 4096), 16)


@dataclass
class Experiment:
    """A built cluster plus its instruments."""

    config: ExperimentConfig
    cluster: SimCluster
    queue: EventQueue
    network: SimNetwork
    io: IOTracker
    #: Observability registry; the no-op singleton unless one was passed to
    #: :func:`build_experiment`.
    obs: MetricsRegistry = NULL_REGISTRY

    def make_client(self, concurrent_proposals: int,
                    proposal_timeout_ms: Optional[float] = None,
                    client_id: int = 1) -> ClosedLoopClient:
        """Attach a closed-loop client (the paper's CP workload)."""
        timeout_provider = None
        if proposal_timeout_ms is None:
            # Long enough that a single leader round trip never expires it,
            # short enough to re-route within an election timeout or two.
            # The latency term must use the *slowest* effective link — under
            # a WAN latency map the per-link overrides dwarf the base
            # one_way_ms, and sizing from the base alone made clients time
            # out and re-propose entries that were still in flight. It is a
            # live provider, not a one-shot computation: a ``slow_link``
            # fault injected mid-run inflates ``max_latency`` and the
            # client's patience must stretch with it, or every in-flight
            # proposal times out and gets double-proposed over the very
            # link that is struggling.
            network, config = self.network, self.config

            def timeout_provider() -> float:
                return max(
                    2.0 * config.election_timeout_ms,
                    8.0 * network.max_latency()
                    + 4.0 * config.effective_tick_ms,
                )

            proposal_timeout_ms = timeout_provider()
        params = WorkloadParams(
            client_id=client_id,
            concurrent_proposals=concurrent_proposals,
            client_tick_ms=self.config.effective_tick_ms,
            proposal_timeout_ms=proposal_timeout_ms,
        )
        client = ClosedLoopClient(self.cluster, params,
                                  timeout_provider=timeout_provider)
        client.set_observability(self.obs)
        client.start()
        return client

    # -- health observatory --------------------------------------------------

    def attach_health(self, stale_after_ms: Optional[float] = None
                      ) -> "HealthMonitor":
        """Attach a live :class:`~repro.obs.health.HealthMonitor` sink.

        Requires an enabled registry (the monitor folds the health events
        the servers emit). The default staleness bound is 20 heartbeat
        periods — long enough that a lagging reporter isn't dismissed,
        short enough that a partitioned server's claims visibly expire.
        """
        from repro.obs.health import HealthMonitor
        if not self.obs.enabled:
            raise ConfigError(
                "attach_health needs build_experiment(..., obs=<enabled "
                "registry>) — health views are events, and the null "
                "registry drops them"
            )
        if stale_after_ms is None:
            stale_after_ms = 20.0 * self.config.election_timeout_ms
        monitor = HealthMonitor(stale_after_ms=stale_after_ms)
        self.obs.add_sink(monitor)
        return monitor

    # -- windowed time series ------------------------------------------------

    def attach_series(self, window_ms: float = 250.0,
                      sample_ms: Optional[float] = None) -> "SeriesCollector":
        """Attach a live :class:`~repro.obs.series.SeriesCollector` plus a
        recurring queue-depth sampler on the event queue.

        The sampler reads the sim event-heap depth, the network's in-flight
        count, and every live server's staging-queue depths (outboxes,
        pending proposals), publishing them as ``repro_queue_depth`` gauges
        and ``QueueDepthSampled`` events, and drives the collector's window
        boundaries. It consumes no randomness and only *reads* protocol
        state; its queue entries shift event sequence numbers uniformly, so
        decided-log digests are byte-identical with or without it. Call
        ``collector.finish(queue.now)`` after the run for the windows.
        """
        from repro.obs import prof
        from repro.obs.series import SeriesCollector
        if not self.obs.enabled:
            raise ConfigError(
                "attach_series needs build_experiment(..., obs=<enabled "
                "registry>) — the series engine is fed by events, and the "
                "null registry drops them"
            )
        if sample_ms is None:
            sample_ms = max(window_ms / 5.0, self.config.effective_tick_ms)
        collector = SeriesCollector(self.obs, window_ms=window_ms,
                                    start_ms=0.0)
        self.obs.add_sink(collector)
        queue, cluster, network, obs = (self.queue, self.cluster,
                                        self.network, self.obs)
        # Per-scope delta memos so steady depths cost one emission, not
        # one per tick (sample_queue_depths skips unchanged entries).
        memos: Dict[Optional[int], Dict[str, int]] = {}

        def _sample() -> None:
            prof.sample_queue_depths(obs, {
                prof.QUEUE_SIM_EVENTS: len(queue),
                prof.QUEUE_NET_IN_FLIGHT: network.in_flight,
            }, last=memos.setdefault(None, {}))
            for pid in cluster.pids:
                if cluster.is_crashed(pid):
                    continue
                depths = getattr(cluster.replica(pid), "queue_depths", None)
                if depths is not None:
                    prof.sample_queue_depths(obs, depths(), pid=pid,
                                             last=memos.setdefault(pid, {}))
            collector.sample(queue.now)
            queue.schedule_in(sample_ms, _sample)

        queue.schedule_in(sample_ms, _sample)
        return collector

    def statuses(self) -> Dict[int, Dict[str, Any]]:
        """Every live server's :meth:`~repro.replica.Replica.status` view
        (the sim-side analogue of polling each node's admin endpoint);
        crashed servers report only ``{"pid", "phase": "crashed"}``."""
        out: Dict[int, Dict[str, Any]] = {}
        for pid in self.cluster.pids:
            if self.cluster.is_crashed(pid):
                out[pid] = {"pid": pid, "phase": "crashed"}
            else:
                out[pid] = self.cluster.replica(pid).status()
        return out

    def ground_truth(self) -> Dict[Tuple[int, int], bool]:
        """The network's actual full-duplex link state, comparable to the
        health monitor's believed matrix."""
        from repro.obs.health import ground_truth_from_network
        return ground_truth_from_network(self.network, list(self.cluster.pids))


def make_replica(cfg: ExperimentConfig, pid: int,
                 servers: Optional[Tuple[int, ...]] = None) -> Replica:
    """Instantiate one replica of the configured protocol.

    ``servers`` overrides the member set (used to pre-create the joining
    servers of a reconfiguration experiment, possibly with an empty set for
    Raft joiners that learn membership from the log).
    """
    members = servers if servers is not None else cfg.servers
    if cfg.protocol == "omni":
        kwargs = {}
        if cfg.storage_wrapper is not None:
            wrapper = cfg.storage_wrapper
            kwargs["storage_factory"] = (
                lambda config_id, _pid=pid: wrapper(_pid, InMemoryStorage())
            )
        return OmniPaxosServer(OmniPaxosConfig(
            pid=pid,
            cluster=ClusterConfig(config_id=0, servers=members),
            hb_period_ms=cfg.election_timeout_ms,
            initial_leader=cfg.initial_leader,
            migration_strategy=cfg.migration_strategy,
            migration_chunk_entries=cfg.migration_chunk_entries,
            migration_retry_ms=max(2 * cfg.election_timeout_ms, 100.0),
            announce_period_ms=max(cfg.election_timeout_ms, 50.0),
            gray_aware=cfg.gray_aware,
            **kwargs,
        ))
    if cfg.protocol in ("raft", "raft_pvcq"):
        in_config = pid in members
        return RaftReplica(RaftConfig(
            pid=pid,
            voters=members if in_config else (),
            election_timeout_ms=cfg.election_timeout_ms,
            prevote=cfg.protocol == "raft_pvcq",
            check_quorum=cfg.protocol == "raft_pvcq",
            max_entries_per_msg=cfg.effective_max_batch,
            seed=cfg.seed,
            initial_leader=cfg.initial_leader if in_config else None,
            gray_aware=cfg.gray_aware,
        ))
    if cfg.protocol == "multipaxos":
        return MultiPaxosReplica(MultiPaxosConfig(
            pid=pid,
            peers=tuple(p for p in members if p != pid),
            election_timeout_ms=cfg.election_timeout_ms,
            max_slots_per_msg=cfg.effective_max_batch,
            seed=cfg.seed,
            initial_leader=cfg.initial_leader,
        ))
    if cfg.protocol == "vr":
        return VRReplica(VRConfig(
            pid=pid,
            servers=members,
            election_timeout_ms=cfg.election_timeout_ms,
            initial_leader=cfg.initial_leader,
        ))
    raise ConfigError(f"unknown protocol {cfg.protocol!r}")


def build_experiment(cfg: ExperimentConfig,
                     obs: Optional[MetricsRegistry] = None) -> Experiment:
    """Build a ready-to-run cluster of the configured protocol.

    Pass a :class:`~repro.obs.registry.MetricsRegistry` as ``obs`` to
    collect metrics and protocol events from every layer; without one the
    no-op registry is wired and instrumentation costs a single attribute
    check per site.
    """
    registry = obs if obs is not None else NULL_REGISTRY
    queue = EventQueue()
    registry.set_clock(lambda: queue.now)
    io = IOTracker(window_ms=cfg.io_window_ms)
    params = NetworkParams(
        one_way_ms=cfg.one_way_ms,
        jitter_ms=cfg.jitter_ms,
        egress_bytes_per_ms=cfg.egress_bytes_per_ms,
    )
    network = SimNetwork(
        queue, params, rng=spawn_rng(cfg.seed, "net"), io_tracker=io
    )
    network.set_observability(registry)
    for (a, b), ms in cfg.latency_map.items():
        network.set_latency(a, b, ms)
    replicas = {pid: make_replica(cfg, pid) for pid in cfg.servers}
    for replica in replicas.values():
        replica.set_observability(registry)
    cluster = SimCluster(replicas, network, queue,
                         tick_ms=cfg.effective_tick_ms)
    cluster.start()
    return Experiment(config=cfg, cluster=cluster, queue=queue,
                      network=network, io=io, obs=registry)


def wan_latency_map(servers: Tuple[int, ...],
                    leader: int) -> Dict[Tuple[int, int], float]:
    """The paper's WAN setting: RTT 105 ms and 145 ms from the leader to the
    follower groups (eu-west1 / asia-northeast1), RTT 0.2 ms within a zone.

    Followers alternate between the two remote zones; inter-zone follower
    links get the sum of their zone distances as an approximation.
    """
    zones: Dict[int, int] = {}
    remote = [p for p in servers if p != leader]
    for i, pid in enumerate(remote):
        zones[pid] = i % 2  # 0 = eu-west1, 1 = asia-northeast1
    one_way = {0: 52.5, 1: 72.5}
    latency: Dict[Tuple[int, int], float] = {}
    for i, a in enumerate(servers):
        for b in servers[i + 1:]:
            if leader in (a, b):
                other = b if a == leader else a
                latency[(a, b)] = one_way[zones[other]]
            elif zones[a] == zones[b]:
                latency[(a, b)] = 0.1
            else:
                latency[(a, b)] = one_way[0] + one_way[1]
    return latency
