"""The paper's closed-loop client workload.

The evaluation measures throughput with a client that keeps a fixed number
of *concurrent proposals* (CP) in flight: every decided reply immediately
frees a slot for the next proposal. Commands are 8-byte no-ops. This module
reproduces that client:

- it proposes to the server it currently believes is the leader,
- a decided reply is recorded the first time any server reports the command
  decided (normally the leader, which is who answers clients),
- proposals that time out are re-proposed — possibly at another server that
  claims leadership — and deduplicated by sequence number so each command
  counts once.

The last point matters under partial connectivity: in the chained scenario a
*stale* leader keeps accepting proposals it can never commit; the client's
timeouts and re-routing are exactly why that shows up as lost throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set

from repro.errors import ConfigError, ReproError
from repro.obs.events import ClientProposalSent, ClientReplyDecided
from repro.obs.registry import Instrumented
from repro.omni.entry import Command
from repro.sim.cluster import SimCluster
from repro.sim.metrics import DecidedTracker


@dataclass(frozen=True)
class WorkloadParams:
    """Client behaviour knobs (defaults follow the paper's setup)."""

    client_id: int = 1
    #: The paper's CP parameter: proposals kept in flight.
    concurrent_proposals: int = 64
    entry_bytes: int = 8
    #: How often the client tops up free slots and checks timeouts.
    client_tick_ms: float = 5.0
    #: Re-propose (and consider switching leader) after this long.
    proposal_timeout_ms: float = 500.0

    def __post_init__(self) -> None:
        if self.concurrent_proposals <= 0:
            raise ConfigError("concurrent_proposals must be positive")
        if self.client_tick_ms <= 0 or self.proposal_timeout_ms <= 0:
            raise ConfigError("client timing parameters must be positive")


class ClosedLoopClient(Instrumented):
    """Closed-loop proposer driving a :class:`SimCluster`."""

    def __init__(self, cluster: SimCluster, params: WorkloadParams,
                 tracker: Optional[DecidedTracker] = None,
                 timeout_provider: Optional[Callable[[], float]] = None):
        """``timeout_provider``, when given, is consulted on every timeout
        sweep instead of the static ``params.proposal_timeout_ms`` — the
        harness wires one that tracks the network's current worst-case
        latency, so a ``slow_link`` fault injected mid-run stretches the
        client's patience instead of triggering a re-proposal storm."""
        self._cluster = cluster
        self._params = params
        self._timeout_provider = timeout_provider
        self.tracker = tracker if tracker is not None else DecidedTracker()
        self._payload = bytes(params.entry_bytes)
        self._next_seq = 0
        #: In-flight proposals: seq -> send time.
        self._outstanding: Dict[int, float] = {}
        #: First-submission time per seq (latency is measured from here
        #: even across re-proposals — the user-perceived latency).
        self._first_sent: Dict[int, float] = {}
        #: Decided latencies in ms, in completion order.
        self.latencies_ms: list = []
        #: Sequence numbers already counted as decided.
        self._seen: Set[int] = set()
        self._preferred: Optional[int] = None
        self._running = False
        self.proposals_sent = 0
        self.reproposals = 0
        self.leader_switches = 0

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Register with the cluster and begin proposing."""
        if self._running:
            return
        self._running = True
        self._cluster.on_decided(self._on_decided)
        self._schedule_tick()

    def stop(self) -> None:
        """Stop proposing (already-in-flight commands may still decide)."""
        self._running = False

    @property
    def decided_count(self) -> int:
        return len(self._seen)

    @property
    def next_seq(self) -> int:
        """Sequence numbers below this have been handed out (SC1 bound)."""
        return self._next_seq

    @property
    def current_timeout_ms(self) -> float:
        """The re-propose timeout in force right now (live when a
        provider was wired, the static param otherwise)."""
        if self._timeout_provider is not None:
            return self._timeout_provider()
        return self._params.proposal_timeout_ms

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 user-perceived latency in ms (first submission to
        first decided observation)."""
        from repro.util.stats import percentile

        if not self.latencies_ms:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "p50": percentile(self.latencies_ms, 50),
            "p95": percentile(self.latencies_ms, 95),
            "p99": percentile(self.latencies_ms, 99),
        }

    # ------------------------------------------------------------------

    def _on_decided(self, pid: int, idx: int, entry, now: float) -> None:
        if not isinstance(entry, Command) or entry.client_id != self._params.client_id:
            return
        if entry.seq in self._seen:
            return
        self._seen.add(entry.seq)
        self._outstanding.pop(entry.seq, None)
        first = self._first_sent.pop(entry.seq, None)
        if first is not None:
            self.latencies_ms.append(now - first)
        self.tracker.record(now)
        if self._obs_on:
            self._obs.counter("repro_client_replies_total",
                              client=self._params.client_id).inc()
            if first is not None:
                self._obs.histogram(
                    "repro_propose_decide_latency_ms"
                ).observe(now - first)
            self._obs.emit(ClientReplyDecided(
                client_id=self._params.client_id, seq=entry.seq,
                trace_id=f"c{self._params.client_id}-{entry.seq}",
            ))

    def _schedule_tick(self) -> None:
        self._cluster.queue.schedule_in(self._params.client_tick_ms, self._tick)

    def _pick_target(self) -> Optional[int]:
        """The server to propose at: sticky leader, rotated on trouble."""
        claimants = self._cluster.leaders()
        if not claimants:
            return None
        if self._preferred in claimants:
            return self._preferred
        if self._preferred is not None:
            self.leader_switches += 1
        self._preferred = claimants[0]
        return self._preferred

    def _rotate_target(self) -> None:
        """Our current target seems dead or stale: try the next claimant."""
        claimants = self._cluster.leaders()
        if not claimants:
            self._preferred = None
            return
        if self._preferred in claimants and len(claimants) > 1:
            idx = claimants.index(self._preferred)
            self._preferred = claimants[(idx + 1) % len(claimants)]
        else:
            self._preferred = claimants[0]
        self.leader_switches += 1

    def _tick(self) -> None:
        if not self._running:
            return
        now = self._cluster.now
        self._handle_timeouts(now)
        self._top_up(now)
        self._schedule_tick()

    def _handle_timeouts(self, now: float) -> None:
        timeout = self.current_timeout_ms
        expired = [
            seq for seq, sent in self._outstanding.items()
            if now - sent >= timeout
        ]
        if not expired:
            return
        self._rotate_target()
        target = self._pick_target()
        if target is None:
            # Nobody claims leadership: leave them outstanding; they will be
            # retried once a leader appears.
            for seq in expired:
                self._outstanding[seq] = now
            return
        batch = [self._command(seq) for seq in sorted(expired)]
        for seq in expired:
            self._outstanding[seq] = now
        self.reproposals += len(batch)
        self._try_propose(target, batch)

    def _top_up(self, now: float) -> None:
        free = self._params.concurrent_proposals - len(self._outstanding)
        if free <= 0:
            return
        target = self._pick_target()
        if target is None:
            return
        batch = []
        for _ in range(free):
            seq = self._next_seq
            self._next_seq += 1
            self._outstanding[seq] = now
            self._first_sent[seq] = now
            batch.append(self._command(seq))
        self.proposals_sent += len(batch)
        if self._obs.tracing and batch:
            self._obs.emit(ClientProposalSent(
                client_id=self._params.client_id,
                first_seq=batch[0].seq, count=len(batch),
            ))
        self._try_propose(target, batch)

    def _command(self, seq: int) -> Command:
        return Command(data=self._payload, client_id=self._params.client_id, seq=seq)

    def _try_propose(self, target: int, batch) -> None:
        try:
            self._cluster.propose_batch(target, batch)
        except ReproError:
            # The target crashed, retired, or rejected: rotate next tick and
            # let the timeout machinery re-propose.
            self._rotate_target()
