"""End-to-end partition experiments (paper section 7.2, Figure 8).

:func:`run_partition_scenario` reproduces one cell of the evaluation: build
a cluster of the given protocol, warm it up under the closed-loop workload,
inject one of the three partial-connectivity scenarios, keep it partitioned
for a while, heal, and measure:

- *down-time*: the longest interval with no decided client replies
  (Figure 8a/8b),
- *recovery time*: from partition onset to the first decided reply after it,
- *decided count* during the partition window (Figure 8c),
- leader changes observed.

The constrained-election scenario disconnects the pivot from the leader
``0.8 x election_timeout`` before the partition, so the pivot misses entries
(stale log) but has not yet attempted a takeover — the same setup trick the
paper describes ("it is disconnected from the leader earlier").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.sim import partitions
from repro.sim.harness import Experiment, ExperimentConfig, build_experiment

SCENARIOS = ("quorum_loss", "constrained", "chained")

#: Conventional roles: the pivot is the server that stays connected to
#: everyone; the seeded leader is a different server.
PIVOT = 1
LEADER = 3
CHAIN_LEADER = 2


@dataclass(frozen=True)
class ScenarioResult:
    """Measurements from one scenario run."""

    protocol: str
    scenario: str
    election_timeout_ms: float
    partition_at_ms: float
    partition_end_ms: float
    #: Longest client-visible gap during the partition (ms).
    downtime_ms: float
    #: Onset-to-first-decided-reply, or None if nothing decided (deadlock).
    recovery_ms: Optional[float]
    decided_during_partition: int
    decided_before_partition: int
    #: Decided replies in the cooldown after the network healed — proof the
    #: cluster converged back regardless of what the partition did.
    decided_after_heal: int
    recovered: bool
    leaders_at_end: Tuple[int, ...]

    @property
    def downtime_in_timeouts(self) -> float:
        return self.downtime_ms / self.election_timeout_ms


def apply_scenario(exp: Experiment, scenario: str) -> None:
    """Inject the named partial partition into a running experiment."""
    cluster = exp.cluster
    if scenario == "quorum_loss":
        partitions.quorum_loss(cluster, pivot=PIVOT)
    elif scenario == "constrained":
        partitions.constrained_election(cluster, pivot=PIVOT, leader=LEADER)
    elif scenario == "chained":
        order = (CHAIN_LEADER, PIVOT, 3)
        partitions.chained(cluster, order=order)
    else:
        raise ConfigError(f"unknown scenario {scenario!r}; one of {SCENARIOS}")


def run_partition_scenario(
    protocol: str,
    scenario: str,
    election_timeout_ms: float = 100.0,
    partition_duration_ms: Optional[float] = None,
    warmup_ms: Optional[float] = None,
    cooldown_ms: Optional[float] = None,
    concurrent_proposals: int = 8,
    seed: int = 0,
    num_servers: Optional[int] = None,
    obs=None,
) -> ScenarioResult:
    """Run one (protocol, scenario) cell and return its measurements.

    ``obs`` is an optional :class:`~repro.obs.registry.MetricsRegistry`
    collecting metrics and protocol events from the run.
    """
    if scenario not in SCENARIOS:
        raise ConfigError(f"unknown scenario {scenario!r}; one of {SCENARIOS}")
    timeout = election_timeout_ms
    if partition_duration_ms is None:
        partition_duration_ms = max(40.0 * timeout, 4_000.0)
    if warmup_ms is None:
        warmup_ms = max(10.0 * timeout, 1_000.0)
    if cooldown_ms is None:
        cooldown_ms = max(10.0 * timeout, 1_000.0)
    if num_servers is None:
        num_servers = 3 if scenario == "chained" else 5
    leader = CHAIN_LEADER if scenario == "chained" else LEADER
    cfg = ExperimentConfig(
        protocol=protocol,
        num_servers=num_servers,
        election_timeout_ms=timeout,
        seed=seed,
        initial_leader=leader,
    )
    exp = build_experiment(cfg, obs=obs)
    client = exp.make_client(concurrent_proposals=concurrent_proposals)
    exp.cluster.run_for(warmup_ms)
    if scenario == "constrained":
        # Pre-stale the pivot's log: cut pivot<->leader just under one
        # election timeout before the partition proper.
        partitions.isolate_link(exp.cluster, PIVOT, leader)
        exp.cluster.run_for(0.8 * timeout)
    decided_before = client.decided_count
    partition_at = exp.cluster.now
    apply_scenario(exp, scenario)
    exp.cluster.run_for(partition_duration_ms)
    partition_end = exp.cluster.now
    partitions.heal(exp.cluster)
    exp.cluster.run_for(cooldown_ms)
    tracker = client.tracker
    downtime = tracker.downtime(partition_at, partition_end)
    recovery = tracker.recovery_time(partition_at, partition_end)
    return ScenarioResult(
        protocol=protocol,
        scenario=scenario,
        election_timeout_ms=timeout,
        partition_at_ms=partition_at,
        partition_end_ms=partition_end,
        downtime_ms=downtime,
        recovery_ms=recovery,
        decided_during_partition=tracker.count_between(
            partition_at, partition_end
        ),
        decided_before_partition=decided_before,
        decided_after_heal=tracker.count_between(
            partition_end, exp.cluster.now
        ),
        recovered=recovery is not None
        and downtime < partition_duration_ms * 0.9,
        leaders_at_end=tuple(exp.cluster.leaders()),
    )
