"""Reconfiguration experiments (paper section 7.3, Figure 9).

A 5-server cluster with a pre-loaded log serves the closed-loop workload;
the client then proposes a reconfiguration replacing either one server or a
majority (3 of 5). New servers must obtain the whole log before they can
participate:

- **Omni-Paxos** migrates it in the service layer, in parallel from every
  continuing server (and from joiners that already finished),
- **Raft** streams it from the leader alone via AppendEntries catch-up.

With a finite per-server egress bandwidth (the NIC model in
:class:`repro.sim.network.NetworkParams`), the leader-only scheme congests
the leader and stalls client traffic — reproducing the paper's throughput
dips, recovery times, and peak leader IO.

Scale note: the paper pre-loads 5M + 10M decided 8-byte entries (120 MB per
joiner) on cloud VMs. We default to a pre-loaded log and an egress capacity
scaled down together, preserving the transfer-time-to-window ratio; absolute
MB differ, shapes (who dips, how deep, how long, peak IO ratios) hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.omni.entry import Command
from repro.omni.storage import InMemoryStorage, Storage
from repro.sim.harness import Experiment, ExperimentConfig, build_experiment, make_replica
from repro.sim.workload import ClosedLoopClient

#: Default roles: five initial servers, the seeded leader is 3.
INITIAL_SERVERS = (1, 2, 3, 4, 5)
LEADER = 3
#: Replacing one server: 5 leaves, 6 joins.
NEW_CONFIG_ONE = (1, 2, 3, 4, 6)
#: Replacing a majority: {1, 4, 5} leave, {6, 7, 8} join (leader continues,
#: as in the paper where reconfiguration is proposed at the leader).
NEW_CONFIG_MAJORITY = (2, 3, 6, 7, 8)


@dataclass(frozen=True)
class ReconfigResult:
    """Measurements from one reconfiguration run."""

    protocol: str
    replace: str
    reconfig_at_ms: float
    #: (window_start_ms, decided_count) series, 5 s windows by default.
    windows: Tuple[Tuple[float, int], ...]
    #: Steady-state decided/window before the reconfiguration.
    baseline_window: float
    #: Deepest relative throughput drop after the reconfiguration (0..1).
    max_drop: float
    #: How long throughput stayed below 90% of baseline (ms).
    degraded_ms: float
    #: Longest client-visible gap after the reconfiguration (ms).
    downtime_ms: float
    #: Peak outgoing bytes in one window at the *initial* leader.
    leader_peak_window_bytes: int
    #: Total outgoing bytes at the *initial* leader during the experiment.
    leader_total_bytes: int
    #: Peak window at the busiest old-configuration server. Raft's leader
    #: can get deposed mid-reconfiguration under load (the paper observed
    #: exactly this) and another server finishes the migration, so the
    #: leader-burden comparison must follow wherever leadership lands.
    busiest_old_peak_window_bytes: int
    #: Total outgoing bytes summed over all old-configuration servers.
    old_servers_total_bytes: int
    #: When every new-config member was up and the log fully replicated.
    completed_at_ms: Optional[float]


def preloaded_storage_factory(entries: Tuple[Command, ...]):
    """An Omni-Paxos storage factory whose config-0 storage starts with
    ``entries`` already decided (benchmark pre-loading)."""

    def factory(config_id: int) -> Storage:
        storage = InMemoryStorage()
        if config_id == 0 and entries:
            storage.append_entries(entries)
            storage.set_decided_idx(len(entries))
        return storage

    return factory


def _preload_entries(count: int, entry_bytes: int) -> Tuple[Command, ...]:
    payload = bytes(entry_bytes)
    return tuple(Command(data=payload, client_id=0, seq=i) for i in range(count))


def run_reconfiguration_experiment(
    protocol: str,
    replace: str = "one",
    concurrent_proposals: int = 64,
    preload_entries: int = 200_000,
    entry_bytes: int = 8,
    egress_bytes_per_ms: float = 1_000.0,
    election_timeout_ms: float = 100.0,
    warmup_ms: float = 5_000.0,
    run_ms: float = 60_000.0,
    window_ms: float = 5_000.0,
    migration_strategy: str = "parallel",
    seed: int = 0,
) -> ReconfigResult:
    """Run one Figure-9 cell and return its measurements."""
    if protocol not in ("omni", "raft"):
        raise ConfigError(
            "reconfiguration is compared between 'omni' and 'raft' only "
            "(the paper's other baselines do not support it)"
        )
    if replace == "one":
        new_config = NEW_CONFIG_ONE
    elif replace == "majority":
        new_config = NEW_CONFIG_MAJORITY
    else:
        raise ConfigError("replace must be 'one' or 'majority'")
    joiners = tuple(p for p in new_config if p not in INITIAL_SERVERS)

    from repro.sim.harness import derive_max_batch

    cfg = ExperimentConfig(
        protocol=protocol,
        num_servers=len(INITIAL_SERVERS),
        election_timeout_ms=election_timeout_ms,
        seed=seed,
        initial_leader=LEADER,
        egress_bytes_per_ms=egress_bytes_per_ms,
        io_window_ms=window_ms,
        migration_strategy=migration_strategy,
        migration_chunk_entries=derive_max_batch(
            egress_bytes_per_ms, election_timeout_ms
        ),
    )
    preload = _preload_entries(preload_entries, entry_bytes)
    exp = _build_with_preload(cfg, preload, joiners)
    client = exp.make_client(concurrent_proposals=concurrent_proposals)
    exp.cluster.run_for(warmup_ms)
    baseline = client.tracker.throughput(0, warmup_ms) * window_ms / 1000.0
    reconfig_at = exp.cluster.now
    exp.cluster.reconfigure(LEADER, new_config)
    completed = None
    elapsed = 0.0
    poll_ms = min(window_ms, 250.0)
    while elapsed < run_ms:
        exp.cluster.run_for(poll_ms)
        elapsed += poll_ms
        if completed is None and _converged(exp, new_config, preload_entries):
            completed = exp.cluster.now - reconfig_at
    end = exp.cluster.now

    windows = tuple(client.tracker.windowed_counts(reconfig_at, end, window_ms))
    max_drop = 0.0
    degraded_ms = 0.0
    for _start, count in windows:
        if baseline > 0:
            drop = max(0.0, 1.0 - count / baseline)
            max_drop = max(max_drop, drop)
            if count < 0.9 * baseline:
                degraded_ms += window_ms
    return ReconfigResult(
        protocol=protocol,
        replace=replace,
        reconfig_at_ms=reconfig_at,
        windows=windows,
        baseline_window=baseline,
        max_drop=max_drop,
        degraded_ms=degraded_ms,
        downtime_ms=client.tracker.downtime(reconfig_at, end),
        leader_peak_window_bytes=exp.io.peak_window_bytes(LEADER),
        leader_total_bytes=exp.io.total_bytes(LEADER),
        busiest_old_peak_window_bytes=max(
            exp.io.peak_window_bytes(pid) for pid in INITIAL_SERVERS
        ),
        old_servers_total_bytes=sum(
            exp.io.total_bytes(pid) for pid in INITIAL_SERVERS
        ),
        completed_at_ms=completed,
    )


def _build_with_preload(cfg: ExperimentConfig, preload: Tuple[Command, ...],
                        joiners: Tuple[int, ...]) -> Experiment:
    """Build the experiment, pre-loading members and registering joiners."""
    from repro.omni.server import ClusterConfig, OmniPaxosConfig, OmniPaxosServer
    from repro.sim.cluster import SimCluster
    from repro.sim.events import EventQueue
    from repro.sim.metrics import IOTracker
    from repro.sim.network import NetworkParams, SimNetwork
    from repro.util.rng import spawn_rng

    queue = EventQueue()
    io = IOTracker(window_ms=cfg.io_window_ms)
    network = SimNetwork(
        queue,
        NetworkParams(one_way_ms=cfg.one_way_ms,
                      egress_bytes_per_ms=cfg.egress_bytes_per_ms),
        rng=spawn_rng(cfg.seed, "net"),
        io_tracker=io,
    )
    replicas = {}
    all_pids = cfg.servers + joiners
    for pid in all_pids:
        if cfg.protocol == "omni":
            factory = (
                preloaded_storage_factory(preload)
                if pid in cfg.servers
                else preloaded_storage_factory(())
            )
            replicas[pid] = OmniPaxosServer(OmniPaxosConfig(
                pid=pid,
                cluster=ClusterConfig(config_id=0, servers=cfg.servers),
                hb_period_ms=cfg.election_timeout_ms,
                initial_leader=cfg.initial_leader,
                migration_strategy=cfg.migration_strategy,
                migration_chunk_entries=cfg.migration_chunk_entries,
                migration_retry_ms=max(4 * cfg.election_timeout_ms, 200.0),
                announce_period_ms=max(cfg.election_timeout_ms, 50.0),
                storage_factory=factory,
            ))
        else:
            replica = make_replica(cfg, pid)
            if pid in cfg.servers and preload:
                replica.preload(preload)
            replicas[pid] = replica
    cluster = SimCluster(replicas, network, queue,
                         tick_ms=cfg.effective_tick_ms)
    cluster.start()
    return Experiment(config=cfg, cluster=cluster, queue=queue,
                      network=network, io=io)


def _converged(exp: Experiment, new_config: Tuple[int, ...],
               preload_entries: int) -> bool:
    """True when every new-config member runs the new configuration AND
    holds the full pre-loaded log (migration / catch-up finished)."""
    for pid in new_config:
        replica = exp.cluster.replica(pid)
        if tuple(sorted(replica.members)) != tuple(sorted(new_config)):
            return False
        if hasattr(replica, "migrating"):  # Omni-Paxos
            current = replica.current_config
            if replica.migrating or current is None:
                return False
            # The replicated log must include the preload and the stop-sign.
            if replica.global_log_len < preload_entries + 1:
                return False
        else:  # Raft: committed past the preload and the config entry
            if replica.commit_idx < preload_entries + 1:
                return False
    return True
