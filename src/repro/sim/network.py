"""The simulated network: latency, loss, and link-level partial partitions.

Links are modelled after the paper's testbed assumptions (section 3):
bidirectional, session-based FIFO perfect links (TCP). Partial partitions
take a set of links down; messages over a down link are dropped
systematically, and when the link comes back up both endpoints observe a
*session drop* (the PrepareReq path of paper section 4.1.3).

FIFO is preserved per ordered ``(src, dst)`` pair even with latency jitter
by never scheduling a delivery earlier than the previously scheduled one —
exactly how a TCP stream behaves under reordering at the packet level.

For chaos testing the link model can additionally be degraded below the
TCP assumptions: :meth:`SimNetwork.set_duplication` re-delivers a fraction
of messages, and :meth:`SimNetwork.set_reordering` lets a fraction escape
the FIFO clamp by up to a bounded extra delay. Both are accounted per
reason (``repro_messages_duplicated_total`` /
``repro_messages_reordered_total``), mirroring the drop-reason counters,
so a chaos export explains every non-FIFO delivery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Optional, Tuple

from repro.errors import ConfigError
from repro.obs.registry import Instrumented
from repro.sim.events import EventQueue
from repro.sim.metrics import IOTracker, wire_size


def _link(a: int, b: int) -> FrozenSet[int]:
    return frozenset((a, b))


@dataclass(frozen=True)
class NetworkParams:
    """Default link characteristics.

    ``one_way_ms`` is half the RTT (paper LAN: RTT 0.2 ms -> 0.1 ms one-way).
    ``jitter_ms`` adds uniform random delay in ``[0, jitter_ms)``.
    ``loss_rate`` drops messages independently at random (0 disables).
    """

    one_way_ms: float = 0.1
    jitter_ms: float = 0.0
    loss_rate: float = 0.0
    #: Probability of delivering a message twice (stray retransmission).
    duplicate_rate: float = 0.0
    #: Probability of a message escaping the per-pair FIFO clamp, delayed
    #: by up to ``reorder_window_ms`` so later sends can overtake it.
    reorder_rate: float = 0.0
    reorder_window_ms: float = 0.0
    #: Per-server egress capacity in bytes per millisecond (None = infinite).
    #: Finite egress serializes large transfers at the sender NIC — this is
    #: what makes leader-only log migration a bottleneck (paper section 7.3).
    egress_bytes_per_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.one_way_ms < 0 or self.jitter_ms < 0:
            raise ConfigError("latency must be non-negative")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigError("loss_rate must be in [0, 1)")
        if not 0.0 <= self.duplicate_rate < 1.0:
            raise ConfigError("duplicate_rate must be in [0, 1)")
        if not 0.0 <= self.reorder_rate < 1.0:
            raise ConfigError("reorder_rate must be in [0, 1)")
        if self.reorder_window_ms < 0:
            raise ConfigError("reorder_window_ms must be non-negative")
        if self.egress_bytes_per_ms is not None and self.egress_bytes_per_ms <= 0:
            raise ConfigError("egress_bytes_per_ms must be positive")


class SimNetwork(Instrumented):
    """Delivers messages between servers subject to the link model."""

    def __init__(
        self,
        queue: EventQueue,
        params: NetworkParams = NetworkParams(),
        rng=None,
        io_tracker: Optional[IOTracker] = None,
    ):
        self._queue = queue
        self._params = params
        self._rng = rng
        self._io = io_tracker
        # Hot-path caches of the frozen params (attribute chains through a
        # frozen dataclass are measurable at send rates).
        self._default_latency = params.one_way_ms
        self._jitter_ms = params.jitter_ms
        self._egress = params.egress_bytes_per_ms
        #: Directed links explicitly taken down (ordered (src, dst) pairs);
        #: every other direction is up. Symmetric cuts add both directions;
        #: half-duplex failures (paper section 8) add just one.
        self._down: set = set()
        #: Per-link latency overrides (symmetric).
        self._latency: Dict[FrozenSet[int], float] = {}
        #: Directed per-pair latency overrides (``slow_link`` fail-slow
        #: injection): take precedence over the symmetric map in the sent
        #: direction only, modelling asymmetric degradation (a congested
        #: egress path while the return path stays fast).
        self._latency_directed: Dict[Tuple[int, int], float] = {}
        #: Precomputed merged ordered-pair view of the two override maps so
        #: the send path looks up latency by the same ``(src, dst)`` tuple
        #: it already builds for the FIFO clamp — no per-send frozenset
        #: allocation. Directed overrides win over symmetric ones.
        self._latency_by_pair: Dict[Tuple[int, int], float] = {}
        #: FIFO enforcement: last scheduled delivery per ordered pair.
        self._last_delivery: Dict[Tuple[int, int], float] = {}
        #: Egress serialization: when each sender's NIC becomes free.
        self._egress_free_at: Dict[int, float] = {}
        #: Called with (src, dst, msg) on each successful delivery.
        self._deliver: Optional[Callable[[int, int, Any], None]] = None
        #: Called with (a, b) when a down link comes back up.
        self._session_restored: Optional[Callable[[int, int], None]] = None
        #: Called with (now_ms, src, dst, msg, reason) whenever the link
        #: model drops a message — lets MessageTrace show *why* messages
        #: vanished. Plain public attribute so a wrapper can save and
        #: restore the previous callback (same stacking discipline as
        #: wrapping ``send``).
        self.drop_callback: Optional[
            Callable[[float, int, int, Any, str], None]
        ] = None
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_reordered = 0
        #: Messages scheduled for delivery but not yet delivered/dropped
        #: (duplicates count twice). Kept always-on — two int ops per
        #: message either way keeps digests trivially identical on/off.
        self._in_flight = 0
        #: Runtime-mutable copies of the loss/dup/reorder knobs so a chaos
        #: schedule can switch bursts on and off mid-run.
        self._loss_rate = params.loss_rate
        self._duplicate_rate = params.duplicate_rate
        self._reorder_rate = params.reorder_rate
        self._reorder_window_ms = params.reorder_window_ms

    @property
    def now(self) -> float:
        """Current virtual time in ms (the event queue's clock)."""
        return self._queue.now

    @property
    def in_flight(self) -> int:
        """Messages currently scheduled but not yet delivered or dropped."""
        return self._in_flight

    # -- wiring -------------------------------------------------------------

    def on_deliver(self, callback: Callable[[int, int, Any], None]) -> None:
        self._deliver = callback

    def on_session_restored(self, callback: Callable[[int, int], None]) -> None:
        self._session_restored = callback

    # -- topology control -----------------------------------------------------

    def is_up(self, a: int, b: int) -> bool:
        """Whether messages flow in the ``a -> b`` direction."""
        return (a, b) not in self._down

    def is_full_duplex(self, a: int, b: int) -> bool:
        """Whether both directions between ``a`` and ``b`` are up."""
        return self.is_up(a, b) and self.is_up(b, a)

    def set_link(self, a: int, b: int, up: bool) -> None:
        """Take the (symmetric) link between ``a`` and ``b`` down or up.

        Restoring a previously down link triggers the session-restored
        callback so replicas can run their link-session-drop handling.
        """
        if up:
            was_down = (a, b) in self._down or (b, a) in self._down
            self._down.discard((a, b))
            self._down.discard((b, a))
            if was_down and self._session_restored is not None:
                self._session_restored(a, b)
        else:
            self._down.add((a, b))
            self._down.add((b, a))

    def set_link_directed(self, src: int, dst: int, up: bool) -> None:
        """Half-duplex control: affect only the ``src -> dst`` direction.

        Session-restored callbacks fire only when the link becomes fully
        bidirectional again (a TCP session needs both directions).
        """
        if up:
            was_down = (src, dst) in self._down
            self._down.discard((src, dst))
            if was_down and self.is_full_duplex(src, dst) \
                    and self._session_restored is not None:
                self._session_restored(src, dst)
        else:
            self._down.add((src, dst))

    def down_links(self) -> Tuple[FrozenSet[int], ...]:
        """Links with at least one direction down (as unordered pairs)."""
        return tuple({_link(a, b) for (a, b) in self._down})

    def heal_all(self) -> None:
        """Bring every link back up (with session-restored callbacks)."""
        for link in self.down_links():
            a, b = tuple(link)
            self.set_link(a, b, True)

    def set_latency(self, a: int, b: int, one_way_ms: float) -> None:
        """Override the one-way latency of one link (symmetric)."""
        if one_way_ms < 0:
            raise ConfigError("latency must be non-negative")
        self._latency[_link(a, b)] = one_way_ms
        self._refresh_pair(a, b)
        self._refresh_pair(b, a)

    def latency(self, a: int, b: int) -> float:
        """The symmetric one-way latency of the link (ignores directed
        overrides — see :meth:`effective_latency` for the sent direction)."""
        return self._latency.get(_link(a, b), self._default_latency)

    def latency_override(self, a: int, b: int) -> Optional[float]:
        """The current symmetric override for the link, or None when the
        link rides the default (lets a fault revert restore what was
        configured — e.g. a geo latency map — instead of clearing it)."""
        return self._latency.get(_link(a, b))

    def effective_latency(self, src: int, dst: int) -> float:
        """The one-way latency a message sent ``src -> dst`` experiences
        right now: directed override, else symmetric override, else the
        default."""
        return self._latency_by_pair.get((src, dst), self._default_latency)

    def set_latency_directed(self, src: int, dst: int,
                             one_way_ms: float) -> None:
        """Override latency in the ``src -> dst`` direction only.

        The return path keeps its symmetric/default latency — this is the
        asymmetric fail-slow link (``slow_link``): one direction limps, the
        other stays fast, so request/reply protocols see inflated RTTs
        without losing connectivity.
        """
        if one_way_ms < 0:
            raise ConfigError("latency must be non-negative")
        self._latency_directed[(src, dst)] = one_way_ms
        self._refresh_pair(src, dst)

    def directed_latency_override(self, src: int,
                                  dst: int) -> Optional[float]:
        """The current ``src -> dst`` directed override, or None."""
        return self._latency_directed.get((src, dst))

    def clear_latency_directed(self, src: int, dst: int) -> None:
        """Drop a directed override (back to symmetric/default)."""
        self._latency_directed.pop((src, dst), None)
        self._refresh_pair(src, dst)

    def max_latency(self) -> float:
        """The largest effective one-way latency of any link (the default
        when no override exceeds it). Timeout derivations use this so WAN
        maps *and* mid-run inflation (``slow_link``) are respected."""
        if not self._latency_by_pair:
            return self._default_latency
        return max(self._default_latency, max(self._latency_by_pair.values()))

    def clear_latency(self, a: int, b: int) -> None:
        """Drop a per-link symmetric latency override (back to the default).

        Directed overrides on the pair, if any, stay in force."""
        self._latency.pop(_link(a, b), None)
        self._refresh_pair(a, b)
        self._refresh_pair(b, a)

    def _refresh_pair(self, src: int, dst: int) -> None:
        """Recompute the merged per-pair view for one ordered pair."""
        value = self._latency_directed.get((src, dst))
        if value is None:
            value = self._latency.get(_link(src, dst))
        if value is None:
            self._latency_by_pair.pop((src, dst), None)
        else:
            self._latency_by_pair[(src, dst)] = value

    # -- link degradation (chaos knobs) -------------------------------------

    def set_loss(self, rate: float) -> None:
        """Drop this fraction of messages at random (0 disables)."""
        if not 0.0 <= rate < 1.0:
            raise ConfigError("loss_rate must be in [0, 1)")
        if rate > 0.0 and self._rng is None:
            raise ConfigError("loss requires a seeded rng")
        self._loss_rate = rate

    def set_duplication(self, rate: float) -> None:
        """Deliver this fraction of messages twice (0 disables).

        The duplicate arrives after an extra random delay and does *not*
        advance the FIFO clamp — it models a stray retransmission, which is
        exactly what session-counter–based loss detection must tolerate.
        """
        if not 0.0 <= rate < 1.0:
            raise ConfigError("duplicate_rate must be in [0, 1)")
        if rate > 0.0 and self._rng is None:
            raise ConfigError("duplication requires a seeded rng")
        self._duplicate_rate = rate

    def set_reordering(self, rate: float, window_ms: float) -> None:
        """Let this fraction of messages escape FIFO by up to ``window_ms``.

        A reordered message is delayed without advancing the FIFO clamp, so
        messages sent later can overtake it — bounded out-of-order delivery
        (UDP-style), which the protocols' AcceptDecide/AppendEntries session
        counters must detect and repair.
        """
        if not 0.0 <= rate < 1.0:
            raise ConfigError("reorder_rate must be in [0, 1)")
        if window_ms < 0:
            raise ConfigError("reorder_window_ms must be non-negative")
        if rate > 0.0 and self._rng is None:
            raise ConfigError("reordering requires a seeded rng")
        self._reorder_rate = rate
        self._reorder_window_ms = window_ms

    # -- sending ----------------------------------------------------------------

    def send(self, src: int, dst: int, msg: Any) -> None:
        """Send ``msg`` from ``src`` to ``dst`` under the link model.

        Outgoing bytes are accounted at ``src`` even for dropped messages —
        the sender pays the IO either way, as on the real testbed.

        This is the second-hottest loop in the simulator (after the event
        queue), so the common case — link up, no loss/jitter/egress, obs
        off — touches only the FIFO dict and the scheduler: wire size is
        computed only for consumers that need it, latency comes from the
        precomputed ordered-pair table, and the float arithmetic matches
        the unoptimized path operation-for-operation so arrival times (and
        therefore decided logs) are bit-identical.
        """
        self.messages_sent += 1
        queue = self._queue
        egress = self._egress
        if self._io is not None or egress is not None or self._obs_on:
            nbytes = wire_size(msg)
            if self._io is not None:
                self._io.record(src, nbytes, queue.now)
            if self._obs_on:
                payload = getattr(msg, "payload", msg)
                self._obs.counter("repro_messages_sent_total", src=src,
                                  kind=type(payload).__name__).inc()
                self._obs.counter("repro_bytes_sent_total",
                                  src=src).inc(nbytes)
        else:
            nbytes = 0  # nobody consumes it on this path
        key = (src, dst)
        if key in self._down:
            self._drop(src, dst, msg, "link_down")
            return
        rng = self._rng
        if self._loss_rate > 0.0 and rng is not None \
                and rng.random() < self._loss_rate:
            self._drop(src, dst, msg, "loss")
            return
        now = queue.now
        lat = self._latency_by_pair.get(key, self._default_latency)
        send_done = now
        if egress is not None:
            # The sender NIC serializes outgoing bytes: transmission starts
            # when the NIC is free and takes size/capacity milliseconds.
            start = max(send_done, self._egress_free_at.get(src, 0.0))
            send_done = start + nbytes / egress
            self._egress_free_at[src] = send_done
        delay = send_done - now + lat
        if self._jitter_ms > 0.0 and rng is not None:
            delay += rng.random() * self._jitter_ms
        if self._obs_on:
            # The modeled round trip if a reply came straight back over the
            # same (symmetric) link — the sim analogue of the TCP
            # transport's ping-loop samples. Reads `delay` only; consumes
            # no randomness, so arrival times stay bit-identical.
            self._obs.histogram("repro_link_rtt_ms", src=src,
                                dst=dst).observe(2.0 * delay)
        arrival = now + delay
        # FIFO per ordered pair: never deliver before an earlier send.
        arrival2 = self._last_delivery.get(key, 0.0)
        if arrival2 > arrival:
            arrival = arrival2
        if self._reorder_rate > 0.0 and rng is not None \
                and rng.random() < self._reorder_rate:
            # Escape the FIFO clamp: delay this delivery without advancing
            # the clamp, so later sends can overtake it (bounded reorder).
            self.messages_reordered += 1
            if self._obs_on:
                self._obs.counter("repro_messages_reordered_total",
                                  src=src).inc()
            arrival += rng.random() * self._reorder_window_ms
        else:
            self._last_delivery[key] = arrival
        self._in_flight += 1
        queue.schedule(arrival, lambda: self._try_deliver(src, dst, msg))
        if self._duplicate_rate > 0.0 and rng is not None \
                and rng.random() < self._duplicate_rate:
            # A stray retransmission: the copy trails the original by up to
            # one extra one-way latency and skips the FIFO clamp too.
            self.messages_duplicated += 1
            if self._obs_on:
                self._obs.counter("repro_messages_duplicated_total",
                                  src=src).inc()
            copy_at = arrival + rng.random() * max(lat, 0.1)
            self._in_flight += 1
            queue.schedule(
                copy_at, lambda: self._try_deliver(src, dst, msg)
            )

    def _drop(self, src: int, dst: int, msg: Any, reason: str) -> None:
        """Account one dropped message (``reason``: ``link_down`` for a
        partitioned link at send time, ``loss`` for random loss,
        ``in_flight_cut`` for a link cut while the message was in the air)."""
        self.messages_dropped += 1
        if self._obs.enabled:
            self._obs.counter("repro_messages_dropped_total", src=src,
                              reason=reason).inc()
        if self.drop_callback is not None:
            self.drop_callback(self._queue.now, src, dst, msg, reason)

    def _try_deliver(self, src: int, dst: int, msg: Any) -> None:
        self._in_flight -= 1
        # A message in flight when the link was cut is lost (the TCP session
        # breaks); check connectivity again at delivery time.
        if not self.is_up(src, dst):
            self._drop(src, dst, msg, "in_flight_cut")
            return
        if self._deliver is not None:
            self._deliver(src, dst, msg)
