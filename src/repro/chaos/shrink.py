"""Minimal-reproducer shrinking (delta debugging over fault ops).

Given a schedule whose run violates an invariant, :func:`shrink_schedule`
searches for a 1-minimal subset of its fault ops that still reproduces
*a* violation: classic ddmin (Zeller & Hildebrandt), dropping chunks of
ops and re-running the deterministic engine on each candidate. Because
every op is self-reverting (see :mod:`repro.chaos.schedule`), any subset
of ops is itself a well-formed schedule, so no repair step is needed.

The reproduction predicate is injectable: the acceptance tests shrink
under a monkeypatched protocol bug, and the CLI shrinks with the plain
engine. By default a candidate "reproduces" if it yields *any* violation
(not necessarily the identical message) — chasing the exact message makes
shrinking brittle for no diagnostic gain.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.chaos.engine import ChaosResult, run_schedule
from repro.chaos.schedule import ChaosSchedule


def default_reproduces(schedule: ChaosSchedule) -> bool:
    """Run the engine; True if any invariant violation occurs."""
    return not run_schedule(schedule).ok


def shrink_schedule(
    schedule: ChaosSchedule,
    reproduces: Optional[Callable[[ChaosSchedule], bool]] = None,
    max_runs: int = 200,
) -> Tuple[ChaosSchedule, int]:
    """ddmin the fault ops of a failing ``schedule``.

    Returns ``(shrunk, runs_used)``. The input must reproduce (callers
    should have a failing run in hand); if it does not, it is returned
    unchanged with 0 runs used.
    """
    check = reproduces if reproduces is not None else default_reproduces
    runs = 0

    def attempt(candidate: ChaosSchedule) -> bool:
        nonlocal runs
        runs += 1
        return check(candidate)

    current = schedule
    if not current.ops:
        return current, runs
    n = 2
    while len(current.ops) >= 2 and runs < max_runs:
        size = len(current.ops)
        chunk = max(size // n, 1)
        reduced = False
        # Try removing each chunk (complement testing): keeping everything
        # *except* ops[i:i+chunk] is the ddmin "reduce to complement" step.
        for start in range(0, size, chunk):
            if runs >= max_runs:
                break
            indices = range(start, min(start + chunk, size))
            candidate = current.without_ops(indices)
            if attempt(candidate):
                current = candidate
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= size:
                break
            n = min(n * 2, size)
    return current, runs


def shrink_result(schedule: ChaosSchedule,
                  reproduces: Optional[Callable[[ChaosSchedule], bool]] = None,
                  max_runs: int = 200) -> Tuple[ChaosSchedule, ChaosResult, int]:
    """Shrink and re-run once more to capture the final failing verdict."""
    shrunk, runs = shrink_schedule(schedule, reproduces, max_runs)
    return shrunk, run_schedule(shrunk), runs
