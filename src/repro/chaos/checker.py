"""Continuous invariant checking during a chaos run.

Two layers, matching what can be observed at each level:

- :class:`DecidedLogChecker` is protocol-agnostic. It watches the decided
  stream of every server (via ``SimCluster.on_decided``) and maintains the
  *canonical log*: the first-decided entry at each global index. It checks
  SC1 (validity: every decided entry was actually proposed), SC2 (prefix
  agreement: every server's decided sequence matches the canonical log),
  and SC3-adjacent gap-freedom (a server never applies index ``i`` before
  ``i-1``). Re-application from index 0 after a restart is legal — it must
  simply match what was decided before.

- The Omni-specific white-box checks (:func:`repro.omni.invariants
  .check_all` plus the stateful
  :class:`~repro.omni.invariants.MonotonicityTracker`) are run by the
  engine between event slices; they read promises, accepted rounds, and
  leader flags that only Sequence Paxos exposes.

Violations are *recorded*, not raised: a raise inside an event-queue
callback would unwind the simulation mid-step, so the engine polls
:attr:`DecidedLogChecker.violation` instead and stops cleanly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.omni.entry import Command


class DecidedLogChecker:
    """Black-box SC1/SC2 safety checker over per-server decided streams."""

    def __init__(
        self,
        was_proposed: Optional[Callable[[Any], bool]] = None,
    ):
        #: canonical[i] = the first entry any server decided at index i.
        self.canonical: List[Any] = []
        #: First decider per index (for violation messages).
        self._first_decider: Dict[int, int] = {}
        #: Next expected decided index per server.
        self.next_idx: Dict[int, int] = {}
        #: First violation (message, time) or None.
        self.violation: Optional[str] = None
        self.violation_at_ms: Optional[float] = None
        self._was_proposed = was_proposed
        self.observations = 0

    def _record(self, message: str, now: float) -> None:
        if self.violation is None:
            self.violation = message
            self.violation_at_ms = now

    def forget(self, pid: int) -> None:
        """Reset a server's position after a *wiped* restart: it legally
        re-applies from scratch (the canonical log still constrains it)."""
        self.next_idx.pop(pid, None)

    def observe(self, pid: int, idx: int, entry: Any, now: float) -> None:
        """Feed one ``(pid, idx, entry)`` decided notification."""
        self.observations += 1
        if self.violation is not None:
            return
        if self._was_proposed is not None and not self._was_proposed(entry):
            self._record(
                f"SC1 violated: server {pid} decided unproposed entry "
                f"{entry!r} at index {idx}", now,
            )
            return
        nxt = self.next_idx.get(pid, 0)
        if idx > nxt:
            self._record(
                f"decided-index gap at server {pid}: applied index {idx} "
                f"before {nxt}", now,
            )
            return
        if idx < len(self.canonical):
            # Someone already decided this index: logs must agree (SC2).
            # This also covers legal re-application after a restart.
            if entry != self.canonical[idx]:
                self._record(
                    f"SC2 violated at index {idx}: server {pid} decided "
                    f"{entry!r} but server {self._first_decider[idx]} "
                    f"decided {self.canonical[idx]!r}", now,
                )
                return
        else:
            # idx == nxt == len(canonical): first decision of this index.
            self.canonical.append(entry)
            self._first_decider[idx] = pid
        if idx == nxt:
            self.next_idx[pid] = idx + 1

    @property
    def ok(self) -> bool:
        return self.violation is None

    def decided_counts(self) -> Dict[int, int]:
        """Entries each server has applied (contiguously from 0)."""
        return dict(self.next_idx)


def command_validator(max_seq_fn: Callable[[], int],
                      client_id: int = 1) -> Callable[[Any], bool]:
    """SC1 predicate for the closed-loop workload: a decided command is
    valid iff it carries the client's id and a sequence number the client
    has actually handed out (``max_seq_fn`` reads the client's watermark).
    Non-command entries (stop-signs) pass."""

    def was_proposed(entry: Any) -> bool:
        if not isinstance(entry, Command):
            return True
        return entry.client_id == client_id and 0 <= entry.seq < max_seq_fn()

    return was_proposed
