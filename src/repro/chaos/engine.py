"""Run a chaos schedule against a simulated cluster, checking invariants.

The engine consumes **no randomness of its own**: every random choice was
made by the generator and frozen into the schedule, and the simulator's
only RNG streams (network jitter/loss/dup/reorder, Raft timers) are
derived from the schedule's seed. Same schedule in, bit-identical decided
logs and verdict out — which is what makes ``replay`` and the shrinker
trustworthy.

Fault ops are applied at their scheduled time; each op schedules its own
revert (restart, heal, rate-reset) when it is applied, so a schedule with
an op removed also loses the op's end — see :mod:`repro.chaos.schedule`.
After the last scheduled millisecond the engine heals *everything* and
runs a fault-free cooldown, then sweeps the invariants one last time.
Safety (SC1–SC3, P1, LE3, monotonicity) is asserted; convergence after
the heal is only *reported* (``converged``), because liveness within a
fixed cooldown is not something the paper's model promises under every
schedule tail.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.chaos.checker import DecidedLogChecker, command_validator
from repro.chaos.schedule import ChaosSchedule, FaultOp, describe_op
from repro.errors import ReproError
from repro.obs.events import NemesisInjected
from repro.obs.flight import DEFAULT_CAPACITY, FlightRecorder
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.omni.faults import FaultyStorage
from repro.omni.invariants import (
    InvariantViolation,
    MonotonicityTracker,
    check_all,
)
from repro.sim.harness import ExperimentConfig, build_experiment, make_replica


@dataclass
class ChaosResult:
    """Verdict and fingerprints of one chaos run."""

    schedule_digest: str
    ok: bool
    violation: Optional[str]
    violation_at_ms: Optional[float]
    #: sha256 prefix over the canonical decided log (bit-determinism probe).
    decided_digest: str
    decided_len: int
    per_server_decided: Dict[int, int]
    converged: bool
    ops_applied: int
    storage_crashes: int
    ran_ms: float
    messages: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schedule_digest": self.schedule_digest,
            "ok": self.ok,
            "violation": self.violation,
            "violation_at_ms": self.violation_at_ms,
            "decided_digest": self.decided_digest,
            "decided_len": self.decided_len,
            "per_server_decided": {
                str(k): v for k, v in sorted(self.per_server_decided.items())
            },
            "converged": self.converged,
            "ops_applied": self.ops_applied,
            "storage_crashes": self.storage_crashes,
            "ran_ms": self.ran_ms,
            "messages": dict(self.messages),
        }


class _ChaosRun:
    """One engine execution (kept as an object so op closures share state)."""

    def __init__(self, schedule: ChaosSchedule, obs: MetricsRegistry,
                 cooldown_ms: Optional[float],
                 check_period_ms: Optional[float]):
        self.schedule = schedule
        self.obs = obs
        self.cooldown_ms = (
            cooldown_ms if cooldown_ms is not None
            else 20.0 * schedule.election_timeout_ms
        )
        self.check_period_ms = (
            check_period_ms if check_period_ms is not None
            else max(schedule.election_timeout_ms, 50.0)
        )
        self.faulty: Dict[int, FaultyStorage] = {}
        latency_map: Dict[Any, float] = {}
        if schedule.geo is not None:
            from repro.sim.geo import geo_latency_map
            latency_map = geo_latency_map(
                tuple(range(1, schedule.num_servers + 1)), schedule.geo
            )
        self.cfg = ExperimentConfig(
            protocol=schedule.protocol,
            num_servers=schedule.num_servers,
            election_timeout_ms=schedule.election_timeout_ms,
            one_way_ms=schedule.one_way_ms,
            latency_map=latency_map,
            seed=schedule.seed,
            storage_wrapper=(
                self._wrap_storage if schedule.protocol == "omni" else None
            ),
        )
        self.exp = build_experiment(self.cfg, obs=obs)
        self.cluster = self.exp.cluster
        self.client = self.exp.make_client(
            concurrent_proposals=schedule.concurrent_proposals
        )
        self.checker = DecidedLogChecker(
            command_validator(lambda: self.client.next_seq)
        )
        self.cluster.on_decided(self.checker.observe)
        self.tracker = MonotonicityTracker()
        #: Cross-time round -> leader map for protocols exposing ``term``.
        self._term_leaders: Dict[Any, int] = {}
        #: Symmetric links whose latency a spike changed, with the override
        #: in force *before* the first spike (None = rode the default), so
        #: reverts restore the configured environment — e.g. a geo latency
        #: map — instead of clearing it.
        self._spiked_prev: Dict[tuple, Optional[float]] = {}
        #: Same for directed (slow_link) overrides.
        self._slowed_prev: Dict[tuple, Optional[float]] = {}
        self.white_violation: Optional[str] = None
        self.white_violation_at: Optional[float] = None
        self.ops_applied = 0

    # -- storage wiring ------------------------------------------------------

    def _wrap_storage(self, pid: int, storage) -> FaultyStorage:
        fs = FaultyStorage(storage)
        # Wire the fail-slow hook unconditionally (including the fresh
        # storage of a wipe-restart): a slow write stalls the owner's next
        # timer tick, the sim model of an event loop stuck in fsync.
        # Message delivery stays prompt — that is what keeps it gray.
        fs.on_write_stall = (
            lambda ms, _pid=pid: self.cluster.add_tick_stall(_pid, ms)
        )
        self.faulty[pid] = fs
        return fs

    # -- nemesis events ------------------------------------------------------

    def _emit(self, op_kind: str, phase: str, target: str,
              detail: str = "") -> None:
        if self.obs.enabled:
            self.obs.emit(NemesisInjected(
                op=op_kind, phase=phase, target=target, detail=detail,
            ))

    # -- op application ------------------------------------------------------

    def _apply(self, op: FaultOp) -> None:
        self.ops_applied += 1
        p = op.params
        kind = op.kind
        queue = self.cluster.queue
        if kind == "crash":
            pid = int(p["pid"])
            self._emit(kind, "apply", str(pid), describe_op(op))
            if not self.cluster.is_crashed(pid):
                self.cluster.crash(pid)

            def restart() -> None:
                self._emit(kind, "revert", str(pid))
                if p["wipe"]:
                    fresh = make_replica(
                        replace(self.cfg, initial_leader=None), pid
                    )
                    fresh.set_observability(self.obs)
                    self.cluster.replace_replica(pid, fresh)
                    self.tracker.forget(pid)
                    self.checker.forget(pid)
                else:
                    self.cluster.recover(pid)

            queue.schedule_in(float(p["down_ms"]), restart)
        elif kind == "partition":
            links = [list(map(int, link)) for link in p["links"]]
            self._emit(kind, "apply", p["pattern"], describe_op(op))
            for a, b in links:
                self.cluster.set_link(a, b, False)

            def heal() -> None:
                self._emit(kind, "revert", p["pattern"])
                for a, b in links:
                    self.cluster.set_link(a, b, True)

            queue.schedule_in(float(p["heal_ms"]), heal)
        elif kind == "delay_spike":
            links = [list(map(int, link)) for link in p["links"]]
            self._emit(kind, "apply", f"{len(links)} links", describe_op(op))
            net = self.cluster.network
            prev: Dict[tuple, Optional[float]] = {}
            for a, b in links:
                key = (min(a, b), max(a, b))
                prev[key] = net.latency_override(a, b)
                self._spiked_prev.setdefault(key, prev[key])
                net.set_latency(a, b, net.latency(a, b) + float(p["extra_ms"]))

            def clear() -> None:
                self._emit(kind, "revert", f"{len(links)} links")
                for (a, b), before in prev.items():
                    if before is None:
                        net.clear_latency(a, b)
                    else:
                        net.set_latency(a, b, before)

            queue.schedule_in(float(p["duration_ms"]), clear)
        elif kind == "loss_burst":
            self._emit(kind, "apply", "net", describe_op(op))
            net = self.cluster.network
            net.set_loss(float(p["rate"]))
            queue.schedule_in(
                float(p["duration_ms"]),
                lambda: (self._emit(kind, "revert", "net"),
                         net.set_loss(0.0)),
            )
        elif kind == "dup_burst":
            self._emit(kind, "apply", "net", describe_op(op))
            net = self.cluster.network
            net.set_duplication(float(p["rate"]))
            queue.schedule_in(
                float(p["duration_ms"]),
                lambda: (self._emit(kind, "revert", "net"),
                         net.set_duplication(0.0)),
            )
        elif kind == "reorder_burst":
            self._emit(kind, "apply", "net", describe_op(op))
            net = self.cluster.network
            net.set_reordering(float(p["rate"]), float(p["window_ms"]))
            queue.schedule_in(
                float(p["duration_ms"]),
                lambda: (self._emit(kind, "revert", "net"),
                         net.set_reordering(0.0, 0.0)),
            )
        elif kind == "storage_fault":
            pid = int(p["pid"])
            fs = self.faulty.get(pid)
            if fs is None:
                # Baseline protocols keep their log in plain lists; the
                # generator only emits this op for omni, but a hand-edited
                # schedule may not — record it as a no-op.
                self._emit(kind, "apply", str(pid), "unsupported protocol")
                return
            self._emit(kind, "apply", str(pid), describe_op(op))
            fs.fail_after(int(p["after_writes"]), mode=p["mode"])

            def heal_storage() -> None:
                self._emit(kind, "revert", str(pid))
                fs.heal()
                if self.cluster.is_crashed(pid):
                    self.cluster.recover(pid)

            queue.schedule_in(float(p["heal_ms"]), heal_storage)
        elif kind == "clock_skew":
            pid = int(p["pid"])
            self._emit(kind, "apply", str(pid), describe_op(op))
            # Layered, not absolute: two skews (or a skew and a slow_cpu)
            # stacked on one pid compose multiplicatively and each revert
            # removes exactly its own layer, whatever the revert order.
            handle = self.cluster.push_tick_scale(pid, float(p["factor"]))
            queue.schedule_in(
                float(p["duration_ms"]),
                lambda: (self._emit(kind, "revert", str(pid)),
                         self.cluster.pop_tick_scale(pid, handle)),
            )
        elif kind == "slow_cpu":
            pid = int(p["pid"])
            per_msg = float(p["per_msg_ms"])
            self._emit(kind, "apply", str(pid), describe_op(op))
            handle = self.cluster.push_tick_scale(pid, float(p["factor"]))
            self.cluster.set_msg_cost(
                pid, self.cluster.msg_cost_of(pid) + per_msg
            )

            def recover_cpu() -> None:
                self._emit(kind, "revert", str(pid))
                self.cluster.pop_tick_scale(pid, handle)
                self.cluster.set_msg_cost(
                    pid, max(0.0, self.cluster.msg_cost_of(pid) - per_msg)
                )

            queue.schedule_in(float(p["duration_ms"]), recover_cpu)
        elif kind == "slow_disk":
            pid = int(p["pid"])
            fs = self.faulty.get(pid)
            if fs is None:
                # Baselines keep their logs in plain lists: nothing to slow.
                self._emit(kind, "apply", str(pid), "unsupported protocol")
                return
            self._emit(kind, "apply", str(pid), describe_op(op))
            fs.slow_writes(float(p["per_write_ms"]))

            def recover_disk() -> None:
                self._emit(kind, "revert", str(pid))
                # Heal whichever FaultyStorage now serves the pid (a wipe
                # restart may have swapped it since we armed the old one).
                current = self.faulty.get(pid)
                if current is not None:
                    current.slow_writes(0.0)
                if current is not fs:
                    fs.slow_writes(0.0)
                self.cluster.clear_tick_stall(pid)

            queue.schedule_in(float(p["duration_ms"]), recover_disk)
        elif kind == "slow_link":
            src, dst = int(p["src"]), int(p["dst"])
            net = self.cluster.network
            self._emit(kind, "apply", f"{src}->{dst}", describe_op(op))
            before = net.directed_latency_override(src, dst)
            self._slowed_prev.setdefault((src, dst), before)
            net.set_latency_directed(
                src, dst,
                net.effective_latency(src, dst) + float(p["inflate_ms"]),
            )

            def recover_link() -> None:
                self._emit(kind, "revert", f"{src}->{dst}")
                if before is None:
                    net.clear_latency_directed(src, dst)
                else:
                    net.set_latency_directed(src, dst, before)

            queue.schedule_in(float(p["duration_ms"]), recover_link)
        else:  # pragma: no cover - schedule validation rejects unknown kinds
            raise ReproError(f"unhandled fault kind {kind!r}")

    # -- invariant sweeps ----------------------------------------------------

    def _alive_replicas(self) -> List[Any]:
        return [
            self.cluster.replica(pid)
            for pid in self.cluster.pids
            if not self.cluster.is_crashed(pid)
        ]

    def _white_box_sweep(self) -> None:
        if self.white_violation is not None:
            return
        alive = self._alive_replicas()
        try:
            check_all(alive)
            self.tracker.observe(alive)
        except InvariantViolation as exc:
            self.white_violation = str(exc)
            self.white_violation_at = self.cluster.now
            return
        # Cross-time single-leader-per-term for protocols exposing ``term``
        # (Raft: at most one leader may ever win a given term).
        for node in alive:
            term = getattr(node, "term", None)
            if term is None or not node.is_leader:
                continue
            key = (self.schedule.protocol, term)
            owner = self._term_leaders.get(key)
            if owner is not None and owner != node.pid:
                self.white_violation = (
                    f"term {term} led by {owner} earlier and {node.pid} now"
                )
                self.white_violation_at = self.cluster.now
                return
            self._term_leaders[key] = node.pid

    @property
    def violation(self) -> Optional[str]:
        return self.checker.violation or self.white_violation

    @property
    def violation_at(self) -> Optional[float]:
        if self.checker.violation is not None:
            return self.checker.violation_at_ms
        return self.white_violation_at

    # -- phases --------------------------------------------------------------

    def run(self) -> ChaosResult:
        for op in sorted(self.schedule.ops, key=lambda o: o.at_ms):
            self.cluster.queue.schedule(
                op.at_ms, lambda op=op: self._apply(op)
            )
        self._run_checked(self.schedule.duration_ms)
        converged = False
        if self.violation is None:
            self._heal_everything()
            self._run_checked(self.cluster.now + self.cooldown_ms)
            self._white_box_sweep()
            converged = self._converged()
        return self._result(converged)

    def _run_checked(self, until_ms: float) -> None:
        while self.cluster.now < until_ms and self.violation is None:
            step = min(self.cluster.now + self.check_period_ms, until_ms)
            self.cluster.run_until(step)
            self._white_box_sweep()

    def _heal_everything(self) -> None:
        self._emit("heal_all", "apply", "cluster")
        net = self.cluster.network
        self.cluster.heal_all_links()
        net.set_loss(0.0)
        net.set_duplication(0.0)
        net.set_reordering(0.0, 0.0)
        # Restore — not clear — the latency overrides the faults touched:
        # the pre-fault value may be a configured geo environment, and the
        # cooldown must run in that environment, not a flattened LAN.
        for (a, b), before in self._spiked_prev.items():
            if before is None:
                net.clear_latency(a, b)
            else:
                net.set_latency(a, b, before)
        for (src, dst), before in self._slowed_prev.items():
            if before is None:
                net.clear_latency_directed(src, dst)
            else:
                net.set_latency_directed(src, dst, before)
        for fs in self.faulty.values():
            fs.heal()
        for pid in self.cluster.pids:
            self.cluster.set_tick_scale(pid, 1.0)
            self.cluster.set_msg_cost(pid, 0.0)
            self.cluster.clear_tick_stall(pid)
            if self.cluster.is_crashed(pid):
                self.cluster.recover(pid)

    def _converged(self) -> bool:
        counts = {
            self.checker.next_idx.get(pid, 0) for pid in self.cluster.pids
        }
        return len(counts) == 1 and len(self.cluster.leaders()) >= 1

    def _result(self, converged: bool) -> ChaosResult:
        digest = hashlib.sha256(
            "\n".join(repr(e) for e in self.checker.canonical).encode()
        ).hexdigest()[:16]
        net = self.cluster.network
        return ChaosResult(
            schedule_digest=self.schedule.digest(),
            ok=self.violation is None,
            violation=self.violation,
            violation_at_ms=self.violation_at,
            decided_digest=digest,
            decided_len=len(self.checker.canonical),
            per_server_decided=self.checker.decided_counts(),
            converged=converged,
            ops_applied=self.ops_applied,
            storage_crashes=self.cluster.storage_crashes,
            ran_ms=self.cluster.now,
            messages={
                "sent": net.messages_sent,
                "dropped": net.messages_dropped,
                "duplicated": net.messages_duplicated,
                "reordered": net.messages_reordered,
            },
        )


def run_schedule(
    schedule: ChaosSchedule,
    obs: Optional[MetricsRegistry] = None,
    cooldown_ms: Optional[float] = None,
    check_period_ms: Optional[float] = None,
    flight_path: Optional[str] = None,
    flight_capacity: int = DEFAULT_CAPACITY,
) -> ChaosResult:
    """Execute ``schedule`` and return its :class:`ChaosResult`.

    Pass an enabled :class:`MetricsRegistry` to capture nemesis events,
    protocol events, and counters for the run (the failure artifact).

    Pass ``flight_path`` to attach a bounded
    :class:`~repro.obs.flight.FlightRecorder` for the run; if any safety
    check fails, the recorder's recent history (the last
    ``flight_capacity`` events per server) is dumped there as a
    ``repro-obs``-compatible JSON-lines file. When no registry is given,
    an enabled one (with tracing) is created so the recorder sees the
    full event stream.
    """
    registry = obs if obs is not None else NULL_REGISTRY
    recorder: Optional[FlightRecorder] = None
    if flight_path is not None:
        if not registry.enabled:
            registry = MetricsRegistry()
            registry.enable_tracing()
        recorder = FlightRecorder(capacity=flight_capacity)
        registry.add_sink(recorder)
    run = _ChaosRun(schedule, registry, cooldown_ms, check_period_ms)
    result = run.run()
    if recorder is not None and not result.ok:
        recorder.dump_jsonl(flight_path, registry)
    return result
