"""The fault-op vocabulary and replayable chaos schedules.

A :class:`ChaosSchedule` is pure data: which protocol and cluster size to
run, for how long, and a time-ordered list of :class:`FaultOp`. Every op is
*self-reverting* — it carries its own duration, and the engine schedules
the revert when it applies the op. That property is what makes the
shrinker sound: removing an op removes both its onset and its end, so a
shrunk schedule can never leave a server permanently crashed or a link
permanently cut.

Schedules round-trip losslessly through JSON (sorted keys, stable float
formatting), so ``digest()`` is a bit-stable fingerprint: the same seed
always generates the same digest, and ``replay`` of an emitted file runs
the byte-identical schedule.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ConfigError

#: Fault-op kinds and their required parameters.
OP_PARAMS: Dict[str, Tuple[str, ...]] = {
    # Crash pid for down_ms; restart with storage intact, or wiped (a new
    # disk: deliberately violates the fail-recovery model when wipe=True).
    "crash": ("pid", "down_ms", "wipe"),
    # Cut exactly these links, restore exactly them after heal_ms.
    # ``pattern`` records the connectivity shape for humans ("quorum_loss",
    # "constrained", "chained", "random"); the engine only reads ``links``.
    "partition": ("pattern", "links", "heal_ms"),
    # Add extra_ms one-way latency on these links for duration_ms.
    "delay_spike": ("links", "extra_ms", "duration_ms"),
    # Random message loss / duplication / bounded reordering bursts.
    "loss_burst": ("rate", "duration_ms"),
    "dup_burst": ("rate", "duration_ms"),
    "reorder_burst": ("rate", "window_ms", "duration_ms"),
    # Arm pid's FaultyStorage: after_writes more writes succeed, then writes
    # fail ("fail") or tear ("torn") until healed after heal_ms. Omni only.
    "storage_fault": ("pid", "after_writes", "mode", "heal_ms"),
    # Stretch pid's timer-check interval by factor for duration_ms.
    "clock_skew": ("pid", "factor", "duration_ms"),
    # Fail-slow CPU: stretch pid's timer interval by factor AND charge
    # per_msg_ms of serialized CPU time per inbound message. The node stays
    # alive and answers everything — late. Gray failure, not a crash.
    "slow_cpu": ("pid", "factor", "per_msg_ms", "duration_ms"),
    # Fail-slow disk: every write on pid's storage succeeds but stalls the
    # event loop per_write_ms (a blocked fsync). Omni only (baselines keep
    # their logs in plain lists).
    "slow_disk": ("pid", "per_write_ms", "duration_ms"),
    # Fail-slow link: inflate one-way latency src -> dst only (asymmetric);
    # the return direction stays fast, so RTTs stretch while connectivity
    # and heartbeat liveness stay green.
    "slow_link": ("src", "dst", "inflate_ms", "duration_ms"),
}

KINDS: Tuple[str, ...] = tuple(OP_PARAMS)


@dataclass(frozen=True)
class FaultOp:
    """One fault injection at ``at_ms`` (params per :data:`OP_PARAMS`)."""

    at_ms: float
    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in OP_PARAMS:
            raise ConfigError(f"unknown fault kind {self.kind!r}")
        if self.at_ms < 0:
            raise ConfigError("fault time must be non-negative")
        missing = [k for k in OP_PARAMS[self.kind] if k not in self.params]
        if missing:
            raise ConfigError(
                f"fault op {self.kind!r} missing params {missing}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {"at_ms": self.at_ms, "kind": self.kind,
                "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultOp":
        return cls(at_ms=float(data["at_ms"]), kind=data["kind"],
                   params=dict(data["params"]))


@dataclass(frozen=True)
class ChaosSchedule:
    """A full replayable chaos run: cluster shape + workload + fault ops."""

    seed: int
    protocol: str
    num_servers: int
    duration_ms: float
    ops: Tuple[FaultOp, ...] = ()
    election_timeout_ms: float = 100.0
    one_way_ms: float = 0.1
    concurrent_proposals: int = 4
    #: Optional geo-replication environment: the name of a latency map in
    #: :data:`repro.sim.geo.GEO_MAPS` (e.g. ``"regions3"``) applied to the
    #: cluster for the whole run. Part of the schedule (it changes what the
    #: run does), omitted from serialization when unset so every pre-geo
    #: schedule digest is unchanged.
    geo: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_servers < 1:
            raise ConfigError("num_servers must be >= 1")
        if self.duration_ms <= 0:
            raise ConfigError("duration_ms must be positive")
        times = [op.at_ms for op in self.ops]
        if times != sorted(times):
            raise ConfigError("fault ops must be time-ordered")

    def without_ops(self, indices) -> "ChaosSchedule":
        """A copy with the ops at ``indices`` removed (shrinker step)."""
        drop = set(indices)
        kept = tuple(op for i, op in enumerate(self.ops) if i not in drop)
        return ChaosSchedule(
            seed=self.seed, protocol=self.protocol,
            num_servers=self.num_servers, duration_ms=self.duration_ms,
            ops=kept, election_timeout_ms=self.election_timeout_ms,
            one_way_ms=self.one_way_ms,
            concurrent_proposals=self.concurrent_proposals,
            geo=self.geo,
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "seed": self.seed,
            "protocol": self.protocol,
            "num_servers": self.num_servers,
            "duration_ms": self.duration_ms,
            "election_timeout_ms": self.election_timeout_ms,
            "one_way_ms": self.one_way_ms,
            "concurrent_proposals": self.concurrent_proposals,
            "ops": [op.to_dict() for op in self.ops],
        }
        if self.geo is not None:
            data["geo"] = self.geo
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosSchedule":
        return cls(
            seed=int(data["seed"]),
            protocol=data["protocol"],
            num_servers=int(data["num_servers"]),
            duration_ms=float(data["duration_ms"]),
            election_timeout_ms=float(data.get("election_timeout_ms", 100.0)),
            one_way_ms=float(data.get("one_way_ms", 0.1)),
            concurrent_proposals=int(data.get("concurrent_proposals", 4)),
            geo=data.get("geo"),
            ops=tuple(FaultOp.from_dict(op) for op in data.get("ops", ())),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ChaosSchedule":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """A bit-stable fingerprint of the schedule (sha256 hex prefix)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _desc_crash(op: FaultOp) -> str:
    p = op.params
    how = "wiped" if p.get("wipe") else "intact"
    return (f"crash pid={p['pid']} "
            f"down={p['down_ms']:.0f}ms storage={how}")


def _desc_partition(op: FaultOp) -> str:
    p = op.params
    return (f"partition {p['pattern']} "
            f"links={len(p['links'])} heal={p['heal_ms']:.0f}ms")


def _desc_delay_spike(op: FaultOp) -> str:
    p = op.params
    return (f"delay +{p['extra_ms']:.0f}ms on "
            f"{len(p['links'])} links for {p['duration_ms']:.0f}ms")


def _desc_rate_burst(op: FaultOp) -> str:
    p = op.params
    return (f"{op.kind} rate={p['rate']} "
            f"for {p['duration_ms']:.0f}ms")


def _desc_storage_fault(op: FaultOp) -> str:
    p = op.params
    return (f"storage_fault pid={p['pid']} "
            f"mode={p['mode']} after={p['after_writes']} writes")


def _desc_clock_skew(op: FaultOp) -> str:
    p = op.params
    return (f"clock_skew pid={p['pid']} "
            f"x{p['factor']:.2f} for {p['duration_ms']:.0f}ms")


def _desc_slow_cpu(op: FaultOp) -> str:
    p = op.params
    return (f"slow_cpu pid={p['pid']} x{p['factor']:.0f} "
            f"+{p['per_msg_ms']:.2f}ms/msg for {p['duration_ms']:.0f}ms")


def _desc_slow_disk(op: FaultOp) -> str:
    p = op.params
    return (f"slow_disk pid={p['pid']} "
            f"+{p['per_write_ms']:.2f}ms/write for {p['duration_ms']:.0f}ms")


def _desc_slow_link(op: FaultOp) -> str:
    p = op.params
    return (f"slow_link {p['src']}->{p['dst']} "
            f"+{p['inflate_ms']:.0f}ms for {p['duration_ms']:.0f}ms")


#: Exhaustive per-kind describers. Keys must cover :data:`OP_PARAMS`
#: exactly — adding a fault kind without a describer is a bug, caught at
#: import time below rather than silently falling through at runtime.
_DESCRIBERS: Dict[str, Callable[[FaultOp], str]] = {
    "crash": _desc_crash,
    "partition": _desc_partition,
    "delay_spike": _desc_delay_spike,
    "loss_burst": _desc_rate_burst,
    "dup_burst": _desc_rate_burst,
    "reorder_burst": _desc_rate_burst,
    "storage_fault": _desc_storage_fault,
    "clock_skew": _desc_clock_skew,
    "slow_cpu": _desc_slow_cpu,
    "slow_disk": _desc_slow_disk,
    "slow_link": _desc_slow_link,
}

if set(_DESCRIBERS) != set(OP_PARAMS):  # pragma: no cover - import guard
    raise AssertionError(
        "describe_op coverage drifted from OP_PARAMS: "
        f"missing={sorted(set(OP_PARAMS) - set(_DESCRIBERS))} "
        f"extra={sorted(set(_DESCRIBERS) - set(OP_PARAMS))}"
    )


def describe_op(op: FaultOp) -> str:
    """One human line per op (CLI listings and nemesis events).

    Exhaustive over :data:`OP_PARAMS` — every registered kind has a
    dedicated describer, and an op whose kind somehow escaped
    registration fails loudly instead of printing a half-true generic
    line."""
    describer = _DESCRIBERS.get(op.kind)
    if describer is None:
        raise ConfigError(f"no describer for fault kind {op.kind!r}")
    return f"t={op.at_ms:.0f} {describer(op)}"
