"""Seed-driven schedule generation.

All randomness comes from ``spawn_rng(seed, "chaos")`` — the same stream
derivation the harness uses — so a seed fully determines the schedule, and
the schedule (not the generator) is what gets replayed and shrunk.

Storage wipes deliberately break the fail-recovery model the safety proof
assumes (a wiped acceptor forgets its promise and can vote twice), so they
are opt-in (``allow_wipe``) and drawn with low probability: useful for
demonstrating *why* the model matters, excluded from the CI smoke runs.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from repro.chaos.schedule import ChaosSchedule, FaultOp
from repro.errors import ConfigError
from repro.sim.harness import PROTOCOLS
from repro.util.rng import spawn_rng

#: Relative draw weights per fault kind (storage_fault and slow_disk are
#: omni-only and appended there; wipe is a low-probability variant of
#: crash). The fail-slow kinds (slow_cpu/slow_link; slow_disk for omni)
#: are first-class members of the mix, so seeded compound schedules
#: routinely combine gray failures with crashes and partitions.
_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("partition", 3.0),
    ("crash", 2.0),
    ("delay_spike", 2.0),
    ("loss_burst", 1.0),
    ("dup_burst", 1.0),
    ("reorder_burst", 1.0),
    ("clock_skew", 1.0),
    ("slow_cpu", 1.0),
    ("slow_link", 1.0),
)


def _weighted_choice(rng, weights: Sequence[Tuple[str, float]]) -> str:
    total = sum(w for _, w in weights)
    pick = rng.random() * total
    for kind, w in weights:
        pick -= w
        if pick <= 0:
            return kind
    return weights[-1][0]


def _all_pairs(pids: Sequence[int]) -> List[Tuple[int, int]]:
    return list(itertools.combinations(sorted(pids), 2))


def _partition_links(rng, pids: Sequence[int]) -> Tuple[str, List[List[int]]]:
    """Pick a connectivity pattern and expand it to the exact links to cut."""
    pattern = rng.choice(["quorum_loss", "constrained", "chained", "random"])
    pairs = _all_pairs(pids)
    if pattern == "quorum_loss":
        pivot = rng.choice(list(pids))
        cut = [[a, b] for a, b in pairs if pivot not in (a, b)]
    elif pattern == "constrained":
        pivot, isolated = rng.sample(list(pids), 2)
        cut = [
            [a, b] for a, b in pairs
            if isolated in (a, b) or pivot not in (a, b)
        ]
    elif pattern == "chained":
        order = list(pids)
        rng.shuffle(order)
        allowed = {frozenset(p) for p in zip(order, order[1:])}
        cut = [[a, b] for a, b in pairs if frozenset((a, b)) not in allowed]
    else:
        cut = [[a, b] for a, b in pairs if rng.random() < 0.4]
    return pattern, cut


def generate_schedule(
    seed: int,
    protocol: str = "omni",
    num_servers: int = 3,
    duration_ms: float = 20_000.0,
    num_ops: int = 10,
    election_timeout_ms: float = 100.0,
    allow_wipe: bool = False,
    allow_storage_faults: Optional[bool] = None,
    geo: Optional[str] = None,
) -> ChaosSchedule:
    """Generate a deterministic fault schedule for ``seed``.

    Ops land in the first ~3/4 of the run so every schedule ends with a
    fault-free tail; the engine adds a healed cooldown on top before the
    final invariant sweep. ``geo`` names a latency map from
    :data:`repro.sim.geo.GEO_MAPS` to run the whole schedule in a
    geo-replicated environment (it is recorded in the schedule, so
    replays reproduce it).
    """
    if protocol not in PROTOCOLS:
        raise ConfigError(
            f"unknown protocol {protocol!r}; pick one of {PROTOCOLS}"
        )
    if num_ops < 0:
        raise ConfigError("num_ops must be non-negative")
    rng = spawn_rng(seed, "chaos")
    pids = tuple(range(1, num_servers + 1))
    et = election_timeout_ms
    weights = list(_WEIGHTS)
    if allow_storage_faults is None:
        allow_storage_faults = protocol == "omni"
    if allow_storage_faults and protocol == "omni":
        weights.append(("storage_fault", 1.0))
    if protocol == "omni":
        # slow_disk rides the FaultyStorage wrapper, which only the omni
        # build wires (baselines keep their logs in plain lists). Unlike
        # storage_fault it never violates the fail-recovery model, so it
        # is not gated behind allow_storage_faults.
        weights.append(("slow_disk", 1.0))

    times = sorted(
        round(rng.uniform(0.05, 0.75) * duration_ms, 3)
        for _ in range(num_ops)
    )
    ops: List[FaultOp] = []
    for at_ms in times:
        kind = _weighted_choice(rng, weights)
        if kind == "crash":
            wipe = allow_wipe and rng.random() < 0.15
            params = {
                "pid": rng.choice(list(pids)),
                "down_ms": round(rng.uniform(2.0, 10.0) * et, 3),
                "wipe": wipe,
            }
        elif kind == "partition":
            pattern, links = _partition_links(rng, pids)
            params = {
                "pattern": pattern,
                "links": links,
                "heal_ms": round(rng.uniform(3.0, 12.0) * et, 3),
            }
        elif kind == "delay_spike":
            pairs = _all_pairs(pids)
            count = rng.randint(1, max(1, len(pairs) // 2))
            links = [list(p) for p in rng.sample(pairs, count)]
            params = {
                "links": links,
                "extra_ms": round(rng.uniform(0.5, 3.0) * et, 3),
                "duration_ms": round(rng.uniform(2.0, 8.0) * et, 3),
            }
        elif kind == "loss_burst":
            params = {
                "rate": round(rng.uniform(0.05, 0.4), 3),
                "duration_ms": round(rng.uniform(2.0, 8.0) * et, 3),
            }
        elif kind == "dup_burst":
            params = {
                "rate": round(rng.uniform(0.05, 0.4), 3),
                "duration_ms": round(rng.uniform(2.0, 8.0) * et, 3),
            }
        elif kind == "reorder_burst":
            params = {
                "rate": round(rng.uniform(0.05, 0.4), 3),
                "window_ms": round(rng.uniform(0.5, 2.0) * et, 3),
                "duration_ms": round(rng.uniform(2.0, 8.0) * et, 3),
            }
        elif kind == "storage_fault":
            params = {
                "pid": rng.choice(list(pids)),
                "after_writes": rng.randint(0, 20),
                "mode": "torn" if rng.random() < 0.3 else "fail",
                "heal_ms": round(rng.uniform(3.0, 10.0) * et, 3),
            }
        elif kind == "slow_cpu":
            params = {
                "pid": rng.choice(list(pids)),
                # The fail-slow regime the gray-failure literature cares
                # about: order(s)-of-magnitude slow, not mildly skewed.
                "factor": float(rng.choice([10.0, 25.0, 50.0, 100.0])),
                "per_msg_ms": round(rng.uniform(0.2, 2.0), 3),
                "duration_ms": round(rng.uniform(4.0, 12.0) * et, 3),
            }
        elif kind == "slow_disk":
            params = {
                "pid": rng.choice(list(pids)),
                "per_write_ms": round(rng.uniform(0.2, 2.0), 3),
                "duration_ms": round(rng.uniform(4.0, 12.0) * et, 3),
            }
        elif kind == "slow_link":
            src, dst = rng.sample(list(pids), 2)
            params = {
                "src": src,
                "dst": dst,
                "inflate_ms": round(rng.uniform(0.5, 4.0) * et, 3),
                "duration_ms": round(rng.uniform(2.0, 8.0) * et, 3),
            }
        else:  # clock_skew
            params = {
                "pid": rng.choice(list(pids)),
                "factor": round(rng.choice([0.5, 1.5, 2.0, 3.0]), 3),
                "duration_ms": round(rng.uniform(4.0, 12.0) * et, 3),
            }
        ops.append(FaultOp(at_ms=at_ms, kind=kind, params=params))

    return ChaosSchedule(
        seed=seed,
        protocol=protocol,
        num_servers=num_servers,
        duration_ms=duration_ms,
        ops=tuple(ops),
        election_timeout_ms=election_timeout_ms,
        geo=geo,
    )
