"""Deterministic chaos engine (Jepsen-style nemesis on the simulator).

``repro.chaos`` composes randomized-but-replayable fault schedules —
crashes and restarts (storage intact or wiped), the paper's partial
partitions, delay spikes, loss/duplication/reordering bursts, storage
write faults, clock skew — and runs them against Omni-Paxos and every
baseline while continuously checking safety invariants. On a violation it
emits a minimal reproducer: a shrunk, replayable JSON schedule.

Entry points: :func:`~repro.chaos.generator.generate_schedule`,
:func:`~repro.chaos.engine.run_schedule`,
:func:`~repro.chaos.shrink.shrink_schedule`, and the ``repro-chaos`` CLI.
"""

from repro.chaos.schedule import ChaosSchedule, FaultOp
from repro.chaos.generator import generate_schedule
from repro.chaos.engine import ChaosResult, run_schedule
from repro.chaos.shrink import shrink_schedule

__all__ = [
    "ChaosSchedule",
    "FaultOp",
    "ChaosResult",
    "generate_schedule",
    "run_schedule",
    "shrink_schedule",
]
