"""Exceptions shared across the repro library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A cluster or protocol configuration is invalid.

    Examples: an even-sized configuration where one is forbidden, a server id
    that does not appear in the configuration, a non-positive timeout.
    """


class StorageError(ReproError):
    """Persistent storage could not be read or written."""


class StoppedError(ReproError):
    """An operation was attempted on a stopped configuration.

    Once a stop-sign has been decided in a Sequence Paxos instance no further
    entries may be proposed in that configuration (see paper section 6).
    """


class NotLeaderError(ReproError):
    """A leader-only operation was invoked on a non-leader replica."""

    def __init__(self, message: str = "this server is not the leader", leader=None):
        super().__init__(message)
        #: Best-known current leader pid, or ``None`` if unknown.
        self.leader = leader


class MigrationError(ReproError):
    """Log migration during reconfiguration failed or was mis-used."""


class CompactionError(ReproError):
    """A log trim was requested that is not yet safe.

    The leader may only trim a prefix that *every* server in the
    configuration has decided; until then the entries may still be needed
    to synchronize stragglers.
    """


class TransportError(ReproError):
    """The asyncio runtime transport failed to connect or send."""
