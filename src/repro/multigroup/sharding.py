"""Sharding across multiple Omni-Paxos groups on shared machines.

Machines are numbered ``1..N``; groups ``0..G-1``. The replica of group
``g`` on machine ``m`` gets the synthetic pid ``g * GROUP_STRIDE + m``, so
all groups share one simulated network while staying protocol-isolated
(they are separate Omni-Paxos clusters; the envelope config ids never
cross groups because the pid spaces are disjoint).

Machine-level events — partitions, crashes — fan out to every co-hosted
replica, exactly as a NIC failure or kernel panic would in production.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError, NotLeaderError
from repro.kv.store import KVCommand, KVResult, ReplicatedKVStore
from repro.omni.server import ClusterConfig, OmniPaxosConfig, OmniPaxosServer
from repro.sim.cluster import SimCluster
from repro.sim.events import EventQueue
from repro.sim.metrics import IOTracker
from repro.sim.network import NetworkParams, SimNetwork

#: Pid-space stride between groups; bounds machines per group.
GROUP_STRIDE = 1_000


def shard_of(key: str, num_groups: int) -> int:
    """Stable key -> group assignment (CRC, independent of PYTHONHASHSEED)."""
    return zlib.crc32(key.encode("utf-8")) % num_groups


class MultiGroupCluster:
    """G Omni-Paxos groups replicated across the same N machines."""

    def __init__(
        self,
        num_machines: int = 3,
        num_groups: int = 4,
        hb_period_ms: float = 50.0,
        one_way_ms: float = 0.1,
        tick_ms: float = 5.0,
    ):
        if num_machines < 1 or num_groups < 1:
            raise ConfigError("need at least one machine and one group")
        if num_machines >= GROUP_STRIDE:
            raise ConfigError(f"at most {GROUP_STRIDE - 1} machines")
        self.num_machines = num_machines
        self.num_groups = num_groups
        self._queue = EventQueue()
        self.io = IOTracker()
        self._network = SimNetwork(
            self._queue, NetworkParams(one_way_ms=one_way_ms),
            io_tracker=self.io,
        )
        self._servers: Dict[int, OmniPaxosServer] = {}
        self._by_group: Dict[int, Dict[int, OmniPaxosServer]] = {}
        for group in range(num_groups):
            members = tuple(self.pid_of(group, m)
                            for m in range(1, num_machines + 1))
            cluster_cfg = ClusterConfig(config_id=0, servers=members)
            self._by_group[group] = {}
            for machine in range(1, num_machines + 1):
                pid = self.pid_of(group, machine)
                server = OmniPaxosServer(OmniPaxosConfig(
                    pid=pid, cluster=cluster_cfg, hb_period_ms=hb_period_ms,
                ))
                self._servers[pid] = server
                self._by_group[group][machine] = server
        self.sim = SimCluster(self._servers, self._network, self._queue,
                              tick_ms=tick_ms)
        self.sim.start()

    # -- addressing ----------------------------------------------------------

    @staticmethod
    def pid_of(group: int, machine: int) -> int:
        return group * GROUP_STRIDE + machine

    @staticmethod
    def machine_of(pid: int) -> int:
        return pid % GROUP_STRIDE

    def server(self, group: int, machine: int) -> OmniPaxosServer:
        return self._by_group[group][machine]

    def group_servers(self, group: int) -> Dict[int, OmniPaxosServer]:
        return dict(self._by_group[group])

    # -- driving -----------------------------------------------------------------

    def run_for(self, duration_ms: float) -> None:
        self.sim.run_for(duration_ms)

    @property
    def now(self) -> float:
        return self.sim.now

    def leaders(self) -> Dict[int, Optional[int]]:
        """Per group: the machine hosting its leader (or None)."""
        out: Dict[int, Optional[int]] = {}
        for group, members in self._by_group.items():
            out[group] = None
            for machine, server in members.items():
                if server.is_leader and not self.sim.is_crashed(server.pid):
                    out[group] = machine
                    break
        return out

    def wait_for_leaders(self, max_ms: float = 5_000.0) -> Dict[int, int]:
        """Run until every group has a leader; returns group -> machine."""
        elapsed = 0.0
        while elapsed < max_ms:
            self.run_for(100.0)
            elapsed += 100.0
            leaders = self.leaders()
            if all(m is not None for m in leaders.values()):
                return leaders  # type: ignore[return-value]
        raise AssertionError("not every group elected a leader in time")

    # -- machine-level failures ----------------------------------------------

    def set_machine_link(self, m1: int, m2: int, up: bool) -> None:
        """Cut or restore the physical link between two machines: affects
        the corresponding replica pair in *every* group."""
        for group in range(self.num_groups):
            self.sim.set_link(self.pid_of(group, m1),
                              self.pid_of(group, m2), up)

    def crash_machine(self, machine: int) -> None:
        """A machine dies: every co-hosted replica goes down with it."""
        for group in range(self.num_groups):
            self.sim.crash(self.pid_of(group, machine))

    def recover_machine(self, machine: int) -> None:
        for group in range(self.num_groups):
            self.sim.recover(self.pid_of(group, machine))

    def machine_io_bytes(self, machine: int) -> int:
        """Outgoing bytes across all groups hosted on ``machine``."""
        return sum(
            self.io.total_bytes(self.pid_of(group, machine))
            for group in range(self.num_groups)
        )


class ShardedKVStore:
    """A key-value store sharded across the groups of a MultiGroupCluster.

    Writes are routed to the leader of ``shard_of(key)``'s group; each
    machine applies its groups' decided entries into per-group state
    machines. Reads go to any machine that hosts the key's group.
    """

    def __init__(self, cluster: MultiGroupCluster):
        self._cluster = cluster
        #: (group, machine) -> ReplicatedKVStore
        self._stores: Dict[Tuple[int, int], ReplicatedKVStore] = {}
        for group in range(cluster.num_groups):
            for machine, server in cluster.group_servers(group).items():
                self._stores[(group, machine)] = ReplicatedKVStore(
                    server, client_id=machine)
        cluster.sim.on_decided(self._observe)
        self._pid_index = {
            server.pid: (group, machine)
            for (group, machine), server in (
                ((key, store._server) for key, store in self._stores.items())
            )
        }

    def _observe(self, pid, idx, entry, now) -> None:
        key = self._pid_index.get(pid)
        if key is not None:
            self._stores[key].ingest(idx, entry)

    # -- client API --------------------------------------------------------------

    def group_for(self, key: str) -> int:
        return shard_of(key, self._cluster.num_groups)

    def put(self, key: str, value: str) -> Tuple[int, int]:
        """Route a put to the key's group leader; returns (group, seq).

        Raises :class:`NotLeaderError` when the group currently has no
        leader (callers retry, as with any RSM client).
        """
        group = self.group_for(key)
        leader_machine = self._cluster.leaders().get(group)
        if leader_machine is None:
            raise NotLeaderError(f"group {group} has no leader")
        store = self._stores[(group, leader_machine)]
        seq = store.submit(KVCommand("put", key, value), self._cluster.now)
        return group, seq

    def get_local(self, key: str, machine: int) -> Optional[str]:
        """Read the key from ``machine``'s replica of its group."""
        return self._stores[(self.group_for(key), machine)].lookup(key)

    def result(self, group: int, machine: int, seq: int) -> Optional[KVResult]:
        return self._stores[(group, machine)].result(seq)

    def shard_sizes(self) -> Dict[int, int]:
        """Applied entries per group at machine 1 (balance diagnostics)."""
        return {
            group: self._stores[(group, 1)].machine.applied_count
            for group in range(self._cluster.num_groups)
        }
