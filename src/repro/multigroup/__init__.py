"""Multi-group replication: many Omni-Paxos groups over shared machines.

Production deployments shard state across many independent consensus
groups hosted on the same machines (TiKV's multi-raft, Dragonboat — both
cited by the paper). This package provides that composition for Omni-Paxos:
a :class:`MultiGroupCluster` runs G groups across N machines in one
simulation, with machine-level link failures affecting every co-hosted
group, and a :class:`ShardedKVStore` that routes keys across the groups.
"""

from repro.multigroup.sharding import (
    MultiGroupCluster,
    ShardedKVStore,
    shard_of,
)

__all__ = ["MultiGroupCluster", "ShardedKVStore", "shard_of"]
