"""Statistics helpers used by the benchmark harnesses.

The paper reports means with 95% confidence intervals computed with the
t-distribution over 10 repetitions. :func:`mean_ci` reproduces exactly that
methodology for an arbitrary sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

try:  # scipy is available in the target environment but keep a fallback
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_stats = None


# Two-sided 97.5% t quantiles for small degrees of freedom, used when scipy
# is unavailable. Index = degrees of freedom.
_T_975 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160,
    14: 2.145, 15: 2.131, 20: 2.086, 25: 2.060, 30: 2.042, 40: 2.021,
    60: 2.000, 120: 1.980,
}


def _t_quantile(df: int, confidence: float) -> float:
    """Two-sided t quantile for ``df`` degrees of freedom."""
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df))
    if confidence != 0.95:
        raise ValueError("fallback table only supports 95% confidence")
    if df in _T_975:
        return _T_975[df]
    keys = sorted(_T_975)
    for key in keys:
        if df < key:
            return _T_975[key]
    return 1.96


@dataclass(frozen=True)
class ConfidenceInterval:
    """A sample mean with a symmetric confidence half-width."""

    mean: float
    half_width: float
    n: int
    confidence: float = 0.95

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.half_width:.2f} (n={self.n})"


def mean_ci(samples: Sequence[float], confidence: float = 0.95) -> ConfidenceInterval:
    """Mean and t-distribution confidence interval of ``samples``.

    A single sample yields a zero-width interval rather than an error so
    smoke-test benchmark runs with one repetition still produce output.
    """
    values = list(samples)
    if not values:
        raise ValueError("mean_ci requires at least one sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return ConfidenceInterval(mean=mean, half_width=0.0, n=1, confidence=confidence)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    sem = math.sqrt(variance / n)
    half = _t_quantile(n - 1, confidence) * sem
    return ConfidenceInterval(mean=mean, half_width=half, n=n, confidence=confidence)


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    values = sorted(samples)
    if not values:
        raise ValueError("percentile requires at least one sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    if len(values) == 1:
        return values[0]
    rank = (q / 100.0) * (len(values) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return values[lower]
    frac = rank - lower
    return values[lower] * (1.0 - frac) + values[upper] * frac


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """Convenience bundle of common summary statistics."""
    ci = mean_ci(samples)
    return {
        "mean": ci.mean,
        "ci95": ci.half_width,
        "min": min(samples),
        "max": max(samples),
        "p50": percentile(samples, 50),
        "p99": percentile(samples, 99),
        "n": float(len(samples)),
    }
