"""Deterministic random-number-generator helpers.

Every randomized component in the simulator (network jitter, Raft election
timers, workload arrival) takes an explicit :class:`random.Random` instance.
These helpers build such instances from a root seed so whole experiments are
reproducible bit-for-bit, while each component still draws from an
independent stream.
"""

from __future__ import annotations

import random
import zlib


def make_rng(seed: int) -> random.Random:
    """Return a fresh ``random.Random`` seeded with ``seed``."""
    return random.Random(seed)


def spawn_rng(root_seed: int, *scope) -> random.Random:
    """Derive an independent RNG stream from ``root_seed`` and a scope.

    The scope is any sequence of hashable path elements, for example
    ``spawn_rng(42, "raft", server_id)``. The derivation is a stable CRC over
    the textual path, so the stream does not depend on Python's per-process
    hash randomization.
    """
    path = ":".join(str(part) for part in scope)
    derived = zlib.crc32(path.encode("utf-8")) ^ (root_seed & 0xFFFFFFFF)
    # Mix the high bits of the seed back in so seeds > 32 bits still matter.
    derived ^= (root_seed >> 32) & 0xFFFFFFFF
    return random.Random(derived)
