"""Version compatibility shims.

The package supports Python 3.9+, but some CPython features we want on the
hot path arrived later. Shims live here so call sites stay clean.
"""

from __future__ import annotations

import sys
from dataclasses import fields
from typing import Any, Dict

#: Keyword arguments adding ``__slots__`` to a ``@dataclass`` where the
#: interpreter supports it (3.10+). Usage::
#:
#:     @dataclass(frozen=True, **SLOTTED)
#:     class Prepare: ...
#:
#: On 3.9 this is empty and the classes fall back to ``__dict__`` — slower
#: but semantically identical, so behaviour (and pickled wire frames) do
#: not depend on the interpreter version.
SLOTTED: Dict[str, Any] = (
    {"slots": True} if sys.version_info >= (3, 10) else {}
)


def fast_frozen_pickle(cls):
    """Class decorator: efficient pickling for frozen slotted dataclasses.

    The ``__getstate__`` / ``__setstate__`` pair dataclasses generates for
    ``frozen=True, slots=True`` classes calls :func:`dataclasses.fields` on
    every pickle round-trip, which is measurable when messages stream
    through the wire codec. This decorator installs equivalents with the
    field names precomputed at class-decoration time. Apply *above* the
    ``@dataclass`` decorator; works identically for non-slotted classes on
    3.9 (where ``object.__setattr__`` writes into the instance dict).
    """
    names = tuple(f.name for f in fields(cls))

    def __getstate__(self, _names=names):
        return tuple(getattr(self, n) for n in _names)

    def __setstate__(self, state, _names=names, _set=object.__setattr__):
        for n, v in zip(_names, state):
            _set(self, n, v)

    cls.__getstate__ = __getstate__
    cls.__setstate__ = __setstate__
    return cls
