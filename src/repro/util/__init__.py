"""Small shared utilities: deterministic RNG, statistics, id helpers."""

from repro.util.stats import ConfidenceInterval, mean_ci, percentile, summarize
from repro.util.rng import make_rng, spawn_rng

__all__ = [
    "ConfidenceInterval",
    "mean_ci",
    "percentile",
    "summarize",
    "make_rng",
    "spawn_rng",
]
