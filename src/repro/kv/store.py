"""Replicated key-value store state machine.

Commands are encoded into :class:`~repro.omni.entry.Command` payloads so the
replication layer stays oblivious to their semantics. The state machine is
deterministic; every replica that applies the same decided prefix holds the
same map — the tests assert exactly this across partitions and recoveries.

Supported operations: ``put``, ``get``, ``delete``, ``cas`` (compare-and-
swap). Reads go through the log too, which makes them linearizable (the
classic RSM read path; lease-based local reads are future work, as for most
production RSMs).

Client sessions: each command carries ``(client_id, seq)``; a command whose
sequence number is not greater than the session's last applied one is a
duplicate (a client retry that raced a decided original) and is skipped, so
retried writes stay exactly-once.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.omni.entry import Command, is_stopsign

OP_PUT = "put"
OP_GET = "get"
OP_DELETE = "delete"
OP_CAS = "cas"
_OPS = (OP_PUT, OP_GET, OP_DELETE, OP_CAS)


class KVError(ReproError):
    """Invalid key-value command or payload."""


@dataclass(frozen=True)
class KVCommand:
    """One key-value operation."""

    op: str
    key: str
    value: Optional[str] = None
    expected: Optional[str] = None  # for cas

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise KVError(f"unknown op {self.op!r}")
        if self.op == OP_PUT and self.value is None:
            raise KVError("put needs a value")
        if self.op == OP_CAS and self.value is None:
            raise KVError("cas needs a value")


@dataclass(frozen=True)
class KVResult:
    """Outcome of one applied command."""

    op: str
    key: str
    value: Optional[str]
    ok: bool
    #: Global log index the command was applied at.
    log_idx: int


def encode_command(cmd: KVCommand, client_id: int = 0, seq: int = 0) -> Command:
    """Serialize a KV command into a replication-layer Command."""
    payload = {"op": cmd.op, "key": cmd.key}
    if cmd.value is not None:
        payload["value"] = cmd.value
    if cmd.expected is not None:
        payload["expected"] = cmd.expected
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return Command(data=data, client_id=client_id, seq=seq)


def decode_command(entry: Command) -> KVCommand:
    """Deserialize a replication-layer Command back into a KV command."""
    try:
        payload = json.loads(entry.data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise KVError(f"malformed KV payload: {exc}") from exc
    try:
        return KVCommand(
            op=payload["op"],
            key=payload["key"],
            value=payload.get("value"),
            expected=payload.get("expected"),
        )
    except KeyError as exc:
        raise KVError(f"missing field in KV payload: {exc}") from exc


def kv_snapshotter(entries, prev_state):
    """Deterministic snapshot fold for KV logs (Sequence Paxos trim).

    Folds Command entries into ``{"data": {...}, "sessions": {...}}`` so a
    leader can compact its log and synchronize stragglers with state
    instead of history. Deterministic by construction: the same entries in
    the same order produce the same state on every replica.
    """
    machine = KVStateMachine()
    if prev_state is not None:
        machine.restore(prev_state)
    for entry in entries:
        if isinstance(entry, Command):
            machine.apply(entry, 0)
    return machine.to_snapshot()


class KVStateMachine:
    """Deterministic map with client-session deduplication."""

    def __init__(self) -> None:
        self._data: Dict[str, str] = {}
        #: Highest applied sequence number per client session.
        self._sessions: Dict[int, int] = {}
        self._applied = 0

    def to_snapshot(self) -> Dict[str, Any]:
        """Serializable state for snapshot-based log compaction."""
        return {
            "data": dict(self._data),
            "sessions": dict(self._sessions),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Adopt a snapshot produced by :meth:`to_snapshot`."""
        self._data = dict(state["data"])
        self._sessions = dict(state["sessions"])

    @property
    def applied_count(self) -> int:
        return self._applied

    def snapshot(self) -> Dict[str, str]:
        """A copy of the current map (for tests and debugging)."""
        return dict(self._data)

    def lookup(self, key: str) -> Optional[str]:
        """Local (non-linearizable) read of the applied state."""
        return self._data.get(key)

    def apply(self, entry: Command, log_idx: int) -> Optional[KVResult]:
        """Apply one decided entry; returns None for duplicates."""
        if entry.client_id != 0:
            last = self._sessions.get(entry.client_id, -1)
            if entry.seq <= last:
                return None  # duplicate retry of an already-applied command
            self._sessions[entry.client_id] = entry.seq
        cmd = decode_command(entry)
        self._applied += 1
        if cmd.op == OP_PUT:
            self._data[cmd.key] = cmd.value  # type: ignore[assignment]
            return KVResult(cmd.op, cmd.key, cmd.value, True, log_idx)
        if cmd.op == OP_GET:
            value = self._data.get(cmd.key)
            return KVResult(cmd.op, cmd.key, value, value is not None, log_idx)
        if cmd.op == OP_DELETE:
            existed = cmd.key in self._data
            self._data.pop(cmd.key, None)
            return KVResult(cmd.op, cmd.key, None, existed, log_idx)
        # cas
        current = self._data.get(cmd.key)
        if current == cmd.expected:
            self._data[cmd.key] = cmd.value  # type: ignore[assignment]
            return KVResult(cmd.op, cmd.key, cmd.value, True, log_idx)
        return KVResult(cmd.op, cmd.key, current, False, log_idx)


class ReplicatedKVStore:
    """A KV store served by one Omni-Paxos server.

    The caller drives the server (via the simulator or the asyncio runtime);
    this wrapper drains its decided entries into the state machine and
    resolves pending operations. Each store instance owns a client session
    on its server, so a process embedding the store gets exactly-once writes
    even across retries.
    """

    def __init__(self, server, client_id: int = 1):
        self._server = server
        self._client_id = client_id
        self._next_seq = 0
        self._machine = KVStateMachine()
        #: seq -> result, filled as decided entries are applied.
        self._results: Dict[int, KVResult] = {}
        #: key -> callbacks invoked as (key, new_value_or_None, log_idx).
        self._watchers: Dict[str, List[Any]] = {}

    @property
    def server(self):
        return self._server

    @property
    def machine(self) -> KVStateMachine:
        return self._machine

    def submit(self, cmd: KVCommand, now_ms: float) -> int:
        """Propose a command; returns its session sequence number.

        The result becomes available via :meth:`result` once decided and
        applied. Raises the server's errors (NotLeaderError etc.) untouched.
        """
        seq = self._next_seq
        self._next_seq += 1
        self._server.propose(encode_command(cmd, self._client_id, seq), now_ms)
        return seq

    def pump(self) -> List[KVResult]:
        """Apply newly decided entries drained from the server directly.

        Use this when nothing else consumes the server's decided stream
        (e.g. under :class:`repro.runtime.RuntimeNode` without a decided
        handler). Under :class:`repro.sim.SimCluster` — which drains the
        stream for its observers — feed entries in via :meth:`ingest` from
        an ``on_decided`` observer instead.
        """
        applied: List[KVResult] = []
        for idx, entry in self._server.take_decided():
            result = self.ingest(idx, entry)
            if result is not None:
                applied.append(result)
        return applied

    def ingest(self, idx: int, entry) -> Optional[KVResult]:
        """Apply one decided entry (stop-signs and foreign types skipped)."""
        if is_stopsign(entry) or not isinstance(entry, Command):
            return None
        result = self._machine.apply(entry, idx)
        if result is None:
            return None
        if entry.client_id == self._client_id:
            self._results[entry.seq] = result
        if result.ok and result.op in (OP_PUT, OP_DELETE, OP_CAS):
            for callback in self._watchers.get(result.key, ()):
                callback(result.key, self._machine.lookup(result.key), idx)
        return result

    def watch(self, key: str, callback) -> None:
        """Invoke ``callback(key, new_value, log_idx)`` whenever a decided
        write changes ``key`` at this replica.

        Watches are local observers of the decided stream (as in etcd /
        ZooKeeper clients); they fire after the write is applied, in log
        order, exactly once per successful mutation.
        """
        self._watchers.setdefault(key, []).append(callback)

    def unwatch(self, key: str) -> None:
        """Remove every watcher on ``key``."""
        self._watchers.pop(key, None)

    def result(self, seq: int) -> Optional[KVResult]:
        """The decided result of a submitted command, if available yet."""
        return self._results.get(seq)

    def lookup(self, key: str) -> Optional[str]:
        """Local read of this replica's applied state."""
        return self._machine.lookup(key)

    def read_leased(self, key: str, now_ms: float) -> Optional[str]:
        """Linearizable local read under the leader's read lease.

        Serves from local state without going through the log — valid only
        while the server holds a heartbeat-quorum lease (see
        :meth:`repro.omni.server.OmniPaxosServer.holds_read_lease`). The
        caller must keep the state machine caught up with the decided
        stream (the simulator's observer wiring does this synchronously).

        Raises :class:`repro.errors.NotLeaderError` without a lease; fall
        back to a log read (submit a ``get``) in that case.
        """
        from repro.errors import NotLeaderError

        if not self._server.holds_read_lease(now_ms):
            raise NotLeaderError("no read lease at this server")
        return self._machine.lookup(key)
