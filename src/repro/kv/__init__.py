"""A replicated key-value store built on the Omni-Paxos public API.

This is the kind of stateful service the paper's introduction motivates
(coordination services, metadata stores). :class:`KVStateMachine` applies
the decided log deterministically; :class:`ReplicatedKVStore` glues a state
machine to an :class:`~repro.omni.server.OmniPaxosServer`, including
linearizable reads through the log and client-session deduplication.
"""

from repro.kv.store import (
    KVCommand,
    KVResult,
    KVStateMachine,
    ReplicatedKVStore,
    encode_command,
    decode_command,
)

__all__ = [
    "KVCommand",
    "KVResult",
    "KVStateMachine",
    "ReplicatedKVStore",
    "encode_command",
    "decode_command",
]
