"""Leased, replicated locks.

Determinism and time: a replicated state machine cannot read wall clocks
(replicas would diverge), so commands carry the *proposer's* timestamp and
logical time only advances through decided commands — the standard RSM
lease construction. A lease is expired when a later command's timestamp
passes its deadline; the state machine never expires anything
spontaneously.

Operations:

- ``acquire(lock, holder, lease_ms)`` — succeeds if the lock is free, held
  by the same holder (renewal), or its lease expired.
- ``release(lock, holder)`` — succeeds only for the current holder.

Safety property (tested with hypothesis): at every point in the applied
history, each lock has at most one unexpired holder — mutual exclusion.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.omni.entry import Command, is_stopsign

OP_ACQUIRE = "acquire"
OP_RELEASE = "release"
_OPS = (OP_ACQUIRE, OP_RELEASE)


class LockError(ReproError):
    """Invalid lock command or payload."""


@dataclass(frozen=True)
class LockCommand:
    """One lock operation, stamped with the proposer's clock."""

    op: str
    lock: str
    holder: str
    now_ms: float
    lease_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise LockError(f"unknown op {self.op!r}")
        if self.op == OP_ACQUIRE and self.lease_ms <= 0:
            raise LockError("acquire needs a positive lease")
        if not self.lock or not self.holder:
            raise LockError("lock and holder must be non-empty")


@dataclass(frozen=True)
class LockResult:
    """Outcome of one applied lock command."""

    op: str
    lock: str
    holder: str
    ok: bool
    #: Current holder after applying (None if free).
    current_holder: Optional[str]
    log_idx: int


def encode_lock_command(cmd: LockCommand, client_id: int = 0,
                        seq: int = 0) -> Command:
    payload = {
        "op": cmd.op,
        "lock": cmd.lock,
        "holder": cmd.holder,
        "now": cmd.now_ms,
        "lease": cmd.lease_ms,
    }
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return Command(data=data, client_id=client_id, seq=seq)


def decode_lock_command(entry: Command) -> LockCommand:
    try:
        payload = json.loads(entry.data.decode("utf-8"))
        return LockCommand(
            op=payload["op"],
            lock=payload["lock"],
            holder=payload["holder"],
            now_ms=float(payload["now"]),
            lease_ms=float(payload.get("lease", 0.0)),
        )
    except (ValueError, KeyError, UnicodeDecodeError) as exc:
        raise LockError(f"malformed lock payload: {exc}") from exc


class LockStateMachine:
    """Deterministic lock table: lock -> (holder, lease deadline)."""

    def __init__(self) -> None:
        self._locks: Dict[str, Tuple[str, float]] = {}
        #: The highest command timestamp seen: logical "now".
        self._clock = 0.0

    @property
    def logical_now(self) -> float:
        return self._clock

    def holder_of(self, lock: str) -> Optional[str]:
        """The current unexpired holder, judged at the logical clock."""
        held = self._locks.get(lock)
        if held is None:
            return None
        holder, deadline = held
        if deadline <= self._clock:
            return None
        return holder

    def table(self) -> Dict[str, Tuple[str, float]]:
        """A copy of the raw lock table (holder, deadline)."""
        return dict(self._locks)

    def apply(self, entry: Command, log_idx: int) -> LockResult:
        cmd = decode_lock_command(entry)
        # Logical time is monotone: a command stamped in the past still
        # advances nothing, but never rewinds expiries.
        self._clock = max(self._clock, cmd.now_ms)
        current = self.holder_of(cmd.lock)
        if cmd.op == OP_ACQUIRE:
            if current is None or current == cmd.holder:
                self._locks[cmd.lock] = (
                    cmd.holder, self._clock + cmd.lease_ms
                )
                return LockResult(cmd.op, cmd.lock, cmd.holder, True,
                                  cmd.holder, log_idx)
            return LockResult(cmd.op, cmd.lock, cmd.holder, False,
                              current, log_idx)
        # release
        if current == cmd.holder:
            del self._locks[cmd.lock]
            return LockResult(cmd.op, cmd.lock, cmd.holder, True,
                              None, log_idx)
        return LockResult(cmd.op, cmd.lock, cmd.holder, False,
                          current, log_idx)


class ReplicatedLockService:
    """A lock service served by one Omni-Paxos server.

    Like :class:`repro.kv.ReplicatedKVStore`: feed decided entries in via
    :meth:`ingest` (from a SimCluster observer) or :meth:`pump` (when
    nothing else drains the server's decided stream).
    """

    def __init__(self, server, client_id: int = 1):
        self._server = server
        self._client_id = client_id
        self._next_seq = 0
        self._machine = LockStateMachine()
        self._results: Dict[int, LockResult] = {}

    @property
    def machine(self) -> LockStateMachine:
        return self._machine

    def acquire(self, lock: str, holder: str, lease_ms: float,
                now_ms: float) -> int:
        """Propose an acquire; returns the session sequence number."""
        return self._submit(LockCommand(
            OP_ACQUIRE, lock, holder, now_ms, lease_ms), now_ms)

    def release(self, lock: str, holder: str, now_ms: float) -> int:
        """Propose a release; returns the session sequence number."""
        return self._submit(LockCommand(
            OP_RELEASE, lock, holder, now_ms), now_ms)

    def _submit(self, cmd: LockCommand, now_ms: float) -> int:
        seq = self._next_seq
        self._next_seq += 1
        self._server.propose(
            encode_lock_command(cmd, self._client_id, seq), now_ms)
        return seq

    def result(self, seq: int) -> Optional[LockResult]:
        return self._results.get(seq)

    def holder_of(self, lock: str) -> Optional[str]:
        return self._machine.holder_of(lock)

    def ingest(self, idx: int, entry) -> Optional[LockResult]:
        if is_stopsign(entry) or not isinstance(entry, Command):
            return None
        result = self._machine.apply(entry, idx)
        if entry.client_id == self._client_id:
            self._results[entry.seq] = result
        return result

    def pump(self) -> List[LockResult]:
        applied = []
        for idx, entry in self._server.take_decided():
            result = self.ingest(idx, entry)
            if result is not None:
                applied.append(result)
        return applied
