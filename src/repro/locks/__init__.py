"""A replicated lock service on the Omni-Paxos public API.

The paper's introduction names lock services (Chubby) among the systems
built on replicated state machines. This package provides one: leased,
named locks whose state transitions are decided through the replicated log,
so every replica agrees on who holds what — even across partitions, with
Omni-Paxos' resilience underneath.
"""

from repro.locks.service import (
    LockCommand,
    LockResult,
    LockStateMachine,
    ReplicatedLockService,
    encode_lock_command,
    decode_lock_command,
)

__all__ = [
    "LockCommand",
    "LockResult",
    "LockStateMachine",
    "ReplicatedLockService",
    "encode_lock_command",
    "decode_lock_command",
]
