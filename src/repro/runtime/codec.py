"""Length-prefixed pickle framing for the TCP transport.

Frames are ``[4-byte big-endian length][pickle payload]``. Pickle keeps the
transport message-type-agnostic (every protocol's dataclasses just work).

Security note: pickle is only safe between mutually trusted servers — which
is the RSM deployment model (all replicas run the same trusted binary). Do
not point this transport at untrusted peers.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, List

from repro.errors import TransportError

_LEN = struct.Struct(">I")

#: Upper bound on a single frame; protects against corrupt length headers.
MAX_FRAME_BYTES = 256 * 1024 * 1024


def encode_frame(src: int, payload: Any) -> bytes:
    """Encode one ``(src, payload)`` message into a framed byte string."""
    body = pickle.dumps((src, payload), protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME_BYTES:
        raise TransportError(f"frame too large: {len(body)} bytes")
    return _LEN.pack(len(body)) + body


class FrameDecoder:
    """Incremental decoder: feed bytes, take complete messages."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Any]:
        """Absorb ``data``; return all now-complete ``(src, payload)``."""
        self._buffer.extend(data)
        out: List[Any] = []
        while True:
            if len(self._buffer) < _LEN.size:
                return out
            (size,) = _LEN.unpack(self._buffer[:_LEN.size])
            if size > MAX_FRAME_BYTES:
                # A corrupt length header means the rest of the buffer is
                # unframeable garbage. Reset before raising so a caller that
                # keeps the decoder (e.g. across a reconnect) starts clean
                # instead of re-reading the poisoned prefix forever.
                self._buffer.clear()
                raise TransportError(f"frame length {size} exceeds maximum")
            if len(self._buffer) < _LEN.size + size:
                return out
            body = bytes(self._buffer[_LEN.size:_LEN.size + size])
            del self._buffer[:_LEN.size + size]
            out.append(pickle.loads(body))
