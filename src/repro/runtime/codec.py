"""Binary framing for the TCP transport.

Frames are ``[4-byte big-endian length][body]``. Two body formats coexist
on the same stream:

- **binary** (default since PR 9): ``[0xB1][src varint][value]`` where
  ``value`` is the compact tagged encoding below. Message dataclasses of
  all five protocols are registered under stable one-byte type tags with
  schema-aware encoders (field *names* never travel; only the ordered
  field values do), so a typical ``Envelope(AcceptDecide(...))`` frame is
  ~40% smaller than its pickle and decodes without the pickle machinery.
- **legacy pickle** (every frame before PR 9): the pickled
  ``(src, payload)`` tuple. Pickle protocol 2+ streams begin with the
  ``0x80`` PROTO opcode, which can never collide with the ``0xB1`` magic,
  so the decoder auto-detects and keeps old peers and recorded frames
  readable.

Value encoding (one tag byte, then tag-specific bytes)::

    0x00 None                  0x05 bytes  (varint len + raw)
    0x01 True                  0x06 str    (varint len + utf-8)
    0x02 False                 0x07 tuple  (varint count + values)
    0x03 int   (zigzag varint) 0x08 pickle (varint len + pickle bytes)
    0x04 float (8-byte >d)     0x09 list   (varint count + values)
    0x10+     registered message types (ordered field values follow)

Tag ``0x08`` is the *tagged pickle fallback*: any value without a
registered schema (chaos payloads, reconfiguration metadata, arbitrary KV
state inside snapshots) round-trips through an embedded pickle, so the
binary path never loses generality.

Security note: both formats can embed pickle and are therefore only safe
between mutually trusted servers — which is the RSM deployment model (all
replicas run the same trusted binary). Do not point this transport at
untrusted peers.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import fields as dataclass_fields
from operator import attrgetter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import TransportError

_LEN = struct.Struct(">I")
_F64 = struct.Struct(">d")

#: Upper bound on a single frame; protects against corrupt length headers.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Leading body byte of a binary frame. Legacy pickle bodies start with
#: the pickle PROTO opcode ``0x80``, so the two cannot be confused.
WIRE_BINARY = 0xB1

#: The wire formats :class:`FrameEncoder` (and ``TcpMesh``) accept.
WIRE_FORMATS = ("binary", "pickle")

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_BYTES = 0x05
_T_STR = 0x06
_T_TUPLE = 0x07
_T_PICKLE = 0x08
_T_LIST = 0x09


# --------------------------------------------------------------------------
# varints
# --------------------------------------------------------------------------

def _w_uint(out: bytearray, n: int) -> None:
    while n > 0x7F:
        out.append((n & 0x7F) | 0x80)
        n >>= 7
    out.append(n)


def _w_int(out: bytearray, n: int) -> None:
    # Zigzag: small negatives stay small on the wire.
    if n >= 0:
        n <<= 1
    else:
        n = (-n << 1) - 1
    while n > 0x7F:
        out.append((n & 0x7F) | 0x80)
        n >>= 7
    out.append(n)


def _r_uint(buf: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        b = buf[pos]
        pos += 1
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result, pos
        shift += 7


def _r_int(buf: bytes, pos: int) -> Tuple[int, int]:
    zz, pos = _r_uint(buf, pos)
    if zz & 1:
        return -((zz + 1) >> 1), pos
    return zz >> 1, pos


# --------------------------------------------------------------------------
# value encoding
# --------------------------------------------------------------------------

#: Exact-class dispatch to a registered message encoder (writes its own tag).
_ENCODERS: Dict[type, Callable[[bytearray, Any], None]] = {}
#: Tag-indexed decoders; ``None`` slots are corrupt-frame territory.
_DECODERS: List[Optional[Callable[[bytes, int], Tuple[Any, int]]]] = \
    [None] * 256
#: ``tag -> class`` for introspection and the exhaustiveness tests.
REGISTERED_MESSAGES: Dict[int, type] = {}


def _write_value(out: bytearray, value: Any) -> None:
    enc = _ENCODERS.get(value.__class__)
    if enc is not None:
        enc(out, value)
        return
    cls = value.__class__
    if value is None:
        out.append(_T_NONE)
    elif cls is bool:
        out.append(_T_TRUE if value else _T_FALSE)
    elif cls is int:
        out.append(_T_INT)
        _w_int(out, value)
    elif cls is bytes:
        out.append(_T_BYTES)
        _w_uint(out, len(value))
        out += value
    elif cls is str:
        raw = value.encode("utf-8")
        out.append(_T_STR)
        _w_uint(out, len(raw))
        out += raw
    elif cls is tuple:
        out.append(_T_TUPLE)
        _w_uint(out, len(value))
        for item in value:
            _write_value(out, item)
    elif cls is float:
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif cls is list:
        out.append(_T_LIST)
        _w_uint(out, len(value))
        for item in value:
            _write_value(out, item)
    else:
        # Tagged pickle fallback: unregistered types (and subclasses of
        # registered ones — exact-class dispatch keeps schemas honest)
        # ride along inside an embedded pickle.
        raw = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        out.append(_T_PICKLE)
        _w_uint(out, len(raw))
        out += raw


def _read_value(buf: bytes, pos: int) -> Tuple[Any, int]:
    tag = buf[pos]
    dec = _DECODERS[tag]
    if dec is None:
        raise TransportError(f"corrupt frame: unknown value tag 0x{tag:02x}")
    return dec(buf, pos + 1)


def _dec_none(buf: bytes, pos: int) -> Tuple[Any, int]:
    return None, pos


def _dec_true(buf: bytes, pos: int) -> Tuple[Any, int]:
    return True, pos


def _dec_false(buf: bytes, pos: int) -> Tuple[Any, int]:
    return False, pos


def _dec_float(buf: bytes, pos: int) -> Tuple[Any, int]:
    return _F64.unpack_from(buf, pos)[0], pos + 8


def _dec_bytes(buf: bytes, pos: int) -> Tuple[Any, int]:
    n, pos = _r_uint(buf, pos)
    end = pos + n
    if end > len(buf):
        raise TransportError("corrupt frame: truncated bytes value")
    return buf[pos:end], end


def _dec_str(buf: bytes, pos: int) -> Tuple[Any, int]:
    n, pos = _r_uint(buf, pos)
    end = pos + n
    if end > len(buf):
        raise TransportError("corrupt frame: truncated str value")
    return buf[pos:end].decode("utf-8"), end


def _dec_tuple(buf: bytes, pos: int) -> Tuple[Any, int]:
    n, pos = _r_uint(buf, pos)
    items = []
    for _ in range(n):
        item, pos = _read_value(buf, pos)
        items.append(item)
    return tuple(items), pos


def _dec_list(buf: bytes, pos: int) -> Tuple[Any, int]:
    n, pos = _r_uint(buf, pos)
    items = []
    for _ in range(n):
        item, pos = _read_value(buf, pos)
        items.append(item)
    return items, pos


def _dec_pickle(buf: bytes, pos: int) -> Tuple[Any, int]:
    n, pos = _r_uint(buf, pos)
    end = pos + n
    if end > len(buf):
        raise TransportError("corrupt frame: truncated pickle value")
    return pickle.loads(buf[pos:end]), end


_DECODERS[_T_NONE] = _dec_none
_DECODERS[_T_TRUE] = _dec_true
_DECODERS[_T_FALSE] = _dec_false
_DECODERS[_T_INT] = _r_int
_DECODERS[_T_FLOAT] = _dec_float
_DECODERS[_T_BYTES] = _dec_bytes
_DECODERS[_T_STR] = _dec_str
_DECODERS[_T_TUPLE] = _dec_tuple
_DECODERS[_T_LIST] = _dec_list
_DECODERS[_T_PICKLE] = _dec_pickle


# --------------------------------------------------------------------------
# message registration
# --------------------------------------------------------------------------

def register_message(tag: int, cls: type) -> None:
    """Register dataclass ``cls`` under stable wire ``tag`` (0x10-0xFF).

    The encoder writes the tag followed by the ordered field values (each
    through :func:`_write_value`, so nested registered types and fallback
    pickles compose); the decoder reads them back and calls
    ``cls(*values)``. Tags are part of the wire contract: never renumber a
    registered tag, only append new ones.
    """
    if not 0x10 <= tag <= 0xFF:
        raise ValueError(f"message tags must be in [0x10, 0xFF], got {tag:#x}")
    existing = REGISTERED_MESSAGES.get(tag)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"tag {tag:#x} already registered for {existing.__name__}")
    names = tuple(f.name for f in dataclass_fields(cls))
    if len(names) == 1:
        get_one = attrgetter(names[0])

        def enc(out: bytearray, v: Any, _t: int = tag,
                _g: Callable = get_one) -> None:
            out.append(_t)
            _write_value(out, _g(v))
    elif names:
        get_all = attrgetter(*names)

        def enc(out: bytearray, v: Any, _t: int = tag,
                _g: Callable = get_all) -> None:
            out.append(_t)
            for item in _g(v):
                _write_value(out, item)
    else:
        def enc(out: bytearray, v: Any, _t: int = tag) -> None:
            out.append(_t)

    def dec(buf: bytes, pos: int, _cls: type = cls,
            _n: int = len(names)) -> Tuple[Any, int]:
        args = []
        for _ in range(_n):
            value, pos = _read_value(buf, pos)
            args.append(value)
        return _cls(*args), pos

    _ENCODERS[cls] = enc
    _DECODERS[tag] = dec
    REGISTERED_MESSAGES[tag] = cls


# --------------------------------------------------------------------------
# framing
# --------------------------------------------------------------------------

def encode_frame(src: int, payload: Any, wire: str = "binary") -> bytes:
    """Encode one ``(src, payload)`` message into a framed byte string.

    ``wire="pickle"`` produces the exact pre-PR-9 legacy frame (kept for
    interop benchmarks and old-peer compatibility tests).
    """
    if wire == "pickle":
        body = pickle.dumps((src, payload), protocol=pickle.HIGHEST_PROTOCOL)
        if len(body) > MAX_FRAME_BYTES:
            raise TransportError(f"frame too large: {len(body)} bytes")
        return _LEN.pack(len(body)) + body
    if wire != "binary":
        raise TransportError(f"unknown wire format {wire!r}")
    buf = bytearray()
    buf.append(WIRE_BINARY)
    _w_uint(buf, src)
    _write_value(buf, payload)
    if len(buf) > MAX_FRAME_BYTES:
        raise TransportError(f"frame too large: {len(buf)} bytes")
    return _LEN.pack(len(buf)) + bytes(buf)


class FrameEncoder:
    """Stateful frame encoder for one transport endpoint.

    Besides picking the wire format, it keeps a one-slot *fan-out cache*:
    protocols broadcast by wrapping the same payload object in one
    envelope per destination, so encoding the (heavy) inner payload once
    and splicing the cached bytes into each destination's frame removes
    the dominant per-peer serialization cost of a broadcast.
    """

    __slots__ = ("wire", "_cache_obj", "_cache_bytes")

    def __init__(self, wire: str = "binary"):
        if wire not in WIRE_FORMATS:
            raise TransportError(f"unknown wire format {wire!r}")
        self.wire = wire
        self._cache_obj: Any = None
        self._cache_bytes = b""

    def encode(self, src: int, payload: Any) -> bytes:
        if self.wire == "pickle":
            return encode_frame(src, payload, wire="pickle")
        buf = bytearray()
        buf.append(WIRE_BINARY)
        _w_uint(buf, src)
        if payload.__class__ is _Envelope:
            # Manual field order must mirror the Envelope dataclass
            # (config_id, component, payload, trace) so the generic
            # registered decoder reads it back.
            buf.append(_ENVELOPE_TAG)
            buf.append(_T_INT)
            _w_int(buf, payload.config_id)
            _write_value(buf, payload.component)
            inner = payload.payload
            if inner is self._cache_obj:
                buf += self._cache_bytes
            else:
                mark = len(buf)
                _write_value(buf, inner)
                self._cache_obj = inner
                self._cache_bytes = bytes(buf[mark:])
            _write_value(buf, payload.trace)
        else:
            _write_value(buf, payload)
        if len(buf) > MAX_FRAME_BYTES:
            raise TransportError(f"frame too large: {len(buf)} bytes")
        return _LEN.pack(len(buf)) + bytes(buf)


def _decode_body(body: bytes) -> Tuple[int, Any]:
    """Decode one complete frame body into ``(src, payload)``."""
    if body and body[0] == WIRE_BINARY:
        try:
            src, pos = _r_uint(body, 1)
            value, pos = _read_value(body, pos)
        except TransportError:
            raise
        except Exception as exc:
            raise TransportError(f"corrupt binary frame: {exc!r}")
        if pos != len(body):
            raise TransportError(
                f"corrupt binary frame: {len(body) - pos} trailing bytes")
        return src, value
    try:
        decoded = pickle.loads(body)
    except Exception as exc:
        raise TransportError(f"corrupt pickle frame: {exc!r}")
    if not isinstance(decoded, tuple) or len(decoded) != 2:
        raise TransportError("corrupt pickle frame: not a (src, payload)")
    return decoded


class FrameDecoder:
    """Incremental decoder: feed bytes, take complete messages.

    Accepts binary and legacy pickle frames interleaved on one stream. A
    corrupt frame raises :class:`TransportError` and clears the buffer, so
    a caller that keeps the decoder (e.g. across a reconnect) resumes
    clean instead of re-reading the poisoned prefix forever. When the
    corrupt frame follows good frames *in the same feed call*, those
    messages are returned first and :attr:`poisoned` is set (the deferred
    error raises on the next ``feed``) — valid traffic is never discarded
    because garbage arrived behind it in one TCP read.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._pending_error: Optional[TransportError] = None

    @property
    def poisoned(self) -> bool:
        """True when the last ``feed`` hit a corrupt frame after decoding
        messages; the stream is unframeable past this point."""
        return self._pending_error is not None

    def feed(self, data: bytes) -> List[Any]:
        """Absorb ``data``; return all now-complete ``(src, payload)``."""
        if self._pending_error is not None:
            error = self._pending_error
            self._pending_error = None
            raise error
        self._buffer.extend(data)
        out: List[Any] = []
        while True:
            if len(self._buffer) < _LEN.size:
                return out
            (size,) = _LEN.unpack(self._buffer[:_LEN.size])
            if size > MAX_FRAME_BYTES:
                # A corrupt length header means the rest of the buffer is
                # unframeable garbage; reset before raising.
                self._buffer.clear()
                error = TransportError(
                    f"frame length {size} exceeds maximum")
                if out:
                    self._pending_error = error
                    return out
                raise error
            if len(self._buffer) < _LEN.size + size:
                return out
            body = bytes(self._buffer[_LEN.size:_LEN.size + size])
            del self._buffer[:_LEN.size + size]
            try:
                out.append(_decode_body(body))
            except TransportError as error:
                self._buffer.clear()
                if out:
                    self._pending_error = error
                    return out
                raise


# --------------------------------------------------------------------------
# the wire schema: stable tags for all five protocols
# --------------------------------------------------------------------------
# Tag blocks: 0x10 shared/omni core, 0x30 raft, 0x40 multipaxos, 0x50 vr.
# The transport registers its own ping/pong probes (0x2E/0x2F) when it is
# imported. NEVER renumber a shipped tag — only append.

from repro.obs.spans import TraceContext as _TraceContext  # noqa: E402
from repro.omni.ballot import Ballot as _Ballot, QCBallot as _QCBallot  # noqa: E402
from repro.omni.entry import (  # noqa: E402
    Command as _Command,
    SnapshotInstalled as _SnapshotInstalled,
    StopSign as _StopSign,
)
from repro.omni import messages as _om  # noqa: E402
from repro.baselines import multipaxos as _mp  # noqa: E402
from repro.baselines import raft as _raft  # noqa: E402
from repro.baselines import vr as _vr  # noqa: E402

_Envelope = _om.Envelope

register_message(0x10, _Ballot)
register_message(0x11, _QCBallot)
register_message(0x12, _Command)


def _specialize_hot_types() -> None:
    """Swap in hand-tuned encoders/decoders for the replication-path types.

    ``Command`` and ``Ballot`` sit innermost in every AcceptDecide /
    Promise / AppendEntries frame — a macro run touches them hundreds of
    thousands of times — so their codecs inline the varint loops and
    bypass the dataclass ``__init__`` (``object.__new__`` + three direct
    ``object.__setattr__`` calls, the same trick ``fast_frozen_pickle``
    plays for pickle). The wire bytes are identical to the generic
    schema encoding; only the Python path is shorter.
    """
    command_tag = next(t for t, c in REGISTERED_MESSAGES.items()
                       if c is _Command)
    ballot_tag = next(t for t, c in REGISTERED_MESSAGES.items()
                      if c is _Ballot)
    new = object.__new__
    setattr_ = object.__setattr__

    def enc_command(out: bytearray, c: Any, _t: int = command_tag) -> None:
        out.append(_t)
        data = c.data
        out.append(_T_BYTES)
        _w_uint(out, len(data))
        out += data
        out.append(_T_INT)
        _w_int(out, c.client_id)
        out.append(_T_INT)
        _w_int(out, c.seq)

    def dec_command(buf: bytes, pos: int) -> Tuple[Any, int]:
        # Inlined 1-/2-byte varint fast paths: command payloads are
        # usually short and client ids / sequence numbers small, so the
        # generic _r_uint/_r_int calls are pure overhead here.
        if buf[pos] != _T_BYTES:
            # Non-canonical field encoding (e.g. a hand-built frame):
            # fall back to the generic ordered-value parse.
            data, pos = _read_value(buf, pos)
        else:
            n = buf[pos + 1]
            if n < 0x80:
                pos += 2
            else:
                n, pos = _r_uint(buf, pos + 1)
            end = pos + n
            if end > len(buf):
                raise TransportError("corrupt frame: truncated bytes value")
            data = buf[pos:end]
            pos = end
        if buf[pos] == _T_INT:
            zz = buf[pos + 1]
            if zz < 0x80:
                pos += 2
            elif buf[pos + 2] < 0x80:
                zz = (zz & 0x7F) | (buf[pos + 2] << 7)
                pos += 3
            else:
                zz, pos = _r_uint(buf, pos + 1)
            client_id = (zz >> 1) if not (zz & 1) else -((zz + 1) >> 1)
        else:
            client_id, pos = _read_value(buf, pos)
        if buf[pos] == _T_INT:
            zz = buf[pos + 1]
            if zz < 0x80:
                pos += 2
            elif buf[pos + 2] < 0x80:
                zz = (zz & 0x7F) | (buf[pos + 2] << 7)
                pos += 3
            else:
                zz, pos = _r_uint(buf, pos + 1)
            seq = (zz >> 1) if not (zz & 1) else -((zz + 1) >> 1)
        else:
            seq, pos = _read_value(buf, pos)
        cmd = new(_Command)
        setattr_(cmd, "data", data)
        setattr_(cmd, "client_id", client_id)
        setattr_(cmd, "seq", seq)
        return cmd, pos

    def enc_ballot(out: bytearray, b: Any, _t: int = ballot_tag) -> None:
        out.append(_t)
        out.append(_T_INT)
        _w_int(out, b.n)
        out.append(_T_INT)
        _w_int(out, b.priority)
        out.append(_T_INT)
        _w_int(out, b.pid)

    def dec_ballot(buf: bytes, pos: int) -> Tuple[Any, int]:
        fields = []
        for _ in range(3):
            if buf[pos] == _T_INT:
                value, pos = _r_int(buf, pos + 1)
            else:
                value, pos = _read_value(buf, pos)
            fields.append(value)
        ballot = new(_Ballot)
        setattr_(ballot, "n", fields[0])
        setattr_(ballot, "priority", fields[1])
        setattr_(ballot, "pid", fields[2])
        return ballot, pos

    _ENCODERS[_Command] = enc_command
    _DECODERS[command_tag] = dec_command
    _ENCODERS[_Ballot] = enc_ballot
    _DECODERS[ballot_tag] = dec_ballot

    # AcceptDecide carries the replicated entries themselves; decode its
    # entries tuple with a direct dec_command loop so each element skips
    # the _read_value tag dispatch. Field order: n, entries, decided_idx,
    # seq, session.
    ad_tag = next(t for t, c in REGISTERED_MESSAGES.items()
                  if c is _om.AcceptDecide)
    _AcceptDecide = _om.AcceptDecide

    def dec_accept_decide(buf: bytes, pos: int) -> Tuple[Any, int]:
        if buf[pos] == ballot_tag:
            n, pos = dec_ballot(buf, pos + 1)
        else:
            n, pos = _read_value(buf, pos)
        if buf[pos] == _T_TUPLE:
            count, pos = _r_uint(buf, pos + 1)
            items = []
            append = items.append
            for _ in range(count):
                if buf[pos] == command_tag:
                    cmd, pos = dec_command(buf, pos + 1)
                else:
                    cmd, pos = _read_value(buf, pos)
                append(cmd)
            entries = tuple(items)
        else:
            entries, pos = _read_value(buf, pos)
        rest = []
        for _ in range(3):  # decided_idx, seq, session
            if buf[pos] == _T_INT:
                zz = buf[pos + 1]
                if zz < 0x80:
                    pos += 2
                elif buf[pos + 2] < 0x80:
                    zz = (zz & 0x7F) | (buf[pos + 2] << 7)
                    pos += 3
                else:
                    zz, pos = _r_uint(buf, pos + 1)
                rest.append((zz >> 1) if not (zz & 1) else -((zz + 1) >> 1))
            else:
                value, pos = _read_value(buf, pos)
                rest.append(value)
        msg = new(_AcceptDecide)
        setattr_(msg, "n", n)
        setattr_(msg, "entries", entries)
        setattr_(msg, "decided_idx", rest[0])
        setattr_(msg, "seq", rest[1])
        setattr_(msg, "session", rest[2])
        return msg, pos

    _DECODERS[ad_tag] = dec_accept_decide
register_message(0x13, _StopSign)
register_message(0x14, _SnapshotInstalled)
register_message(0x15, _TraceContext)
register_message(0x16, _om.Envelope)
register_message(0x17, _om.HeartbeatRequest)
register_message(0x18, _om.HeartbeatReply)
register_message(0x19, _om.Prepare)
register_message(0x1A, _om.Promise)
register_message(0x1B, _om.AcceptSync)
register_message(0x1C, _om.AcceptDecide)
register_message(0x1D, _om.Accepted)
register_message(0x1E, _om.Trim)
register_message(0x1F, _om.Decide)
register_message(0x20, _om.PrepareReq)
register_message(0x21, _om.ProposalForward)
register_message(0x22, _om.NewConfiguration)
register_message(0x23, _om.JoinComplete)
register_message(0x24, _om.LogPullRequest)
register_message(0x25, _om.LogSegment)

register_message(0x30, _raft.RequestVote)
register_message(0x31, _raft.RequestVoteReply)
register_message(0x32, _raft.AppendEntries)
register_message(0x33, _raft.AppendEntriesReply)
register_message(0x34, _raft.RaftSlot)
register_message(0x35, _raft.TimeoutNow)
register_message(0x36, _raft.RaftConfigChange)
register_message(0x37, _raft.InstallSnapshot)

register_message(0x40, _mp.P1a)
register_message(0x41, _mp.P1b)
register_message(0x42, _mp.P2a)
register_message(0x43, _mp.P2b)
register_message(0x44, _mp.Ping)
register_message(0x45, _mp.Pong)

register_message(0x50, _vr.StartViewChange)
register_message(0x51, _vr.DoViewChange)
register_message(0x52, _vr.StartView)
register_message(0x53, _vr.VRPing)

_ENVELOPE_TAG = next(tag for tag, cls in REGISTERED_MESSAGES.items()
                     if cls is _Envelope)

_specialize_hot_types()
