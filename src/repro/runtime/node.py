"""RuntimeNode: drive one replica against real time and TCP.

The node owns a replica and a :class:`~repro.runtime.transport.TcpMesh`,
pumps ticks on a real-time interval, and exposes an asyncio-friendly
``propose`` plus a decided-entry callback. All timestamps handed to the
replica are milliseconds from ``loop.time()``, so protocol timeouts behave
exactly as configured.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.replica import Replica
from repro.runtime.transport import PeerAddress, TcpMesh

DecidedHandler = Callable[[int, Any], None]


class RuntimeNode:
    """One live server process: replica + transport + timer pump."""

    def __init__(
        self,
        replica: Replica,
        listen: PeerAddress,
        peers: Dict[int, PeerAddress],
        tick_ms: float = 10.0,
        on_decided: Optional[DecidedHandler] = None,
        obs: Optional[MetricsRegistry] = None,
    ):
        self._replica = replica
        self._tick_s = tick_ms / 1000.0
        self._on_decided = on_decided
        self._obs = obs if obs is not None else NULL_REGISTRY
        self._mesh = TcpMesh(
            pid=replica.pid,
            listen=listen,
            peers=peers,
            on_message=self._handle_message,
            on_session_restored=self._handle_session_restored,
        )
        self._mesh.set_observability(self._obs)
        setter = getattr(replica, "set_observability", None)
        if setter is not None:
            setter(self._obs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._tick_task: Optional[asyncio.Task] = None
        self._running = False

    # ------------------------------------------------------------------

    @property
    def replica(self) -> Replica:
        return self._replica

    @property
    def pid(self) -> int:
        return self._replica.pid

    @property
    def is_leader(self) -> bool:
        return self._replica.is_leader

    @property
    def leader_pid(self) -> Optional[int]:
        return self._replica.leader_pid

    def _now_ms(self) -> float:
        assert self._loop is not None
        return self._loop.time() * 1000.0

    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Start transport and the tick pump."""
        if self._running:
            return
        self._running = True
        self._loop = asyncio.get_event_loop()
        # The registry's clock follows this node's monotonic ms clock, so
        # runtime event timestamps are comparable to the replica's `now_ms`.
        self._obs.set_clock(self._now_ms)
        await self._mesh.start()
        self._replica.start(self._now_ms())
        self._flush()
        self._tick_task = asyncio.ensure_future(self._tick_loop())

    async def stop(self) -> None:
        self._running = False
        if self._tick_task is not None:
            self._tick_task.cancel()
        await self._mesh.close()

    def propose(self, entry: Any) -> None:
        """Propose a client entry at this server."""
        self._replica.propose(entry, self._now_ms())
        self._flush()

    def propose_batch(self, entries: List[Any]) -> None:
        self._replica.propose_batch(entries, self._now_ms())
        self._flush()

    # ------------------------------------------------------------------

    async def _tick_loop(self) -> None:
        while self._running:
            await asyncio.sleep(self._tick_s)
            self._replica.tick(self._now_ms())
            self._flush()

    def _handle_message(self, src: int, payload: Any) -> None:
        self._replica.on_message(src, payload, self._now_ms())
        self._flush()

    def _handle_session_restored(self, peer: int) -> None:
        self._replica.on_session_drop(peer, self._now_ms())
        self._flush()

    def _flush(self) -> None:
        for dst, msg in self._replica.take_outbox():
            self._mesh.send(dst, msg)
        if self._on_decided is None:
            # No handler: leave decided entries queued in the replica for an
            # external consumer (e.g. a ReplicatedKVStore pumping it).
            return
        for idx, entry in self._replica.take_decided():
            self._on_decided(idx, entry)
