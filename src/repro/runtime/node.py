"""RuntimeNode: drive one replica against real time and TCP.

The node owns a replica and a :class:`~repro.runtime.transport.TcpMesh`,
pumps ticks on a real-time interval, and exposes an asyncio-friendly
``propose`` plus a decided-entry callback. All timestamps handed to the
replica are milliseconds from ``loop.time()``, so protocol timeouts behave
exactly as configured.

Two health-observatory surfaces (both opt-in):

- ``admin`` — a line-delimited JSON admin endpoint: each request line is
  ``{"cmd": "status" | "metrics" | "flight", ...}`` (or a bare verb
  string), each response one JSON line. ``status`` returns the replica's
  :meth:`~repro.replica.Replica.status` view plus transport facts;
  ``flight`` with a ``path`` dumps the flight recorder to disk.
- ``ping_interval_ms`` — transport RTT probing; samples land in the
  ``repro_link_rtt_ms`` histogram and feed the replica's gray-failure
  detector when it has one.

With an enabled registry the node also keeps an always-on
:class:`~repro.obs.flight.FlightRecorder`; if the tick loop dies with an
unexpected exception the recorder dumps the final moments to
``flight_dump_path`` before the error propagates.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.obs.exporters import metrics_snapshot
from repro.obs.flight import FlightRecorder
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.replica import Replica
from repro.runtime.transport import (
    DEFAULT_COALESCE_BYTES,
    DEFAULT_MAX_WRITE_BUFFER_BYTES,
    PeerAddress,
    TcpMesh,
)

DecidedHandler = Callable[[int, Any], None]


@dataclass(frozen=True)
class PipelineConfig:
    """Leader-side proposal pipelining with watermark flow control.

    Client entries queue in the node (not the replica) and are admitted
    in ``max_batch`` chunks while the node is *unchoked*. The node chokes
    when either the in-flight window (proposed-but-not-yet-decided
    entries) reaches ``inflight_high`` or the transport's write buffer
    (asyncio buffered + coalescing-staged bytes, via
    ``TcpMesh.get_write_buffer_size``) reaches ``write_buffer_high``; it
    unchokes only once both fall back to their low watermarks —
    hysteresis, so admission doesn't thrash at the boundary. Decided
    entries observed in the node's flush path shrink the window.
    """

    inflight_high: int = 4096
    inflight_low: int = 1024
    max_batch: int = 256
    write_buffer_high: int = 1 * 1024 * 1024
    write_buffer_low: int = 256 * 1024


class RuntimeNode:
    """One live server process: replica + transport + timer pump."""

    def __init__(
        self,
        replica: Replica,
        listen: PeerAddress,
        peers: Dict[int, PeerAddress],
        tick_ms: float = 10.0,
        on_decided: Optional[DecidedHandler] = None,
        obs: Optional[MetricsRegistry] = None,
        admin: Optional[Tuple[str, int]] = None,
        ping_interval_ms: Optional[float] = None,
        flight_capacity: int = 512,
        flight_dump_path: Optional[str] = None,
        wire: str = "binary",
        coalesce_bytes: int = DEFAULT_COALESCE_BYTES,
        max_write_buffer_bytes: int = DEFAULT_MAX_WRITE_BUFFER_BYTES,
        pipeline: Optional[PipelineConfig] = None,
    ):
        if pipeline is not None and on_decided is None:
            raise ConfigError(
                "pipeline flow control needs on_decided: the in-flight "
                "window shrinks as decided entries drain through the "
                "node's handler, and without one they stay queued in the "
                "replica and the window never reopens"
            )
        self._replica = replica
        self._tick_s = tick_ms / 1000.0
        self._on_decided = on_decided
        self._obs = obs if obs is not None else NULL_REGISTRY
        self._pipeline = pipeline
        self._pending: Deque[Any] = deque()
        self._inflight = 0
        self._choked = False
        self._pumping = False
        self._mesh = TcpMesh(
            pid=replica.pid,
            listen=listen,
            peers=peers,
            on_message=self._handle_message,
            on_session_restored=self._handle_session_restored,
            ping_interval_ms=ping_interval_ms,
            on_rtt=self._handle_rtt,
            wire=wire,
            coalesce_bytes=coalesce_bytes,
            max_write_buffer_bytes=max_write_buffer_bytes,
        )
        self._mesh.set_observability(self._obs)
        setter = getattr(replica, "set_observability", None)
        if setter is not None:
            setter(self._obs)
        self._admin_addr = admin
        self._admin_server: Optional[asyncio.AbstractServer] = None
        self._flight_dump_path = flight_dump_path
        self.flight: Optional[FlightRecorder] = None
        if self._obs.enabled:
            self.flight = FlightRecorder(capacity=flight_capacity)
            self._obs.add_sink(self.flight)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._tick_task: Optional[asyncio.Task] = None
        self._running = False
        self._series: Optional["SeriesCollector"] = None
        self._series_memo: Dict[str, int] = {}

    # ------------------------------------------------------------------

    @property
    def replica(self) -> Replica:
        return self._replica

    @property
    def pid(self) -> int:
        return self._replica.pid

    @property
    def is_leader(self) -> bool:
        return self._replica.is_leader

    @property
    def leader_pid(self) -> Optional[int]:
        return self._replica.leader_pid

    @property
    def connected_peers(self) -> Tuple[int, ...]:
        return self._mesh.connected_peers

    @property
    def admin_address(self) -> Optional[Tuple[str, int]]:
        """The bound admin endpoint ``(host, port)``, once started."""
        if self._admin_server is None or not self._admin_server.sockets:
            return None
        host, port = self._admin_server.sockets[0].getsockname()[:2]
        return host, port

    def _now_ms(self) -> float:
        assert self._loop is not None
        return self._loop.time() * 1000.0

    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Start transport, the tick pump, and the admin endpoint."""
        if self._running:
            return
        self._running = True
        self._loop = asyncio.get_event_loop()
        # The registry's clock follows this node's monotonic ms clock, so
        # runtime event timestamps are comparable to the replica's `now_ms`.
        self._obs.set_clock(self._now_ms)
        await self._mesh.start()
        if self._admin_addr is not None:
            self._admin_server = await asyncio.start_server(
                self._handle_admin, self._admin_addr[0], self._admin_addr[1]
            )
        self._replica.start(self._now_ms())
        self._flush()
        self._tick_task = asyncio.ensure_future(self._tick_loop())

    async def stop(self) -> None:
        self._running = False
        if self._tick_task is not None:
            self._tick_task.cancel()
        if self._admin_server is not None:
            self._admin_server.close()
            await self._admin_server.wait_closed()
        await self._mesh.close()

    def propose(self, entry: Any) -> None:
        """Propose a client entry at this server. With pipelining
        enabled the entry queues in the node and is admitted to the
        replica by the watermark-gated pump."""
        if self._pipeline is not None:
            self._pending.append(entry)
            self._pump_proposals()
            return
        self._replica.propose(entry, self._now_ms())
        self._flush()

    def propose_batch(self, entries: List[Any]) -> None:
        if self._pipeline is not None:
            self._pending.extend(entries)
            self._pump_proposals()
            return
        self._replica.propose_batch(entries, self._now_ms())
        self._flush()

    @property
    def pending_proposals(self) -> int:
        """Entries queued in the node, not yet admitted to the replica."""
        return len(self._pending)

    @property
    def inflight_proposals(self) -> int:
        """Entries admitted to the replica but not yet seen decided here."""
        return self._inflight

    def _pump_proposals(self) -> None:
        """Admit pending entries in ``max_batch`` chunks while unchoked.

        The in-flight window counts entries this node admitted minus
        decided entries observed in :meth:`_flush`; the byte watermark
        reads the transport's combined asyncio + staging buffers. Both
        use choke/unchoke hysteresis (see :class:`PipelineConfig`).
        """
        cfg = self._pipeline
        assert cfg is not None
        if self._pumping:
            # _flush inside the admission loop below re-enters here when
            # entries decide synchronously; the outer loop will see the
            # updated window itself.
            return
        if self._choked:
            if (self._inflight <= cfg.inflight_low
                    and self._mesh.get_write_buffer_size()
                    <= cfg.write_buffer_low):
                self._choked = False
            else:
                return
        pending = self._pending
        self._pumping = True
        try:
            while pending and not self._choked:
                if (self._inflight >= cfg.inflight_high
                        or self._mesh.get_write_buffer_size()
                        >= cfg.write_buffer_high):
                    self._choked = True
                    break
                batch = []
                take = min(cfg.max_batch,
                           cfg.inflight_high - self._inflight, len(pending))
                for _ in range(take):
                    batch.append(pending.popleft())
                self._replica.propose_batch(batch, self._now_ms())
                self._inflight += len(batch)
                self._flush()
        finally:
            self._pumping = False

    # ------------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """The replica's health view plus this node's transport facts."""
        status = self._replica.status()
        status["connected_peers"] = list(self._mesh.connected_peers)
        status["wire"] = self._mesh.wire
        status["link_rtt_ms"] = {
            str(peer): round(rtt, 3)
            for peer, rtt in sorted(self._mesh.link_rtt_ms.items())
        }
        if self._pipeline is not None:
            status["pipeline"] = {
                "pending": len(self._pending),
                "inflight": self._inflight,
                "choked": self._choked,
                "write_buffer_bytes": self._mesh.get_write_buffer_size(),
            }
        if self.flight is not None:
            status["flight"] = self.flight.as_dict()
        return status

    def dump_flight(self, path: str) -> int:
        """Write the flight recorder's retained history to ``path``;
        returns the number of event lines (0 with observability off)."""
        if self.flight is None:
            return 0
        return self.flight.dump_jsonl(path, self._obs)

    def attach_series(self, window_ms: float = 1000.0) -> "SeriesCollector":
        """Attach a live :class:`~repro.obs.series.SeriesCollector` driven
        from the tick loop (wall-time windows, anchored at attach time).
        Every tick also samples the transport's write-buffer/reconnect
        backlog and the replica's staging-queue depths into
        ``repro_queue_depth`` gauges and ``QueueDepthSampled`` events.
        Call ``collector.finish()`` after :meth:`stop` for the windows."""
        from repro.obs.series import SeriesCollector
        if not self._obs.enabled:
            raise ConfigError(
                "attach_series needs RuntimeNode(..., obs=<enabled "
                "registry>) — the series engine is fed by events, and the "
                "null registry drops them"
            )
        start = self._now_ms() if self._loop is not None else 0.0
        self._series = SeriesCollector(self._obs, window_ms=window_ms,
                                       start_ms=start)
        self._series_memo = {}
        self._obs.add_sink(self._series)
        return self._series

    def _sample_series(self) -> None:
        from repro.obs import prof
        prof.sample_queue_depths(self._obs, self._mesh.queue_depths(),
                                 pid=self.pid, last=self._series_memo)
        if self._pipeline is not None:
            prof.sample_queue_depths(
                self._obs,
                {"pipeline_pending": len(self._pending),
                 "pipeline_inflight": self._inflight},
                pid=self.pid, last=self._series_memo)
        depths = getattr(self._replica, "queue_depths", None)
        if depths is not None:
            prof.sample_queue_depths(self._obs, depths(), pid=self.pid,
                                     last=self._series_memo)
        assert self._series is not None
        self._series.sample(self._now_ms())

    # ------------------------------------------------------------------

    async def _tick_loop(self) -> None:
        try:
            while self._running:
                await asyncio.sleep(self._tick_s)
                self._replica.tick(self._now_ms())
                self._flush()
                if self._pipeline is not None and self._pending:
                    # Watermark re-check even when no decide arrived this
                    # tick (e.g. the write buffer drained).
                    self._pump_proposals()
                # Tick boundary: push any staged-but-unflushed frames out.
                self._mesh.flush()
                if self._series is not None:
                    self._sample_series()
        except asyncio.CancelledError:
            raise
        except Exception:
            # The node is about to die unexpectedly: preserve the final
            # moments for post-mortem before the exception propagates.
            if self.flight is not None and self._flight_dump_path is not None:
                try:
                    self.dump_flight(self._flight_dump_path)
                except OSError:
                    pass
            raise

    def _handle_message(self, src: int, payload: Any) -> None:
        self._replica.on_message(src, payload, self._now_ms())
        self._flush()

    def _handle_session_restored(self, peer: int) -> None:
        self._replica.on_session_drop(peer, self._now_ms())
        self._flush()

    def _handle_rtt(self, peer: int, rtt_ms: float) -> None:
        detector = getattr(self._replica, "gray_detector", None)
        if detector is not None:
            detector.observe_rtt(peer, rtt_ms)

    def _flush(self) -> None:
        for dst, msg in self._replica.take_outbox():
            self._mesh.send(dst, msg)
        if self._on_decided is None:
            # No handler: leave decided entries queued in the replica for an
            # external consumer (e.g. a ReplicatedKVStore pumping it).
            return
        decided = 0
        for idx, entry in self._replica.take_decided():
            decided += 1
            self._on_decided(idx, entry)
        if decided and self._pipeline is not None:
            # Decided entries shrink the in-flight window (floored at 0:
            # a follower also sees entries it never admitted) and may
            # reopen admission for queued proposals.
            self._inflight = max(0, self._inflight - decided)
            if self._pending:
                self._pump_proposals()

    # -- admin endpoint ------------------------------------------------------

    def _admin_response(self, request: Any) -> Dict[str, Any]:
        if isinstance(request, str):
            request = {"cmd": request}
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        cmd = request.get("cmd", "status")
        if cmd == "status":
            return {"ok": True, "status": self.status()}
        if cmd == "metrics":
            return {"ok": True, "metrics": metrics_snapshot(self._obs)}
        if cmd == "flight":
            if self.flight is None:
                return {"ok": False,
                        "error": "flight recorder off (observability "
                                 "disabled on this node)"}
            path = request.get("path")
            if path is not None:
                try:
                    written = self.dump_flight(path)
                except OSError as exc:
                    return {"ok": False, "error": f"cannot write {path}: {exc}"}
                return {"ok": True, "path": path, "events_written": written}
            return {"ok": True, "flight": self.flight.as_dict()}
        return {"ok": False,
                "error": f"unknown command {cmd!r}; "
                         "try status, metrics, or flight"}

    async def _handle_admin(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        try:
            while not self._closed_admin():
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                if text.isalpha():
                    # Bare-verb shorthand: `status` over netcat, no quotes.
                    response = self._admin_response(text)
                else:
                    try:
                        request = json.loads(text)
                    except json.JSONDecodeError:
                        response = {"ok": False,
                                    "error": "invalid JSON request"}
                    else:
                        response = self._admin_response(request)
                writer.write(
                    (json.dumps(response, sort_keys=True) + "\n").encode()
                )
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    def _closed_admin(self) -> bool:
        return not self._running
