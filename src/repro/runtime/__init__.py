"""Asyncio runtime: run any :class:`repro.replica.Replica` over real TCP.

The simulator (:mod:`repro.sim`) is the substrate for the paper's
experiments; this runtime exists so the very same protocol objects can also
run as real processes on a real network — the litmus test that the sans-io
core has no hidden simulator dependencies. ``examples/kv_store_cluster.py``
boots a live three-server cluster on localhost with it.

The wire path is tunable end to end (PR 9): schema-aware binary framing
(``wire="binary"``, the default) or legacy pickle, per-peer frame
coalescing, leader-side proposal pipelining with watermark flow control
(:class:`PipelineConfig`), and an opt-in uvloop event loop via
:func:`install_uvloop`.
"""

from repro.runtime.codec import FrameDecoder, FrameEncoder, encode_frame
from repro.runtime.node import PipelineConfig, RuntimeNode
from repro.runtime.transport import PeerAddress, TcpMesh


def install_uvloop() -> bool:
    """Install uvloop's event-loop policy if the package is available.

    Returns ``True`` when uvloop is now the policy, ``False`` when the
    import failed (pure-CPython deployment — the asyncio default stays).
    Opt-in and never required: nothing in :mod:`repro.runtime` depends on
    which loop implementation runs it.
    """
    try:
        import uvloop  # type: ignore[import-not-found]
    except ImportError:
        return False
    import asyncio

    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return True


__all__ = [
    "encode_frame",
    "FrameDecoder",
    "FrameEncoder",
    "TcpMesh",
    "PeerAddress",
    "PipelineConfig",
    "RuntimeNode",
    "install_uvloop",
]
