"""Asyncio runtime: run any :class:`repro.replica.Replica` over real TCP.

The simulator (:mod:`repro.sim`) is the substrate for the paper's
experiments; this runtime exists so the very same protocol objects can also
run as real processes on a real network — the litmus test that the sans-io
core has no hidden simulator dependencies. ``examples/kv_store_cluster.py``
boots a live three-server cluster on localhost with it.
"""

from repro.runtime.codec import encode_frame, FrameDecoder
from repro.runtime.transport import TcpMesh, PeerAddress
from repro.runtime.node import RuntimeNode

__all__ = [
    "encode_frame",
    "FrameDecoder",
    "TcpMesh",
    "PeerAddress",
    "RuntimeNode",
]
