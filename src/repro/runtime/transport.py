"""Asyncio TCP mesh transport.

Each server listens on its own address and dials every peer. A single
outbound connection per peer carries this server's messages (TCP gives the
session-based FIFO perfect link the protocols assume, paper section 3);
inbound connections are receive-only. Broken connections reconnect with
*decorrelated-jitter* backoff — pure exponential backoff would make every
peer of a healed partition retry in lockstep, re-colliding on each wave —
and a re-established *outbound* session triggers the session-drop
callback so protocols can run their PrepareReq handling (section 4.1.3).

Wire path (PR 9): frames are encoded with the schema-aware binary codec
by default (``wire="pickle"`` restores the legacy format; inbound always
auto-detects both). Outbound frames are *coalesced* per peer: ``send``
stages bytes and a single ``call_soon``-scheduled flush writes every
staged frame for a peer in one ``writer.write`` — with TCP_NODELAY (the
asyncio default) per-message writes are per-packet and per-reader-wakeup,
so batching them is the dominant wall-clock win. Staged bytes above
``coalesce_bytes`` flush immediately; ``RuntimeNode`` also calls
:meth:`flush` at each tick boundary. Writes are bounded: when a peer's
asyncio write buffer plus staged bytes exceed ``max_write_buffer_bytes``
the message is dropped and counted under
``repro_messages_dropped_total{reason="backpressure"}`` — the semantics
of a partitioned link, which every protocol already tolerates.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from repro.errors import TransportError
from repro.obs.registry import NULL_REGISTRY, Instrumented
from repro.runtime import codec as _codec
from repro.runtime.codec import FrameDecoder, FrameEncoder, encode_frame

MessageHandler = Callable[[int, Any], None]
SessionHandler = Callable[[int], None]

#: Flush a peer's staging buffer as soon as it holds this many bytes
#: (roughly two TCP segments' worth of frames per syscall at the default).
DEFAULT_COALESCE_BYTES = 32 * 1024

#: Per-peer high-water mark: staged + asyncio-buffered bytes above this
#: drop the message instead of queueing unboundedly toward a
#: dead-but-undetected peer.
DEFAULT_MAX_WRITE_BUFFER_BYTES = 4 * 1024 * 1024


def decorrelated_jitter(rng: random.Random, base_s: float, prev_s: float,
                        cap_s: float) -> float:
    """Next reconnect delay: ``min(cap, uniform(base, prev * 3))``.

    The AWS "decorrelated jitter" scheme: each delay is drawn anew from a
    range anchored at the base and stretched by the previous delay, so two
    peers that lost their sessions at the same instant desynchronize after
    one round instead of hammering the healed peer in lockstep forever.
    """
    return min(cap_s, rng.uniform(base_s, max(prev_s * 3.0, base_s)))


@dataclass(frozen=True)
class PeerAddress:
    """Where a peer listens."""

    pid: int
    host: str
    port: int


@dataclass(frozen=True)
class TransportPing:
    """Transport-level RTT probe; answered in :meth:`_handle_inbound`,
    never surfaced to the replica. ``sent_ms`` is the sender's event-loop
    clock, echoed back so only the sender's clock is involved."""

    sent_ms: float


@dataclass(frozen=True)
class TransportPong:
    """Echo of a :class:`TransportPing` carrying the original send time."""

    sent_ms: float


# Registered here rather than in the codec's own table to avoid a
# circular import (codec <- transport); 0x2E/0x2F are reserved for these
# two in the codec's tag map.
_codec.register_message(0x2E, TransportPing)
_codec.register_message(0x2F, TransportPong)


class TcpMesh(Instrumented):
    """The full-mesh TCP transport of one server."""

    def __init__(
        self,
        pid: int,
        listen: PeerAddress,
        peers: Dict[int, PeerAddress],
        on_message: MessageHandler,
        on_session_restored: Optional[SessionHandler] = None,
        reconnect_initial_ms: float = 50.0,
        reconnect_max_ms: float = 2_000.0,
        rng: Optional[random.Random] = None,
        ping_interval_ms: Optional[float] = None,
        on_rtt: Optional[Callable[[int, float], None]] = None,
        wire: str = "binary",
        coalesce_bytes: int = DEFAULT_COALESCE_BYTES,
        max_write_buffer_bytes: int = DEFAULT_MAX_WRITE_BUFFER_BYTES,
    ):
        if listen.pid != pid:
            raise TransportError("listen address pid mismatch")
        if wire not in _codec.WIRE_FORMATS:
            raise TransportError(f"unknown wire format {wire!r}")
        self._pid = pid
        self._listen = listen
        self._peers = dict(peers)
        self._on_message = on_message
        self._on_session_restored = on_session_restored
        self._reconnect_initial = reconnect_initial_ms / 1000.0
        self._reconnect_max = reconnect_max_ms / 1000.0
        #: Jitter source (injectable for deterministic tests); seeded from
        #: the pid by default so each server draws an independent stream.
        self._rng = rng if rng is not None else random.Random(pid)
        self.reconnect_attempts = 0
        self._ping_interval = (
            None if ping_interval_ms is None else ping_interval_ms / 1000.0
        )
        self._on_rtt = on_rtt
        self._wire = wire
        self._encoder = FrameEncoder(wire=wire)
        self._coalesce_bytes = coalesce_bytes
        self._max_write_buffer = max_write_buffer_bytes
        #: Per-peer staging buffers (bytes) and staged-frame counts; one
        #: flush writes a peer's whole buffer in a single syscall.
        self._staged: Dict[int, bytearray] = {}
        self._staged_frames: Dict[int, int] = {}
        self._flush_scheduled = False
        #: Latest measured round trip per peer (ms), ping-loop sampled.
        self.link_rtt_ms: Dict[int, float] = {}
        self._ping_task: Optional[asyncio.Task] = None
        self._writers: Dict[int, asyncio.StreamWriter] = {}
        self._dial_tasks: Dict[int, asyncio.Task] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._closed = False
        #: Peers we had connected to at least once (to detect re-sessions).
        self._had_session: set = set()

    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Begin listening and dialing all peers."""
        self._server = await asyncio.start_server(
            self._handle_inbound, self._listen.host, self._listen.port
        )
        for pid in self._peers:
            self._dial_tasks[pid] = asyncio.ensure_future(self._dial_loop(pid))
        if self._ping_interval is not None:
            self._ping_task = asyncio.ensure_future(self._ping_loop())

    async def close(self) -> None:
        self._closed = True
        tasks = list(self._dial_tasks.values())
        if self._ping_task is not None:
            tasks.append(self._ping_task)
        for task in tasks:
            task.cancel()
        # Await the cancelled tasks so teardown leaves no pending-task or
        # "exception was never retrieved" noise behind.
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self.flush()
        for writer in self._writers.values():
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        self._writers.clear()
        self._staged.clear()
        self._staged_frames.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def send(self, dst: int, payload: Any) -> None:
        """Best-effort send; messages to unconnected peers are dropped
        (exactly like messages over a partitioned link).

        The frame is *staged*, not written: a flush scheduled on the
        current event-loop iteration (or an earlier size-threshold /
        tick-boundary flush) writes every frame staged for ``dst`` in one
        syscall. Per-peer FIFO is preserved — frames drain in stage order.
        """
        writer = self._writers.get(dst)
        if writer is None and not self._obs.enabled:
            return
        frame = self._encoder.encode(self._pid, payload)
        if self._obs.enabled:
            # Accounted even for unconnected peers — like SimNetwork, which
            # bills dropped messages to the sender too.
            inner = getattr(payload, "payload", payload)
            self._obs.counter("repro_messages_sent_total", src=self._pid,
                              kind=type(inner).__name__).inc()
            self._obs.counter("repro_bytes_sent_total",
                              src=self._pid).inc(len(frame))
        if writer is None:
            # Same vocabulary as SimNetwork's drop accounting, so sim and
            # runtime exports answer "why did messages vanish" identically.
            self._obs.counter("repro_messages_dropped_total", src=self._pid,
                              reason="disconnected").inc()
            return
        staged = self._staged.get(dst)
        if staged is None:
            staged = self._staged[dst] = bytearray()
            self._staged_frames[dst] = 0
        transport = writer.transport
        buffered = (transport.get_write_buffer_size()
                    if transport is not None else 0)
        if buffered + len(staged) + len(frame) > self._max_write_buffer:
            # High-water mark: the peer is not draining (dead link the TCP
            # stack has not yet detected, or a genuinely slow consumer).
            # Dropping here is indistinguishable from a partition, which
            # the protocols already recover from.
            self._obs.counter("repro_messages_dropped_total", src=self._pid,
                              reason="backpressure").inc()
            return
        staged += frame
        self._staged_frames[dst] += 1
        if len(staged) >= self._coalesce_bytes:
            self._flush_peer(dst)
        elif not self._flush_scheduled:
            self._flush_scheduled = True
            try:
                asyncio.get_running_loop().call_soon(self._flush_soon)
            except RuntimeError:
                # No running loop (sync test harness): degrade to an
                # immediate write so bare sends still go out.
                self._flush_scheduled = False
                self._flush_peer(dst)

    def flush(self) -> None:
        """Write out every staged frame now (one syscall per peer).

        Called by ``RuntimeNode`` at each tick boundary, by the
        size-threshold path, and by the scheduled per-iteration flush.
        """
        for dst in list(self._staged):
            self._flush_peer(dst)

    def _flush_soon(self) -> None:
        self._flush_scheduled = False
        self.flush()

    def _flush_peer(self, dst: int) -> None:
        staged = self._staged.get(dst)
        if not staged:
            return
        frames = self._staged_frames.get(dst, 0)
        self._staged[dst] = bytearray()
        self._staged_frames[dst] = 0
        writer = self._writers.get(dst)
        if writer is None:
            self._obs.counter("repro_messages_dropped_total", src=self._pid,
                              reason="disconnected").inc(frames)
            return
        try:
            writer.write(bytes(staged))
        except (ConnectionError, RuntimeError):
            self._writers.pop(dst, None)
            if self._obs.enabled:
                self._obs.counter("repro_messages_dropped_total",
                                  src=self._pid,
                                  reason="write_failed").inc(frames)

    @property
    def connected_peers(self) -> Tuple[int, ...]:
        return tuple(sorted(self._writers))

    @property
    def wire(self) -> str:
        return self._wire

    def get_write_buffer_size(self, dst: Optional[int] = None) -> int:
        """Bytes queued toward ``dst`` (or all peers): asyncio write
        buffer plus our staging buffer. ``RuntimeNode``'s pipelining
        watermarks key off this."""
        total = 0
        writers = ([self._writers[dst]] if dst is not None
                   and dst in self._writers else
                   list(self._writers.values()) if dst is None else [])
        for writer in writers:
            transport = writer.transport
            if transport is not None:
                total += transport.get_write_buffer_size()
        if dst is None:
            total += sum(len(b) for b in self._staged.values())
        else:
            total += len(self._staged.get(dst, b""))
        return total

    def queue_depths(self) -> Dict[str, int]:
        """Instantaneous transport backpressure for the profiler (see
        ``repro.obs.prof``): bytes sitting in kernel/asyncio write buffers
        and coalescing staging buffers across all live peer connections,
        plus the reconnect backlog — peers we should be connected to but
        aren't (each has a dial loop backing off)."""
        return {
            "tcp_write": self.get_write_buffer_size(),
            "tcp_reconnect": sum(1 for pid in self._peers
                                 if pid != self._pid
                                 and pid not in self._writers),
        }

    # ------------------------------------------------------------------

    async def _handle_inbound(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        decoder = FrameDecoder()
        try:
            while not self._closed:
                data = await reader.read(64 * 1024)
                if not data:
                    break
                try:
                    messages = decoder.feed(data)
                except TransportError:
                    # A corrupt or oversized frame poisons the whole
                    # stream (framing offsets are gone): count it and
                    # close this inbound connection cleanly instead of
                    # letting the error escape as an unhandled task
                    # exception. The peer's dial loop will reconnect.
                    self._obs.counter("repro_messages_dropped_total",
                                      src=self._pid,
                                      reason="corrupt_frame").inc()
                    break
                for src, payload in messages:
                    if isinstance(payload, TransportPing):
                        self._answer_ping(src, payload)
                    elif isinstance(payload, TransportPong):
                        self._record_rtt(src, payload)
                    else:
                        self._on_message(src, payload)
                if decoder.poisoned:
                    # Good frames decoded ahead of the corruption in the
                    # same read were delivered above; the stream past
                    # this point is unframeable.
                    self._obs.counter("repro_messages_dropped_total",
                                      src=self._pid,
                                      reason="corrupt_frame").inc()
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop teardown while this handler was mid-read: exit quietly.
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # -- RTT sampling --------------------------------------------------------

    def _answer_ping(self, src: int, ping: TransportPing) -> None:
        """Echo the probe back over our outbound connection to ``src``
        (bypassing :meth:`send` so probes stay out of message counters
        and ahead of staged traffic — RTT should measure the link, not
        our coalescing buffer)."""
        peer_writer = self._writers.get(src)
        if peer_writer is None:
            return
        try:
            peer_writer.write(
                encode_frame(self._pid, TransportPong(ping.sent_ms),
                             wire=self._wire))
        except (ConnectionError, RuntimeError):
            self._writers.pop(src, None)

    def _record_rtt(self, src: int, pong: TransportPong) -> None:
        rtt_ms = asyncio.get_running_loop().time() * 1000.0 - pong.sent_ms
        self.link_rtt_ms[src] = rtt_ms
        if self._obs.enabled:
            self._obs.histogram("repro_link_rtt_ms", src=self._pid,
                                dst=src).observe(rtt_ms)
        if self._on_rtt is not None:
            self._on_rtt(src, rtt_ms)

    async def _ping_loop(self) -> None:
        """Probe every connected peer each interval; pongs arrive on the
        inbound path and land in :attr:`link_rtt_ms`."""
        try:
            loop = asyncio.get_running_loop()
            while not self._closed:
                await asyncio.sleep(self._ping_interval)
                now_ms = loop.time() * 1000.0
                for pid, writer in list(self._writers.items()):
                    try:
                        writer.write(
                            encode_frame(self._pid, TransportPing(now_ms),
                                         wire=self._wire))
                    except (ConnectionError, RuntimeError):
                        self._writers.pop(pid, None)
        except asyncio.CancelledError:
            pass

    async def _dial_loop(self, pid: int) -> None:
        """Keep one outbound connection to ``pid`` alive, with backoff."""
        addr = self._peers[pid]
        delay = self._reconnect_initial
        while not self._closed:
            self.reconnect_attempts += 1
            if self._obs.enabled:
                self._obs.counter("repro_reconnect_attempts_total",
                                  src=self._pid, peer=pid).inc()
            try:
                reader, writer = await asyncio.open_connection(addr.host, addr.port)
            except OSError:
                await asyncio.sleep(delay)
                delay = decorrelated_jitter(
                    self._rng, self._reconnect_initial, delay,
                    self._reconnect_max,
                )
                continue
            delay = self._reconnect_initial
            self._writers[pid] = writer
            # Fire on every established session, including the first:
            # messages sent before the dial completed were dropped (exactly
            # like a partitioned link), so the replica must run its
            # session-drop handling (PrepareReq) to resynchronize.
            if self._on_session_restored is not None:
                self._on_session_restored(pid)
            self._had_session.add(pid)
            # The outbound connection is write-only; wait for it to break.
            try:
                while not self._closed:
                    data = await reader.read(4096)
                    if not data:
                        break
            except ConnectionError:
                pass
            finally:
                if self._writers.get(pid) is writer:
                    self._writers.pop(pid, None)
                self._staged.pop(pid, None)
                lost = self._staged_frames.pop(pid, 0)
                if lost:
                    self._obs.counter("repro_messages_dropped_total",
                                      src=self._pid,
                                      reason="disconnected").inc(lost)
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()
