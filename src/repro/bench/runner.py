"""Timing, budgets, and JSON plumbing shared by the micro/macro benches.

Every bench result is a plain dict so the whole suite serializes straight
to ``BENCH_*.json``::

    {
      "name": "event_queue",
      "wall_s": 0.412,
      "ops": 400000,
      "ops_per_sec": 970873.8,
      "counters": {"events_processed": 400000}
    }

``counters`` holds only *deterministic* quantities — values that must be
identical across two runs with the same seed and budget. ``wall_s`` /
``ops_per_sec`` are the only fields allowed to differ.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
import time
from typing import Any, Callable, Dict, Optional, Tuple

#: Named budgets scale every bench; "smoke" is sized for CI seconds.
BUDGETS: Dict[str, Dict[str, Any]] = {
    "smoke": {
        "event_queue_events": 20_000,
        "network_sends": 10_000,
        "commit_batches": 40,
        "commit_batch_entries": 32,
        "codec_frames": 2_000,
        "macro_duration_ms": 1_000.0,
        "macro_cp": 32,
        "macro_protocols": ("omni", "raft"),
        "runtime_entries": 400,
        "runtime_payload_bytes": 16,
        "runtime_protocols": ("omni",),
    },
    "default": {
        "event_queue_events": 200_000,
        "network_sends": 150_000,
        "commit_batches": 300,
        "commit_batch_entries": 64,
        "codec_frames": 20_000,
        "macro_duration_ms": 4_000.0,
        "macro_cp": 64,
        "macro_protocols": ("omni", "raft", "raft_pvcq", "multipaxos", "vr"),
        "runtime_entries": 5_000,
        "runtime_payload_bytes": 16,
        "runtime_protocols": ("omni", "raft"),
    },
    "full": {
        "event_queue_events": 1_000_000,
        "network_sends": 600_000,
        "commit_batches": 1_200,
        "commit_batch_entries": 64,
        "codec_frames": 100_000,
        "macro_duration_ms": 15_000.0,
        "macro_cp": 128,
        "macro_protocols": ("omni", "raft", "raft_pvcq", "multipaxos", "vr"),
        "runtime_entries": 20_000,
        "runtime_payload_bytes": 16,
        "runtime_protocols": ("omni", "raft"),
    },
}


def timed(fn: Callable[[], Any]) -> Tuple[Any, float]:
    """Run ``fn`` once; return ``(result, wall_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def make_result(name: str, wall_s: float, ops: int,
                counters: Dict[str, Any],
                extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Assemble one bench's result dict (see module docstring)."""
    out: Dict[str, Any] = {
        "name": name,
        "wall_s": round(wall_s, 6),
        "ops": ops,
        "ops_per_sec": round(ops / wall_s, 1) if wall_s > 0 else 0.0,
        "counters": counters,
    }
    if extra:
        out.update(extra)
    return out


class LogDigest:
    """Incremental decided-log digest, one lane per server.

    Feed every ``(pid, idx, entry)`` the cluster decides; the final
    :meth:`hexdigest` is a stable fingerprint of *what* each server decided
    and in *which order* — byte-identical behaviour gives byte-identical
    digests, no matter how long the run took in wall-clock.
    """

    def __init__(self) -> None:
        self._lanes: Dict[int, "hashlib._Hash"] = {}

    def record(self, pid: int, idx: int, entry: Any) -> None:
        lane = self._lanes.get(pid)
        if lane is None:
            lane = self._lanes[pid] = hashlib.sha256()
        lane.update(f"{idx}:{entry!r};".encode())

    def hexdigest(self) -> str:
        outer = hashlib.sha256()
        for pid in sorted(self._lanes):
            outer.update(f"{pid}={self._lanes[pid].hexdigest()};".encode())
        return outer.hexdigest()


def bench_meta(budget: str, seed: int) -> Dict[str, Any]:
    """Provenance block stamped into every bench document."""
    return {
        "budget": budget,
        "seed": seed,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def deterministic_view(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Strip a bench document down to its deterministic counters.

    This is what the CI smoke job diffs against the committed baseline:
    ``{bench_name: counters}`` with all timing fields removed.
    """
    out: Dict[str, Any] = {}
    for section in ("micro", "macro", "runtime"):
        for name, result in sorted(doc.get(section, {}).items()):
            out[f"{section}.{name}"] = dict(result.get("counters", {}))
    return out


#: Counters that are deterministic *within* one build (so the CI smoke job
#: still diffs them against its committed baseline) but depend on the wire
#: encoding rather than on protocol behaviour: frame byte counts change
#: whenever message pickling changes shape (e.g. dict state vs tuple state
#: for slotted dataclasses). Cross-version before/after comparisons ignore
#: them; decided-log digests and frame *counts* remain authoritative.
INFORMATIONAL_COUNTERS = frozenset({"frame_bytes", "stream_bytes"})


def compare_phases(before: Dict[str, Any], after: Dict[str, Any],
                   threshold: float = 0.10) -> Dict[str, Any]:
    """Attribute a macro-bench latency change to commit phases.

    Both documents must carry ``phases`` blocks on their macro results
    (``repro-bench run --trace``); benches without them are skipped, so an
    untraced comparison just yields ``{}``. For every common phase whose
    mean moved beyond ``threshold`` the entry records the direction, and
    ``dominant`` names the phase with the largest absolute mean increase —
    the answer to "*which phase* regressed", not just the end-to-end wall.
    """
    out: Dict[str, Any] = {}
    for name, b in before.get("macro", {}).items():
        a = after.get("macro", {}).get(name)
        if a is None or "phases" not in b or "phases" not in a:
            continue
        deltas: Dict[str, Any] = {}
        dominant = None
        dominant_gain = 0.0
        for phase in sorted(set(b["phases"]) & set(a["phases"])):
            b_mean = b["phases"][phase]["mean_ms"]
            a_mean = a["phases"][phase]["mean_ms"]
            change = (a_mean - b_mean) / max(abs(b_mean), 1e-9)
            verdict = ("regressed" if change > threshold
                       else "improved" if change < -threshold
                       else "unchanged")
            deltas[phase] = {
                "before_mean_ms": b_mean,
                "after_mean_ms": a_mean,
                "change": round(change, 3),
                "verdict": verdict,
            }
            gain = a_mean - b_mean
            if verdict == "regressed" and gain > dominant_gain:
                dominant_gain, dominant = gain, phase
        entry: Dict[str, Any] = {"phases": deltas}
        if dominant is not None:
            entry["dominant_regressed_phase"] = dominant
        out[f"macro.{name}"] = entry
    return out


def compare_results(before: Dict[str, Any],
                    after: Dict[str, Any]) -> Dict[str, Any]:
    """Merge two bench documents into a before/after comparison.

    Speedups are ``after.ops_per_sec / before.ops_per_sec`` per bench.
    ``behaviour_identical`` is True only when every deterministic counter
    (including decided-log digests) matches between the two documents —
    the harness's proof that an optimization did not change protocol
    behaviour. Counters in :data:`INFORMATIONAL_COUNTERS` are excluded:
    they track the wire encoding, not the protocol. When both documents
    carry traced ``phases`` blocks, ``phase_attribution`` (see
    :func:`compare_phases`) localizes any macro latency change to the
    commit phase that moved.
    """
    speedup: Dict[str, float] = {}
    for section in ("micro", "macro", "runtime"):
        for name, b in before.get(section, {}).items():
            a = after.get(section, {}).get(name)
            if a is None or not b.get("ops_per_sec"):
                continue
            speedup[f"{section}.{name}"] = round(
                a["ops_per_sec"] / b["ops_per_sec"], 3)
    def _behavioural(det: Dict[str, Any]) -> Dict[str, Any]:
        return {
            name: {k: v for k, v in counters.items()
                   if k not in INFORMATIONAL_COUNTERS}
            for name, counters in det.items()
        }

    b_det = _behavioural(deterministic_view(before))
    a_det = _behavioural(deterministic_view(after))
    mismatches = sorted(
        name for name in set(b_det) | set(a_det)
        if b_det.get(name) != a_det.get(name)
    )
    return {
        "speedup": speedup,
        "behaviour_identical": not mismatches,
        "counter_mismatches": mismatches,
        "phase_attribution": compare_phases(before, after),
    }


def save_json(path: str, payload: Dict[str, Any]) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)
