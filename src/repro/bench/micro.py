"""Microbenchmarks for the simulator's hot paths.

Each bench isolates one layer — the event queue, the network send path,
the Sequence Paxos commit loop, the runtime codec — and reports wall-clock
ops/sec next to the deterministic counters that pin its behaviour.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

from repro.bench.runner import LogDigest, make_result, timed
from repro.omni.ballot import Ballot
from repro.omni.entry import Command
from repro.omni.messages import (
    AcceptDecide,
    COMPONENT_SP,
    Envelope,
    HeartbeatRequest,
)
from repro.runtime.codec import FrameDecoder, encode_frame
from repro.sim.events import EventQueue
from repro.sim.harness import ExperimentConfig, build_experiment
from repro.sim.network import NetworkParams, SimNetwork


def bench_event_queue(n_events: int, seed: int = 0) -> Dict[str, Any]:
    """Push/pop through :class:`EventQueue` — the simulator's innermost loop.

    Two phases with ``n_events`` each: a bulk phase (schedule everything,
    then drain) and a chain phase (each callback schedules the next), which
    is how protocol timers actually drive the queue.
    """
    rng = random.Random(seed)
    times = [rng.random() * 1_000.0 for _ in range(n_events)]

    def run() -> int:
        queue = EventQueue()
        fired = 0

        def bump() -> None:
            nonlocal fired
            fired += 1

        for at in times:
            queue.schedule(at, bump)
        queue.run_until(1_000.0)

        remaining = n_events

        def chain() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining > 0:
                queue.schedule_in(0.1, chain)

        queue.schedule_in(0.1, chain)
        queue.run_until(2_000.0 + 0.1 * n_events)
        assert fired == n_events and remaining == 0
        return queue.processed

    processed, wall = timed(run)
    return make_result("event_queue", wall, 2 * n_events,
                       {"events_processed": processed})


def bench_network_send(n_sends: int, num_servers: int = 5,
                       seed: int = 0) -> Dict[str, Any]:
    """Fan ``n_sends`` messages through :class:`SimNetwork`.

    Round-robins over every ordered server pair so the FIFO clamp, latency
    lookup, and delivery scheduling all stay hot; the queue is drained in
    slabs so the heap stays at realistic size.
    """
    pairs = [(a, b)
             for a in range(1, num_servers + 1)
             for b in range(1, num_servers + 1) if a != b]

    def run() -> Dict[str, int]:
        queue = EventQueue()
        network = SimNetwork(queue, NetworkParams(one_way_ms=0.1))
        # One asymmetric override so the per-link lookup path is exercised.
        network.set_latency(1, 2, 0.3)
        delivered = 0

        def on_deliver(src: int, dst: int, msg: Any) -> None:
            nonlocal delivered
            delivered += 1

        network.on_deliver(on_deliver)
        msg = HeartbeatRequest(round=1)
        n_pairs = len(pairs)
        sent = 0
        while sent < n_sends:
            slab = min(2_000, n_sends - sent)
            for i in range(slab):
                src, dst = pairs[(sent + i) % n_pairs]
                network.send(src, dst, msg)
            sent += slab
            queue.run_for(10.0)
        queue.run_for(10.0)
        assert delivered == n_sends
        return {
            "messages_sent": network.messages_sent,
            "messages_delivered": delivered,
            "events_processed": queue.processed,
        }

    counters, wall = timed(run)
    return make_result("network_send", wall, n_sends, counters)


def bench_commit_loop(n_batches: int, batch_entries: int,
                      seed: int = 0) -> Dict[str, Any]:
    """The Sequence Paxos ``propose_batch`` -> ``Decide`` commit loop.

    Drives a 3-server omni cluster end to end: each iteration proposes one
    batch at the leader and advances virtual time until the next, so
    replication, quorum accounting, and decide fan-out dominate the
    profile. ``ops`` counts decided entries.
    """
    cfg = ExperimentConfig(protocol="omni", num_servers=3,
                           election_timeout_ms=100.0, one_way_ms=0.1,
                           seed=seed, initial_leader=1)

    def run() -> Dict[str, Any]:
        exp = build_experiment(cfg)
        digest = LogDigest()
        decided_at_leader = 0

        def observer(pid: int, idx: int, entry: Any, now: float) -> None:
            nonlocal decided_at_leader
            digest.record(pid, idx, entry)
            if pid == 1:
                decided_at_leader += 1

        exp.cluster.on_decided(observer)
        exp.cluster.run_for(5 * cfg.election_timeout_ms)
        leaders = exp.cluster.leaders()
        assert leaders == [1], f"expected pre-seeded leader, got {leaders}"
        payload = bytes(8)
        seq = 0
        for _ in range(n_batches):
            batch = []
            for _ in range(batch_entries):
                batch.append(Command(data=payload, client_id=1, seq=seq))
                seq += 1
            exp.cluster.propose_batch(1, batch)
            exp.cluster.run_for(1.0)
        exp.cluster.run_for(50.0)
        return {
            "decided": decided_at_leader,
            "counters": {
                "decided_entries": decided_at_leader,
                "events_processed": exp.queue.processed,
                "messages_sent": exp.network.messages_sent,
                "decided_log_digest": digest.hexdigest(),
            },
        }

    out, wall = timed(run)
    return make_result("commit_loop", wall, out["decided"], out["counters"])


def bench_obs_overhead(n_batches: int, batch_entries: int,
                       seed: int = 0) -> Dict[str, Any]:
    """The full observability stack's cost: the commit loop off vs on.

    Runs the same 3-server commit workload three times — with the null
    registry (the disabled path every production-off run takes), with an
    enabled registry carrying the health observatory (connectivity
    monitor + flight recorder sinks, the pre-series stack), and with
    that plus the windowed series engine and queue-depth profiler
    (``Experiment.attach_series``). The decided-log digests of all three
    runs MUST be identical: observability is passive, so turning it on may
    cost wall-clock but can never change what gets decided. ``ops`` counts
    the enabled run's decided entries; the wall times land in the
    (non-deterministic) ``wall_off_s`` / ``wall_on_s`` fields so future
    PRs can watch the enabled-path overhead trend, and
    ``series_overhead_ratio`` isolates what the series engine itself adds
    on top of the already-enabled health stack.
    """
    from repro.obs.flight import FlightRecorder
    from repro.obs.health import HealthMonitor
    from repro.obs.registry import MetricsRegistry
    # Pre-warm the series engine's module import: attach_series defers it,
    # and paying it inside the timed enabled run would bill a one-time
    # interpreter cost to the steady-state overhead ratio.
    import repro.obs.series  # noqa: F401

    cfg = ExperimentConfig(protocol="omni", num_servers=3,
                           election_timeout_ms=100.0, one_way_ms=0.1,
                           seed=seed, initial_leader=1)

    def drive(obs, series: bool) -> Dict[str, Any]:
        exp = build_experiment(cfg, obs=obs)
        collector = exp.attach_series(window_ms=100.0) if series else None
        digest = LogDigest()
        decided_at_leader = 0

        def observer(pid: int, idx: int, entry: Any, now: float) -> None:
            nonlocal decided_at_leader
            digest.record(pid, idx, entry)
            if pid == 1:
                decided_at_leader += 1

        exp.cluster.on_decided(observer)
        exp.cluster.run_for(5 * cfg.election_timeout_ms)
        payload = bytes(8)
        seq = 0
        for _ in range(n_batches):
            batch = []
            for _ in range(batch_entries):
                batch.append(Command(data=payload, client_id=1, seq=seq))
                seq += 1
            exp.cluster.propose_batch(1, batch)
            exp.cluster.run_for(1.0)
        exp.cluster.run_for(50.0)
        return {
            "decided": decided_at_leader,
            "digest": digest.hexdigest(),
            "events_processed": exp.queue.processed,
            # Post-run analysis (collector.finish) happens outside the
            # timed region: the overhead ratio measures live perturbation,
            # not report generation.
            "collector": collector,
            "end_ms": exp.queue.now,
        }

    def make_registry() -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.add_sink(HealthMonitor())
        registry.add_sink(FlightRecorder())
        return registry

    def best_of(fn, reps: int = 3):
        # The per-config runs are deterministic, so any rep's result will
        # do; min-of-reps is the standard defence against scheduler noise
        # at smoke-budget run lengths (tens of milliseconds).
        result, best = timed(fn)
        for _ in range(reps - 1):
            result, wall = timed(fn)
            best = min(best, wall)
        return result, best

    off, wall_off = best_of(lambda: drive(None, series=False))
    health, wall_health = best_of(lambda: drive(make_registry(), series=False))

    sinks: Dict[str, Any] = {}

    def drive_full() -> Dict[str, Any]:
        # Fresh registry per rep: attach_series adds a collector sink, so
        # reusing one registry would stack collectors across reps.
        registry = MetricsRegistry()
        sinks["monitor"] = monitor = HealthMonitor()
        sinks["recorder"] = recorder = FlightRecorder()
        registry.add_sink(monitor)
        registry.add_sink(recorder)
        return drive(registry, series=True)

    on, wall_on = best_of(drive_full)
    monitor = sinks["monitor"]
    recorder = sinks["recorder"]
    windows = on["collector"].finish(on["end_ms"])

    counters = {
        "decided_entries": on["decided"],
        "decided_log_digest": on["digest"],
        "digests_identical": (off["digest"] == on["digest"]
                              and health["digest"] == on["digest"]),
        "events_processed_off": off["events_processed"],
        "events_processed_on": on["events_processed"],
        "health_reporters": len(monitor.matrix.views),
        "flight_retained": len(recorder),
        "series_windows": len(windows),
    }
    ops = n_batches * batch_entries
    return make_result(
        "obs_overhead", wall_on, ops, counters,
        extra={
            "wall_off_s": round(wall_off, 6),
            "wall_on_s": round(wall_on, 6),
            "enabled_overhead_ratio": (
                round(wall_on / wall_off, 3) if wall_off > 0 else 0.0
            ),
            "series_overhead_ratio": (
                round(wall_on / wall_health, 3) if wall_health > 0 else 0.0
            ),
        },
    )


def bench_codec(n_frames: int, seed: int = 0) -> Dict[str, Any]:
    """Encode/decode round trips through the runtime framing codec,
    binary vs legacy pickle in one result.

    Each frame is a realistic leader->follower message: an Envelope around
    an AcceptDecide carrying 16 commands. Decoding feeds the stream in 4 KiB
    chunks so the incremental reassembly path is measured, not just the
    raw decoder. The headline ``ops_per_sec`` times the binary wire (the
    runtime default); the pickle wall and frame size land in extra fields
    so the formats stay comparable release over release, and both decodes
    must reproduce the original message exactly.
    """
    entries = tuple(Command(data=bytes(8), client_id=1, seq=i)
                    for i in range(16))
    message = Envelope(
        config_id=0, component=COMPONENT_SP,
        payload=AcceptDecide(n=Ballot(n=2, priority=0, pid=1),
                             entries=entries, decided_idx=0,
                             seq=1, session=1),
    )

    def drive(wire: str) -> Dict[str, Any]:
        frame = encode_frame(1, message, wire=wire)
        stream = frame * n_frames
        decoder = FrameDecoder()
        decoded = 0
        last = None
        view = memoryview(stream)
        for off in range(0, len(stream), 4096):
            for _src, payload in decoder.feed(bytes(view[off:off + 4096])):
                decoded += 1
                last = payload
        assert decoded == n_frames
        return {"frame_bytes": len(frame), "stream_bytes": len(stream),
                "decoded": decoded, "last": last}

    binary, wall = timed(lambda: drive("binary"))
    legacy, wall_pickle = timed(lambda: drive("pickle"))
    counters = {
        "frames_decoded": binary["decoded"],
        "frame_bytes": binary["frame_bytes"],
        "stream_bytes": binary["stream_bytes"],
        "decoded_equal": (binary["last"] == message
                          and legacy["last"] == message),
    }
    return make_result(
        "codec", wall, n_frames, counters,
        extra={
            "wall_pickle_s": round(wall_pickle, 6),
            "frame_bytes_pickle": legacy["frame_bytes"],
            "binary_speedup": (round(wall_pickle / wall, 3)
                               if wall > 0 else 0.0),
        },
    )


def run_micro_suite(budget: Dict[str, Any], seed: int = 0,
                    only: List[str] = None) -> Dict[str, Dict[str, Any]]:
    """Run every microbench under ``budget``; return ``{name: result}``."""
    benches = {
        "event_queue": lambda: bench_event_queue(
            budget["event_queue_events"], seed),
        "network_send": lambda: bench_network_send(
            budget["network_sends"], seed=seed),
        "commit_loop": lambda: bench_commit_loop(
            budget["commit_batches"], budget["commit_batch_entries"], seed),
        "codec": lambda: bench_codec(budget["codec_frames"], seed),
        "obs_overhead": lambda: bench_obs_overhead(
            budget["commit_batches"], budget["commit_batch_entries"], seed),
    }
    out: Dict[str, Dict[str, Any]] = {}
    for name, bench in benches.items():
        if only and name not in only:
            continue
        out[name] = bench()
    return out
