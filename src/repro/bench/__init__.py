"""repro.bench: the deterministic micro/macro benchmark harness.

The harness answers two questions the figures of the paper depend on:

- *how fast is the simulator's hot path* (events/sec through the
  :class:`~repro.sim.events.EventQueue`, sends/sec through
  :class:`~repro.sim.network.SimNetwork`, decided-entries/sec through the
  Sequence Paxos commit loop, frames/sec through the runtime codec), and
- *did an optimization change behaviour* — every bench reports
  deterministic counters (event/message/decided counts and decided-log
  digests) that must be bit-identical for a given seed regardless of how
  fast the code runs.

Wall-clock numbers vary run to run; the deterministic counters may not.
``repro-bench`` (see :mod:`repro.tools.bench`) is the CLI front-end.
"""

from repro.bench.runner import (  # noqa: F401
    BUDGETS,
    bench_meta,
    compare_results,
    deterministic_view,
    load_json,
    save_json,
)
from repro.bench.micro import run_micro_suite  # noqa: F401
from repro.bench.macro import run_macro, run_macro_suite  # noqa: F401
