"""End-to-end simulator throughput benchmarks, one per protocol.

Each macro bench builds a full experiment (cluster + closed-loop client),
runs it for a fixed stretch of *virtual* time, and reports:

- wall-clock events/sec — how fast the simulator chews through the run,
- decided entries (and decided/sec of virtual time) — protocol progress,
- a decided-log digest over every server's decided stream — the
  behavioural fingerprint that must survive any optimization, and
- optionally a per-phase commit breakdown assembled from tracing spans.

The virtual-time workload is fully determined by the seed, so two runs
with the same seed must agree on every counter and digest; only the wall
clock may differ.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.bench.runner import LogDigest, make_result, timed
from repro.obs.exporters import MemorySink
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import assemble_spans
from repro.sim.harness import ExperimentConfig, build_experiment


def run_macro(protocol: str, duration_ms: float, cp: int,
              seed: int = 0, num_servers: int = 5,
              trace: bool = False) -> Dict[str, Any]:
    """One end-to-end run of ``protocol`` under the closed-loop workload.

    With ``trace=True`` the run carries full causal tracing and the result
    gains a ``phases`` block (commit-span phase durations); tracing adds
    overhead, so traced numbers are not comparable to untraced ones.
    """
    cfg = ExperimentConfig(protocol=protocol, num_servers=num_servers,
                           election_timeout_ms=100.0, one_way_ms=0.1,
                           seed=seed, initial_leader=1)
    registry: Optional[MetricsRegistry] = None
    sink: Optional[MemorySink] = None
    if trace:
        registry = MetricsRegistry()
        registry.enable_tracing()
        sink = MemorySink()
        registry.add_sink(sink)

    def run() -> Dict[str, Any]:
        exp = build_experiment(cfg, obs=registry)
        digest = LogDigest()
        exp.cluster.on_decided(
            lambda pid, idx, entry, now: digest.record(pid, idx, entry))
        client = exp.make_client(concurrent_proposals=cp)
        warmup_ms = 5 * cfg.election_timeout_ms
        exp.cluster.run_for(warmup_ms)
        start_events = exp.queue.processed
        start_decided = client.tracker.count
        exp.cluster.run_for(duration_ms)
        decided = client.tracker.count - start_decided
        events = exp.queue.processed - start_events
        out: Dict[str, Any] = {
            "events": events,
            "decided": decided,
            "counters": {
                "events_processed": exp.queue.processed,
                "messages_sent": exp.network.messages_sent,
                "decided_total": client.tracker.count,
                "proposals_sent": client.proposals_sent,
                "reproposals": client.reproposals,
                "decided_log_digest": digest.hexdigest(),
            },
            "decided_per_virtual_s": round(
                decided / (duration_ms / 1000.0), 1),
        }
        return out

    out, wall = timed(run)
    result = make_result(
        f"sim_{protocol}", wall, out["events"], out["counters"],
        extra={
            "decided_entries": out["decided"],
            "decided_per_virtual_s": out["decided_per_virtual_s"],
            "decided_per_wall_s": round(out["decided"] / wall, 1)
            if wall > 0 else 0.0,
        },
    )
    if trace and sink is not None:
        result["phases"] = _phase_breakdown(sink)
    return result


def _phase_breakdown(sink: MemorySink) -> Dict[str, Any]:
    """Commit-span phase durations from the run's tracing events."""
    spans = assemble_spans(sink.records)
    phases: Dict[str, Dict[str, float]] = {}
    totals: Dict[str, list] = {}
    for span in spans:
        if span.kind != "commit":
            continue
        for phase, duration in span.phase_durations():
            totals.setdefault(phase, []).append(duration)
    for phase, values in sorted(totals.items()):
        values.sort()
        phases[phase] = {
            "count": len(values),
            "mean_ms": round(sum(values) / len(values), 3),
            "p95_ms": round(values[int(0.95 * (len(values) - 1))], 3),
        }
    return phases


def run_macro_suite(budget: Dict[str, Any], seed: int = 0,
                    trace: bool = False) -> Dict[str, Dict[str, Any]]:
    """Run the macro bench for every protocol in the budget."""
    out: Dict[str, Dict[str, Any]] = {}
    for protocol in budget["macro_protocols"]:
        out[f"sim_{protocol}"] = run_macro(
            protocol,
            duration_ms=budget["macro_duration_ms"],
            cp=budget["macro_cp"],
            seed=seed,
            trace=trace,
        )
    return out
