"""End-to-end simulator throughput benchmarks, one per protocol.

Each macro bench builds a full experiment (cluster + closed-loop client),
runs it for a fixed stretch of *virtual* time, and reports:

- wall-clock events/sec — how fast the simulator chews through the run,
- decided entries (and decided/sec of virtual time) — protocol progress,
- a decided-log digest over every server's decided stream — the
  behavioural fingerprint that must survive any optimization, and
- optionally a per-phase commit breakdown assembled from tracing spans.

The virtual-time workload is fully determined by the seed, so two runs
with the same seed must agree on every counter and digest; only the wall
clock may differ.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Dict, List, Optional

from repro.bench.runner import LogDigest, make_result, timed
from repro.obs.exporters import MemorySink
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import assemble_spans
from repro.sim.harness import ExperimentConfig, build_experiment


def run_macro(protocol: str, duration_ms: float, cp: int,
              seed: int = 0, num_servers: int = 5,
              trace: bool = False) -> Dict[str, Any]:
    """One end-to-end run of ``protocol`` under the closed-loop workload.

    With ``trace=True`` the run carries full causal tracing and the result
    gains a ``phases`` block (commit-span phase durations); tracing adds
    overhead, so traced numbers are not comparable to untraced ones.
    """
    cfg = ExperimentConfig(protocol=protocol, num_servers=num_servers,
                           election_timeout_ms=100.0, one_way_ms=0.1,
                           seed=seed, initial_leader=1)
    registry: Optional[MetricsRegistry] = None
    sink: Optional[MemorySink] = None
    if trace:
        registry = MetricsRegistry()
        registry.enable_tracing()
        sink = MemorySink()
        registry.add_sink(sink)

    def run() -> Dict[str, Any]:
        exp = build_experiment(cfg, obs=registry)
        digest = LogDigest()
        exp.cluster.on_decided(
            lambda pid, idx, entry, now: digest.record(pid, idx, entry))
        client = exp.make_client(concurrent_proposals=cp)
        warmup_ms = 5 * cfg.election_timeout_ms
        exp.cluster.run_for(warmup_ms)
        start_events = exp.queue.processed
        start_decided = client.tracker.count
        exp.cluster.run_for(duration_ms)
        decided = client.tracker.count - start_decided
        events = exp.queue.processed - start_events
        out: Dict[str, Any] = {
            "events": events,
            "decided": decided,
            "counters": {
                "events_processed": exp.queue.processed,
                "messages_sent": exp.network.messages_sent,
                "decided_total": client.tracker.count,
                "proposals_sent": client.proposals_sent,
                "reproposals": client.reproposals,
                "decided_log_digest": digest.hexdigest(),
            },
            "decided_per_virtual_s": round(
                decided / (duration_ms / 1000.0), 1),
        }
        return out

    out, wall = timed(run)
    result = make_result(
        f"sim_{protocol}", wall, out["events"], out["counters"],
        extra={
            "decided_entries": out["decided"],
            "decided_per_virtual_s": out["decided_per_virtual_s"],
            "decided_per_wall_s": round(out["decided"] / wall, 1)
            if wall > 0 else 0.0,
        },
    )
    if trace and sink is not None:
        result["phases"] = _phase_breakdown(sink)
    return result


def _phase_breakdown(sink: MemorySink) -> Dict[str, Any]:
    """Commit-span phase durations from the run's tracing events."""
    spans = assemble_spans(sink.records)
    phases: Dict[str, Dict[str, float]] = {}
    totals: Dict[str, list] = {}
    for span in spans:
        if span.kind != "commit":
            continue
        for phase, duration in span.phase_durations():
            totals.setdefault(phase, []).append(duration)
    for phase, values in sorted(totals.items()):
        values.sort()
        phases[phase] = {
            "count": len(values),
            "mean_ms": round(sum(values) / len(values), 3),
            "p95_ms": round(values[int(0.95 * (len(values) - 1))], 3),
        }
    return phases


def run_macro_suite(budget: Dict[str, Any], seed: int = 0,
                    trace: bool = False) -> Dict[str, Dict[str, Any]]:
    """Run the macro bench for every protocol in the budget."""
    out: Dict[str, Dict[str, Any]] = {}
    for protocol in budget["macro_protocols"]:
        out[f"sim_{protocol}"] = run_macro(
            protocol,
            duration_ms=budget["macro_duration_ms"],
            cp=budget["macro_cp"],
            seed=seed,
            trace=trace,
        )
    return out


# ----------------------------------------------------------------------
# Runtime (real TCP) macro benches — PR 9.


def _free_ports(count: int) -> List[int]:
    """OS-assigned free ports (closed immediately; the tiny reuse race is
    far less flaky than fixed port numbers under a loaded machine)."""
    socks = [socket.socket() for _ in range(count)]
    try:
        for sock in socks:
            sock.bind(("127.0.0.1", 0))
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        return [sock.getsockname()[1] for sock in socks]
    finally:
        for sock in socks:
            sock.close()


def _build_runtime_replica(protocol: str, pid: int, servers: tuple,
                           seed: int) -> Any:
    if protocol == "omni":
        from repro.omni.server import (
            ClusterConfig, OmniPaxosConfig, OmniPaxosServer,
        )
        return OmniPaxosServer(OmniPaxosConfig(
            pid=pid, cluster=ClusterConfig(0, servers),
            hb_period_ms=50.0, initial_leader=servers[0]))
    if protocol == "raft":
        from repro.baselines.raft import RaftConfig, RaftReplica
        return RaftReplica(RaftConfig(
            pid=pid, voters=servers, election_timeout_ms=400.0,
            heartbeat_ms=50.0, seed=seed + pid,
            initial_leader=servers[0]))
    raise ValueError(f"runtime macro bench has no builder for {protocol!r}")


async def _runtime_macro_run(protocol: str, wire: str, n_entries: int,
                             payload_bytes: int, num_servers: int,
                             seed: int, tick_ms: float) -> Dict[str, Any]:
    from repro.omni.entry import Command
    from repro.runtime import PeerAddress, PipelineConfig, RuntimeNode

    servers = tuple(range(1, num_servers + 1))
    ports = _free_ports(num_servers)
    addrs = {p: PeerAddress(p, "127.0.0.1", ports[p - 1]) for p in servers}
    digest = LogDigest()
    decided_counts = {p: 0 for p in servers}
    all_decided = asyncio.Event()

    def make_handler(pid: int):
        def on_decided(idx: int, entry: Any) -> None:
            digest.record(pid, idx, entry)
            decided_counts[pid] += 1
            if all(c >= n_entries for c in decided_counts.values()):
                all_decided.set()
        return on_decided

    legacy = wire == "pickle"
    nodes = {}
    for p in servers:
        replica = _build_runtime_replica(protocol, p, servers, seed)
        nodes[p] = RuntimeNode(
            replica, addrs[p],
            {q: a for q, a in addrs.items() if q != p},
            tick_ms=tick_ms,
            on_decided=make_handler(p),
            wire=wire,
            # Legacy mode reproduces the pre-PR-9 wire path: one frame
            # per write (coalesce threshold 1 flushes every send) and no
            # admission pipeline — the "pickle baseline" of the compare.
            coalesce_bytes=1 if legacy else 32 * 1024,
            pipeline=None if legacy else PipelineConfig(),
        )
    for node in nodes.values():
        await node.start()
    try:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + 30.0
        leader_pid = servers[0]
        while loop.time() < deadline:
            if (all(n.leader_pid == leader_pid for n in nodes.values())
                    and all(len(n.connected_peers) == num_servers - 1
                            for n in nodes.values())):
                break
            await asyncio.sleep(0.01)
        else:
            raise RuntimeError(
                f"runtime bench: no stable leader for {protocol} in 30s")

        payload = b"x" * payload_bytes
        entries = [Command(data=payload, client_id=1, seq=i)
                   for i in range(n_entries)]
        leader = nodes[leader_pid]

        start = loop.time()
        if legacy:
            # Pre-PR-9 shape: per-entry propose, yielding regularly so
            # the event loop can drain sockets between proposals.
            for i, entry in enumerate(entries):
                leader.propose(entry)
                if i % 32 == 31:
                    await asyncio.sleep(0)
        else:
            leader.propose_batch(entries)
        await asyncio.wait_for(all_decided.wait(), timeout=120.0)
        wall = loop.time() - start
    finally:
        for node in nodes.values():
            await node.stop()

    return {
        "wall": wall,
        "counters": {
            "decided_per_server": min(decided_counts.values()),
            "num_servers": num_servers,
            "entries_proposed": n_entries,
            "decided_log_digest": digest.hexdigest(),
        },
    }


def run_runtime_macro(protocol: str = "omni", wire: str = "binary",
                      n_entries: int = 2_000, payload_bytes: int = 16,
                      num_servers: int = 3, seed: int = 0,
                      tick_ms: float = 5.0) -> Dict[str, Any]:
    """Decided throughput of a live TCP cluster on localhost.

    Boots ``num_servers`` :class:`~repro.runtime.node.RuntimeNode`
    processes-in-one-loop, waits for the seeded leader, proposes
    ``n_entries`` commands at it, and measures wall-clock from first
    proposal until *every* server has decided all of them. ``ops_per_sec``
    is therefore decided entries per second end-to-end over real sockets.

    ``wire="binary"`` runs the full PR-9 stack (binary codec, frame
    coalescing, pipelined admission); ``wire="pickle"`` reproduces the
    legacy path (pickle frames, one write per message, per-entry
    proposals). Both must produce byte-identical decided-log digests —
    the wire format may change how fast entries travel, never what gets
    decided where.
    """
    out = asyncio.run(_runtime_macro_run(
        protocol, wire, n_entries, payload_bytes, num_servers, seed,
        tick_ms))
    return make_result(
        f"runtime_{protocol}", out["wall"], n_entries, out["counters"],
        extra={"wire": wire},
    )


def run_runtime_suite(budget: Dict[str, Any], seed: int = 0,
                      wire: str = "binary") -> Dict[str, Dict[str, Any]]:
    """Run the runtime macro bench for every protocol in the budget."""
    out: Dict[str, Dict[str, Any]] = {}
    for protocol in budget["runtime_protocols"]:
        out[f"runtime_{protocol}"] = run_runtime_macro(
            protocol,
            wire=wire,
            n_entries=budget["runtime_entries"],
            payload_bytes=budget["runtime_payload_bytes"],
            seed=seed,
        )
    return out
