"""Queue/backpressure instrumentation and the commit critical-path profiler.

Two halves, both feeding :mod:`repro.obs.series`:

- **Queue-depth sampling** — :func:`sample_queue_depths` turns a
  ``{queue_name: depth}`` mapping into ``repro_queue_depth`` gauges plus
  :class:`~repro.obs.events.QueueDepthSampled` events. The staging points
  (sim event heap, network in-flight set, server/SP outboxes, TCP write
  queues) expose their depths via ``len()``/``queue_depths()`` accessors;
  the harness (:meth:`repro.sim.harness.Experiment.attach_series`) and the
  runtime tick loop call this helper on a fixed cadence. Everything is
  behind the caller's ``_obs_on``/enabled-registry guard, so digests stay
  identical when observability is off.

- **Critical-path attribution** — :func:`attribute_commit_paths` walks the
  commit spans assembled by :mod:`repro.obs.spans` (PR 2) and joins them
  with their originating client spans by trace id, splitting each decided
  entry's end-to-end latency into phases. By construction the phase
  durations sum *exactly* to the attributed path duration (consecutive
  milestone timestamps), so "slow" becomes "replicate-bound on p2" instead
  of a single opaque number.

Phase vocabulary (milestones available in the event stream):

``client_to_leader``
    ``ClientProposalSent`` → ``ProposalAppended``: client→leader transit
    plus the leader's append (the append itself is a single timestamp in
    both sim and runtime, so it folds into this phase's endpoint).
``replicate``
    ``ProposalAppended`` → ``QuorumAccepted``: fan-out of AcceptDecide,
    follower appends, and quorum gathering.
``apply``
    ``QuorumAccepted`` → ``EntryApplied``: decide propagation and apply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs.events import EventRecord, QueueDepthSampled
from repro.obs.spans import client_spans, commit_spans
from repro.util.compat import SLOTTED

# Canonical staging-point names; every QueueDepthSampled.queue is one of
# these (plus any future additions), so exporters and the timeline lane can
# enumerate them without guessing.
QUEUE_SIM_EVENTS = "sim_events"          #: sim EventQueue heap depth
QUEUE_NET_IN_FLIGHT = "net_in_flight"    #: SimNetwork scheduled deliveries
QUEUE_SERVER_OUTBOX = "server_outbox"    #: OmniPaxosServer envelope outbox
QUEUE_SP_OUTBOX = "sp_outbox"            #: Sequence Paxos message outbox
QUEUE_SP_PENDING = "sp_pending"          #: proposals buffered pre-accept
QUEUE_TCP_WRITE = "tcp_write"            #: TCP transport write-buffer bytes
QUEUE_TCP_RECONNECT = "tcp_reconnect"    #: peers awaiting redial

QUEUE_NAMES: Tuple[str, ...] = (
    QUEUE_SIM_EVENTS, QUEUE_NET_IN_FLIGHT, QUEUE_SERVER_OUTBOX,
    QUEUE_SP_OUTBOX, QUEUE_SP_PENDING, QUEUE_TCP_WRITE, QUEUE_TCP_RECONNECT,
)

#: Attribution phases in causal order.
PHASES: Tuple[str, ...] = ("client_to_leader", "replicate", "apply")


def sample_queue_depths(registry, depths: Mapping[str, int],
                        pid: Optional[int] = None,
                        last: Optional[Dict[str, int]] = None) -> None:
    """Publish one sampling round of queue depths: a ``repro_queue_depth``
    gauge per queue (labelled by ``pid`` when server-scoped) plus a
    :class:`QueueDepthSampled` event per queue for the series engine, the
    flight recorder's depth lane, and the timeline's backlog lane.

    ``last`` is an optional caller-held memo of the previous round's
    depths: when given, unchanged depths are skipped (delta compression),
    so an idle queue costs one emission when it settles instead of one per
    tick. The gauge keeps its prior value, a window with no sample simply
    omits that ``queue:*:max`` family, and the flight recorder's depth lane
    records transitions instead of a constant hum."""
    for queue in sorted(depths):
        depth = int(depths[queue])
        if last is not None:
            if last.get(queue) == depth:
                continue
            last[queue] = depth
        if pid is None:
            registry.gauge("repro_queue_depth", queue=queue).set(depth)
        else:
            registry.gauge("repro_queue_depth", pid=pid,
                           queue=queue).set(depth)
        registry.emit(QueueDepthSampled(queue=queue, depth=depth, pid=pid))


@dataclass(frozen=True, **SLOTTED)
class PathAttribution:
    """One decided entry's latency split into causally ordered phases.

    ``phases`` is ``((name, duration_ms), ...)``; the durations sum exactly
    to ``total_ms`` because each is the difference of consecutive milestone
    timestamps. ``pid`` is the leader that appended the entry."""

    trace_id: str
    pid: int
    start_ms: float
    end_ms: float
    phases: Tuple[Tuple[str, float], ...]
    entries: int = 1

    @property
    def total_ms(self) -> float:
        return self.end_ms - self.start_ms

    @property
    def dominant_phase(self) -> str:
        if not self.phases:
            return ""
        return max(self.phases, key=lambda item: (item[1], item[0]))[0]

    def phase_ms(self, name: str) -> float:
        return sum(d for n, d in self.phases if n == name)


def attribute_commit_paths(events: Iterable[EventRecord]) -> List[PathAttribution]:
    """Walk assembled commit spans and attribute each one's latency.

    Requires a traced export (``MetricsRegistry.tracing`` on during the
    run); without the tracing events there are no commit spans and the
    result is empty. When the matching client span is present and starts
    no later than the append, the attribution is extended backwards to
    cover the ``client_to_leader`` phase; otherwise it starts at the
    append milestone with ``replicate`` as the first phase."""
    events = list(events)
    commits = commit_spans(events)
    clients = {span.trace_id: span for span in client_spans(events)
               if span.trace_id}
    out: List[PathAttribution] = []
    for span in commits:
        phases: List[Tuple[str, float]] = []
        start = span.start_ms
        client = clients.get(span.trace_id) if span.trace_id else None
        if client is not None and client.start_ms <= span.start_ms:
            phases.append(("client_to_leader", span.start_ms - client.start_ms))
            start = client.start_ms
        phases.extend(span.phase_durations())
        out.append(PathAttribution(
            trace_id=span.trace_id, pid=span.pid if span.pid is not None else -1,
            start_ms=start, end_ms=span.end_ms, phases=tuple(phases),
            entries=int(span.attr("entries", 1) or 1),
        ))
    return out


def phase_totals(attributions: Iterable[PathAttribution]) -> Dict[str, float]:
    """Total milliseconds spent per phase across attributions."""
    totals: Dict[str, float] = {}
    for attribution in attributions:
        for name, duration in attribution.phases:
            totals[name] = totals.get(name, 0.0) + duration
    return totals


def dominant_phase(attributions: Sequence[PathAttribution]) -> str:
    """The phase with the largest aggregate share, or ``""`` if empty."""
    totals = phase_totals(attributions)
    if not totals:
        return ""
    return max(totals.items(), key=lambda item: (item[1], item[0]))[0]


def attributions_by_window(attributions: Iterable[PathAttribution],
                           window_ms: float,
                           start_ms: float = 0.0) -> Dict[int, List[PathAttribution]]:
    """Bucket attributions into fixed windows by *completion* time (the
    entry's apply milestone), matching the series engine's half-open
    ``[start, end)`` windows."""
    buckets: Dict[int, List[PathAttribution]] = {}
    for attribution in attributions:
        if attribution.end_ms < start_ms:
            continue
        index = int((attribution.end_ms - start_ms) // window_ms)
        buckets.setdefault(index, []).append(attribution)
    return buckets


def dominant_phase_by_window(attributions: Iterable[PathAttribution],
                             window_ms: float,
                             start_ms: float = 0.0) -> Dict[int, str]:
    """Per-window dominant phase — the headline of the latency anatomy."""
    return {
        index: dominant_phase(bucket)
        for index, bucket in attributions_by_window(
            attributions, window_ms, start_ms).items()
    }


def describe_dominant(attributions: Sequence[PathAttribution]) -> str:
    """One-line human verdict, e.g. ``replicate-bound (72% of 3.1ms mean
    path) across 240 commits on p1``."""
    attributions = list(attributions)
    if not attributions:
        return "no attributed commits"
    totals = phase_totals(attributions)
    grand = sum(totals.values())
    name = dominant_phase(attributions)
    share = totals[name] / grand if grand else 0.0
    mean_ms = grand / len(attributions)
    leaders = sorted({a.pid for a in attributions})
    where = f"p{leaders[0]}" if len(leaders) == 1 else \
        "p" + "/p".join(str(p) for p in leaders)
    return (f"{name}-bound ({share:.0%} of {mean_ms:.2f}ms mean path) "
            f"across {len(attributions)} commits on {where}")
