"""Windowed time-series engine: fixed-width windows over the event stream.

End-of-run aggregates cannot tell a 10-second stall apart from a uniformly
slow run. This module chops a run into fixed-width windows (sim-time in the
simulator, wall-time in the TCP runtime) and computes per-window metric
*families* — throughput rates, commit-latency percentiles, BLE round
jitter, queue-depth maxima, per-phase latency means — that diff cleanly
across runs.

Two ways to build a series:

- :func:`series_from_events` — post-hoc, from any export's event records.
  This is what ``repro-obs series`` / ``repro-obs diff`` use, so two
  same-seed exports produce *identical* windows.
- :class:`SeriesCollector` — live, attached as a registry sink plus a
  periodic ``sample()`` driver (see ``Experiment.attach_series`` and
  ``RuntimeNode.attach_series``). On top of the event-derived families it
  snapshots every registered HDR histogram at window boundaries and
  rank-scans the bucket *delta* for per-window percentiles
  (``hist:<name>:p95``), and turns counter deltas into rates
  (``rate:<name>``) — windowed views of the existing MetricsRegistry
  instruments, not a parallel metrics system.

Window values are flat ``{family: float}`` maps with stable string keys
(``commit_ms:p95``, ``queue:sp_outbox:max``) so window alignment and family
matching in :func:`diff_series` are dictionary operations. Windows are
half-open ``[start, end)`` and anchored at ``start_ms`` (default 0.0), so
two runs of the same scenario align by window index.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import (Any, Dict, Iterable, List, Mapping, Optional, Sequence,
                    Tuple)

from repro.errors import ConfigError
from repro.obs import prof
from repro.obs.events import (ClientProposalSent, ClientReplyDecided,
                              EventRecord, HeartbeatViewReported,
                              QueueDepthSampled)
from repro.obs.registry import Counter, Histogram, quantile_from_counts

#: Families where larger is better; everything else (latencies, depths,
#: jitter) regresses upward.
RATE_FAMILIES: Tuple[str, ...] = ("decided_per_s", "proposal_per_s")

#: Magnitude ramp for sparklines (space = no data / zero).
SPARK_RAMP = " .:-=+*#@"

_PCTS: Tuple[Tuple[str, float], ...] = (("p50", 0.50), ("p95", 0.95),
                                        ("p99", 0.99))


def higher_is_better(family: str) -> bool:
    return family in RATE_FAMILIES or family.startswith("rate:")


@dataclass(frozen=True)
class SeriesWindow:
    """One fixed-width window: ``[start_ms, end_ms)`` plus its families."""

    index: int
    start_ms: float
    end_ms: float
    values: Dict[str, float] = field(default_factory=dict)
    #: Dominant critical-path phase for commits completing in this window
    #: ("" when the export was not traced or the window saw no commits).
    dominant_phase: str = ""

    @property
    def width_ms(self) -> float:
        return self.end_ms - self.start_ms

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "values": dict(self.values),
            "dominant_phase": self.dominant_phase,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SeriesWindow":
        try:
            return cls(
                index=int(payload["index"]),
                start_ms=float(payload["start_ms"]),
                end_ms=float(payload["end_ms"]),
                values={str(k): float(v)
                        for k, v in dict(payload.get("values", {})).items()},
                dominant_phase=str(payload.get("dominant_phase", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed series window record: {exc}") from exc


def _pct(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def series_from_events(events: Iterable[EventRecord], window_ms: float,
                       start_ms: float = 0.0,
                       end_ms: Optional[float] = None) -> List[SeriesWindow]:
    """Build the windowed series from raw event records.

    Events are bucketed by their own timestamps, so out-of-order records
    (reordered delivery, merged exports) land in the right window; events
    before ``start_ms`` are ignored. Windows are half-open ``[s, e)``: a
    record at exactly a boundary belongs to the *next* window. Empty
    windows are emitted (rates 0.0, percentile families absent) so stalls
    are visible instead of silently elided."""
    if window_ms <= 0:
        raise ConfigError("window_ms must be positive")
    events = [rec for rec in events if rec.at_ms >= start_ms]
    if not events and end_ms is None:
        return []
    if end_ms is not None:
        # end_ms is authoritative in both directions: it extends the grid
        # past the last event (trailing empty windows) AND clips records
        # beyond it (so a partial tail window isn't silently added).
        events = [rec for rec in events if rec.at_ms < end_ms]
        last_ms = end_ms - 1e-9
    else:
        last_ms = max(rec.at_ms for rec in events)
    n_windows = int((last_ms - start_ms) // window_ms) + 1
    if n_windows <= 0:
        return []

    decided = [0] * n_windows
    proposed = [0] * n_windows
    jitter: List[List[float]] = [[] for _ in range(n_windows)]
    depths: List[Dict[str, int]] = [{} for _ in range(n_windows)]
    saw_proposals = saw_heartbeats = False
    for rec in events:
        idx = int((rec.at_ms - start_ms) // window_ms)
        if idx >= n_windows:
            continue
        ev = rec.event
        if isinstance(ev, ClientReplyDecided):
            decided[idx] += 1
        elif isinstance(ev, ClientProposalSent):
            saw_proposals = True
            proposed[idx] += ev.count
        elif isinstance(ev, HeartbeatViewReported):
            saw_heartbeats = True
            jitter[idx].append(abs(ev.jitter_ms))
        elif isinstance(ev, QueueDepthSampled):
            bucket = depths[idx]
            if ev.depth > bucket.get(ev.queue, -1):
                bucket[ev.queue] = ev.depth

    attributions = prof.attribute_commit_paths(events)
    by_window = prof.attributions_by_window(attributions, window_ms, start_ms)

    window_s = window_ms / 1000.0
    out: List[SeriesWindow] = []
    for idx in range(n_windows):
        values: Dict[str, float] = {
            "decided_per_s": decided[idx] / window_s,
        }
        if saw_proposals:
            values["proposal_per_s"] = proposed[idx] / window_s
        if saw_heartbeats and jitter[idx]:
            values["ble_jitter_ms:mean"] = (
                sum(jitter[idx]) / len(jitter[idx]))
        for queue, depth in depths[idx].items():
            values[f"queue:{queue}:max"] = float(depth)
        bucket = by_window.get(idx, [])
        dominant = ""
        if bucket:
            totals = sorted(a.total_ms for a in bucket)
            for suffix, q in _PCTS:
                values[f"commit_ms:{suffix}"] = _pct(totals, q)
            for phase in prof.PHASES:
                durations = [a.phase_ms(phase) for a in bucket
                             if any(n == phase for n, _ in a.phases)]
                if durations:
                    values[f"phase_ms:{phase}:mean"] = (
                        sum(durations) / len(durations))
            dominant = prof.dominant_phase(bucket)
        out.append(SeriesWindow(
            index=idx,
            start_ms=start_ms + idx * window_ms,
            end_ms=start_ms + (idx + 1) * window_ms,
            values=values,
            dominant_phase=dominant,
        ))
    return out


class SeriesCollector:
    """Live windowed aggregation: a registry sink plus a ``sample()`` hook.

    Attach with ``registry.add_sink(collector)`` so every emitted event is
    captured, then call :meth:`sample` on a fixed cadence (the sim harness
    schedules it on the event queue; the runtime calls it from the tick
    loop). Each ``sample()`` that crosses a window boundary snapshots every
    registered HDR histogram and counter and diffs against the previous
    boundary, yielding *per-window* percentiles (``hist:<name>:p95``) and
    rates (``rate:<name>``). Event-derived families are computed over the
    retained event stream at :meth:`finish` with post-hoc semantics, so a
    commit span that straddles a window boundary is still attributed to
    the window its apply lands in — live and post-hoc series agree.

    The collector consumes no randomness and only *reads* protocol state,
    so decided-log digests are byte-identical with it attached."""

    def __init__(self, registry, window_ms: float, start_ms: float = 0.0):
        if window_ms <= 0:
            raise ConfigError("window_ms must be positive")
        self._registry = registry
        self.window_ms = float(window_ms)
        self.start_ms = float(start_ms)
        self._next_end = self.start_ms + self.window_ms
        self._events: List[EventRecord] = []
        self._counter_prev: Dict[str, float] = {}
        self._hist_prev: Dict[str, Tuple[int, ...]] = {}
        #: hist:/rate: families per closed window index.
        self._registry_values: List[Dict[str, float]] = []
        self.windows: List[SeriesWindow] = []

    # -- sink protocol ------------------------------------------------------
    def record(self, rec: EventRecord) -> None:
        self._events.append(rec)

    @property
    def closed_windows(self) -> int:
        return len(self._registry_values)

    # -- windowing ----------------------------------------------------------
    def sample(self, now_ms: float) -> None:
        """Close every window whose end ``now_ms`` has reached. Drive this
        at least once per window width so histogram/counter deltas stay
        aligned with the window grid."""
        while now_ms >= self._next_end:
            self._close_registry_window()

    def finish(self, now_ms: Optional[float] = None) -> List[SeriesWindow]:
        """Flush through ``now_ms`` (or the last recorded event), build the
        event-derived families post-hoc, merge in the per-window registry
        families, and return the full series."""
        target = self.start_ms
        if self._events:
            target = max(rec.at_ms for rec in self._events)
        if now_ms is not None:
            target = max(target, now_ms)
        self.sample(target)
        if target > self.start_ms + self.closed_windows * self.window_ms:
            self._close_registry_window()  # trailing partial window
        closed = self.closed_windows
        if not closed:
            self.windows = []
            return self.windows
        end_ms = self.start_ms + closed * self.window_ms
        built = series_from_events(self._events, self.window_ms,
                                   start_ms=self.start_ms, end_ms=end_ms)
        for window in built:
            if window.index < len(self._registry_values):
                window.values.update(self._registry_values[window.index])
        self.windows = built
        return self.windows

    def _close_registry_window(self) -> None:
        end = self._next_end
        window_s = self.window_ms / 1000.0
        values: Dict[str, float] = {}
        hist_sums: Dict[str, List[int]] = {}
        hist_bounds: Dict[str, Tuple[float, ...]] = {}
        hist_max: Dict[str, float] = {}
        counter_sums: Dict[str, float] = {}
        for metric in self._registry.metrics():
            if isinstance(metric, Histogram):
                snap = metric.bucket_snapshot()
                agg = hist_sums.get(metric.name)
                if agg is None:
                    hist_sums[metric.name] = list(snap)
                    hist_bounds[metric.name] = metric.bounds
                else:
                    for i, n in enumerate(snap):
                        agg[i] += n
                if metric.max is not None:
                    hist_max[metric.name] = max(
                        hist_max.get(metric.name, 0.0), metric.max)
            elif isinstance(metric, Counter):
                counter_sums[metric.name] = (
                    counter_sums.get(metric.name, 0.0) + metric.value)
        for name, counts in hist_sums.items():
            prev = self._hist_prev.get(name)
            delta = [n - (prev[i] if prev else 0)
                     for i, n in enumerate(counts)]
            self._hist_prev[name] = tuple(counts)
            if sum(delta) <= 0:
                continue
            for suffix, q in _PCTS:
                values[f"hist:{name}:{suffix}"] = quantile_from_counts(
                    hist_bounds[name], delta, q, fallback=hist_max.get(name))
        for name, total in counter_sums.items():
            prev = self._counter_prev.get(name, 0.0)
            self._counter_prev[name] = total
            values[f"rate:{name}"] = (total - prev) / window_s
        self._registry_values.append(values)
        self._publish_gauges(end, values)
        self._next_end = end + self.window_ms

    def _publish_gauges(self, end_ms: float, values: Mapping[str, float]) -> None:
        """Mirror the latest closed window into gauges so a Prometheus
        scrape (or ``repro-obs report``) sees the most recent window."""
        start = end_ms - self.window_ms
        decided = sum(
            1 for rec in self._events
            if start <= rec.at_ms < end_ms
            and isinstance(rec.event, ClientReplyDecided))
        gauge = self._registry.gauge("repro_series_window",
                                     family="decided_per_s")
        gauge.set(decided / (self.window_ms / 1000.0))
        key = "hist:repro_propose_decide_latency_ms:p95"
        if key in values:
            self._registry.gauge("repro_series_window",
                                 family="commit_ms:p95").set(values[key])


# --------------------------------------------------------------------------
# Export / import ("series" JSON-lines records alongside events + metrics)
# --------------------------------------------------------------------------


def series_to_jsonl(windows: Iterable[SeriesWindow]) -> List[str]:
    """One sorted-key JSON line per window, tagged ``"t": "series"`` —
    same framing as :class:`~repro.obs.exporters.JsonLinesSink` lines."""
    out = []
    for window in windows:
        payload = window.to_dict()
        payload["t"] = "series"
        out.append(json.dumps(payload, sort_keys=True, separators=(",", ":")))
    return out


def read_series(source: Iterable[str]) -> List[SeriesWindow]:
    """Parse the ``"t": "series"`` lines out of a JSON-lines export
    (other record tags are ignored; see ``exporters.read_jsonl`` for the
    event/metric halves)."""
    windows: List[SeriesWindow] = []
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"line {lineno}: not valid JSON: {exc}") from exc
        if isinstance(payload, dict) and payload.get("t") == "series":
            windows.append(SeriesWindow.from_dict(payload))
    windows.sort(key=lambda w: w.index)
    return windows


# --------------------------------------------------------------------------
# Sparklines
# --------------------------------------------------------------------------


def sparkline(values: Sequence[Optional[float]],
              peak: Optional[float] = None) -> str:
    """Peak-normalized magnitude ramp; ``None`` renders as a gap."""
    present = [v for v in values if v is not None]
    top = peak if peak is not None else (max(present) if present else 0.0)
    cells = []
    for v in values:
        if v is None:
            cells.append(" ")
        elif top <= 0 or v <= 0:
            cells.append(SPARK_RAMP[0] if v is not None else " ")
        else:
            level = int((min(v, top) / top) * (len(SPARK_RAMP) - 1))
            cells.append(SPARK_RAMP[max(1, level)])
    return "".join(cells)


def series_lanes(windows: Sequence[SeriesWindow],
                 families: Optional[Sequence[str]] = None,
                 label_width: int = 22) -> List[str]:
    """Render one sparkline lane per family plus a dominant-phase lane.

    Default family selection: throughput, commit p95, worst queue, jitter —
    the lanes that answer "when did it stall and why"."""
    if not windows:
        return ["(no windows)"]
    if families is None:
        seen: Dict[str, bool] = {}
        for window in windows:
            for key in window.values:
                seen[key] = True
        families = [f for f in ("decided_per_s", "proposal_per_s",
                                "commit_ms:p95", "ble_jitter_ms:mean")
                    if f in seen]
        families += sorted(k for k in seen if k.startswith("queue:"))
    lines = []
    for family in families:
        vals = [w.values.get(family) for w in windows]
        present = [v for v in vals if v is not None]
        if not present:
            continue
        lane = sparkline(vals)
        lines.append(f"{family:<{label_width}s}|{lane}| "
                     f"min={min(present):.3g} max={max(present):.3g}")
    phases = [w.dominant_phase for w in windows]
    if any(phases):
        lane = "".join(p[0] if p else " " for p in phases)
        lines.append(f"{'dominant phase':<{label_width}s}|{lane}| "
                     "(c=client_to_leader r=replicate a=apply)")
    return lines


# --------------------------------------------------------------------------
# Diffing two series
# --------------------------------------------------------------------------

VERDICT_REGRESSED = "regressed"
VERDICT_IMPROVED = "improved"
VERDICT_UNCHANGED = "unchanged"
VERDICT_ADDED = "added"
VERDICT_REMOVED = "removed"


@dataclass(frozen=True)
class FamilyDelta:
    """Verdict for one metric family across two aligned runs."""

    family: str
    verdict: str
    before_mean: float
    after_mean: float
    #: Signed relative change of the mean (after vs before).
    change: float
    #: Index of the window with the worst deviation (bad direction only).
    worst_window: Optional[int] = None
    #: Contiguous run of bad windows containing ``worst_window``.
    window_range: Optional[Tuple[int, int]] = None
    #: ``window_range`` in milliseconds.
    range_ms: Optional[Tuple[float, float]] = None


@dataclass(frozen=True)
class SeriesDiff:
    """All family verdicts plus the overall call."""

    families: Tuple[FamilyDelta, ...]
    threshold: float

    @property
    def regressed(self) -> Tuple[FamilyDelta, ...]:
        return tuple(f for f in self.families
                     if f.verdict == VERDICT_REGRESSED)

    @property
    def verdict(self) -> str:
        if self.regressed:
            return VERDICT_REGRESSED
        if any(f.verdict == VERDICT_IMPROVED for f in self.families):
            return VERDICT_IMPROVED
        return VERDICT_UNCHANGED

    @property
    def regressed_phases(self) -> Tuple[str, ...]:
        """Phases cited by regressed ``phase_ms:*`` families, worst first."""
        hits = [f for f in self.regressed
                if f.family.startswith("phase_ms:")]
        hits.sort(key=lambda f: -abs(f.change))
        return tuple(f.family.split(":")[1] for f in hits)


def diff_series(before: Sequence[SeriesWindow],
                after: Sequence[SeriesWindow],
                threshold: float = 0.10) -> SeriesDiff:
    """Align two window sequences by index and judge every family.

    Both series must use the same window width (they align by index, which
    only means anything on a shared grid). A family regresses when its
    mean moves beyond ``threshold`` in the bad direction — higher for
    latency/depth families, lower for rate families — and the verdict
    carries the contiguous window range around the worst deviation so the
    regression is *localized*, not just detected."""
    if before and after:
        w_before = before[0].width_ms
        w_after = after[0].width_ms
        if abs(w_before - w_after) > 1e-9:
            raise ConfigError(
                f"window widths differ ({w_before:g}ms vs {w_after:g}ms); "
                "rebuild both series with the same --window-ms")
    families: Dict[str, bool] = {}
    for windows in (before, after):
        for window in windows:
            for key in window.values:
                families[key] = True

    deltas: List[FamilyDelta] = []
    for family in sorted(families):
        b_vals = [w.values.get(family) for w in before]
        a_vals = [w.values.get(family) for w in after]
        b_present = [v for v in b_vals if v is not None]
        a_present = [v for v in a_vals if v is not None]
        if not b_present or not a_present:
            deltas.append(FamilyDelta(
                family=family,
                verdict=VERDICT_REMOVED if b_present else VERDICT_ADDED,
                before_mean=sum(b_present) / len(b_present) if b_present else 0.0,
                after_mean=sum(a_present) / len(a_present) if a_present else 0.0,
                change=0.0))
            continue
        b_mean = sum(b_present) / len(b_present)
        a_mean = sum(a_present) / len(a_present)
        denom = max(abs(b_mean), 1e-9)
        change = (a_mean - b_mean) / denom
        better = higher_is_better(family)
        bad = change < -threshold if better else change > threshold
        good = change > threshold if better else change < -threshold
        if abs(b_mean) < 1e-12 and abs(a_mean) < 1e-12:
            bad = good = False
        worst = worst_dev = None
        bad_windows: List[int] = []
        if bad:
            for i in range(min(len(b_vals), len(a_vals))):
                b, a = b_vals[i], a_vals[i]
                if b is None or a is None:
                    continue
                dev = (a - b) / max(abs(b), denom)
                if better:
                    dev = -dev
                if dev > threshold:
                    bad_windows.append(i)
                    if worst_dev is None or dev > worst_dev:
                        worst_dev, worst = dev, i
        window_range = range_ms = None
        if worst is not None:
            lo = hi = worst
            bad_set = set(bad_windows)
            while lo - 1 in bad_set:
                lo -= 1
            while hi + 1 in bad_set:
                hi += 1
            window_range = (lo, hi)
            grid = after if after else before
            width = grid[0].width_ms
            start0 = grid[0].start_ms
            range_ms = (start0 + lo * width, start0 + (hi + 1) * width)
        deltas.append(FamilyDelta(
            family=family,
            verdict=(VERDICT_REGRESSED if bad else
                     VERDICT_IMPROVED if good else VERDICT_UNCHANGED),
            before_mean=b_mean, after_mean=a_mean, change=change,
            worst_window=worst, window_range=window_range,
            range_ms=range_ms))
    return SeriesDiff(families=tuple(deltas), threshold=threshold)


def render_diff(diff: SeriesDiff) -> List[str]:
    """The verdict table plus the overall call and phase citation."""
    lines = [f"{'family':<28s} {'before':>12s} {'after':>12s} "
             f"{'change':>9s}  verdict"]
    for fd in diff.families:
        where = ""
        if fd.window_range is not None and fd.range_ms is not None:
            lo, hi = fd.window_range
            lo_ms, hi_ms = fd.range_ms
            where = (f"  windows {lo}..{hi} "
                     f"({lo_ms:.0f}..{hi_ms:.0f} ms)")
        change = (f"{fd.change:>+8.1%}" if abs(fd.change) < 10.0
                  else f"{'+' if fd.change > 0 else '-'}>999%".rjust(8))
        lines.append(
            f"{fd.family:<28s} {fd.before_mean:>12.4g} {fd.after_mean:>12.4g} "
            f"{change}  {fd.verdict}{where}")
    summary = f"verdict: {diff.verdict}"
    if diff.regressed:
        summary += f" ({len(diff.regressed)} families)"
        phases = diff.regressed_phases
        if phases:
            summary += f"; dominant regressed phase: {phases[0]}"
    lines.append(summary)
    return lines
