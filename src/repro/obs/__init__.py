"""Unified observability: structured protocol events + a metrics registry.

Every layer of the reproduction — the simulator harness, the live asyncio
runtime, Omni-Paxos itself, and the three baselines — publishes into the
same two channels:

- **structured events** (:mod:`repro.obs.events`): typed records such as
  :class:`~repro.obs.events.BallotElected` or
  :class:`~repro.obs.events.StopSignDecided`, emitted through
  :meth:`MetricsRegistry.emit` and fanned out to pluggable sinks,
- **metrics** (:mod:`repro.obs.registry`): named counters, gauges, and
  HDR-style histograms, keyed by label sets.

The registry is *zero-overhead when disabled*: protocol components hold a
shared no-op registry by default (``enabled`` is ``False``), and every
emission site is guarded by that single attribute check, so uninstrumented
runs pay one boolean test on the cold transitions and nothing on the hot
paths.

Typical use::

    from repro.obs import MemorySink, MetricsRegistry
    from repro.sim.harness import ExperimentConfig, build_experiment

    obs = MetricsRegistry()
    sink = MemorySink()
    obs.add_sink(sink)
    exp = build_experiment(ExperimentConfig(protocol="omni"), obs=obs)
    ...run...
    sink.kinds()                       # which events occurred
    obs.counter_value("repro_decided_entries_total", pid=3)

See ``docs/OBSERVABILITY.md`` for the full event vocabulary, the exporter
formats, and overhead notes.
"""

from repro.obs.events import (
    BallotBumped,
    BallotElected,
    ClientProposalSent,
    ClientReplyDecided,
    EntryApplied,
    EventRecord,
    MigrationCompleted,
    MigrationDonorPicked,
    MigrationSegmentReceived,
    ProposalAppended,
    ProtocolEvent,
    QCFlagChanged,
    QueueDepthSampled,
    QuorumAccepted,
    RecoveryCompleted,
    RecoveryStarted,
    RoleChanged,
    SessionDropped,
    StopSignDecided,
    event_from_dict,
    event_to_dict,
)
from repro.obs.prof import (
    PathAttribution,
    attribute_commit_paths,
    dominant_phase_by_window,
    sample_queue_depths,
)
from repro.obs.series import (
    SeriesCollector,
    SeriesWindow,
    diff_series,
    read_series,
    render_diff,
    series_from_events,
    series_lanes,
)
from repro.obs.exporters import (
    JsonLinesSink,
    MemorySink,
    read_jsonl,
    render_prometheus,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Instrumented,
    MetricsRegistry,
)
from repro.obs.report import RunReport, summarize_run
from repro.obs.spans import (
    SPAN_KINDS,
    Span,
    TraceContext,
    assemble_spans,
    entry_trace_id,
    observe_span_histograms,
    span_quantile,
)
from repro.obs.timeline import render_spans, render_timeline

__all__ = [
    "BallotBumped",
    "BallotElected",
    "ClientProposalSent",
    "ClientReplyDecided",
    "Counter",
    "EntryApplied",
    "EventRecord",
    "Gauge",
    "Histogram",
    "Instrumented",
    "JsonLinesSink",
    "MemorySink",
    "MetricsRegistry",
    "MigrationCompleted",
    "MigrationDonorPicked",
    "MigrationSegmentReceived",
    "NULL_REGISTRY",
    "ProposalAppended",
    "PathAttribution",
    "ProtocolEvent",
    "QCFlagChanged",
    "QueueDepthSampled",
    "QuorumAccepted",
    "RecoveryCompleted",
    "RecoveryStarted",
    "RoleChanged",
    "RunReport",
    "SPAN_KINDS",
    "SeriesCollector",
    "SeriesWindow",
    "SessionDropped",
    "Span",
    "StopSignDecided",
    "TraceContext",
    "assemble_spans",
    "attribute_commit_paths",
    "diff_series",
    "dominant_phase_by_window",
    "entry_trace_id",
    "event_from_dict",
    "event_to_dict",
    "observe_span_histograms",
    "read_jsonl",
    "read_series",
    "render_diff",
    "render_prometheus",
    "render_spans",
    "render_timeline",
    "sample_queue_depths",
    "series_from_events",
    "series_lanes",
    "span_quantile",
    "summarize_run",
]
