"""Unified observability: structured protocol events + a metrics registry.

Every layer of the reproduction — the simulator harness, the live asyncio
runtime, Omni-Paxos itself, and the three baselines — publishes into the
same two channels:

- **structured events** (:mod:`repro.obs.events`): typed records such as
  :class:`~repro.obs.events.BallotElected` or
  :class:`~repro.obs.events.StopSignDecided`, emitted through
  :meth:`MetricsRegistry.emit` and fanned out to pluggable sinks,
- **metrics** (:mod:`repro.obs.registry`): named counters, gauges, and
  HDR-style histograms, keyed by label sets.

The registry is *zero-overhead when disabled*: protocol components hold a
shared no-op registry by default (``enabled`` is ``False``), and every
emission site is guarded by that single attribute check, so uninstrumented
runs pay one boolean test on the cold transitions and nothing on the hot
paths.

Typical use::

    from repro.obs import MemorySink, MetricsRegistry
    from repro.sim.harness import ExperimentConfig, build_experiment

    obs = MetricsRegistry()
    sink = MemorySink()
    obs.add_sink(sink)
    exp = build_experiment(ExperimentConfig(protocol="omni"), obs=obs)
    ...run...
    sink.kinds()                       # which events occurred
    obs.counter_value("repro_decided_entries_total", pid=3)

See ``docs/OBSERVABILITY.md`` for the full event vocabulary, the exporter
formats, and overhead notes.
"""

from repro.obs.events import (
    BallotBumped,
    BallotElected,
    ClientReplyDecided,
    EventRecord,
    MigrationCompleted,
    MigrationDonorPicked,
    ProtocolEvent,
    QCFlagChanged,
    RoleChanged,
    SessionDropped,
    StopSignDecided,
    event_from_dict,
    event_to_dict,
)
from repro.obs.exporters import (
    JsonLinesSink,
    MemorySink,
    read_jsonl,
    render_prometheus,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Instrumented,
    MetricsRegistry,
)
from repro.obs.report import RunReport, summarize_run

__all__ = [
    "BallotBumped",
    "BallotElected",
    "ClientReplyDecided",
    "Counter",
    "EventRecord",
    "Gauge",
    "Histogram",
    "Instrumented",
    "JsonLinesSink",
    "MemorySink",
    "MetricsRegistry",
    "MigrationCompleted",
    "MigrationDonorPicked",
    "NULL_REGISTRY",
    "ProtocolEvent",
    "QCFlagChanged",
    "RoleChanged",
    "RunReport",
    "SessionDropped",
    "StopSignDecided",
    "event_from_dict",
    "event_to_dict",
    "read_jsonl",
    "render_prometheus",
    "summarize_run",
]
