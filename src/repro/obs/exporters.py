"""Pluggable exporters for the observability layer.

Three sinks/renderers cover the evaluation workflows:

- :class:`MemorySink` — in-memory event store with the filters tests and
  benchmarks need (by kind, by time window),
- :class:`JsonLinesSink` — streams events to a ``.jsonl`` file and appends
  a metrics snapshot on close; :func:`read_jsonl` round-trips the file for
  the ``repro-obs`` report CLI,
- :func:`render_prometheus` — Prometheus text exposition format
  (counters, gauges, histograms with cumulative ``_bucket`` series), for
  scraping a live :class:`~repro.runtime.node.RuntimeNode`.

Sinks implement a single method ``record(EventRecord)`` — anything with
that shape can be registered via ``MetricsRegistry.add_sink``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, List, Optional, Tuple, Union

from repro.errors import ConfigError
from repro.obs.events import EventRecord, event_from_dict, event_to_dict
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry


class MemorySink:
    """Keeps every event record in memory for querying."""

    def __init__(self) -> None:
        self.records: List[EventRecord] = []

    def record(self, record: EventRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def kinds(self) -> Tuple[str, ...]:
        """Distinct event kinds observed, in first-seen order."""
        return tuple(dict.fromkeys(r.event.kind for r in self.records))

    def by_kind(self, kind: str) -> List[EventRecord]:
        return [r for r in self.records if r.event.kind == kind]

    def between(self, start_ms: float, end_ms: float) -> List[EventRecord]:
        """Records with ``start_ms <= at_ms < end_ms``."""
        return [r for r in self.records if start_ms <= r.at_ms < end_ms]

    def clear(self) -> None:
        self.records.clear()


class JsonLinesSink:
    """Streams events to a JSON-lines file, one ``{"t": "event", ...}`` per
    line; :meth:`write_snapshot` appends ``{"t": "metric", ...}`` lines so
    one file holds a run's full observability state."""

    def __init__(self, destination: Union[str, IO[str]]):
        if isinstance(destination, str):
            self._fh: IO[str] = open(destination, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = destination
            self._owns = False

    def record(self, record: EventRecord) -> None:
        payload = event_to_dict(record)
        payload["t"] = "event"
        self._fh.write(json.dumps(payload, sort_keys=True) + "\n")

    def write_snapshot(self, registry: MetricsRegistry) -> None:
        """Append one line per instrument with its current value."""
        for line in metrics_snapshot(registry):
            self._fh.write(json.dumps(line, sort_keys=True) + "\n")

    def write_series(self, windows: Iterable[Any]) -> None:
        """Append one ``{"t": "series", ...}`` line per
        :class:`~repro.obs.series.SeriesWindow`, so one export carries the
        run's windowed time series next to its events and metrics (read
        back with :func:`repro.obs.series.read_series`)."""
        from repro.obs.series import series_to_jsonl
        for line in series_to_jsonl(windows):
            self._fh.write(line + "\n")

    def close(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Optionally snapshot ``registry``, then flush (and close the file
        if this sink opened it)."""
        if registry is not None:
            self.write_snapshot(registry)
        self._fh.flush()
        if self._owns:
            self._fh.close()


def metrics_snapshot(registry: MetricsRegistry) -> List[Dict[str, Any]]:
    """JSON-safe dicts for every instrument in ``registry``."""
    out: List[Dict[str, Any]] = []
    for metric in registry.metrics():
        base = {
            "t": "metric",
            "name": metric.name,
            "labels": dict(metric.labels),
        }
        if isinstance(metric, Counter):
            base.update(metric="counter", value=metric.value)
        elif isinstance(metric, Gauge):
            base.update(metric="gauge", value=metric.value)
        elif isinstance(metric, Histogram):
            base.update(
                metric="histogram",
                count=metric.count,
                sum=metric.sum,
                buckets=[
                    ["+Inf" if bound == float("inf") else bound, count]
                    for bound, count in metric.nonempty_buckets()
                ],
            )
        else:  # pragma: no cover - future instrument types
            continue
        out.append(base)
    return out


def read_jsonl(
    source: Union[str, IO[str], Iterable[str]],
) -> Tuple[List[EventRecord], List[Dict[str, Any]]]:
    """Parse a JSON-lines export back into ``(events, metric dicts)``."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    else:
        lines = list(source)
    events: List[EventRecord] = []
    metrics: List[Dict[str, Any]] = []
    for lineno, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ConfigError(
                f"line {lineno} is not valid JSON ({exc.msg}); "
                "the export looks truncated or corrupt"
            ) from None
        if not isinstance(payload, dict):
            raise ConfigError(
                f"line {lineno} is not a JSON object; "
                "the export looks corrupt"
            )
        tag = payload.pop("t", "event")
        if tag == "event":
            events.append(event_from_dict(payload))
        elif tag == "metric":
            metrics.append(payload)
        elif tag == "series":
            # Windowed time-series lines ride alongside events/metrics;
            # repro.obs.series.read_series parses them.
            continue
        else:
            raise ConfigError(f"unknown JSON-lines record tag {tag!r}")
    return events, metrics


# --------------------------------------------------------------------------
# Prometheus text exposition format
# --------------------------------------------------------------------------

def _fmt_labels(labels, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [(str(k), str(v)) for k, v in labels]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    rendered = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + rendered + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_value(value: float) -> str:
    value = float(value)
    if value != value:  # NaN (the format spells it exactly "NaN")
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry's current state in Prometheus text format 0.0.4.

    Strictly conformant output: one ``# TYPE`` line per metric family
    before its samples, escaped label values, and for histograms
    *cumulative* ``le`` buckets ending in exactly one ``+Inf`` bucket
    that equals the ``_count`` sample, plus ``_sum``/``_count`` lines.
    """
    by_name: Dict[str, List[Any]] = {}
    for metric in registry.metrics():
        by_name.setdefault(metric.name, []).append(metric)
    lines: List[str] = []
    for name, metrics in by_name.items():
        kind = metrics[0]
        if isinstance(kind, Counter):
            lines.append(f"# TYPE {name} counter")
            for m in metrics:
                lines.append(f"{name}{_fmt_labels(m.labels)} {_fmt_value(m.value)}")
        elif isinstance(kind, Gauge):
            lines.append(f"# TYPE {name} gauge")
            for m in metrics:
                lines.append(f"{name}{_fmt_labels(m.labels)} {_fmt_value(m.value)}")
        elif isinstance(kind, Histogram):
            lines.append(f"# TYPE {name} histogram")
            for m in metrics:
                cumulative = 0
                for bound, count in m.nonempty_buckets():
                    if bound == float("inf"):
                        break  # the overflow bucket is the +Inf line below
                    cumulative += count
                    le = _fmt_labels(m.labels, ("le", _fmt_value(bound)))
                    lines.append(f"{name}_bucket{le} {cumulative}")
                le = _fmt_labels(m.labels, ("le", "+Inf"))
                lines.append(f"{name}_bucket{le} {m.count}")
                lines.append(f"{name}_sum{_fmt_labels(m.labels)} {_fmt_value(m.sum)}")
                lines.append(f"{name}_count{_fmt_labels(m.labels)} {m.count}")
    return "\n".join(lines) + ("\n" if lines else "")
