"""MetricsRegistry: counters, gauges, HDR-style histograms, event fan-out.

One registry instance observes one run. Both harnesses publish into it —
the deterministic simulator (clock = virtual ``EventQueue.now``) and the
live asyncio runtime (clock = ``loop.time()`` in ms) — so a sim experiment
and a localhost cluster produce directly comparable streams.

Design constraints:

- **Zero overhead when disabled.** Components default to the shared
  :data:`NULL_REGISTRY` whose ``enabled`` is ``False``; every emission site
  is guarded by that one attribute read. The null registry's mutating
  methods are no-ops, so accidentally instrumenting it is harmless.
- **Deterministic.** Instruments are plain dicts keyed by
  ``(name, sorted labels)``; iteration order is insertion order, so
  exporter output is reproducible for seeded runs.
- **Cheap instruments.** ``counter()/gauge()/histogram()`` return live
  handles; hot paths should fetch the handle once and call ``inc()`` on it.
"""

from __future__ import annotations

import bisect
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.obs.events import EventRecord, ProtocolEvent

LabelKey = Tuple[Tuple[str, Any], ...]
MetricKey = Tuple[str, LabelKey]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down (current ballot, QC flag, ...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


def _default_bounds() -> Tuple[float, ...]:
    """HDR-style bucket upper bounds: every power of two from 2^-4 (0.0625)
    to 2^24 (~16.7 M) split into 4 linear sub-buckets — ~12% relative error
    over 8+ decades, 113 buckets. Good enough for latencies in ms and
    durations in ms alike."""
    bounds: List[float] = []
    for exp in range(-4, 24):
        base = 2.0 ** exp
        step = base / 4.0
        for sub in range(1, 5):
            bounds.append(base + step * sub)
    return tuple(bounds)


_HDR_BOUNDS = _default_bounds()


def quantile_from_counts(bounds: Tuple[float, ...], counts: Sequence[int],
                         q: float, fallback: Optional[float] = None) -> float:
    """Approximate ``q``-quantile from raw bucket counts (``counts`` has one
    trailing overflow bucket past ``bounds``). Shared by
    :meth:`Histogram.quantile` and the windowed series engine, which diffs
    two bucket snapshots and rank-scans the delta for per-window
    percentiles."""
    if not 0.0 <= q <= 1.0:
        raise ConfigError("quantile must be in [0, 1]")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    seen = 0
    for i, n in enumerate(counts):
        seen += n
        if seen >= rank and n:
            if i < len(bounds):
                return bounds[i]
            return fallback if fallback is not None else 0.0
    return fallback if fallback is not None else 0.0


class Histogram:
    """A fixed-bucket histogram with HDR-style geometric bounds."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count",
                 "sum", "min", "max")

    def __init__(self, name: str, labels: LabelKey,
                 bounds: Tuple[float, ...] = _HDR_BOUNDS):
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (bucket upper bound), q in [0, 1]."""
        return quantile_from_counts(self.bounds, self.bucket_counts, q,
                                    fallback=self.max)

    def bucket_snapshot(self) -> Tuple[int, ...]:
        """An immutable copy of the bucket counts. The series engine takes
        one of these at each window boundary and rank-scans the delta, so
        cumulative HDR histograms yield *per-window* percentiles."""
        return tuple(self.bucket_counts)

    def nonempty_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, count)`` for buckets with observations
        (``float('inf')`` for the overflow bucket)."""
        out = []
        for i, n in enumerate(self.bucket_counts):
            if n:
                bound = self.bounds[i] if i < len(self.bounds) else float("inf")
                out.append((bound, n))
        return out


def _wall_clock_ms() -> float:
    return time.monotonic() * 1000.0


class MetricsRegistry:
    """The per-run observability hub: metrics plus event fan-out."""

    #: Emission sites are guarded by this flag; the null registry is the
    #: only one where it is False.
    enabled: bool = True
    #: Opt-in high-volume tracing (commit-path, recovery, client-batch
    #: events plus TraceContext stamping on envelopes). Class-level
    #: default False so hot-path guards ``if self._obs.tracing:`` cost a
    #: single attribute read and tracing-only work vanishes by default —
    #: the same zero-overhead contract as ``enabled``.
    tracing: bool = False

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock: Callable[[], float] = clock or _wall_clock_ms
        self._metrics: Dict[MetricKey, Any] = {}
        self._sinks: List[Any] = []

    # -- tracing -------------------------------------------------------------

    def enable_tracing(self) -> None:
        """Turn on causal tracing (span events + envelope trace stamping)."""
        self.tracing = True

    def disable_tracing(self) -> None:
        self.tracing = False

    # -- clock ---------------------------------------------------------------

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Set the time source stamped onto emitted events (ms). The sim
        harness wires the virtual queue clock; the runtime wires the event
        loop clock."""
        self._clock = clock

    def now_ms(self) -> float:
        return self._clock()

    # -- instruments ---------------------------------------------------------

    def _instrument(self, factory, name: str, labels: Dict[str, Any]):
        key = (name, _label_key(labels))
        found = self._metrics.get(key)
        if found is None:
            found = factory(name, key[1])
            self._metrics[key] = found
        return found

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._instrument(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._instrument(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._instrument(Histogram, name, labels)

    def metrics(self) -> Iterable[Any]:
        """Every instrument, in creation order."""
        return list(self._metrics.values())

    def counter_value(self, name: str, **labels: Any) -> float:
        """Convenience read: the counter's value, 0.0 if never touched."""
        found = self._metrics.get((name, _label_key(labels)))
        return found.value if found is not None else 0.0

    def sum_counter(self, name: str) -> float:
        """Sum of a counter over all label sets (e.g. total decided)."""
        return sum(
            m.value for m in self._metrics.values()
            if isinstance(m, Counter) and m.name == name
        )

    # -- events --------------------------------------------------------------

    def add_sink(self, sink: Any) -> None:
        """Register a sink; it receives ``record(EventRecord)`` calls."""
        if sink not in self._sinks:
            self._sinks.append(sink)

    def remove_sink(self, sink: Any) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    @property
    def sinks(self) -> Tuple[Any, ...]:
        return tuple(self._sinks)

    def emit(self, event: ProtocolEvent) -> None:
        """Stamp ``event`` with the clock and fan it out to every sink."""
        record = EventRecord(at_ms=self._clock(), event=event)
        for sink in self._sinks:
            sink.record(record)


class _NullRegistry(MetricsRegistry):
    """The shared disabled registry: every operation is a no-op.

    It is a singleton handed to every :class:`Instrumented` component by
    default, so all mutating methods must be side-effect free — otherwise
    one experiment's instruments would leak into the next.
    """

    enabled = False
    tracing = False

    def __init__(self) -> None:
        super().__init__(clock=lambda: 0.0)

    def set_clock(self, clock: Callable[[], float]) -> None:
        pass

    def enable_tracing(self) -> None:
        pass  # the shared null registry must never start emitting

    def add_sink(self, sink: Any) -> None:
        pass

    def emit(self, event: ProtocolEvent) -> None:
        pass

    def _instrument(self, factory, name: str, labels: Dict[str, Any]):
        # Hand out throwaway instruments so accidental use is harmless.
        return factory(name, _label_key(labels))


#: The shared disabled registry (``enabled`` is False).
NULL_REGISTRY: MetricsRegistry = _NullRegistry()


class Instrumented:
    """Mixin giving a component an observability registry.

    The default is the class-level :data:`NULL_REGISTRY` — no per-instance
    cost, no ``__init__`` changes needed. Emission sites guard with
    ``if self._obs.enabled:``, or — on the hottest paths — with the cached
    ``if self._obs_on:``, which makes the disabled case cost exactly one
    attribute read. The cache is sound because ``enabled`` is fixed per
    registry (``True`` for real registries, ``False`` only for the null
    singleton); it is refreshed on every :meth:`set_observability`.
    Components that own sub-components override :meth:`_on_observability`
    to propagate the registry.
    """

    _obs: MetricsRegistry = NULL_REGISTRY
    #: Cached ``registry.enabled`` — the single attribute check hot paths
    #: pay when observability is off (class default matches NULL_REGISTRY).
    _obs_on: bool = False

    @property
    def obs(self) -> MetricsRegistry:
        return self._obs

    def set_observability(self, registry: MetricsRegistry) -> None:
        self._obs = registry
        self._obs_on = registry.enabled
        self._on_observability(registry)

    def _on_observability(self, registry: MetricsRegistry) -> None:
        """Hook for propagating the registry to owned sub-components."""
