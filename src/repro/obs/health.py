"""The cluster health observatory: connectivity matrix + gray failures.

Omni-Paxos's central claim is that *connectivity*, not mere liveness,
decides who can lead (paper section 5.2): BLE only elects quorum-connected
servers. This module makes that connectivity state observable:

- :class:`ConnectivityMatrix` assembles each server's per-round
  :class:`~repro.obs.events.HeartbeatViewReported` view into an N×N
  believed-link-state matrix with per-link freshness. Server ``a``
  believes the link to ``b`` is up exactly when ``b``'s reply made it into
  ``a``'s last closed heartbeat round — which requires *both* directions
  (request out, reply back), so the matrix is comparable to the network's
  full-duplex ground truth, and disagreement between the two is itself a
  first-class metric (:func:`matrix_disagreements`).
- :class:`GrayFailureDetector` scores each peer from per-link RTT EWMAs
  and heartbeat-beacon inter-arrival jitter. A *gray-failed* peer — e.g. a
  server running on a 100×-slowed clock — still answers heartbeat requests
  promptly (replies are message-driven, not timer-driven), so the QC flag
  and the matrix stay green; what gives it away is the stretched interval
  between its *own* outgoing beacons and the inflated RTTs it induces. The
  detector emits :class:`~repro.obs.events.PeerDegraded` /
  :class:`~repro.obs.events.PeerRecovered`, deliberately distinct from the
  crash/partition vocabulary (ROADMAP item 5: fail-slow ≠ fail-stop).
- :class:`HealthMonitor` is a registry sink that folds the health event
  stream into a live snapshot for the ``repro-obs watch`` dashboard.

Everything here is passive bookkeeping over events the protocols already
emit; by default nothing feeds back into protocol decisions. The one
deliberate exception is :class:`SelfDegradationMonitor`, which the opt-in
``gray_aware`` protocol mode consults so a node that observes *itself*
fail-slow can gracefully demote its own candidacy (ROADMAP item 5's
reaction half) — strictly config-gated, inert otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.events import (
    EventRecord,
    HeartbeatViewReported,
    PeerDegraded,
    PeerRecovered,
)
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

#: Ground truth shape: ``{(a, b): both_directions_up}`` over ordered pairs.
GroundTruth = Dict[Tuple[int, int], bool]


def ground_truth_from_network(network: Any,
                              pids: Sequence[int]) -> GroundTruth:
    """The network's actual link state as a believed-up-comparable dict.

    ``network`` needs ``is_up(a, b)`` (directed); a server only *hears* a
    peer when both directions work — the heartbeat request must arrive and
    the reply must return — so the truth for ``(a, b)`` is full duplex.
    Works for :class:`~repro.sim.network.SimNetwork` unchanged.
    """
    truth: GroundTruth = {}
    for a in pids:
        for b in pids:
            if a != b:
                truth[(a, b)] = bool(
                    network.is_up(a, b) and network.is_up(b, a)
                )
    return truth


@dataclass
class LinkBelief:
    """One server's latest believed state of one directed link."""

    up: bool
    #: Registry timestamp of the view that produced this belief.
    at_ms: float
    #: Heartbeat round the belief came from.
    round: int


class ConnectivityMatrix:
    """N×N believed-link-state matrix assembled from heartbeat views.

    Row ``a``, column ``b`` answers "does server ``a`` currently believe
    it can exchange heartbeats with ``b``?" — with per-link freshness so a
    silent server's last claims visibly go stale instead of lingering as
    facts.
    """

    def __init__(self, stale_after_ms: Optional[float] = None):
        #: Latest full view per reporting server.
        self.views: Dict[int, HeartbeatViewReported] = {}
        #: When each server last reported.
        self.reported_at: Dict[int, float] = {}
        self._stale_after_ms = stale_after_ms

    def observe(self, view: HeartbeatViewReported, at_ms: float) -> None:
        self.views[view.pid] = view
        self.reported_at[view.pid] = at_ms

    def pids(self) -> Tuple[int, ...]:
        """Every server seen as reporter or peer, sorted."""
        seen = set(self.views)
        for view in self.views.values():
            seen.update(view.peers_heard)
        return tuple(sorted(seen))

    def believes_up(self, a: int, b: int) -> Optional[bool]:
        """``a``'s belief about the link to ``b``; None when ``a`` has
        never reported (no basis for a claim either way)."""
        if a == b:
            return True
        view = self.views.get(a)
        if view is None:
            return None
        return b in view.peers_heard

    def belief(self, a: int, b: int) -> Optional[LinkBelief]:
        view = self.views.get(a)
        if view is None or a == b:
            return None
        return LinkBelief(
            up=b in view.peers_heard,
            at_ms=self.reported_at[a],
            round=view.round,
        )

    def freshness_ms(self, pid: int, now_ms: float) -> Optional[float]:
        """How long ago ``pid`` last reported, or None if never."""
        at = self.reported_at.get(pid)
        return None if at is None else now_ms - at

    def is_stale(self, pid: int, now_ms: float) -> bool:
        if self._stale_after_ms is None:
            return False
        age = self.freshness_ms(pid, now_ms)
        return age is None or age > self._stale_after_ms

    def as_dict(self) -> Dict[int, Tuple[int, ...]]:
        """``{reporter: sorted peers it believes reachable}``."""
        return {
            pid: tuple(sorted(view.peers_heard))
            for pid, view in sorted(self.views.items())
        }


def matrix_disagreements(
    matrix: ConnectivityMatrix,
    truth: GroundTruth,
    now_ms: Optional[float] = None,
) -> List[Tuple[int, int, Optional[bool], bool]]:
    """Links where belief and ground truth differ.

    Returns ``(a, b, believed, actual)`` tuples — ``believed`` is None for
    servers that never reported. Stale reporters (when the matrix has a
    staleness bound and ``now_ms`` is given) are skipped: a claim known to
    be outdated is lag, not disagreement.
    """
    out: List[Tuple[int, int, Optional[bool], bool]] = []
    for (a, b), actual in sorted(truth.items()):
        if now_ms is not None and matrix.is_stale(a, now_ms):
            continue
        believed = matrix.believes_up(a, b)
        if believed is None or believed != bool(actual):
            out.append((a, b, believed, bool(actual)))
    return out


@dataclass
class PeerScore:
    """The gray-failure detector's running state for one peer."""

    #: EWMA of the interval between the peer's heartbeat beacons (ms).
    beacon_interval_ewma: Optional[float] = None
    last_beacon_at: Optional[float] = None
    #: EWMA of measured request->reply RTTs to the peer (ms).
    rtt_ewma: Optional[float] = None
    #: Smallest RTT EWMA ever seen — the healthy baseline.
    rtt_baseline: Optional[float] = None
    degraded: bool = False
    #: Last computed observed/expected ratio and which signal tripped it.
    score: float = 0.0
    reason: str = ""


class GrayFailureDetector:
    """Score peers from beacon jitter and RTT EWMAs; flag fail-slow peers.

    Two independent signals, both ratios of observed over expected:

    - **Beacon interval**: each peer broadcasts a heartbeat request every
      ``expected_interval_ms`` *by its own clock*. A peer whose clock (or
      scheduler, or GC, or disk) runs slow stretches that interval at
      every observer, even though its message-driven replies stay prompt —
      precisely the gray failure that heartbeat liveness misses.
    - **RTT**: the request->reply round trip per link, compared against
      the smallest EWMA ever seen on that link (the healthy baseline), so
      a delay spike registers without any configured latency model. Both
      sides of the ratio are floored at ``min_rtt_floor_ms`` so
      sub-floor scheduling noise (a loaded event loop, localhost jitter)
      can never trip the detector — only spikes past
      ``degraded_factor × floor`` register on fast links.

    A peer is flagged ``degraded`` when either ratio reaches
    ``degraded_factor`` and cleared when the worst ratio falls back under
    ``recover_factor`` (hysteresis so a borderline peer doesn't flap).
    """

    def __init__(
        self,
        pid: int,
        expected_interval_ms: float,
        degraded_factor: float = 3.0,
        recover_factor: float = 1.5,
        alpha: float = 0.3,
        min_rtt_floor_ms: float = 5.0,
        interval_cap_factor: float = 10.0,
    ):
        self.pid = pid
        self.expected_interval_ms = expected_interval_ms
        self.degraded_factor = degraded_factor
        self.recover_factor = recover_factor
        self.alpha = alpha
        self.min_rtt_floor_ms = min_rtt_floor_ms
        self.interval_cap_factor = interval_cap_factor
        self.peers: Dict[int, PeerScore] = {}
        self._obs: MetricsRegistry = NULL_REGISTRY

    def bind(self, registry: MetricsRegistry) -> None:
        """Emit events/metrics into ``registry`` from now on."""
        self._obs = registry

    # -- signal intake -------------------------------------------------------

    def observe_beacon(self, peer: int, now_ms: float) -> None:
        """A heartbeat request from ``peer`` arrived at ``now_ms``."""
        state = self.peers.setdefault(peer, PeerScore())
        last = state.last_beacon_at
        state.last_beacon_at = now_ms
        if last is None:
            return
        # Cap the sample: a total beacon *gap* (partition, crash) would
        # otherwise land as one enormous interval and keep the peer
        # flagged long after the link heals. Gray failure is stretched-
        # but-present beacons; an outright silence is the fail-stop
        # detectors' job, so one sample may pull the EWMA at most
        # ``interval_cap_factor`` past expected.
        interval = min(now_ms - last,
                       self.interval_cap_factor * self.expected_interval_ms)
        if state.beacon_interval_ewma is None:
            state.beacon_interval_ewma = interval
        else:
            state.beacon_interval_ewma += self.alpha * (
                interval - state.beacon_interval_ewma
            )
        self._rescore(peer, state)

    def observe_rtt(self, peer: int, rtt_ms: float) -> None:
        """A measured request->reply round trip to ``peer``."""
        state = self.peers.setdefault(peer, PeerScore())
        if state.rtt_ewma is None:
            state.rtt_ewma = rtt_ms
        else:
            state.rtt_ewma += self.alpha * (rtt_ms - state.rtt_ewma)
        floored = max(state.rtt_ewma, self.min_rtt_floor_ms)
        if state.rtt_baseline is None or floored < state.rtt_baseline:
            state.rtt_baseline = floored
        self._rescore(peer, state)

    # -- scoring -------------------------------------------------------------

    def _ratios(self, state: PeerScore) -> List[Tuple[float, str]]:
        out: List[Tuple[float, str]] = []
        if state.beacon_interval_ewma is not None:
            out.append((
                state.beacon_interval_ewma / self.expected_interval_ms,
                "heartbeat_interval",
            ))
        if state.rtt_ewma is not None and state.rtt_baseline is not None:
            out.append((
                max(state.rtt_ewma, self.min_rtt_floor_ms)
                / state.rtt_baseline,
                "rtt",
            ))
        return out

    def _rescore(self, peer: int, state: PeerScore) -> None:
        ratios = self._ratios(state)
        if not ratios:
            return
        score, reason = max(ratios)
        state.score = score
        if not state.degraded and score >= self.degraded_factor:
            state.degraded = True
            state.reason = reason
            if self._obs.enabled:
                self._obs.emit(PeerDegraded(
                    pid=self.pid, peer=peer, score=round(score, 3),
                    reason=reason,
                ))
                self._obs.counter("repro_peer_degraded_total",
                                  pid=self.pid, peer=peer).inc()
                self._obs.gauge("repro_peer_degraded",
                                pid=self.pid, peer=peer).set(1.0)
        elif state.degraded and score <= self.recover_factor:
            state.degraded = False
            state.reason = ""
            if self._obs.enabled:
                self._obs.emit(PeerRecovered(
                    pid=self.pid, peer=peer, score=round(score, 3),
                ))
                self._obs.gauge("repro_peer_degraded",
                                pid=self.pid, peer=peer).set(0.0)

    # -- accessors -----------------------------------------------------------

    def degraded_peers(self) -> Tuple[int, ...]:
        return tuple(sorted(
            peer for peer, s in self.peers.items() if s.degraded
        ))

    def score_of(self, peer: int) -> float:
        state = self.peers.get(peer)
        return state.score if state is not None else 0.0

    def snapshot(self) -> Dict[int, Dict[str, Any]]:
        """JSON-safe per-peer state (for ``status()`` and the admin API)."""
        return {
            peer: {
                "degraded": s.degraded,
                "score": round(s.score, 3),
                "reason": s.reason,
                "beacon_interval_ewma_ms": (
                    None if s.beacon_interval_ewma is None
                    else round(s.beacon_interval_ewma, 3)
                ),
                "rtt_ewma_ms": (
                    None if s.rtt_ewma is None else round(s.rtt_ewma, 3)
                ),
            }
            for peer, s in sorted(self.peers.items())
        }


class SelfDegradationMonitor:
    """Score a node's *own* slowness from its timer-callback intervals.

    The complement of :class:`GrayFailureDetector`: instead of watching
    peers, a node watches the cadence of its own timer loop. A fail-slow
    node (100×-scaled clock, blocked fsyncs, CPU starvation) fires its
    heartbeat/tick callbacks late by exactly the slowdown factor — the one
    signal that needs no peer cooperation and is available before any
    remote observer can vote. This is what the opt-in ``gray_aware`` mode
    feeds on: a node that scores *itself* degraded demotes its own
    candidacy so leadership drains away gracefully instead of limping.

    Two baselines, one per caller style:

    - **Expected-interval mode** (``expected_interval_ms`` given): the
      caller knows its own period — Omni's BLE fires a round every
      ``hb_period_ms`` — so the ratio is observed interval over the
      configured period.
    - **Self-baseline mode** (``expected_interval_ms=None``): the caller
      only has a tick cadence that may legitimately vary (Raft's
      randomized timeouts); the healthy baseline is the smallest interval
      EWMA ever seen, the same trick :class:`GrayFailureDetector` plays
      with RTTs.

    Hysteresis (``degraded_factor``/``recover_factor``) matches the peer
    detector so both halves of the health story trip on the same scale.
    Degradation events reuse :class:`~repro.obs.events.PeerDegraded` /
    :class:`~repro.obs.events.PeerRecovered` with ``peer == pid`` — a
    self-loop in the health graph, so every existing sink (monitor,
    timeline, flight recorder) renders the self-verdict for free.
    """

    def __init__(
        self,
        pid: int,
        expected_interval_ms: Optional[float] = None,
        degraded_factor: float = 3.0,
        recover_factor: float = 1.5,
        alpha: float = 0.3,
        min_interval_floor_ms: float = 1.0,
    ):
        self.pid = pid
        self.expected_interval_ms = expected_interval_ms
        self.degraded_factor = degraded_factor
        self.recover_factor = recover_factor
        self.alpha = alpha
        self.min_interval_floor_ms = min_interval_floor_ms
        self.interval_ewma: Optional[float] = None
        #: Smallest EWMA ever seen (self-baseline mode only).
        self.baseline: Optional[float] = None
        self.degraded = False
        self.score = 0.0
        self._last_at: Optional[float] = None
        self._obs: MetricsRegistry = NULL_REGISTRY

    def bind(self, registry: MetricsRegistry) -> None:
        """Emit events/metrics into ``registry`` from now on."""
        self._obs = registry

    # -- signal intake -------------------------------------------------------

    def observe_fire(self, now_ms: float) -> None:
        """The node's own timer callback fired at ``now_ms``."""
        last = self._last_at
        self._last_at = now_ms
        if last is None:
            return
        self.observe_interval(now_ms - last)

    def observe_interval(self, interval_ms: float) -> None:
        """A measured gap between two of the node's own timer firings."""
        interval = max(interval_ms, self.min_interval_floor_ms)
        if self.interval_ewma is None:
            self.interval_ewma = interval
        else:
            self.interval_ewma += self.alpha * (
                interval - self.interval_ewma
            )
        if self.expected_interval_ms is None:
            if self.baseline is None or self.interval_ewma < self.baseline:
                self.baseline = max(self.interval_ewma,
                                    self.min_interval_floor_ms)
        self._rescore()

    # -- scoring -------------------------------------------------------------

    def _expected(self) -> Optional[float]:
        if self.expected_interval_ms is not None:
            return max(self.expected_interval_ms, self.min_interval_floor_ms)
        return self.baseline

    def _rescore(self) -> None:
        expected = self._expected()
        if expected is None or self.interval_ewma is None:
            return
        self.score = self.interval_ewma / expected
        if not self.degraded and self.score >= self.degraded_factor:
            self.degraded = True
            if self._obs.enabled:
                self._obs.emit(PeerDegraded(
                    pid=self.pid, peer=self.pid,
                    score=round(self.score, 3), reason="self_interval",
                ))
                self._obs.counter("repro_self_degraded_total",
                                  pid=self.pid).inc()
                self._obs.gauge("repro_self_degraded",
                                pid=self.pid).set(1.0)
        elif self.degraded and self.score <= self.recover_factor:
            self.degraded = False
            if self._obs.enabled:
                self._obs.emit(PeerRecovered(
                    pid=self.pid, peer=self.pid,
                    score=round(self.score, 3),
                ))
                self._obs.gauge("repro_self_degraded",
                                pid=self.pid).set(0.0)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe state (for ``status()`` and the admin API)."""
        return {
            "degraded": self.degraded,
            "score": round(self.score, 3),
            "interval_ewma_ms": (
                None if self.interval_ewma is None
                else round(self.interval_ewma, 3)
            ),
            "baseline_ms": (
                None if self.baseline is None else round(self.baseline, 3)
            ),
        }


@dataclass
class DegradedState:
    """Latest degradation verdict one observer holds about one peer."""

    score: float
    reason: str


class HealthMonitor:
    """A registry sink that folds health events into a live snapshot.

    Attach with ``registry.add_sink(monitor)``; the matrix and degraded
    map then track the run as it happens — this is what the ``repro-obs
    watch`` dashboard and the sim harness's cluster-level ``status()``
    read. Non-health events pass through untouched (and uncounted), so the
    monitor can share a registry with the JSON-lines exporter.
    """

    def __init__(self, stale_after_ms: Optional[float] = None):
        self.matrix = ConnectivityMatrix(stale_after_ms=stale_after_ms)
        #: ``{observer: {peer: DegradedState}}`` — currently-degraded only.
        self.degraded: Dict[int, Dict[int, DegradedState]] = {}
        self.last_at_ms = 0.0

    def record(self, record: EventRecord) -> None:
        event = record.event
        if isinstance(event, HeartbeatViewReported):
            self.matrix.observe(event, record.at_ms)
            self.last_at_ms = record.at_ms
        elif isinstance(event, PeerDegraded):
            self.degraded.setdefault(event.pid, {})[event.peer] = (
                DegradedState(score=event.score, reason=event.reason)
            )
            self.last_at_ms = record.at_ms
        elif isinstance(event, PeerRecovered):
            holders = self.degraded.get(event.pid)
            if holders is not None:
                holders.pop(event.peer, None)
                if not holders:
                    del self.degraded[event.pid]
            self.last_at_ms = record.at_ms

    def degraded_pairs(self) -> List[Tuple[int, int, DegradedState]]:
        return [
            (observer, peer, state)
            for observer, peers in sorted(self.degraded.items())
            for peer, state in sorted(peers.items())
        ]

    def replay(self, records: Sequence[EventRecord]) -> None:
        """Fold an already-exported event list (post-hoc watch mode)."""
        for record in records:
            self.record(record)
