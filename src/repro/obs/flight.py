"""The always-on flight recorder: bounded ring buffers of recent events.

Aviation flight recorders answer "what were the last things that happened
before it went wrong?" without logging everything forever. This module is
the same idea for a cluster run: a :class:`FlightRecorder` is a registry
sink that keeps only the most recent events — one bounded lane per server
pid plus one lane for events with no pid (client/nemesis) — so it can stay
attached for arbitrarily long runs at O(capacity) memory.

When something goes wrong (a chaos safety check fails, a runtime node's
tick loop dies, an operator asks), :meth:`FlightRecorder.dump_jsonl`
writes the merged recent history in the exact JSON-lines format of
:class:`~repro.obs.exporters.JsonLinesSink`, so the existing ``repro-obs
report`` / ``timeline`` / ``spans`` commands can replay the final moments.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.errors import ConfigError
from repro.obs.events import EventRecord, QueueDepthSampled
from repro.obs.exporters import JsonLinesSink
from repro.obs.registry import MetricsRegistry

#: Default per-lane capacity: enough heartbeat rounds and commit-path
#: events to reconstruct several seconds of a busy server's history.
DEFAULT_CAPACITY = 512

#: Lane key for queue-depth samples (see :meth:`FlightRecorder.lane`).
DEPTH_LANE = "depth"


class FlightRecorder:
    """A registry sink retaining the last ``capacity`` events per lane.

    Events are laned by their ``pid`` field; events without one (client
    replies, nemesis injections) share the ``None`` lane. Queue-depth
    samples (:class:`~repro.obs.events.QueueDepthSampled`) get their own
    dedicated :data:`DEPTH_LANE` — they arrive on a fixed cadence and
    would otherwise evict the protocol events a post-mortem needs, and
    keeping them separate means a dump always shows the backpressure
    state at the moment of a violation. Lanes are bounded deques, so
    recording is O(1) and total memory is bounded by
    ``capacity × (servers + 2)`` regardless of run length — the property
    that makes it safe to leave on always.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ConfigError("flight recorder capacity must be positive")
        self.capacity = capacity
        self._lanes: Dict[Optional[int], Deque[EventRecord]] = {}
        self._depth: Deque[EventRecord] = deque(maxlen=capacity)
        #: Total events ever recorded (including ones since evicted).
        self.recorded = 0

    # -- sink interface ----------------------------------------------------

    def record(self, record: EventRecord) -> None:
        if isinstance(record.event, QueueDepthSampled):
            self._depth.append(record)
            self.recorded += 1
            return
        pid = getattr(record.event, "pid", None)
        lane = self._lanes.get(pid)
        if lane is None:
            lane = self._lanes[pid] = deque(maxlen=self.capacity)
        lane.append(record)
        self.recorded += 1

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return sum(len(lane) for lane in self._lanes.values()) + \
            len(self._depth)

    def lanes(self) -> List[Any]:
        """Lane keys with retained events: pids sorted, then
        :data:`DEPTH_LANE` if populated, then ``None``."""
        keys: List[Any] = [k for k in self._lanes if k is not None]
        keys.sort()
        if self._depth:
            keys.append(DEPTH_LANE)
        return keys + ([None] if None in self._lanes else [])

    def lane(self, pid: Any) -> List[EventRecord]:
        """The retained events of one lane, oldest first (pass
        :data:`DEPTH_LANE` for the queue-depth samples)."""
        if pid == DEPTH_LANE:
            return list(self._depth)
        return list(self._lanes.get(pid, ()))

    def dump(self) -> List[EventRecord]:
        """All retained events merged across lanes, ordered by time.

        The sort is stable on ``at_ms`` so same-tick events keep their
        per-lane emission order.
        """
        merged: List[EventRecord] = []
        for lane in self._lanes.values():
            merged.extend(lane)
        merged.extend(self._depth)
        merged.sort(key=lambda r: r.at_ms)
        return merged

    def clear(self) -> None:
        self._lanes.clear()
        self._depth.clear()

    # -- dumping -----------------------------------------------------------

    def dump_jsonl(self, path: str,
                   registry: Optional[MetricsRegistry] = None) -> int:
        """Write the retained history to ``path`` as a JSON-lines export.

        The output is byte-compatible with a
        :class:`~repro.obs.exporters.JsonLinesSink` capture (optionally
        including a metrics snapshot of ``registry``), so ``repro-obs
        report/timeline/spans <path>`` work on it directly. Returns the
        number of event lines written.
        """
        records = self.dump()
        sink = JsonLinesSink(path)
        try:
            for record in records:
                sink.record(record)
        finally:
            sink.close(registry)
        return len(records)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe summary (for the admin endpoint's ``flight`` verb)."""
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "retained": len(self),
            "lanes": dict(
                {
                    "global" if k is None else str(k): len(v)
                    for k, v in sorted(
                        self._lanes.items(),
                        key=lambda item: (item[0] is None, item[0] or 0),
                    )
                },
                **({DEPTH_LANE: len(self._depth)} if self._depth else {}),
            ),
        }
