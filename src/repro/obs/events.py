"""The structured protocol event vocabulary.

One vocabulary for Omni-Paxos *and* the baselines: the evaluation compares
protocols through identical measurement hooks (like the uniform harness of
*Paxos vs Raft*), so a Raft term win and a BLE election both surface as
:class:`BallotElected`, and a Raft step-down and a Sequence Paxos demotion
both surface as :class:`RoleChanged`.

Events are frozen dataclasses with a class-level ``kind`` tag. They carry
no timestamp themselves — the registry stamps emission time from its clock
and hands sinks an :class:`EventRecord`. ``event_to_dict`` /
``event_from_dict`` round-trip events through JSON-safe dicts for the
JSON-lines exporter and the ``repro-obs`` report CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.util.compat import SLOTTED
from typing import Any, ClassVar, Dict, Optional, Tuple, Type

from repro.errors import ConfigError


@dataclass(frozen=True, **SLOTTED)
class ProtocolEvent:
    """Base class; subclasses define ``kind`` and their payload fields."""

    kind: ClassVar[str] = "ProtocolEvent"


@dataclass(frozen=True, **SLOTTED)
class BallotElected(ProtocolEvent):
    """Server ``pid`` observed ``leader`` elected with ballot/term/view
    number ``ballot`` (BLE election, Raft term win, MP Phase-1 completion,
    VR view establishment — one vocabulary for all four)."""

    kind: ClassVar[str] = "BallotElected"
    pid: int = 0
    leader: int = 0
    ballot: int = 0


@dataclass(frozen=True, **SLOTTED)
class BallotBumped(ProtocolEvent):
    """Server ``pid`` bumped its own ballot to ``ballot`` attempting a
    takeover (BLE check_leader with the leader's ballot absent)."""

    kind: ClassVar[str] = "BallotBumped"
    pid: int = 0
    ballot: int = 0


@dataclass(frozen=True, **SLOTTED)
class QCFlagChanged(ProtocolEvent):
    """Server ``pid``'s quorum-connected flag flipped (paper section 5.2:
    the flag that keeps non-QC servers from churning ballots)."""

    kind: ClassVar[str] = "QCFlagChanged"
    pid: int = 0
    quorum_connected: bool = False


@dataclass(frozen=True, **SLOTTED)
class RoleChanged(ProtocolEvent):
    """Server ``pid`` changed replication role (``leader`` / ``follower`` /
    ``candidate`` / ``precandidate``). ``protocol`` names the emitting
    state machine (``sp``, ``raft``, ``multipaxos``)."""

    kind: ClassVar[str] = "RoleChanged"
    pid: int = 0
    role: str = "follower"
    protocol: str = "sp"


@dataclass(frozen=True, **SLOTTED)
class StopSignDecided(ProtocolEvent):
    """Server ``pid`` decided the stop-sign ending configuration
    ``config_id``; the cluster moves to ``next_config_id`` = ``servers``."""

    kind: ClassVar[str] = "StopSignDecided"
    pid: int = 0
    config_id: int = 0
    next_config_id: int = 0
    servers: Tuple[int, ...] = ()


@dataclass(frozen=True, **SLOTTED)
class MigrationDonorPicked(ProtocolEvent):
    """Joining server ``pid`` requested log range ``[from_idx, to_idx)``
    of configuration ``config_id`` from ``donor`` (paper section 6:
    parallel log migration)."""

    kind: ClassVar[str] = "MigrationDonorPicked"
    pid: int = 0
    config_id: int = 0
    donor: int = 0
    from_idx: int = 0
    to_idx: int = 0


@dataclass(frozen=True, **SLOTTED)
class MigrationCompleted(ProtocolEvent):
    """Joining server ``pid`` finished migrating ``entries`` log entries
    for configuration ``config_id`` in ``duration_ms``."""

    kind: ClassVar[str] = "MigrationCompleted"
    pid: int = 0
    config_id: int = 0
    entries: int = 0
    duration_ms: float = 0.0


@dataclass(frozen=True, **SLOTTED)
class MigrationSegmentReceived(ProtocolEvent):
    """Joining server ``pid`` received ``entries`` migrated log entries
    starting at ``from_idx`` from ``donor`` — the per-donor signal that
    lets the timeline break a migration into parallel segment transfers."""

    kind: ClassVar[str] = "MigrationSegmentReceived"
    pid: int = 0
    config_id: int = 0
    donor: int = 0
    from_idx: int = 0
    entries: int = 0


@dataclass(frozen=True, **SLOTTED)
class SessionDropped(ProtocolEvent):
    """Server ``pid`` observed the link session to ``peer`` drop and
    re-establish (triggers PrepareReq handling, paper section 4.1.3)."""

    kind: ClassVar[str] = "SessionDropped"
    pid: int = 0
    peer: int = 0


@dataclass(frozen=True, **SLOTTED)
class HeartbeatViewReported(ProtocolEvent):
    """Server ``pid``'s view of the cluster after closing heartbeat round
    ``round``: its ballot, believed leader, QC flag, connectivity count,
    and exactly which peers replied (``peers_heard``), plus replication
    progress (``log_len``/``decided_idx``). The health observatory
    assembles these per-server views into the N×N quorum-connectivity
    matrix; ``phase`` is the server's replication role at report time."""

    kind: ClassVar[str] = "HeartbeatViewReported"
    pid: int = 0
    round: int = 0
    ballot: int = 0
    leader: int = 0
    quorum_connected: bool = False
    connectivity: int = 0
    peers_heard: Tuple[int, ...] = ()
    phase: str = "follower"
    log_len: int = 0
    decided_idx: int = 0
    #: Absolute deviation of this round's close from the expected heartbeat
    #: cadence (ms); 0.0 on exports from before the series engine existed.
    jitter_ms: float = 0.0


@dataclass(frozen=True, **SLOTTED)
class PeerDegraded(ProtocolEvent):
    """Server ``pid``'s gray-failure detector scored ``peer`` as degraded:
    still replying to heartbeats (so crash/partition detectors stay
    silent) but slow — ``reason`` is ``"heartbeat_interval"`` (the peer's
    own beacons arrive stretched) or ``"rtt"`` (per-link RTT EWMA blew
    past its baseline). ``score`` is the observed/expected ratio."""

    kind: ClassVar[str] = "PeerDegraded"
    pid: int = 0
    peer: int = 0
    score: float = 0.0
    reason: str = "heartbeat_interval"


@dataclass(frozen=True, **SLOTTED)
class PeerRecovered(ProtocolEvent):
    """Server ``pid``'s gray-failure detector cleared the degraded flag on
    ``peer`` (score back under the recovery threshold)."""

    kind: ClassVar[str] = "PeerRecovered"
    pid: int = 0
    peer: int = 0
    score: float = 0.0


@dataclass(frozen=True, **SLOTTED)
class QueueDepthSampled(ProtocolEvent):
    """Instantaneous depth of one staging queue (``queue`` names it: see
    ``repro.obs.prof.QUEUE_NAMES``) sampled by the profiler. ``pid`` is the
    owning server, or ``None`` for cluster-wide queues such as the sim event
    heap and the network's in-flight set. The flight recorder keeps these in
    a dedicated lane so a post-mortem dump shows backpressure at the moment
    of a violation without evicting protocol events."""

    kind: ClassVar[str] = "QueueDepthSampled"
    queue: str = ""
    depth: int = 0
    pid: Optional[int] = None


@dataclass(frozen=True, **SLOTTED)
class ClientReplyDecided(ProtocolEvent):
    """The closed-loop client observed command ``seq`` decided. The stream
    of these events *is* the paper's throughput/down-time signal — the
    ``repro-obs`` CLI recomputes Figures 7–9 style summaries from it."""

    kind: ClassVar[str] = "ClientReplyDecided"
    client_id: int = 0
    seq: int = 0
    #: Trace id of the command's causal chain (``c<client_id>-<seq>``);
    #: empty on exports from before the tracing layer existed.
    trace_id: str = ""


# --------------------------------------------------------------------------
# Tracing-only events (emitted only when ``MetricsRegistry.tracing`` is on;
# see repro.obs.spans for the spans assembled from them). All fields carry
# defaults so exports written before a field existed still load.
# --------------------------------------------------------------------------


@dataclass(frozen=True, **SLOTTED)
class ProposalAppended(ProtocolEvent):
    """Leader ``pid`` appended entries ``[from_idx, to_idx)`` to its
    replication log and fanned them out (AcceptDecide / AppendEntries /
    P2a — ``protocol`` names which). Start of the commit-path span."""

    kind: ClassVar[str] = "ProposalAppended"
    pid: int = 0
    from_idx: int = 0
    to_idx: int = 0
    protocol: str = "sp"
    trace_id: str = ""


@dataclass(frozen=True, **SLOTTED)
class QuorumAccepted(ProtocolEvent):
    """Leader ``pid`` observed a majority accept through ``log_idx`` and
    advanced the decided index — the quorum milestone of a commit span."""

    kind: ClassVar[str] = "QuorumAccepted"
    pid: int = 0
    log_idx: int = 0
    protocol: str = "sp"


@dataclass(frozen=True, **SLOTTED)
class EntryApplied(ProtocolEvent):
    """Server ``pid`` surfaced ``count`` decided entries (through
    ``log_idx``) to the application — the apply milestone of a commit
    span."""

    kind: ClassVar[str] = "EntryApplied"
    pid: int = 0
    log_idx: int = 0
    count: int = 0


@dataclass(frozen=True, **SLOTTED)
class RecoveryStarted(ProtocolEvent):
    """Server ``pid`` began resynchronizing: ``reason`` is ``"crash"``
    (restart, PrepareReq broadcast) or ``"session"`` (link session drop,
    paper section 4.1.3)."""

    kind: ClassVar[str] = "RecoveryStarted"
    pid: int = 0
    reason: str = "crash"


@dataclass(frozen=True, **SLOTTED)
class RecoveryCompleted(ProtocolEvent):
    """Server ``pid`` finished resynchronizing (AcceptSync applied, or
    re-elected with a fresh log) with ``log_idx`` entries."""

    kind: ClassVar[str] = "RecoveryCompleted"
    pid: int = 0
    log_idx: int = 0


@dataclass(frozen=True, **SLOTTED)
class ClientProposalSent(ProtocolEvent):
    """The closed-loop client sent commands ``[first_seq, first_seq +
    count)`` — the start anchor of client round-trip spans."""

    kind: ClassVar[str] = "ClientProposalSent"
    client_id: int = 0
    first_seq: int = 0
    count: int = 1


@dataclass(frozen=True, **SLOTTED)
class NemesisInjected(ProtocolEvent):
    """The chaos engine applied (``phase="apply"``) or reverted
    (``phase="revert"``) a fault op of kind ``op`` — crash, partition,
    delay_spike, ... — so timelines can show *when* the nemesis acted.
    ``target`` names the victim (a pid, a link list, or ``"net"``)."""

    kind: ClassVar[str] = "NemesisInjected"
    op: str = ""
    phase: str = "apply"
    target: str = ""
    detail: str = ""


@dataclass(frozen=True, **SLOTTED)
class EventRecord:
    """One emitted event plus its registry-stamped emission time."""

    at_ms: float
    event: ProtocolEvent


EVENT_TYPES: Dict[str, Type[ProtocolEvent]] = {
    cls.kind: cls
    for cls in (
        BallotElected,
        BallotBumped,
        QCFlagChanged,
        RoleChanged,
        StopSignDecided,
        MigrationDonorPicked,
        MigrationCompleted,
        MigrationSegmentReceived,
        SessionDropped,
        HeartbeatViewReported,
        PeerDegraded,
        PeerRecovered,
        QueueDepthSampled,
        ClientReplyDecided,
        ProposalAppended,
        QuorumAccepted,
        EntryApplied,
        RecoveryStarted,
        RecoveryCompleted,
        ClientProposalSent,
        NemesisInjected,
    )
}


def event_to_dict(record: EventRecord) -> Dict[str, Any]:
    """A JSON-safe dict for one event record (tuples become lists)."""
    out: Dict[str, Any] = {"kind": record.event.kind, "at_ms": record.at_ms}
    for f in fields(record.event):
        value = getattr(record.event, f.name)
        if isinstance(value, tuple):
            value = list(value)
        out[f.name] = value
    return out


def event_from_dict(payload: Dict[str, Any]) -> EventRecord:
    """Rebuild an :class:`EventRecord` from :func:`event_to_dict` output."""
    data = dict(payload)
    kind = data.pop("kind", None)
    at_ms = data.pop("at_ms", 0.0)
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ConfigError(f"unknown event kind {kind!r}")
    coerced = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in data.items()
    }
    return EventRecord(at_ms=at_ms, event=cls(**coerced))
